//! Black-box tests of the `sjcm` CLI binary: the full gen → build →
//! stats → join → estimate → explain tour, driven through the real
//! executable.

use std::path::PathBuf;
use std::process::{Command, Output};

fn sjcm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sjcm"))
        .args(args)
        .output()
        .expect("failed to spawn sjcm")
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "sjcm failed: {}\n{}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

struct TempFiles(Vec<PathBuf>);

impl TempFiles {
    fn path(&mut self, name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("sjcm_cli_{}_{name}", std::process::id()));
        self.0.push(p.clone());
        p.to_string_lossy().into_owned()
    }
}

impl Drop for TempFiles {
    fn drop(&mut self) {
        for p in &self.0 {
            let _ = std::fs::remove_file(p);
            let mut meta = p.as_os_str().to_owned();
            meta.push(".meta");
            let _ = std::fs::remove_file(PathBuf::from(meta));
        }
    }
}

#[test]
fn full_cli_tour() {
    let mut tmp = TempFiles(Vec::new());
    let data_a = tmp.path("a.json");
    let data_b = tmp.path("b.json");
    let tree_a = tmp.path("a.pages");
    let tree_b = tmp.path("b.pages");

    // gen
    let out = stdout(&sjcm(&[
        "gen",
        "--kind",
        "uniform",
        "--n",
        "2000",
        "--density",
        "0.4",
        "--seed",
        "5",
        "--out",
        &data_a,
    ]));
    assert!(out.contains("wrote 2000 rectangles"), "{out}");
    let out = stdout(&sjcm(&[
        "gen",
        "--kind",
        "clusters",
        "--n",
        "1500",
        "--density",
        "0.3",
        "--seed",
        "6",
        "--out",
        &data_b,
    ]));
    assert!(out.contains("wrote 1500 rectangles"));

    // build
    let out = stdout(&sjcm(&["build", "--data", &data_a, "--out", &tree_a]));
    assert!(out.contains("built R*-tree over 2000 objects"), "{out}");
    stdout(&sjcm(&["build", "--data", &data_b, "--out", &tree_b]));

    // stats
    let out = stdout(&sjcm(&["stats", "--tree", &tree_a]));
    assert!(out.contains("objects N = 2000"), "{out}");
    assert!(out.contains("level"), "{out}");

    // join (loads the persisted trees)
    let out = stdout(&sjcm(&[
        "join", "--tree1", &tree_a, "--tree2", &tree_b, "--buffer", "path",
    ]));
    assert!(out.contains("node accesses NA ="), "{out}");
    assert!(out.contains("qualifying pairs ="), "{out}");
    // DA ≤ NA even through the CLI.
    let grab = |label: &str| -> u64 {
        out.lines()
            .find(|l| l.contains(label))
            .and_then(|l| l.split('=').nth(1))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("missing {label} in {out}"))
    };
    assert!(grab("disk accesses DA") <= grab("node accesses NA"));

    // join with an LRU buffer
    let lru = stdout(&sjcm(&[
        "join", "--tree1", &tree_a, "--tree2", &tree_b, "--buffer", "lru:256",
    ]));
    assert!(lru.contains("Lru(256)"), "{lru}");

    // estimate
    let out = stdout(&sjcm(&[
        "estimate", "--n1", "60000", "--d1", "0.5", "--n2", "20000", "--d2", "0.5",
    ]));
    assert!(out.contains("join NA"), "{out}");
    assert!(out.contains("selectivity"), "{out}");

    // explain
    let out = stdout(&sjcm(&[
        "explain",
        "--datasets",
        "rivers:60000:0.2,countries:20000:0.4",
        "--select",
        "rivers:0,0,0.45,1",
    ]));
    assert!(out.contains("candidate plans"), "{out}");
    assert!(out.contains("Join["), "{out}");
}

#[test]
fn cli_errors_are_clean() {
    let out = sjcm(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = sjcm(&["gen", "--kind", "uniform"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --n"));

    let out = sjcm(&["estimate", "--n1", "ten"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --n1"));

    let out = sjcm(&["stats", "--tree", "/nonexistent/path.pages"]);
    assert!(!out.status.success());
}

#[test]
fn cli_help_lists_commands() {
    let out = stdout(&sjcm(&["help"]));
    assert!(out.contains("gen|build|stats|estimate|join|explain"));
}
