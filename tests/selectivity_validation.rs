//! The §5 selectivity extension against exact pair counts, and the
//! non-uniform (§4.2) machinery end to end.

use sjcm::model::nonuniform::join_cost_nonuniform;
use sjcm::model::selectivity::{distance_join_selectivity, join_selectivity};
use sjcm::prelude::*;

fn build(rects: &[sjcm::geom::Rect<2>]) -> RTree<2> {
    let mut tree = RTree::new(RTreeConfig::paper(2));
    for (i, r) in rects.iter().enumerate() {
        tree.insert(*r, ObjectId(i as u32));
    }
    tree
}

fn count_pairs(t1: &RTree<2>, t2: &RTree<2>) -> u64 {
    JoinSession::new(t1, t2)
        .config(JoinConfig {
            collect_pairs: false,
            ..JoinConfig::default()
        })
        .run()
        .expect("ungoverned join cannot fail")
        .result
        .pair_count
}

#[test]
fn join_selectivity_tight_on_uniform_data() {
    let n = 6_000;
    for d in [0.2, 0.5] {
        let a = sjcm::datagen::uniform::generate::<2>(sjcm::datagen::uniform::UniformConfig::new(
            n, d, 61,
        ));
        let b = sjcm::datagen::uniform::generate::<2>(sjcm::datagen::uniform::UniformConfig::new(
            n, d, 62,
        ));
        let exact = count_pairs(&build(&a), &build(&b));
        let prof = DataProfile::new(n as u64, d);
        let est = join_selectivity::<2>(prof, prof);
        let err = (est - exact as f64).abs() / exact as f64;
        assert!(
            err < 0.10,
            "D = {d}: estimated {est:.0} vs exact {exact} ({:.0}%)",
            err * 100.0
        );
    }
}

#[test]
fn distance_join_selectivity_brackets_reality() {
    // L∞-based estimate is an upper bound for the L2 executor at equal ε
    // and should still be close for small ε.
    let n = 4_000;
    let d = 0.3;
    let a =
        sjcm::datagen::uniform::generate::<2>(sjcm::datagen::uniform::UniformConfig::new(n, d, 63));
    let b =
        sjcm::datagen::uniform::generate::<2>(sjcm::datagen::uniform::UniformConfig::new(n, d, 64));
    let ta = build(&a);
    let tb = build(&b);
    let prof = DataProfile::new(n as u64, d);
    for eps in [0.002, 0.01] {
        let exact = JoinSession::new(&ta, &tb)
            .config(JoinConfig {
                predicate: sjcm::join::JoinPredicate::WithinDistance(eps),
                collect_pairs: false,
                ..JoinConfig::default()
            })
            .run()
            .expect("ungoverned join cannot fail")
            .result
            .pair_count;
        let est = distance_join_selectivity::<2>(prof, prof, eps);
        assert!(
            est >= exact as f64 * 0.95,
            "ε = {eps}: estimate {est:.0} should not undershoot {exact}"
        );
        assert!(
            est <= exact as f64 * 1.35,
            "ε = {eps}: estimate {est:.0} too far above {exact}"
        );
    }
}

#[test]
fn uniform_estimate_underestimates_clustered_joins() {
    // The reason §5 lists non-uniform selectivity as future work.
    let n = 6_000;
    // Both sides share a cluster layout (same center_seed, different
    // object draws): the co-located hot-spot case the uniform model
    // cannot see.
    let a = sjcm::datagen::skewed::gaussian_clusters::<2>(
        sjcm::datagen::skewed::ClusterConfig::new(n, 0.3, 65)
            .with_clusters(4)
            .with_sigma(0.03),
    );
    let b = sjcm::datagen::skewed::gaussian_clusters::<2>(
        sjcm::datagen::skewed::ClusterConfig::new(n, 0.3, 66)
            .with_clusters(4)
            .with_sigma(0.03)
            .with_center_seed(65),
    );
    let exact = count_pairs(&build(&a), &build(&b));
    let est = join_selectivity::<2>(
        DataProfile::new(n as u64, sjcm::geom::density(a.iter())),
        DataProfile::new(n as u64, sjcm::geom::density(b.iter())),
    );
    assert!(
        est < exact as f64,
        "uniform estimate {est:.0} should undershoot clustered exact {exact}"
    );
}

#[test]
fn local_model_beats_global_on_clustered_na() {
    let n = 8_000;
    // Shared cluster layout (see uniform_estimate_underestimates_
    // clustered_joins): the local density surface only has signal to
    // exploit when the two datasets' hot spots overlap.
    let a = sjcm::datagen::skewed::gaussian_clusters::<2>(
        sjcm::datagen::skewed::ClusterConfig::new(n, 0.3, 67),
    );
    let b = sjcm::datagen::skewed::gaussian_clusters::<2>(
        sjcm::datagen::skewed::ClusterConfig::new(n, 0.3, 68).with_center_seed(67),
    );
    let ta = build(&a);
    let tb = build(&b);
    let result = JoinSession::new(&ta, &tb)
        .config(JoinConfig {
            buffer: BufferPolicy::Path,
            collect_pairs: false,
            ..JoinConfig::default()
        })
        .run()
        .expect("ungoverned join cannot fail")
        .result;
    let cfg = ModelConfig::paper(2);
    let prof_a = DataProfile::new(n as u64, sjcm::geom::density(a.iter()));
    let prof_b = DataProfile::new(n as u64, sjcm::geom::density(b.iter()));
    let pa = TreeParams::<2>::from_data(prof_a, &cfg);
    let pb = TreeParams::<2>::from_data(prof_b, &cfg);
    let global_na = sjcm::model::join::join_cost_na(&pa, &pb);
    let sa = DensitySurface::<2>::from_rects(&a, 8);
    let sb = DensitySurface::<2>::from_rects(&b, 8);
    let (local_na, _) = join_cost_nonuniform(prof_a, &sa, prof_b, &sb, &cfg);
    let measured = result.na_total() as f64;
    let global_err = (global_na - measured).abs() / measured;
    let local_err = (local_na - measured).abs() / measured;
    assert!(
        local_err < global_err,
        "local {local_na:.0} ({local_err:.2}) should beat global \
         {global_na:.0} ({global_err:.2}) against measured {measured:.0}"
    );
}

#[test]
fn surface_statistics_survive_the_catalog_roundtrip() {
    // DensitySurface is Clone + used by the optimizer catalog; verify
    // the global invariants survive.
    let rects = sjcm::datagen::tiger::generate(sjcm::datagen::tiger::TigerConfig::roads(5_000, 69));
    let surface = DensitySurface::<2>::from_rects(&rects, 8);
    let stats =
        sjcm::optimizer::DatasetStats::new(rects.len() as u64, sjcm::geom::density(rects.iter()))
            .with_surface(surface.clone());
    let mut catalog = sjcm::optimizer::Catalog::<2>::new();
    catalog.register("roads", stats);
    let back = catalog.get("roads").unwrap().surface.as_ref().unwrap();
    assert_eq!(back.cell_count(), surface.cell_count());
    assert!((back.global_density() - surface.global_density()).abs() < 1e-12);
}
