//! End-to-end optimizer → executor loop: the planner's chosen strategy
//! is executed for real, its result checked against brute force, and
//! its estimated cost checked against the measured page accesses.

use sjcm::exec::{ExecError, PlanExecutor};
use sjcm::geom::{density, Rect};
use sjcm::optimizer::{Catalog, DatasetStats, JoinQuery, PhysicalPlan, Planner};
use sjcm::prelude::*;

struct World {
    rivers: Vec<Rect<2>>,
    countries: Vec<Rect<2>>,
    t_rivers: RTree<2>,
    t_countries: RTree<2>,
    catalog: Catalog<2>,
}

fn world() -> World {
    let rivers = sjcm::datagen::uniform::generate::<2>(sjcm::datagen::uniform::UniformConfig::new(
        6_000, 0.3, 171,
    ));
    let countries = sjcm::datagen::uniform::generate::<2>(
        sjcm::datagen::uniform::UniformConfig::new(2_000, 0.4, 172).with_aspect_jitter(0.5),
    );
    let build = |rects: &[Rect<2>]| {
        let mut t = RTree::new(RTreeConfig::paper(2));
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, ObjectId(i as u32));
        }
        t
    };
    let mut catalog = Catalog::new();
    catalog.register(
        "rivers",
        DatasetStats::new(rivers.len() as u64, density(rivers.iter())),
    );
    catalog.register(
        "countries",
        DatasetStats::new(countries.len() as u64, density(countries.iter())),
    );
    World {
        t_rivers: build(&rivers),
        t_countries: build(&countries),
        rivers,
        countries,
        catalog,
    }
}

fn executor(w: &World) -> PlanExecutor<'_, 2> {
    PlanExecutor::new()
        .bind("rivers", &w.t_rivers, &w.rivers)
        .bind("countries", &w.t_countries, &w.countries)
}

fn brute_pairs(w: &World, window: Option<&Rect<2>>) -> usize {
    let mut count = 0;
    for (i, r) in w.rivers.iter().enumerate() {
        if let Some(win) = window {
            if !r.intersects(win) {
                continue;
            }
        }
        let _ = i;
        for c in &w.countries {
            if r.intersects(c) {
                count += 1;
            }
        }
    }
    count
}

#[test]
fn executed_best_plan_matches_brute_force() {
    let w = world();
    let plan = Planner::new(&w.catalog)
        .best_plan(&JoinQuery::new(["rivers", "countries"]))
        .unwrap();
    let out = executor(&w).run(&plan).unwrap();
    assert_eq!(out.rows.len(), brute_pairs(&w, None));
    assert_eq!(out.columns.len(), 2);
    assert!(out.columns.contains(&"rivers".to_string()));
    assert!(out.io_cost > 0);
}

#[test]
fn executed_plan_with_selection_matches_brute_force() {
    let w = world();
    let west = Rect::new([0.0, 0.0], [0.4, 1.0]).unwrap();
    let q = JoinQuery::new(["rivers", "countries"]).with_selection("rivers", west);
    for plan in Planner::new(&w.catalog).enumerate(&q).unwrap() {
        let out = executor(&w).run(&plan).unwrap();
        assert_eq!(
            out.rows.len(),
            brute_pairs(&w, Some(&west)),
            "plan disagreed with brute force:\n{plan}"
        );
    }
}

#[test]
fn every_enumerated_plan_returns_the_same_result() {
    let w = world();
    let q = JoinQuery::new(["rivers", "countries"]);
    let plans = Planner::new(&w.catalog).enumerate(&q).unwrap();
    assert!(plans.len() >= 2);
    let expected = brute_pairs(&w, None);
    for plan in &plans {
        let out = executor(&w).run(plan).unwrap();
        assert_eq!(out.rows.len(), expected, "{plan}");
    }
}

#[test]
fn estimated_cost_ranks_strategies_like_measured_cost() {
    // The headline promise of a cost model: its ranking of strategies
    // should agree with reality. Compare the cheapest and the most
    // expensive enumerated plan.
    let w = world();
    let tiny = Rect::new([0.0, 0.0], [0.08, 0.08]).unwrap();
    let q = JoinQuery::new(["rivers", "countries"]).with_selection("countries", tiny);
    let plans = Planner::new(&w.catalog).enumerate(&q).unwrap();
    let best = &plans[0];
    let worst = plans.last().unwrap();
    assert!(best.total_cost < worst.total_cost);
    let exec = executor(&w);
    let best_io = exec.run(best).unwrap().io_cost;
    let worst_io = exec.run(worst).unwrap().io_cost;
    assert!(
        best_io <= worst_io,
        "estimates best {} < worst {} but measured {} > {}\nbest:\n{best}\nworst:\n{worst}",
        best.total_cost,
        worst.total_cost,
        best_io,
        worst_io
    );
}

#[test]
fn estimated_io_within_factor_two_of_measured_for_sj_plan() {
    let w = world();
    let plan = Planner::new(&w.catalog)
        .best_plan(&JoinQuery::new(["rivers", "countries"]))
        .unwrap();
    let out = executor(&w).run(&plan).unwrap();
    let ratio = plan.total_cost / out.io_cost as f64;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "estimated {} vs measured {} (ratio {ratio:.2})",
        plan.total_cost,
        out.io_cost
    );
}

#[test]
fn unbound_dataset_is_reported() {
    let w = world();
    let plan = Planner::new(&w.catalog)
        .best_plan(&JoinQuery::new(["rivers", "countries"]))
        .unwrap();
    let exec = PlanExecutor::new().bind("rivers", &w.t_rivers, &w.rivers);
    assert_eq!(
        exec.run(&plan).unwrap_err(),
        ExecError::UnboundDataset("countries".into())
    );
}

#[test]
fn three_way_plans_are_priced_but_not_executed() {
    let mut catalog = Catalog::<2>::new();
    for name in ["a", "b", "c"] {
        catalog.register(name, DatasetStats::new(5_000, 0.3));
    }
    let plan: PhysicalPlan<2> = Planner::new(&catalog)
        .best_plan(&JoinQuery::new(["a", "b", "c"]))
        .unwrap();
    assert!(plan.total_cost > 0.0);
    // Execution of multi-join chains is an explicit non-goal.
    let dummy_rects: Vec<Rect<2>> = vec![];
    let dummy_tree = RTree::<2>::new(RTreeConfig::paper(2));
    let exec = PlanExecutor::new()
        .bind("a", &dummy_tree, &dummy_rects)
        .bind("b", &dummy_tree, &dummy_rects)
        .bind("c", &dummy_tree, &dummy_rects);
    assert!(matches!(
        exec.run(&plan),
        Err(ExecError::UnsupportedShape(_))
    ));
}
