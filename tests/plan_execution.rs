//! End-to-end optimizer → executor loop: the planner's chosen strategy
//! is executed for real, its result checked against brute force, and
//! its estimated cost checked against the measured page accesses —
//! dimensionally split into NA (logical node accesses) and DA (buffer
//! misses) per operator.

use sjcm::exec::{ExecError, PlanExecutor};
use sjcm::explain::Explainer;
use sjcm::geom::{density, Rect};
use sjcm::optimizer::{Catalog, DatasetStats, JoinQuery, PhysicalPlan, Planner};
use sjcm::prelude::*;
use std::collections::BTreeSet;

struct World {
    rivers: Vec<Rect<2>>,
    countries: Vec<Rect<2>>,
    t_rivers: RTree<2>,
    t_countries: RTree<2>,
    catalog: Catalog<2>,
}

fn world() -> World {
    let rivers = sjcm::datagen::uniform::generate::<2>(sjcm::datagen::uniform::UniformConfig::new(
        6_000, 0.3, 171,
    ));
    let countries = sjcm::datagen::uniform::generate::<2>(
        sjcm::datagen::uniform::UniformConfig::new(2_000, 0.4, 172).with_aspect_jitter(0.5),
    );
    let build = |rects: &[Rect<2>]| {
        let mut t = RTree::new(RTreeConfig::paper(2));
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, ObjectId(i as u32));
        }
        t
    };
    let mut catalog = Catalog::new();
    catalog.register(
        "rivers",
        DatasetStats::new(rivers.len() as u64, density(rivers.iter())),
    );
    catalog.register(
        "countries",
        DatasetStats::new(countries.len() as u64, density(countries.iter())),
    );
    World {
        t_rivers: build(&rivers),
        t_countries: build(&countries),
        rivers,
        countries,
        catalog,
    }
}

fn executor(w: &World) -> PlanExecutor<'_, 2> {
    PlanExecutor::new()
        .bind("rivers", &w.t_rivers, &w.rivers)
        .bind("countries", &w.t_countries, &w.countries)
}

fn explainer(w: &World) -> Explainer<'_, 2> {
    Explainer::new(&w.catalog)
        .bind("rivers", &w.t_rivers, &w.rivers)
        .bind("countries", &w.t_countries, &w.countries)
}

/// Brute-force join count with optional windows on either side.
fn brute_pairs(w: &World, rivers_win: Option<&Rect<2>>, countries_win: Option<&Rect<2>>) -> usize {
    let mut count = 0;
    for r in &w.rivers {
        if let Some(win) = rivers_win {
            if !r.intersects(win) {
                continue;
            }
        }
        for c in &w.countries {
            if let Some(win) = countries_win {
                if !c.intersects(win) {
                    continue;
                }
            }
            if r.intersects(c) {
                count += 1;
            }
        }
    }
    count
}

#[test]
fn executed_best_plan_matches_brute_force() {
    let w = world();
    let plan = Planner::new(&w.catalog)
        .best_plan(&JoinQuery::new(["rivers", "countries"]))
        .unwrap();
    let out = executor(&w).run(&plan).unwrap();
    assert_eq!(out.rows.len(), brute_pairs(&w, None, None));
    assert_eq!(out.columns.len(), 2);
    assert!(out.columns.contains(&"rivers".to_string()));
    // Dimensionally honest counters: logical accesses bound misses.
    assert!(out.na > 0);
    assert!(out.da > 0);
    assert!(
        out.da <= out.na,
        "DA {} cannot exceed NA {}",
        out.da,
        out.na
    );
    // The SJ operator runs under the path buffer, so the model-
    // comparable I/O is its DA.
    assert_eq!(out.cost_io, out.da);
}

#[test]
fn executed_plan_with_selection_matches_brute_force() {
    let w = world();
    let west = Rect::new([0.0, 0.0], [0.4, 1.0]).unwrap();
    let q = JoinQuery::new(["rivers", "countries"]).with_selection("rivers", west);
    for plan in Planner::new(&w.catalog).enumerate(&q).unwrap() {
        let out = executor(&w).run(&plan).unwrap();
        assert_eq!(
            out.rows.len(),
            brute_pairs(&w, Some(&west), None),
            "plan disagreed with brute force:\n{plan}"
        );
    }
}

#[test]
fn every_enumerated_plan_returns_the_same_result() {
    let w = world();
    let q = JoinQuery::new(["rivers", "countries"]);
    let plans = Planner::new(&w.catalog).enumerate(&q).unwrap();
    assert!(plans.len() >= 2);
    let expected = brute_pairs(&w, None, None);
    for plan in &plans {
        let out = executor(&w).run(plan).unwrap();
        assert_eq!(out.rows.len(), expected, "{plan}");
    }
}

/// Satellite coverage: every plan shape the planner enumerates for one-
/// and two-dataset queries — both SJ role assignments, all three join
/// algorithms, every selection placement (pushed below SJ/INL, filtered
/// above, both sides) — executes, agrees with brute force, and its
/// per-operator measured NA/DA stays within the envelope of the
/// estimate for every operator carrying real I/O mass.
#[test]
fn every_plan_shape_executes_and_stays_in_envelope() {
    let w = world();
    let sel_r = Rect::new([0.0, 0.0], [0.45, 1.0]).unwrap();
    let sel_c = Rect::new([0.1, 0.1], [0.7, 0.8]).unwrap();
    let cases: Vec<(&str, JoinQuery<2>, Option<Rect<2>>, Option<Rect<2>>)> = vec![
        (
            "pure-join",
            JoinQuery::new(["rivers", "countries"]),
            None,
            None,
        ),
        (
            "sel-one-side",
            JoinQuery::new(["rivers", "countries"]).with_selection("countries", sel_c),
            None,
            Some(sel_c),
        ),
        (
            "sel-both-sides",
            JoinQuery::new(["rivers", "countries"])
                .with_selection("rivers", sel_r)
                .with_selection("countries", sel_c),
            Some(sel_r),
            Some(sel_c),
        ),
    ];
    // At this reduced scale (6K/2K vs the paper's 60K) the per-operator
    // envelope is wider than §4.1's ±15% — small trees leave the Eq 2–5
    // parameter derivation a coarser fit (the full-scale envelope is
    // enforced by the CI `experiments explain` run at scale 1.0).
    let envelope = 0.40;
    let mut algorithms = BTreeSet::new();
    let mut role_signatures = BTreeSet::new();
    let mut shapes = 0usize;
    for (tag, q, rw, cw) in &cases {
        let plans = Planner::new(&w.catalog).enumerate(q).unwrap();
        let expected = brute_pairs(&w, rw.as_ref(), cw.as_ref());
        for plan in &plans {
            shapes += 1;
            let text = format!("{plan}");
            for algo in ["SJ", "INL", "NL"] {
                if text.contains(&format!("Join[{algo}]")) {
                    algorithms.insert(algo);
                }
            }
            if let Some(line) = text.lines().find(|l| l.contains("Join[SJ]")) {
                let _ = line;
                // Record which dataset plays R1 for role coverage.
                let after = text.split("data(R1):").nth(1).unwrap_or("");
                let r1 = after
                    .lines()
                    .find(|l| l.contains("rivers") || l.contains("countries"))
                    .unwrap_or("")
                    .trim()
                    .to_string();
                role_signatures.insert(r1);
            }
            let (out, ops) = executor(&w).run_measured(plan).unwrap();
            assert_eq!(out.rows.len(), expected, "[{tag}] {plan}");
            assert!(out.da <= out.na, "[{tag}] DA > NA:\n{plan}");
            // Every operator of the plan tree got its own measurement.
            let op_count = text
                .lines()
                .filter(|l| {
                    let t = l.trim_start();
                    t.starts_with("IndexScan")
                        || t.starts_with("IndexRangeSelect")
                        || t.starts_with("Filter")
                        || t.starts_with("Join[")
                })
                .count();
            assert_eq!(
                ops.len(),
                op_count,
                "[{tag}] measurement per operator:\n{plan}"
            );
            assert!(ops.iter().all(|m| !m.label.is_empty()), "[{tag}]");
            let analysis = explainer(&w).with_envelope(envelope).analyze(plan).unwrap();
            assert!(
                analysis.all_within(),
                "[{tag}] operator outside ±{:.0}% envelope:\n{analysis}",
                envelope * 100.0
            );
        }
    }
    assert!(
        shapes >= 10,
        "expected a rich shape inventory, got {shapes}"
    );
    assert_eq!(
        algorithms.into_iter().collect::<Vec<_>>(),
        vec!["INL", "NL", "SJ"],
        "all three join algorithms must be exercised"
    );
    assert!(
        role_signatures.len() >= 2,
        "both SJ role assignments must be exercised: {role_signatures:?}"
    );
}

/// The SJ-with-pushed-selection shape (satellite bugfix): the planner
/// prices it, the executor runs it (full-tree traversal + residual
/// filter, probe accesses counted), and estimate vs measured stays in
/// the envelope.
#[test]
fn sj_with_pushed_selection_executes_in_envelope() {
    let w = world();
    let sel = Rect::new([0.0, 0.0], [0.6, 0.9]).unwrap();
    let q = JoinQuery::new(["rivers", "countries"]).with_selection("countries", sel);
    let plans = Planner::new(&w.catalog).enumerate(&q).unwrap();
    let pushed_sj: Vec<&PhysicalPlan<2>> = plans
        .iter()
        .filter(|p| {
            let t = format!("{p}");
            t.contains("Join[SJ]") && t.contains("IndexRangeSelect") && !t.contains("Filter")
        })
        .collect();
    assert!(
        !pushed_sj.is_empty(),
        "planner must enumerate SJ with the selection pushed below it"
    );
    let expected = brute_pairs(&w, None, Some(&sel));
    for plan in pushed_sj {
        let (out, ops) = executor(&w).run_measured(plan).unwrap();
        assert_eq!(out.rows.len(), expected, "{plan}");
        // The pushed probe's accesses are counted on the child.
        let probe = ops
            .iter()
            .find(|m| m.label.starts_with("IndexRangeSelect"))
            .expect("pushed selection measurement");
        assert!(probe.na > 0, "probe accesses must be counted:\n{plan}");
        let analysis = explainer(&w).with_envelope(0.40).analyze(plan).unwrap();
        assert!(analysis.all_within(), "{analysis}");
    }
}

#[test]
fn estimated_cost_ranks_strategies_like_measured_cost() {
    // The headline promise of a cost model: its ranking of strategies
    // should agree with reality. Compare the cheapest and the most
    // expensive enumerated plan.
    let w = world();
    let tiny = Rect::new([0.0, 0.0], [0.08, 0.08]).unwrap();
    let q = JoinQuery::new(["rivers", "countries"]).with_selection("countries", tiny);
    let plans = Planner::new(&w.catalog).enumerate(&q).unwrap();
    let best = &plans[0];
    let worst = plans.last().unwrap();
    assert!(best.total_cost < worst.total_cost);
    let exec = executor(&w);
    let best_io = exec.run(best).unwrap().cost_io;
    let worst_io = exec.run(worst).unwrap().cost_io;
    assert!(
        best_io <= worst_io,
        "estimates best {} < worst {} but measured {} > {}\nbest:\n{best}\nworst:\n{worst}",
        best.total_cost,
        worst.total_cost,
        best_io,
        worst_io
    );
}

#[test]
fn estimated_io_within_factor_two_of_measured_for_sj_plan() {
    let w = world();
    let plan = Planner::new(&w.catalog)
        .best_plan(&JoinQuery::new(["rivers", "countries"]))
        .unwrap();
    let out = executor(&w).run(&plan).unwrap();
    let ratio = plan.total_cost / out.cost_io as f64;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "estimated {} vs measured {} (ratio {ratio:.2})",
        plan.total_cost,
        out.cost_io
    );
}

#[test]
fn unbound_dataset_is_reported() {
    let w = world();
    let plan = Planner::new(&w.catalog)
        .best_plan(&JoinQuery::new(["rivers", "countries"]))
        .unwrap();
    let exec = PlanExecutor::new().bind("rivers", &w.t_rivers, &w.rivers);
    assert_eq!(
        exec.run(&plan).unwrap_err(),
        ExecError::UnboundDataset("countries".into())
    );
}

#[test]
fn three_way_plans_are_priced_but_not_executed() {
    let mut catalog = Catalog::<2>::new();
    for name in ["a", "b", "c"] {
        catalog.register(name, DatasetStats::new(5_000, 0.3));
    }
    let plan: PhysicalPlan<2> = Planner::new(&catalog)
        .best_plan(&JoinQuery::new(["a", "b", "c"]))
        .unwrap();
    assert!(plan.total_cost > 0.0);
    // Execution of multi-join chains is an explicit non-goal.
    let dummy_rects: Vec<Rect<2>> = vec![];
    let dummy_tree = RTree::<2>::new(RTreeConfig::paper(2));
    let exec = PlanExecutor::new()
        .bind("a", &dummy_tree, &dummy_rects)
        .bind("b", &dummy_tree, &dummy_rects)
        .bind("c", &dummy_tree, &dummy_rects);
    assert!(matches!(
        exec.run(&plan),
        Err(ExecError::UnsupportedShape(_))
    ));
}

#[test]
fn governed_executor_rejects_and_matches_ungoverned() {
    use sjcm::join::{Governor, GovernorConfig};
    let w = world();
    let plan = Planner::new(&w.catalog)
        .best_plan(&JoinQuery::new(["rivers", "countries"]))
        .unwrap();
    let ungoverned = executor(&w).run(&plan).unwrap();

    // An impossible NA budget rejects the query with a typed error.
    let tight =
        executor(&w).with_governor(Governor::new(GovernorConfig::default().with_na_budget(1.0)));
    match tight.run(&plan).unwrap_err() {
        ExecError::Governed(msg) => assert!(msg.contains("rejected"), "{msg}"),
        other => panic!("expected Governed, got {other:?}"),
    }

    // A generous budget admits and reproduces the ungoverned rows.
    let roomy = executor(&w).with_governor(Governor::new(
        GovernorConfig::default().with_na_budget(1e12),
    ));
    let governed = roomy.run(&plan).unwrap();
    assert_eq!(governed.rows.len(), ungoverned.rows.len());
    assert_eq!(governed.na, ungoverned.na);
    assert_eq!(governed.da, ungoverned.da);
}
