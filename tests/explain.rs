//! EXPLAIN ANALYZE integration tests: error attribution, the
//! stale-catalog calibration flip, and the `plan_analyze` JSONL
//! contract. The workload is the reduced-scale rivers × countries pair
//! shared with `tests/plan_execution.rs` (6K × 2K, fixed seeds).

use sjcm::exec::PlanExecutor;
use sjcm::explain::{Attribution, Explainer};
use sjcm::geom::{density, Rect};
use sjcm::optimizer::{Catalog, DatasetStats, JoinQuery, Planner};
use sjcm::prelude::*;

const RIVERS_N: usize = 6_000;
const COUNTRIES_N: usize = 2_000;

/// The stale-catalog demo's selection window: near the INL/SJ decision
/// boundary, so a 4× cardinality misregistration flips the plan.
const WINDOW: [f64; 2] = [0.2, 0.3];

struct World {
    rivers: Vec<Rect<2>>,
    countries: Vec<Rect<2>>,
    t_rivers: RTree<2>,
    t_countries: RTree<2>,
}

fn build_tree(rects: &[Rect<2>]) -> RTree<2> {
    let mut tree = RTree::new(RTreeConfig::paper(2));
    for (i, r) in rects.iter().enumerate() {
        tree.insert(*r, ObjectId(i as u32));
    }
    tree
}

impl World {
    fn build() -> Self {
        let rivers = sjcm::datagen::uniform::generate::<2>(
            sjcm::datagen::uniform::UniformConfig::new(RIVERS_N, 0.3, 171),
        );
        let countries = sjcm::datagen::uniform::generate::<2>(
            sjcm::datagen::uniform::UniformConfig::new(COUNTRIES_N, 0.4, 172)
                .with_aspect_jitter(0.5),
        );
        let t_rivers = build_tree(&rivers);
        let t_countries = build_tree(&countries);
        Self {
            rivers,
            countries,
            t_rivers,
            t_countries,
        }
    }

    fn true_catalog(&self) -> Catalog<2> {
        let mut cat = Catalog::new();
        cat.register(
            "rivers",
            DatasetStats::new(self.rivers.len() as u64, density(self.rivers.iter())),
        );
        cat.register(
            "countries",
            DatasetStats::new(self.countries.len() as u64, density(self.countries.iter())),
        );
        cat
    }

    /// Countries cardinality overstated 4× — the calibration target.
    fn stale_catalog(&self) -> Catalog<2> {
        let mut cat = self.true_catalog();
        cat.register(
            "countries",
            DatasetStats::new(
                4 * self.countries.len() as u64,
                density(self.countries.iter()),
            ),
        );
        cat
    }

    fn explainer<'a>(&'a self, catalog: &'a Catalog<2>) -> Explainer<'a, 2> {
        Explainer::new(catalog)
            .bind("rivers", &self.t_rivers, &self.rivers)
            .bind("countries", &self.t_countries, &self.countries)
    }

    fn query(&self) -> JoinQuery<2> {
        JoinQuery::new(["rivers", "countries"])
            .with_selection("countries", Rect::new([0.0, 0.0], WINDOW).unwrap())
    }
}

/// With an accurate catalog the chosen plan's gated operators carry no
/// catalog-dominated misattribution: the prior lands near the measured
/// cost and the per-node verdicts pass.
#[test]
fn accurate_catalog_attributes_cleanly() {
    let w = World::build();
    let catalog = w.true_catalog();
    let plan = Planner::new(&catalog).best_plan(&w.query()).unwrap();
    // Reduced scale: the same 0.40 envelope tests/plan_execution.rs
    // documents (the paper's ±15% claim is about full-size trees; CI
    // enforces it at scale 1.0 through `experiments explain`).
    let analysis = w
        .explainer(&catalog)
        .with_envelope(0.40)
        .analyze(&plan)
        .unwrap();
    assert!(analysis.all_within(), "verdicts:\n{analysis}");
    let gated: Vec<_> = analysis.nodes().into_iter().filter(|n| n.gated).collect();
    assert!(!gated.is_empty(), "no gated operators:\n{analysis}");
    for n in gated {
        assert!(
            n.attribution != Attribution::Catalog,
            "accurate catalog blamed for {}: cat {} vs model {}\n{analysis}",
            n.label,
            n.catalog_err,
            n.model_err
        );
        assert!(
            n.err < 0.40,
            "prior error {} out of envelope for {}",
            n.err,
            n.label
        );
    }
}

/// A 4×-overstated cardinality shows up as a *catalog*-attributed miss
/// on the join operator: the prior is far from the measurement, but the
/// post-hoc re-estimate (measured parameters + measured N/D) recovers
/// most of the gap.
#[test]
fn stale_catalog_attributes_to_catalog() {
    let w = World::build();
    let stale = w.stale_catalog();
    let plan = Planner::new(&stale).best_plan(&w.query()).unwrap();
    let analysis = w.explainer(&stale).analyze(&plan).unwrap();
    let join = analysis
        .nodes()
        .into_iter()
        .find(|n| n.label.starts_with("Join"))
        .expect("join operator");
    assert!(join.gated, "join carries the plan's I/O mass");
    assert_eq!(
        join.attribution,
        Attribution::Catalog,
        "expected a catalog-attributed miss:\n{analysis}"
    );
    assert!(
        join.catalog_err > join.model_err,
        "catalog share {} should dominate the residual {}:\n{analysis}",
        join.catalog_err,
        join.model_err
    );
    // The stale prior is way off; the re-estimate is not.
    assert!(join.err > 0.4, "stale prior error {} too small", join.err);
}

/// The acceptance scenario: calibrating a 4×-mis-registered catalog
/// from measured statistics flips re-planning onto the plan that also
/// measures cheapest, and the corrected catalog round-trips through
/// disk persistence.
#[test]
fn calibration_flips_to_measured_cheapest_plan() {
    let w = World::build();
    let stale = w.stale_catalog();
    let query = w.query();
    let stale_plan = Planner::new(&stale).best_plan(&query).unwrap();
    let explainer = w.explainer(&stale);
    let stale_analysis = explainer.analyze(&stale_plan).unwrap();

    // Calibrate: measured (N, D) written back, persisted, reloaded.
    let calibrated = explainer.calibrated();
    let dir = std::env::temp_dir().join(format!("sjcm_explain_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("catalog.json");
    calibrated.save(&path).unwrap();
    let reloaded = Catalog::<2>::load(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    let stats = reloaded.get("countries").unwrap();
    assert_eq!(stats.profile.cardinality, COUNTRIES_N as u64);
    assert!((stats.profile.density - density(w.countries.iter())).abs() < 1e-9);

    let calibrated_plan = Planner::new(&reloaded).best_plan(&query).unwrap();
    assert_ne!(
        format!("{stale_plan}"),
        format!("{calibrated_plan}"),
        "the corrected statistics should change the chosen plan"
    );
    let calibrated_analysis = w.explainer(&reloaded).analyze(&calibrated_plan).unwrap();
    assert!(
        calibrated_analysis.measured_cost_io < stale_analysis.measured_cost_io,
        "calibrated plan measured {} io, stale plan {} io",
        calibrated_analysis.measured_cost_io,
        stale_analysis.measured_cost_io
    );
    // Same answer either way.
    assert_eq!(calibrated_analysis.rows, stale_analysis.rows);
}

/// `plan_analyze` JSONL: every line parses, the schema and key set are
/// stable, sequence numbers are contiguous, and the counters are
/// internally consistent.
#[test]
fn jsonl_artifact_shape() {
    let w = World::build();
    let catalog = w.true_catalog();
    let plan = Planner::new(&catalog).best_plan(&w.query()).unwrap();
    let analysis = w
        .explainer(&catalog)
        .with_envelope(0.40)
        .analyze(&plan)
        .unwrap();
    let jsonl = analysis.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), analysis.nodes().len());
    for (i, line) in lines.iter().enumerate() {
        let v = sjcm::json::parse(line).unwrap_or_else(|e| panic!("line {i}: {e}\n{line}"));
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("sjcm.plan_analyze.v1")
        );
        assert_eq!(v.get("seq").and_then(|s| s.as_f64()), Some(i as f64));
        for key in [
            "op",
            "path",
            "est_cost",
            "reest_cost",
            "est_rows",
            "na",
            "da",
            "cost_io",
            "rows",
            "wall_us",
            "err",
            "catalog_err",
            "model_err",
            "attribution",
            "gated",
            "within",
            "envelope",
        ] {
            assert!(v.get(key).is_some(), "line {i} missing {key}: {line}");
        }
        let na = v.get("na").and_then(|x| x.as_f64()).unwrap();
        let da = v.get("da").and_then(|x| x.as_f64()).unwrap();
        assert!(da <= na, "line {i}: da {da} > na {na}");
    }
}

/// `Explainer::analyze` must not change what the plan computes: the
/// instrumented run returns the same row count and cost as the plain
/// executor.
#[test]
fn analysis_matches_plain_execution() {
    let w = World::build();
    let catalog = w.true_catalog();
    let plan = Planner::new(&catalog).best_plan(&w.query()).unwrap();
    let analysis = w.explainer(&catalog).analyze(&plan).unwrap();
    let out = PlanExecutor::new()
        .bind("rivers", &w.t_rivers, &w.rivers)
        .bind("countries", &w.t_countries, &w.countries)
        .run(&plan)
        .unwrap();
    assert_eq!(analysis.rows, out.rows.len() as u64);
    assert_eq!(analysis.na, out.na);
    assert_eq!(analysis.da, out.da);
    assert_eq!(analysis.measured_cost_io, out.cost_io);
}
