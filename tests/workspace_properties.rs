//! Cross-crate property tests: randomized workloads through the whole
//! stack (generator → trees → join → model), checking the invariants
//! the paper's analysis relies on.

use proptest::prelude::*;
use sjcm::join::baselines::nested_loop_join;
use sjcm::model::join::{join_cost_da, join_cost_na};
use sjcm::prelude::*;

#[derive(Debug, Clone)]
struct Workload {
    n1: usize,
    n2: usize,
    d1: f64,
    d2: f64,
    seed: u64,
}

fn workload() -> impl Strategy<Value = Workload> {
    (
        100usize..600,
        100usize..600,
        0.05f64..0.8,
        0.05f64..0.8,
        0u64..10_000,
    )
        .prop_map(|(n1, n2, d1, d2, seed)| Workload {
            n1,
            n2,
            d1,
            d2,
            seed,
        })
}

fn build(n: usize, d: f64, seed: u64) -> (Vec<(sjcm::geom::Rect<2>, ObjectId)>, RTree<2>) {
    let items: Vec<(sjcm::geom::Rect<2>, ObjectId)> =
        sjcm::datagen::with_ids(sjcm::datagen::uniform::generate::<2>(
            sjcm::datagen::uniform::UniformConfig::new(n, d, seed),
        ))
        .into_iter()
        .map(|(r, id)| (r, ObjectId(id)))
        .collect();
    let mut tree = RTree::new(RTreeConfig::with_capacity(10));
    for &(r, id) in &items {
        tree.insert(r, id);
    }
    (items, tree)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn join_is_exact_and_da_bounded(w in workload()) {
        let (items1, t1) = build(w.n1, w.d1, w.seed);
        let (items2, t2) = build(w.n2, w.d2, w.seed.wrapping_add(1));
        t1.check_invariants().unwrap();
        t2.check_invariants().unwrap();
        let result = JoinSession::new(&t1, &t2)
            .config(JoinConfig {
                buffer: BufferPolicy::Path,
                ..JoinConfig::default()
            })
            .run()
            .expect("ungoverned join cannot fail")
            .result;
        // Exactness against brute force.
        let mut expected = nested_loop_join(&items1, &items2);
        expected.sort();
        let mut got = result.pairs.clone();
        got.sort();
        prop_assert_eq!(got, expected);
        // DA ≤ NA at every level of both trees.
        prop_assert!(result.stats1.da_bounded_by_na());
        prop_assert!(result.stats2.da_bounded_by_na());
        // NA symmetric between the trees when heights are equal.
        if t1.height() == t2.height() {
            prop_assert_eq!(result.stats1.na_total(), result.stats2.na_total());
        }
    }

    #[test]
    fn model_costs_are_finite_positive_and_ordered(
        n1 in 50u64..200_000,
        n2 in 50u64..200_000,
        d1 in 0.0f64..2.0,
        d2 in 0.0f64..2.0,
    ) {
        let cfg = ModelConfig::paper(2);
        let p1 = TreeParams::<2>::from_data(DataProfile::new(n1, d1), &cfg);
        let p2 = TreeParams::<2>::from_data(DataProfile::new(n2, d2), &cfg);
        let na = join_cost_na(&p1, &p2);
        let da = join_cost_da(&p1, &p2);
        prop_assert!(na.is_finite() && na >= 0.0);
        prop_assert!(da.is_finite() && da >= 0.0);
        // DA ≤ NA is an invariant of *executions* (checked above); the
        // analytic Eq 8 counts fetches per intersected parent and can
        // modestly exceed the Eq 6 pair count in degenerate regimes
        // (point data, pinned different-height phases). Bound the excess.
        prop_assert!(da <= na * 1.6 + 1.0,
            "analytic DA {da} wildly exceeds NA {na}");
        // Symmetry of Eq 7/11.
        let na_rev = join_cost_na(&p2, &p1);
        prop_assert!((na - na_rev).abs() <= 1e-6 * na.max(1.0));
    }

    #[test]
    fn model_monotone_in_cardinality(
        n in 1_000u64..50_000,
        extra in 1_000u64..50_000,
        d in 0.05f64..1.0,
    ) {
        let cfg = ModelConfig::paper(2);
        let small = TreeParams::<2>::from_data(DataProfile::new(n, d), &cfg);
        let large = TreeParams::<2>::from_data(DataProfile::new(n + extra, d), &cfg);
        let probe = TreeParams::<2>::from_data(DataProfile::new(10_000, 0.5), &cfg);
        prop_assert!(
            join_cost_na(&large, &probe) >= join_cost_na(&small, &probe) * 0.999,
            "NA must grow with N"
        );
    }

    #[test]
    fn persistence_roundtrip_preserves_queries(w in workload()) {
        let (_, tree) = build(w.n1, w.d1, w.seed);
        let mut store = InMemoryPageStore::with_default_page_size();
        let handle = tree.save(&mut store).unwrap();
        let loaded = RTree::<2>::load(&store, handle, *tree.config()).unwrap();
        loaded.check_invariants_with_tolerance(1e-5).unwrap();
        let window = sjcm::geom::Rect::new([0.2, 0.2], [0.7, 0.6]).unwrap();
        let mut orig = tree.query_window(&window);
        let got = loaded.query_window(&window);
        orig.sort();
        for id in &orig {
            prop_assert!(got.contains(id), "lost {id:?} across persistence");
        }
    }

    #[test]
    fn pbsm_agrees_with_sj_on_random_workloads(w in workload()) {
        let (items1, t1) = build(w.n1, w.d1, w.seed);
        let (items2, t2) = build(w.n2, w.d2, w.seed.wrapping_add(1));
        let mut sj = JoinSession::new(&t1, &t2)
            .run()
            .expect("ungoverned join cannot fail")
            .result
            .pairs;
        sj.sort();
        let grid = 1 + (w.seed % 7) as usize;
        let mut pbsm = PbsmSession::new(&items1, &items2, grid, 50)
            .run()
            .expect("ungoverned PBSM cannot fail")
            .result
            .pairs;
        pbsm.sort();
        prop_assert_eq!(sj, pbsm, "grid = {}", grid);
    }

    #[test]
    fn parallel_join_agrees_with_sequential(w in workload()) {
        let (_, t1) = build(w.n1, w.d1, w.seed);
        let (_, t2) = build(w.n2, w.d2, w.seed.wrapping_add(1));
        // Path buffers: the per-unit cold starts of the parallel
        // executor guarantee DA ≥ sequential there (see the parallel
        // module docs); LRU interleaves levels and voids that argument.
        let config = JoinConfig {
            buffer: BufferPolicy::Path,
            ..JoinConfig::default()
        };
        let seq = JoinSession::new(&t1, &t2)
            .config(config)
            .run()
            .expect("ungoverned join cannot fail")
            .result;
        let mut seq_pairs = seq.pairs.clone();
        seq_pairs.sort();
        for threads in [1usize, 2, 3, 8] {
            for mode in [
                Scheduler::RoundRobin { threads },
                Scheduler::CostGuided { threads },
            ] {
                let par = JoinSession::new(&t1, &t2)
                    .config(config)
                    .scheduler(mode)
                    .run()
                    .expect("ungoverned join cannot fail")
                    .result;
                // Same pair multiset (parallel output is pre-sorted).
                prop_assert_eq!(&par.pairs, &seq_pairs, "{:?}/{}", mode, threads);
                prop_assert_eq!(par.pair_count, seq.pair_count, "{:?}/{}", mode, threads);
                // Same node accesses.
                prop_assert_eq!(par.na_total(), seq.na_total(), "{:?}/{}", mode, threads);
                // Never fewer disk accesses — guaranteed by the
                // cost-guided scheduler's per-unit buffer resets. The
                // legacy round-robin scheduler carries buffers across a
                // shard's units, which can accidentally *recreate*
                // locality the sequential order lacked, so it carries
                // no such bound.
                if matches!(mode, Scheduler::CostGuided { .. }) {
                    prop_assert!(
                        par.da_total() >= seq.da_total(),
                        "{:?}/{} threads: parallel DA {} < sequential {}",
                        mode, threads, par.da_total(), seq.da_total()
                    );
                }
            }
        }
    }

    #[test]
    fn deletion_shrinks_to_consistent_state(w in workload()) {
        let (items, mut tree) = build(w.n1.min(300), w.d1, w.seed);
        // Delete a deterministic half.
        for (i, &(r, id)) in items.iter().enumerate() {
            if i % 2 == 0 {
                prop_assert!(tree.remove(&r, id));
            }
        }
        tree.check_invariants().unwrap();
        let all = tree.query_window(&sjcm::geom::Rect::unit());
        prop_assert_eq!(all.len(), items.len() / 2);
    }
}
