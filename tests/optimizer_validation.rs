//! The optimizer's decisions, validated by execution: when the planner
//! prefers strategy A over B, actually running A and B must agree.

use sjcm::geom::{density, Rect};
use sjcm::join::baselines::index_nested_loop_join;
use sjcm::optimizer::{Catalog, DatasetStats, JoinQuery, PlanNode, Planner};
use sjcm::prelude::*;

struct World {
    big_rects: Vec<Rect<2>>,
    small_rects: Vec<Rect<2>>,
    big: RTree<2>,
    small: RTree<2>,
    catalog: Catalog<2>,
}

fn build_world() -> World {
    let big_rects = sjcm::datagen::uniform::generate::<2>(
        sjcm::datagen::uniform::UniformConfig::new(9_000, 0.4, 71),
    );
    let small_rects = sjcm::datagen::uniform::generate::<2>(
        sjcm::datagen::uniform::UniformConfig::new(3_000, 0.4, 72),
    );
    let build = |rects: &[Rect<2>]| {
        let mut t = RTree::new(RTreeConfig::paper(2));
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, ObjectId(i as u32));
        }
        t
    };
    let mut catalog = Catalog::new();
    catalog.register(
        "big",
        DatasetStats::new(big_rects.len() as u64, density(big_rects.iter())),
    );
    catalog.register(
        "small",
        DatasetStats::new(small_rects.len() as u64, density(small_rects.iter())),
    );
    World {
        big: build(&big_rects),
        small: build(&small_rects),
        big_rects,
        small_rects,
        catalog,
    }
}

fn measured_da(data: &RTree<2>, query: &RTree<2>) -> u64 {
    JoinSession::new(data, query)
        .config(JoinConfig {
            buffer: BufferPolicy::Path,
            collect_pairs: false,
            ..JoinConfig::default()
        })
        .run()
        .expect("ungoverned join cannot fail")
        .result
        .da_total()
}

#[test]
fn planner_role_choice_is_confirmed_by_execution() {
    let w = build_world();
    let plan = Planner::new(&w.catalog)
        .best_plan(&JoinQuery::new(["big", "small"]))
        .unwrap();
    let (data_name, query_name) = match &plan.root {
        PlanNode::Join { data, query, .. } => {
            let name = |n: &PlanNode<2>| match n {
                PlanNode::IndexScan { dataset } => dataset.clone(),
                other => panic!("expected scan, got {other:?}"),
            };
            (name(data), name(query))
        }
        other => panic!("expected join, got {other:?}"),
    };
    let chosen = if data_name == "big" {
        measured_da(&w.big, &w.small)
    } else {
        measured_da(&w.small, &w.big)
    };
    let alternative = if data_name == "big" {
        measured_da(&w.small, &w.big)
    } else {
        measured_da(&w.big, &w.small)
    };
    assert!(
        chosen <= alternative,
        "planner picked data={data_name}/query={query_name} but execution \
         says {chosen} vs {alternative}"
    );
}

#[test]
fn pushdown_decision_matches_measured_costs() {
    let w = build_world();
    let planner = Planner::new(&w.catalog);
    for (window, label) in [
        (Rect::new([0.0, 0.0], [0.06, 0.06]).unwrap(), "tiny"),
        (Rect::new([0.0, 0.0], [0.97, 0.97]).unwrap(), "huge"),
    ] {
        let q = JoinQuery::new(["big", "small"]).with_selection("small", window);
        let best = planner.best_plan(&q).unwrap();
        let text = format!("{best}");
        let planner_pushdown = text.contains("Join[INL]");

        // Measure both strategies for real.
        let selected: Vec<(Rect<2>, ObjectId)> = w
            .small_rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&window))
            .map(|(i, r)| (*r, ObjectId(i as u32)))
            .collect();
        // Strategy INL: probe `big` once per selected object, plus the
        // index cost of the selection itself.
        let (_, select_visit_counts) = w.small.query_window_counting(&window);
        let select_visits: u64 = select_visit_counts.iter().sum();
        let inl_cost = select_visits + index_nested_loop_join(&w.big, &selected).node_accesses;
        // Strategy SJ + filter.
        let sj_cost = measured_da(&w.big, &w.small);
        let measured_pushdown_wins = inl_cost < sj_cost;
        assert_eq!(
            planner_pushdown, measured_pushdown_wins,
            "{label} window: planner said pushdown={planner_pushdown}, \
             measured INL={inl_cost} vs SJ={sj_cost}\n{text}"
        );
    }
}

#[test]
fn plan_cardinality_estimate_is_in_the_ballpark() {
    let w = build_world();
    let plan = Planner::new(&w.catalog)
        .best_plan(&JoinQuery::new(["big", "small"]))
        .unwrap();
    let actual = JoinSession::new(&w.big, &w.small)
        .run()
        .expect("ungoverned join cannot fail")
        .result
        .pair_count;
    let ratio = plan.cardinality / actual as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "estimated {} vs actual {actual} pairs",
        plan.cardinality
    );
    let _ = (w.big_rects.len(), w.small_rects.len());
}
