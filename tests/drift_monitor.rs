//! Integration tests for the live model-vs-actual drift monitor: the
//! Eq 6/8–12 predictions registered before an observed join run, the
//! in-flight overrun check inside the parallel executor, and the
//! published `drift.*` gauges. A known-good fixed-seed workload must
//! come out inside the paper's ~15% envelope; a deliberately wrong
//! parameterization must be flagged — in flight, not just post hoc.

use sjcm::join::JoinObs;
use sjcm::model::{join, LevelParams, TreeParams};
use sjcm::obs::{
    DriftMonitor, MetricsRegistry, ProgressTracker, Tracer, DA_TOTAL, NA_TOTAL, PAPER_ENVELOPE,
};
use sjcm::prelude::*;
use sjcm::storage::FlightRecorder;

fn uniform_tree(n: usize, d: f64, seed: u64) -> RTree<2> {
    let rects = sjcm::datagen::uniform::generate::<2>(sjcm::datagen::uniform::UniformConfig::new(
        n, d, seed,
    ));
    let mut tree = RTree::new(RTreeConfig::paper(2));
    for (r, id) in sjcm::datagen::with_ids(rects) {
        tree.insert(r, ObjectId(id));
    }
    tree
}

fn measured_params(tree: &RTree<2>) -> TreeParams<2> {
    let stats = tree.stats();
    TreeParams::from_levels(
        stats
            .levels
            .iter()
            .map(|l| LevelParams {
                nodes: l.node_count as f64,
                extents: [l.avg_extents[0], l.avg_extents[1]],
                density: l.density,
            })
            .collect(),
    )
}

fn config() -> JoinConfig {
    JoinConfig {
        buffer: BufferPolicy::Path,
        collect_pairs: false,
        ..JoinConfig::default()
    }
}

/// Registers the high-mass targets the way the `experiments join`
/// command does: the totals always, per-level entries only where the
/// prediction carries real mass (near-root levels hold a handful of
/// nodes — no meaningful relative accuracy there).
fn register(drift: &DriftMonitor, p1: &TreeParams<2>, p2: &TreeParams<2>) {
    let targets = join::join_prediction_targets(p1, p2);
    let total = |prefix: &str| {
        targets
            .iter()
            .find(|(n, _)| n == &format!("{prefix}.total"))
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    let (na, da) = (total("na"), total("da"));
    for (name, predicted) in &targets {
        let floor = 0.03 * if name.starts_with("na.") { na } else { da };
        if name.ends_with(".total") || *predicted >= floor {
            drift.predict(name, *predicted);
        }
    }
}

#[test]
fn known_good_workload_stays_inside_the_envelope() {
    // 12K is the smallest scale where the formulas' uniform-placement
    // assumption holds (see model_vs_executor.rs); seeds are fixed, so
    // this is a deterministic known-good workload.
    let t1 = uniform_tree(12_000, 0.5, 11);
    let t2 = uniform_tree(12_000, 0.5, 12);
    let drift = DriftMonitor::new(PAPER_ENVELOPE);
    register(&drift, &measured_params(&t1), &measured_params(&t2));
    assert!(drift.target_count() >= 4, "totals + leaf levels at least");

    let result = JoinSession::new(&t1, &t2)
        .config(config())
        .scheduler(Scheduler::CostGuided { threads: 2 })
        .observe(&JoinObs {
            tracer: Tracer::disabled(),
            drift: Some(&drift),
            recorder: FlightRecorder::disabled(),
            progress: ProgressTracker::disabled(),
        })
        .run()
        .expect("ungoverned join cannot fail")
        .result;
    for (name, actual) in result.drift_observations() {
        drift.observe(&name, actual);
    }

    assert!(
        drift.all_within(),
        "known-good workload breached the envelope: {:?}",
        drift.breaches()
    );
    for s in drift.samples() {
        assert!(
            s.rel_err <= PAPER_ENVELOPE,
            "{}: {:.1}% off",
            s.name,
            s.rel_err * 100.0
        );
        assert!(!s.overrun, "{} flagged in flight", s.name);
    }

    // The published gauges mirror the samples.
    let metrics = MetricsRegistry::new();
    drift.publish(&metrics);
    assert_eq!(metrics.counter("drift.breaches"), 0);
    assert_eq!(metrics.gauge("drift.envelope"), Some(PAPER_ENVELOPE));
    let gauges = metrics.gauges_with_prefix("drift.");
    assert!(gauges.iter().any(|(n, _)| n == "drift.na.total"));
    assert!(gauges.iter().any(|(n, _)| n == "drift.da.total"));
}

#[test]
fn wrong_parameterization_is_flagged_in_flight() {
    let t1 = uniform_tree(4_000, 0.5, 13);
    let t2 = uniform_tree(4_000, 0.5, 14);
    // A catalog that understates both cardinality and density (stale
    // statistics after a 4x data load, say) predicts a far smaller
    // join: fewer nodes means a fraction of the disk accesses, lower
    // density a fraction of the overlaps. The real workload blows
    // through the predicted totals long before it finishes.
    let cfg = ModelConfig::paper(2);
    let p1 = TreeParams::<2>::from_data(DataProfile::new(1_000, 0.05), &cfg);
    let p2 = TreeParams::<2>::from_data(DataProfile::new(1_000, 0.05), &cfg);
    let drift = DriftMonitor::new(PAPER_ENVELOPE);
    register(&drift, &p1, &p2);

    let result = JoinSession::new(&t1, &t2)
        .config(config())
        .scheduler(Scheduler::CostGuided { threads: 2 })
        .observe(&JoinObs {
            tracer: Tracer::disabled(),
            drift: Some(&drift),
            recorder: FlightRecorder::disabled(),
            progress: ProgressTracker::disabled(),
        })
        .run()
        .expect("ungoverned join cannot fail")
        .result;
    for (name, actual) in result.drift_observations() {
        drift.observe(&name, actual);
    }

    assert!(!drift.all_within(), "bogus predictions must be flagged");
    let breaches = drift.breaches();
    assert!(
        breaches.iter().any(|b| b.overrun),
        "the overrun must be caught while the join is in flight, \
         not just post hoc: {breaches:?}"
    );
    assert!(
        breaches
            .iter()
            .any(|b| b.name == NA_TOTAL && b.overrun && !b.within),
        "{NA_TOTAL} must be among the in-flight breaches: {breaches:?}"
    );
    assert!(breaches.iter().any(|b| b.name == DA_TOTAL));

    let metrics = MetricsRegistry::new();
    drift.publish(&metrics);
    assert!(metrics.counter("drift.breaches") >= 2);
}
