//! Cross-crate correctness: every join algorithm returns exactly the
//! brute-force pair set on every data generator, including after a
//! persistence round-trip.

use sjcm::join::baselines::{index_nested_loop_join, nested_loop_join};
use sjcm::join::{JoinPredicate, MatchOrder};
use sjcm::prelude::*;

fn build(items: &[(sjcm::geom::Rect<2>, ObjectId)]) -> RTree<2> {
    let mut tree = RTree::new(RTreeConfig::with_capacity(12));
    for &(r, id) in items {
        tree.insert(r, id);
    }
    tree
}

fn ided(rects: Vec<sjcm::geom::Rect<2>>) -> Vec<(sjcm::geom::Rect<2>, ObjectId)> {
    sjcm::datagen::with_ids(rects)
        .into_iter()
        .map(|(r, id)| (r, ObjectId(id)))
        .collect()
}

fn sorted(mut pairs: Vec<(ObjectId, ObjectId)>) -> Vec<(ObjectId, ObjectId)> {
    pairs.sort();
    pairs
}

fn datasets() -> Vec<(&'static str, Vec<(sjcm::geom::Rect<2>, ObjectId)>)> {
    vec![
        (
            "uniform",
            ided(sjcm::datagen::uniform::generate::<2>(
                sjcm::datagen::uniform::UniformConfig::new(800, 0.4, 1),
            )),
        ),
        (
            "clusters",
            ided(sjcm::datagen::skewed::gaussian_clusters::<2>(
                sjcm::datagen::skewed::ClusterConfig::new(800, 0.3, 2),
            )),
        ),
        (
            "powerlaw",
            ided(sjcm::datagen::skewed::power_law::<2>(800, 0.3, 2.5, 3)),
        ),
        (
            "tiger",
            ided(sjcm::datagen::tiger::generate(
                sjcm::datagen::tiger::TigerConfig::roads(800, 4),
            )),
        ),
    ]
}

#[test]
fn sj_matches_brute_force_on_every_generator() {
    let sets = datasets();
    for (name1, a) in &sets {
        for (name2, b) in &sets {
            let ta = build(a);
            let tb = build(b);
            let expected = sorted(nested_loop_join(a, b));
            let got = sorted(
                JoinSession::new(&ta, &tb)
                    .run()
                    .expect("ungoverned join cannot fail")
                    .result
                    .pairs,
            );
            assert_eq!(got, expected, "{name1} × {name2}");
        }
    }
}

#[test]
fn all_match_orders_and_buffers_agree() {
    let sets = datasets();
    let (_, a) = &sets[0];
    let (_, b) = &sets[3];
    let ta = build(a);
    let tb = build(b);
    let expected = sorted(nested_loop_join(a, b));
    for order in [MatchOrder::NestedLoop, MatchOrder::PlaneSweep] {
        for buffer in [
            BufferPolicy::None,
            BufferPolicy::Path,
            BufferPolicy::Lru(32),
        ] {
            let got = sorted(
                JoinSession::new(&ta, &tb)
                    .config(JoinConfig {
                        order,
                        buffer,
                        ..JoinConfig::default()
                    })
                    .run()
                    .expect("ungoverned join cannot fail")
                    .result
                    .pairs,
            );
            assert_eq!(got, expected, "{order:?}/{buffer:?}");
        }
    }
}

#[test]
fn index_nested_loop_and_parallel_agree() {
    let sets = datasets();
    let (_, a) = &sets[1];
    let (_, b) = &sets[2];
    let ta = build(a);
    let tb = build(b);
    let expected = sorted(nested_loop_join(a, b));
    assert_eq!(sorted(index_nested_loop_join(&ta, b).pairs), expected);
    for threads in [2, 3, 8] {
        let got = sorted(
            JoinSession::new(&ta, &tb)
                .config(JoinConfig::default())
                .scheduler(Scheduler::CostGuided { threads })
                .run()
                .expect("ungoverned join cannot fail")
                .result
                .pairs,
        );
        assert_eq!(got, expected, "{threads} threads");
    }
}

#[test]
fn distance_join_matches_brute_force_on_skewed_data() {
    let sets = datasets();
    let (_, a) = &sets[1];
    let (_, b) = &sets[3];
    let ta = build(a);
    let tb = build(b);
    for eps in [0.0, 0.01, 0.05] {
        let mut expected: Vec<(ObjectId, ObjectId)> = Vec::new();
        for &(r1, id1) in a {
            for &(r2, id2) in b {
                if r1.within_distance(&r2, eps) {
                    expected.push((id1, id2));
                }
            }
        }
        expected.sort();
        let got = sorted(
            JoinSession::new(&ta, &tb)
                .config(JoinConfig {
                    predicate: JoinPredicate::WithinDistance(eps),
                    ..JoinConfig::default()
                })
                .run()
                .expect("ungoverned join cannot fail")
                .result
                .pairs,
        );
        assert_eq!(got, expected, "eps = {eps}");
    }
}

#[test]
fn join_over_persisted_trees_is_identical() {
    let sets = datasets();
    let (_, a) = &sets[0];
    let (_, b) = &sets[1];
    let ta = build(a);
    let tb = build(b);
    let expected = sorted(
        JoinSession::new(&ta, &tb)
            .run()
            .expect("ungoverned join cannot fail")
            .result
            .pairs,
    );

    let mut store = InMemoryPageStore::with_default_page_size();
    let ha = ta.save(&mut store).unwrap();
    let hb = tb.save(&mut store).unwrap();
    let la = RTree::<2>::load(&store, ha, *ta.config()).unwrap();
    let lb = RTree::<2>::load(&store, hb, *tb.config()).unwrap();
    la.check_invariants_with_tolerance(1e-5).unwrap();
    lb.check_invariants_with_tolerance(1e-5).unwrap();

    // f32 widening can only create node-level false positives, never
    // lose object pairs; object rects themselves round outward too, so
    // the pair set may only grow by boundary-touching pairs. For these
    // seeds it is exactly equal.
    let got = sorted(
        JoinSession::new(&la, &lb)
            .run()
            .expect("ungoverned join cannot fail")
            .result
            .pairs,
    );
    assert_eq!(got, expected);
}

#[test]
fn bulk_loaded_trees_join_identically_to_inserted_ones() {
    let sets = datasets();
    let (_, a) = &sets[0];
    let (_, b) = &sets[2];
    let inserted_a = build(a);
    let packed_a = RTree::bulk_load(
        RTreeConfig::with_capacity(12),
        a.clone(),
        BulkLoad::Hilbert,
        1.0,
    );
    let tb = build(b);
    let from_inserted = sorted(
        JoinSession::new(&inserted_a, &tb)
            .run()
            .expect("ungoverned join cannot fail")
            .result
            .pairs,
    );
    let from_packed = sorted(
        JoinSession::new(&packed_a, &tb)
            .run()
            .expect("ungoverned join cannot fail")
            .result
            .pairs,
    );
    assert_eq!(from_inserted, from_packed);
}
