//! The headline integration test: the analytical model (crate
//! `sjcm-core`) against the instrumented executor (crate `sjcm-join`)
//! on freshly built R\*-trees — the repository-sized version of the
//! paper's §4 evaluation. Full-scale numbers live in EXPERIMENTS.md;
//! these assertions run at reduced cardinality with correspondingly
//! relaxed bands so `cargo test` stays fast in debug builds.

use sjcm::model::join::{join_cost_da, join_cost_na, join_cost_na_by_level};
use sjcm::model::{params::predict_height, LevelParams};
use sjcm::prelude::*;

fn uniform_tree(n: usize, d: f64, seed: u64) -> RTree<2> {
    let rects = sjcm::datagen::uniform::generate::<2>(sjcm::datagen::uniform::UniformConfig::new(
        n, d, seed,
    ));
    let mut tree = RTree::new(RTreeConfig::paper(2));
    for (r, id) in sjcm::datagen::with_ids(rects) {
        tree.insert(r, ObjectId(id));
    }
    tree
}

fn run_join(t1: &RTree<2>, t2: &RTree<2>) -> sjcm::join::JoinResultSet {
    JoinSession::new(t1, t2)
        .config(JoinConfig {
            buffer: BufferPolicy::Path,
            collect_pairs: false,
            ..JoinConfig::default()
        })
        .run()
        .expect("ungoverned join cannot fail")
        .result
}

fn rel_err(est: f64, got: u64) -> f64 {
    (est - got as f64).abs() / got as f64
}

#[test]
fn na_model_tracks_executor_on_uniform_data() {
    for (n1, n2, seed) in [(4_000, 4_000, 1), (8_000, 2_000, 2), (2_000, 8_000, 3)] {
        let t1 = uniform_tree(n1, 0.5, seed);
        let t2 = uniform_tree(n2, 0.5, seed + 100);
        let result = run_join(&t1, &t2);
        let cfg = ModelConfig::paper(2);
        let p1 = TreeParams::<2>::from_data(DataProfile::new(n1 as u64, 0.5), &cfg);
        let p2 = TreeParams::<2>::from_data(DataProfile::new(n2 as u64, 0.5), &cfg);
        let na = join_cost_na(&p1, &p2);
        let da = join_cost_da(&p1, &p2);
        assert!(
            rel_err(na, result.na_total()) < 0.20,
            "{n1}/{n2}: NA model {na:.0} vs measured {} ({:.1}%)",
            result.na_total(),
            100.0 * rel_err(na, result.na_total())
        );
        assert!(
            rel_err(da, result.da_total()) < 0.25,
            "{n1}/{n2}: DA model {da:.0} vs measured {}",
            result.da_total()
        );
        assert!(da <= na * 1.0001, "model must keep DA ≤ NA");
        assert!(result.da_total() <= result.na_total(), "executor invariant");
    }
}

#[test]
fn measured_params_make_the_traversal_model_tight() {
    // The parameter-source ablation: with parameters read from the built
    // trees, the traversal model (Eqs 6-12) should be within a few
    // percent. This needs a scale where the formulas' uniform-placement
    // assumption holds: below ~10K objects the leaf extents are so large
    // relative to the workspace that Eq 6's Minkowski term carries an
    // ~8-11% systematic overestimate, so 12K is the smallest cardinality
    // that exercises the paper's intended regime.
    let t1 = uniform_tree(12_000, 0.5, 11);
    let t2 = uniform_tree(12_000, 0.5, 12);
    let result = run_join(&t1, &t2);
    let params = |t: &RTree<2>| {
        let stats = t.stats();
        TreeParams::<2>::from_levels(
            stats
                .levels
                .iter()
                .map(|l| LevelParams {
                    nodes: l.node_count as f64,
                    extents: [l.avg_extents[0], l.avg_extents[1]],
                    density: l.density,
                })
                .collect(),
        )
    };
    let p1 = params(&t1);
    let p2 = params(&t2);
    let na = join_cost_na(&p1, &p2);
    assert!(
        rel_err(na, result.na_total()) < 0.10,
        "measured-params NA {na:.0} vs {} should be tight",
        result.na_total()
    );
    let da = join_cost_da(&p1, &p2);
    assert!(
        rel_err(da, result.da_total()) < 0.15,
        "measured-params DA {da:.0} vs {}",
        result.da_total()
    );
}

#[test]
fn per_level_na_breakdown_matches_executor_shape() {
    let t1 = uniform_tree(6_000, 0.5, 21);
    let t2 = uniform_tree(6_000, 0.5, 22);
    assert_eq!(t1.height(), t2.height());
    let result = run_join(&t1, &t2);
    let cfg = ModelConfig::paper(2);
    let p1 = TreeParams::<2>::from_data(DataProfile::new(6_000, 0.5), &cfg);
    let p2 = TreeParams::<2>::from_data(DataProfile::new(6_000, 0.5), &cfg);
    for (pair, est) in join_cost_na_by_level(&p1, &p2) {
        let got = result.na_at_paper_level(1, pair.j1);
        if got < 50 {
            // Upper levels hold a handful of nodes at this scale; the
            // expectation-based model has no meaningful relative
            // accuracy over counts this small.
            continue;
        }
        assert!(
            rel_err(est, got) < 0.35,
            "level {:?}: est {est:.0} vs measured {got}",
            pair
        );
    }
}

#[test]
fn predicted_heights_match_built_trees_at_test_scale() {
    let cfg = ModelConfig::paper(2);
    for (n, seed) in [(1_000usize, 31u64), (5_000, 32), (20_000, 33)] {
        let tree = uniform_tree(n, 0.5, seed);
        let h = predict_height(n as u64, &cfg);
        // Eq 2 may overshoot by one near fanout powers (see
        // EXPERIMENTS.md); never more, never under by more than 0.
        assert!(
            h >= tree.height() && h <= tree.height() + 1,
            "N = {n}: predicted {h}, built {}",
            tree.height()
        );
    }
}

#[test]
fn different_height_joins_are_modeled_sanely() {
    // Force a genuine height difference with paper config: 800 vs 20K.
    let t1 = uniform_tree(20_000, 0.5, 41);
    let t2 = uniform_tree(800, 0.5, 42);
    assert!(t1.height() > t2.height());
    let result = run_join(&t1, &t2);
    let cfg = ModelConfig::paper(2);
    let p1 = TreeParams::<2>::from_data(DataProfile::new(20_000, 0.5), &cfg);
    let p2 = TreeParams::<2>::from_data(DataProfile::new(800, 0.5), &cfg);
    let na = join_cost_na(&p1, &p2);
    let da = join_cost_da(&p1, &p2);
    assert!(na > 0.0 && da > 0.0);
    // Within a loose band (Eq 11/12 at small scale).
    assert!(
        rel_err(na, result.na_total()) < 0.45,
        "NA {na:.0} vs {}",
        result.na_total()
    );
    assert!(result.da_total() <= result.na_total());
}

#[test]
fn role_asymmetry_agrees_between_model_and_executor() {
    // Equal heights, different cardinalities: both the model and the
    // measurement must prefer the smaller index in the query role.
    let big = uniform_tree(8_000, 0.5, 51);
    let small = uniform_tree(2_000, 0.5, 52);
    assert_eq!(big.height(), small.height());
    let rule = run_join(&big, &small).da_total();
    let anti = run_join(&small, &big).da_total();
    assert!(rule < anti, "measured: {rule} vs {anti}");
    let cfg = ModelConfig::paper(2);
    let pb = TreeParams::<2>::from_data(DataProfile::new(8_000, 0.5), &cfg);
    let ps = TreeParams::<2>::from_data(DataProfile::new(2_000, 0.5), &cfg);
    assert!(join_cost_da(&pb, &ps) < join_cost_da(&ps, &pb));
}
