//! The range-query model (Eq 1 of the paper, from [TS96]) against
//! measured window queries — the base the join model stands on — plus
//! the range selectivity estimate.

use sjcm::model::range::{range_query_cost, range_selectivity};
use sjcm::prelude::*;

fn setup(n: usize, d: f64, seed: u64) -> (RTree<2>, DataProfile) {
    let rects = sjcm::datagen::uniform::generate::<2>(sjcm::datagen::uniform::UniformConfig::new(
        n, d, seed,
    ));
    let prof = DataProfile::new(n as u64, d);
    let mut tree = RTree::new(RTreeConfig::paper(2));
    for (r, id) in sjcm::datagen::with_ids(rects) {
        tree.insert(r, ObjectId(id));
    }
    (tree, prof)
}

#[test]
fn eq1_matches_average_measured_node_accesses() {
    let (tree, prof) = setup(8_000, 0.5, 81);
    let cfg = ModelConfig::paper(2);
    let params = TreeParams::<2>::from_data(prof, &cfg);
    for extent in [0.02, 0.1, 0.3] {
        let windows = sjcm::datagen::query_windows::<2>(300, [extent, extent], 82);
        let mut total_visits = 0u64;
        for w in &windows {
            let (_, visits) = tree.query_window_counting(w);
            // Exclude the memory-resident root, as Eq 1 does.
            total_visits += visits[..tree.height() - 1].iter().sum::<u64>();
        }
        let measured = total_visits as f64 / windows.len() as f64;
        let predicted = range_query_cost(&params, &[extent, extent]);
        let err = (predicted - measured).abs() / measured;
        assert!(
            err < 0.30,
            "extent {extent}: predicted {predicted:.1} vs measured {measured:.1} \
             ({:.0}%)",
            err * 100.0
        );
    }
}

#[test]
fn range_selectivity_matches_average_result_size() {
    let (tree, prof) = setup(8_000, 0.5, 83);
    for extent in [0.05, 0.2] {
        let windows = sjcm::datagen::query_windows::<2>(200, [extent, extent], 84);
        let total: usize = windows.iter().map(|w| tree.query_window(w).len()).sum();
        let measured = total as f64 / windows.len() as f64;
        let predicted = range_selectivity::<2>(prof.cardinality, prof.density, &[extent, extent]);
        let err = (predicted - measured).abs() / measured;
        assert!(
            err < 0.15,
            "extent {extent}: predicted {predicted:.1} vs measured {measured:.1}"
        );
    }
}

#[test]
fn eq1_cost_ordering_matches_reality_across_densities() {
    // Higher density ⇒ more node accesses for the same window, in both
    // the model and the measurement.
    let cfg = ModelConfig::paper(2);
    let window = [0.1, 0.1];
    let mut last_measured = 0.0;
    let mut last_predicted = 0.0;
    for (i, d) in [0.2, 0.5, 0.8].into_iter().enumerate() {
        let (tree, prof) = setup(6_000, d, 85 + i as u64);
        let params = TreeParams::<2>::from_data(prof, &cfg);
        let windows = sjcm::datagen::query_windows::<2>(150, window, 90);
        let total: u64 = windows
            .iter()
            .map(|w| {
                let (_, v) = tree.query_window_counting(w);
                v[..tree.height() - 1].iter().sum::<u64>()
            })
            .sum();
        let measured = total as f64 / windows.len() as f64;
        let predicted = range_query_cost(&params, &window);
        assert!(measured > last_measured, "measured ordering at D = {d}");
        assert!(predicted > last_predicted, "predicted ordering at D = {d}");
        last_measured = measured;
        last_predicted = predicted;
    }
}

#[test]
fn join_as_range_queries_view_is_consistent() {
    // [AS94]'s view: a join is a set of range queries with the other
    // set's objects as windows. The INL baseline implements exactly
    // that; Eq 1 summed over probe objects should track its cost.
    let (tree, prof) = setup(6_000, 0.4, 91);
    let probes = sjcm::datagen::uniform::generate::<2>(sjcm::datagen::uniform::UniformConfig::new(
        1_500, 0.4, 92,
    ));
    let probe_items: Vec<(sjcm::geom::Rect<2>, ObjectId)> = sjcm::datagen::with_ids(probes)
        .into_iter()
        .map(|(r, id)| (r, ObjectId(id)))
        .collect();
    let inl = sjcm::join::baselines::index_nested_loop_join(&tree, &probe_items);
    let cfg = ModelConfig::paper(2);
    let params = TreeParams::<2>::from_data(prof, &cfg);
    let probe_extent = DataProfile::new(1_500, 0.4).avg_extent(2);
    // Eq 1 excludes the root; the INL counter includes it (one root
    // visit per probe).
    let predicted = 1_500.0 * (range_query_cost(&params, &[probe_extent, probe_extent]) + 1.0);
    let err = (predicted - inl.node_accesses as f64).abs() / inl.node_accesses as f64;
    assert!(
        err < 0.25,
        "predicted {predicted:.0} vs measured {} ({:.0}%)",
        inl.node_accesses,
        err * 100.0
    );
}
