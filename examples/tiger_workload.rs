//! Non-uniform (TIGER-like) workload: shows why the global-uniform model
//! drifts on real geography and how the §4.2 density-surface
//! transformation repairs it.
//!
//! ```text
//! cargo run --release --example tiger_workload
//! ```

use sjcm::model::join::{join_cost_da, join_cost_na};
use sjcm::model::nonuniform::join_cost_nonuniform;
use sjcm::prelude::*;

fn main() {
    // A synthetic state: a road network and a hydrography layer (the
    // substitution for the paper's TIGER census files — see DESIGN.md).
    let roads =
        sjcm::datagen::tiger::generate(sjcm::datagen::tiger::TigerConfig::roads(40_000, 11));
    let hydro =
        sjcm::datagen::tiger::generate(sjcm::datagen::tiger::TigerConfig::hydro(20_000, 12));
    let prof_roads = DataProfile::new(roads.len() as u64, sjcm::geom::density(roads.iter()));
    let prof_hydro = DataProfile::new(hydro.len() as u64, sjcm::geom::density(hydro.iter()));
    println!(
        "roads: N = {}, D = {:.4}   hydro: N = {}, D = {:.4}",
        prof_roads.cardinality, prof_roads.density, prof_hydro.cardinality, prof_hydro.density
    );

    // Density surfaces: the §4.2 "local densities by sampling".
    let s_roads = DensitySurface::<2>::from_rects(&roads, 8);
    let s_hydro = DensitySurface::<2>::from_rects(&hydro, 8);
    println!(
        "skew (coefficient of variation of cell counts): roads {:.2}, hydro {:.2}",
        s_roads.count_cv(),
        s_hydro.count_cv()
    );

    // Build, run, measure.
    let mut t_roads = RTree::<2>::new(RTreeConfig::paper(2));
    for (r, id) in sjcm::datagen::with_ids(roads) {
        t_roads.insert(r, ObjectId(id));
    }
    let mut t_hydro = RTree::<2>::new(RTreeConfig::paper(2));
    for (r, id) in sjcm::datagen::with_ids(hydro) {
        t_hydro.insert(r, ObjectId(id));
    }
    let result = JoinSession::new(&t_roads, &t_hydro)
        .config(JoinConfig {
            buffer: BufferPolicy::Path,
            collect_pairs: false,
            ..JoinConfig::default()
        })
        .run()
        .expect("ungoverned join cannot fail")
        .result;
    println!(
        "\nmeasured: NA = {}, DA = {}, crossing pairs = {}",
        result.na_total(),
        result.da_total(),
        result.pair_count
    );

    // Model A: global uniformity assumption.
    let cfg = ModelConfig::paper(2);
    let p1 = TreeParams::<2>::from_data(prof_roads, &cfg);
    let p2 = TreeParams::from_data(prof_hydro, &cfg);
    let (na_u, da_u) = (join_cost_na(&p1, &p2), join_cost_da(&p1, &p2));

    // Model B: per-cell local densities (§4.2).
    let (na_l, da_l) = join_cost_nonuniform(prof_roads, &s_roads, prof_hydro, &s_hydro, &cfg);

    let err = |est: f64, got: u64| 100.0 * (est - got as f64).abs() / got as f64;
    println!("\n                      NA estimate (err)        DA estimate (err)");
    println!(
        "global uniform model  {:>10.0} ({:>5.1}%)   {:>10.0} ({:>5.1}%)",
        na_u,
        err(na_u, result.na_total()),
        da_u,
        err(da_u, result.da_total())
    );
    println!(
        "local density model   {:>10.0} ({:>5.1}%)   {:>10.0} ({:>5.1}%)",
        na_l,
        err(na_l, result.na_total()),
        da_l,
        err(da_l, result.da_total())
    );
    println!(
        "\nthe paper's §4.2 reports ~10–20% for the transformed model on \
         skewed data and <15% on TIGER data."
    );
}
