//! The paper's motivating GIS query, end to end:
//!
//! > "Find pairs of rivers that cross common countries in Europe and lie
//! > west of the 7th meridian."
//!
//! The introduction sketches a three-step strategy — select the western
//! rivers, join them with countries, post-process the pairs — and notes
//! that *"other solutions, which differ on the execution order … and
//! consequently on the efficiency, are also possible and need to be
//! evaluated by a spatial query optimizer."*
//!
//! This example builds that optimizer's world: a catalog with river and
//! country statistics, the query with its "west of the meridian"
//! selection, plan enumeration, and then — the part a paper can't do —
//! it *executes* the competing strategies against real indexes to show
//! the cost model ranked them correctly.
//!
//! ```text
//! cargo run --release --example gis_rivers_countries
//! ```

use sjcm::geom::{density, Rect};
use sjcm::optimizer::{Catalog, DatasetStats, JoinQuery, Planner};
use sjcm::prelude::*;

fn main() {
    // ── Synthetic Europe: countries are medium rectangles, rivers are
    //    chained thin segments from the TIGER-like generator's hydro
    //    preset.
    let countries = sjcm::datagen::uniform::generate::<2>(
        sjcm::datagen::uniform::UniformConfig::new(8_000, 0.35, 7).with_aspect_jitter(0.6),
    );
    let rivers =
        sjcm::datagen::tiger::generate(sjcm::datagen::tiger::TigerConfig::hydro(30_000, 8));
    let d_countries = density(countries.iter());
    let d_rivers = density(rivers.iter());
    println!(
        "countries: N = {}, D = {:.3}   rivers: N = {}, D = {:.4}",
        countries.len(),
        d_countries,
        rivers.len(),
        d_rivers
    );

    // "West of the 7th meridian" — the left 45% of the workspace.
    let west = Rect::new([0.0, 0.0], [0.45, 1.0]).unwrap();

    // ── The optimizer's view: catalog statistics + the declarative query.
    let mut catalog = Catalog::<2>::new();
    catalog.register(
        "countries",
        DatasetStats::new(countries.len() as u64, d_countries),
    );
    catalog.register("rivers", DatasetStats::new(rivers.len() as u64, d_rivers));
    let query = JoinQuery::new(["rivers", "countries"]).with_selection("rivers", west);

    let planner = Planner::new(&catalog);
    let plans = planner.enumerate(&query).expect("feasible query");
    println!(
        "\n{} candidate strategies; top three by estimated cost:",
        plans.len()
    );
    for plan in plans.iter().take(3) {
        println!("\n{plan}");
    }
    let best = &plans[0];
    let worst = plans.last().unwrap();

    // ── Reality check: execute the two extreme strategies and count
    //    actual page accesses.
    let mut t_countries = RTree::<2>::new(RTreeConfig::paper(2));
    for (r, id) in sjcm::datagen::with_ids(countries) {
        t_countries.insert(r, ObjectId(id));
    }
    let mut t_rivers = RTree::<2>::new(RTreeConfig::paper(2));
    for (r, id) in sjcm::datagen::with_ids(rivers.clone()) {
        t_rivers.insert(r, ObjectId(id));
    }

    // Strategy A (what the best plans do when the selection is wide):
    // SJ join first, filter the river side afterwards.
    let sj = JoinSession::new(&t_rivers, &t_countries)
        .config(JoinConfig {
            buffer: BufferPolicy::Path,
            ..JoinConfig::default()
        })
        .run()
        .expect("ungoverned join cannot fail")
        .result;
    let crossing_in_west: Vec<_> = sj
        .pairs
        .iter()
        .filter(|(river, _)| rivers[river.0 as usize].intersects(&west))
        .collect();
    println!(
        "\nexecute [SJ then filter]: DA = {}, pairs kept = {}",
        sj.da_total(),
        crossing_in_west.len()
    );

    // Strategy B: select western rivers first, then probe the country
    // index per selected river (index nested loop).
    let western: Vec<_> = rivers
        .iter()
        .enumerate()
        .filter(|(_, r)| r.intersects(&west))
        .map(|(i, r)| (*r, ObjectId(i as u32)))
        .collect();
    let inl = sjcm::join::baselines::index_nested_loop_join(&t_countries, &western);
    println!(
        "execute [select then INL]: NA = {}, pairs = {}",
        inl.node_accesses,
        inl.pairs.len()
    );

    println!(
        "\noptimizer's estimates: best = {:.0}, worst = {:.0} page accesses",
        best.total_cost, worst.total_cost
    );
    println!(
        "ratio of measured strategies: {:.1}x",
        inl.node_accesses as f64 / sj.da_total() as f64
    );

    // ── Step (iii) of the paper's strategy: pairs of rivers crossing a
    //    common country (main-memory post-processing).
    use std::collections::HashMap;
    let mut by_country: HashMap<u32, Vec<u32>> = HashMap::new();
    for (river, country) in crossing_in_west {
        by_country.entry(country.0).or_default().push(river.0);
    }
    let river_pairs: usize = by_country
        .values()
        .map(|rs| rs.len() * rs.len().saturating_sub(1) / 2)
        .sum();
    println!("river pairs sharing a common country (west of the meridian): {river_pairs}");
}
