//! The 1-D case as a temporal-database story: interval overlap joins.
//!
//! Half of the paper's evaluation runs in one dimension (Figures 5a, 6a,
//! 7a: M = 84, all trees of height 3) — which is exactly the shape of a
//! *temporal* join: "find all pairs of bookings and maintenance windows
//! that overlap in time". This example reruns the paper's 1-D setup
//! under that interpretation.
//!
//! ```text
//! cargo run --release --example temporal_intervals
//! ```

use sjcm::model::join::{join_cost_da, join_cost_na};
use sjcm::model::selectivity::join_selectivity;
use sjcm::prelude::*;

fn main() {
    // Two interval sets over a [0,1) time axis (say, one year):
    // "bookings" and "maintenance windows", as in the paper's 1-D
    // workloads: N ∈ [20K, 80K], D = 0.5 (an interval covers ~D/N of
    // the axis).
    let n_bookings = 40_000;
    let n_windows = 20_000;
    let d = 0.5;
    let bookings = sjcm::datagen::uniform::generate::<1>(
        sjcm::datagen::uniform::UniformConfig::new(n_bookings, d, 51),
    );
    let windows = sjcm::datagen::uniform::generate::<1>(
        sjcm::datagen::uniform::UniformConfig::new(n_windows, d, 52),
    );
    println!(
        "bookings: {} intervals of ~{:.1} min each (on a year axis)",
        n_bookings,
        d / n_bookings as f64 * 365.25 * 24.0 * 60.0
    );

    // 1-D R*-trees: M = 84 on 1 KiB pages, exactly the paper's setup.
    let cfg = RTreeConfig::paper(1);
    assert_eq!(cfg.max_entries, 84);
    let mut t_bookings = RTree::<1>::new(cfg);
    for (r, id) in sjcm::datagen::with_ids(bookings) {
        t_bookings.insert(r, ObjectId(id));
    }
    let mut t_windows = RTree::<1>::new(cfg);
    for (r, id) in sjcm::datagen::with_ids(windows) {
        t_windows.insert(r, ObjectId(id));
    }
    println!(
        "interval R*-trees built: h = {} and {} (the paper: all 1-D trees have h = 3)",
        t_bookings.height(),
        t_windows.height()
    );

    // Model first…
    let mcfg = ModelConfig::paper(1);
    let p1 = TreeParams::<1>::from_data(DataProfile::new(n_bookings as u64, d), &mcfg);
    let p2 = TreeParams::<1>::from_data(DataProfile::new(n_windows as u64, d), &mcfg);
    let na_est = join_cost_na(&p1, &p2);
    let da_est = join_cost_da(&p1, &p2);
    let pairs_est = join_selectivity::<1>(
        DataProfile::new(n_bookings as u64, d),
        DataProfile::new(n_windows as u64, d),
    );

    // …then reality.
    let result = JoinSession::new(&t_bookings, &t_windows)
        .config(JoinConfig {
            buffer: BufferPolicy::Path,
            collect_pairs: false,
            ..JoinConfig::default()
        })
        .run()
        .expect("ungoverned join cannot fail")
        .result;
    let err = |est: f64, got: u64| 100.0 * (est - got as f64).abs() / got as f64;
    println!("\n                        predicted   measured   error");
    println!(
        "node accesses NA        {na_est:>9.0}   {:>8}   {:>4.1}%",
        result.na_total(),
        err(na_est, result.na_total())
    );
    println!(
        "disk accesses DA        {da_est:>9.0}   {:>8}   {:>4.1}%",
        result.da_total(),
        err(da_est, result.da_total())
    );
    println!(
        "overlapping pairs       {pairs_est:>9.0}   {:>8}   {:>4.1}%",
        result.pair_count,
        err(pairs_est, result.pair_count)
    );

    // Role choice matters even in 1-D (Eq 10 asymmetry): try both.
    let swapped = JoinSession::new(&t_windows, &t_bookings)
        .config(JoinConfig {
            buffer: BufferPolicy::Path,
            collect_pairs: false,
            ..JoinConfig::default()
        })
        .run()
        .expect("ungoverned join cannot fail")
        .result;
    println!(
        "\nrole check (§4.1(iii)): DA(data=bookings, query=windows) = {} vs \
         swapped = {} → keep the smaller set as the query tree: {}",
        result.da_total(),
        swapped.da_total(),
        result.da_total() <= swapped.da_total()
    );

    // Temporal ε-join: pairs within 1 hour of each other.
    let one_hour = 1.0 / (365.25 * 24.0);
    let near = JoinSession::new(&t_bookings, &t_windows)
        .config(JoinConfig {
            predicate: sjcm::join::JoinPredicate::WithinDistance(one_hour),
            collect_pairs: false,
            ..JoinConfig::default()
        })
        .run()
        .expect("ungoverned join cannot fail")
        .result;
    println!(
        "\nwithin-1-hour join: {} pairs (overlap join had {})",
        near.pair_count, result.pair_count
    );
}
