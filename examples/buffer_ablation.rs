//! Buffer ablation: how the same join's *disk* cost moves as the buffer
//! scheme changes, against the two analytic anchors — NA (no buffer,
//! Eq 7) and DA (path buffer, Eq 10) — plus the parallel-join effect on
//! buffer locality (§5 future work).
//!
//! ```text
//! cargo run --release --example buffer_ablation
//! ```

use sjcm::model::join::{join_cost_da, join_cost_na};
use sjcm::prelude::*;

fn main() {
    let n = 25_000;
    let d = 0.5;
    let set1 =
        sjcm::datagen::uniform::generate::<2>(sjcm::datagen::uniform::UniformConfig::new(n, d, 31));
    let set2 =
        sjcm::datagen::uniform::generate::<2>(sjcm::datagen::uniform::UniformConfig::new(n, d, 32));
    let mut t1 = RTree::<2>::new(RTreeConfig::paper(2));
    for (r, id) in sjcm::datagen::with_ids(set1) {
        t1.insert(r, ObjectId(id));
    }
    let mut t2 = RTree::<2>::new(RTreeConfig::paper(2));
    for (r, id) in sjcm::datagen::with_ids(set2) {
        t2.insert(r, ObjectId(id));
    }

    let cfg = ModelConfig::paper(2);
    let p1 = TreeParams::<2>::from_data(DataProfile::new(n as u64, d), &cfg);
    let p2 = TreeParams::from_data(DataProfile::new(n as u64, d), &cfg);
    println!("analytic anchors:");
    println!("  Eq 7  NA (no buffer)  ≈ {:.0}", join_cost_na(&p1, &p2));
    println!("  Eq 10 DA (path buffer) ≈ {:.0}", join_cost_da(&p1, &p2));

    let run = |policy: BufferPolicy| {
        JoinSession::new(&t1, &t2)
            .config(JoinConfig {
                buffer: policy,
                collect_pairs: false,
                ..JoinConfig::default()
            })
            .run()
            .expect("ungoverned join cannot fail")
            .result
    };

    println!("\nmeasured disk accesses by buffer scheme:");
    let none = run(BufferPolicy::None);
    println!("  none          DA = {:>8}   (= NA)", none.da_total());
    let path = run(BufferPolicy::Path);
    println!("  path          DA = {:>8}", path.da_total());
    for cap in [16, 64, 256, 1024, 4096] {
        let r = run(BufferPolicy::Lru(cap));
        println!("  lru({cap:>4})     DA = {:>8}", r.da_total());
    }
    println!(
        "\nan LRU buffer the size of one tree level makes DA collapse — \
         the effect the paper defers to future work (its model stays \
         buffer-size-free by design)."
    );

    println!("\nparallel SJ (per-worker path buffers):");
    for threads in [1, 2, 4, 8] {
        let r = JoinSession::new(&t1, &t2)
            .config(JoinConfig {
                buffer: BufferPolicy::Path,
                collect_pairs: false,
                ..JoinConfig::default()
            })
            .scheduler(Scheduler::CostGuided { threads })
            .run()
            .expect("ungoverned join cannot fail")
            .result;
        println!(
            "  {threads} worker(s): NA = {} (invariant), DA = {}",
            r.na_total(),
            r.da_total()
        );
    }
    println!(
        "splitting the traversal across workers breaks some path-buffer \
         locality: NA is invariant, DA creeps up with the worker count."
    );
}
