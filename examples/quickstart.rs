//! Quickstart: predict a spatial join's I/O cost from data properties
//! alone, then build the indexes, run the join, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sjcm::model::join::{join_cost_da, join_cost_na};
use sjcm::prelude::*;

fn main() {
    // ── 1. Two synthetic data sets, exactly as the paper's §4 builds
    //       them: N rectangles of target density D in the unit space.
    let n1 = 30_000;
    let n2 = 10_000;
    let d = 0.5;
    let set1 = sjcm::datagen::uniform::generate::<2>(sjcm::datagen::uniform::UniformConfig::new(
        n1, d, 42,
    ));
    let set2 = sjcm::datagen::uniform::generate::<2>(sjcm::datagen::uniform::UniformConfig::new(
        n2, d, 43,
    ));

    // ── 2. The model sees ONLY the primitive properties (N, D).
    let cfg = ModelConfig::paper(2); // 1 KiB pages ⇒ M = 50, c = 67%
    let p1 = TreeParams::<2>::from_data(DataProfile::new(n1 as u64, d), &cfg);
    let p2 = TreeParams::from_data(DataProfile::new(n2 as u64, d), &cfg);
    let predicted_na = join_cost_na(&p1, &p2); // Eq 7/11
    let predicted_da = join_cost_da(&p1, &p2); // Eq 10/12
    println!("predicted (from N and D only):");
    println!("  node accesses NA ≈ {predicted_na:.0}");
    println!("  disk accesses DA ≈ {predicted_da:.0}   (path buffer)");

    // ── 3. Build the R*-trees the way the paper did (insertion).
    let mut t1 = RTree::<2>::new(RTreeConfig::paper(2));
    for (r, id) in sjcm::datagen::with_ids(set1) {
        t1.insert(r, ObjectId(id));
    }
    let mut t2 = RTree::<2>::new(RTreeConfig::paper(2));
    for (r, id) in sjcm::datagen::with_ids(set2) {
        t2.insert(r, ObjectId(id));
    }
    println!(
        "\nbuilt R*-trees: h1 = {}, h2 = {}",
        t1.height(),
        t2.height()
    );

    // ── 4. Run the instrumented SJ join and compare.
    let result = JoinSession::new(&t1, &t2)
        .config(JoinConfig {
            buffer: BufferPolicy::Path,
            collect_pairs: false,
            ..JoinConfig::default()
        })
        .run()
        .expect("ungoverned join cannot fail")
        .result;
    let err = |est: f64, got: u64| 100.0 * (est - got as f64).abs() / got as f64;
    println!("\nmeasured by the executor:");
    println!(
        "  NA = {}   (model error {:.1}%)",
        result.na_total(),
        err(predicted_na, result.na_total())
    );
    println!(
        "  DA = {}   (model error {:.1}%)",
        result.da_total(),
        err(predicted_da, result.da_total())
    );
    println!("  qualifying pairs = {}", result.pair_count);
    println!(
        "\nselectivity model predicted ≈ {:.0} pairs",
        sjcm::model::selectivity::join_selectivity::<2>(
            DataProfile::new(n1 as u64, d),
            DataProfile::new(n2 as u64, d),
        )
    );
}
