//! Selectivity explorer: the §5 future-work estimator in action across
//! operators and distance thresholds, validated against exact counts.
//!
//! ```text
//! cargo run --release --example selectivity_explorer
//! ```

use sjcm::join::JoinPredicate;
use sjcm::model::selectivity::{distance_join_selectivity, join_selectivity};
use sjcm::prelude::*;

fn main() {
    let n = 15_000;
    let d = 0.3;
    let set1 =
        sjcm::datagen::uniform::generate::<2>(sjcm::datagen::uniform::UniformConfig::new(n, d, 21));
    let set2 =
        sjcm::datagen::uniform::generate::<2>(sjcm::datagen::uniform::UniformConfig::new(n, d, 22));
    let prof = DataProfile::new(n as u64, d);

    let mut t1 = RTree::<2>::new(RTreeConfig::paper(2));
    for (r, id) in sjcm::datagen::with_ids(set1) {
        t1.insert(r, ObjectId(id));
    }
    let mut t2 = RTree::<2>::new(RTreeConfig::paper(2));
    for (r, id) in sjcm::datagen::with_ids(set2) {
        t2.insert(r, ObjectId(id));
    }

    println!("N₁ = N₂ = {n}, D = {d}  (uniform)");
    println!("\noverlap join:");
    let exact = JoinSession::new(&t1, &t2)
        .config(JoinConfig {
            collect_pairs: false,
            ..JoinConfig::default()
        })
        .run()
        .expect("ungoverned join cannot fail")
        .result
        .pair_count;
    let est = join_selectivity::<2>(prof, prof);
    println!(
        "  exact pairs = {exact}, estimated = {est:.0} ({:+.1}%)",
        100.0 * (est - exact as f64) / exact as f64
    );

    println!("\ndistance (ε) join — the [PT97] Minkowski transformation:");
    println!("  note: the estimate uses the L∞ ball, the executor the L2 ball,");
    println!("  so a slight overestimate is expected and grows with ε:");
    for eps in [0.001, 0.002, 0.005, 0.01, 0.02] {
        let exact = JoinSession::new(&t1, &t2)
            .config(JoinConfig {
                predicate: JoinPredicate::WithinDistance(eps),
                collect_pairs: false,
                ..JoinConfig::default()
            })
            .run()
            .expect("ungoverned join cannot fail")
            .result
            .pair_count;
        let est = distance_join_selectivity::<2>(prof, prof, eps);
        println!(
            "  ε = {eps:<6} exact = {exact:>9}  estimated = {est:>9.0}  ({:+.1}%)",
            100.0 * (est - exact as f64) / exact as f64
        );
    }

    println!("\nrange-operator selectivities for a 0.2 × 0.2 window:");
    let q = [0.2, 0.2];
    for op in [
        SpatialOperator::Overlap,
        SpatialOperator::Inside,
        SpatialOperator::Contains,
        SpatialOperator::WithinDistance(0.05),
    ] {
        println!(
            "  {op:?}: expected qualifying objects ≈ {:.0}",
            op.selectivity(n as u64, d, &q)
        );
    }
}
