//! Workspace-local stand-in for the subset of the crates.io `rand` API
//! this repository uses: a seedable deterministic generator
//! ([`rngs::StdRng`]), half-open and inclusive `gen_range`, and
//! `gen_bool`. The build environment has no network access, so the real
//! crate cannot be fetched; everything here is implemented from scratch
//! (xoshiro256** seeded through SplitMix64).
//!
//! Determinism contract: for a fixed seed the sample stream is stable
//! across runs and platforms — the property every seeded test and data
//! generator in the workspace relies on. The stream is *not* identical to
//! the real `rand`'s `StdRng` (ChaCha12); tests assert distributional
//! properties, not exact draws, so this is fine.

/// Low-level entropy source: a stream of uniform `u64`s.
pub trait RngCore {
    /// Next raw 64-bit sample.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed, mirroring
/// `rand::SeedableRng`'s only constructor used in this workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntoSampleRange<T>,
    {
        let (lo, hi, inclusive) = range.into_bounds();
        T::sample_range(self, lo, hi, inclusive)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        unit_f64(self) < p
    }

    /// Uniform sample of the whole domain of `T` (only the types the
    /// workspace draws without a range).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A `f64` in `[0, 1)` with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

/// Types uniformly samplable from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        if inclusive {
            assert!(lo <= hi, "empty range {lo}..={hi}");
        } else {
            assert!(lo < hi, "empty range {lo}..{hi}");
        }
        // The closed upper bound is approximated by the half-open draw:
        // hitting `hi` exactly has probability 0 anyway, and callers use
        // `..=` only to express intent about boundary validity.
        let v = lo + (hi - lo) * unit_f64(rng);
        if v >= hi && !inclusive {
            // Guard against rounding up to the open bound.
            lo
        } else {
            v.min(hi)
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span_end = if inclusive {
                    (hi as u128).wrapping_add(1)
                } else {
                    hi as u128
                };
                let lo_w = lo as u128;
                assert!(lo_w < span_end, "empty integer range");
                let span = span_end - lo_w;
                // Modulo sampling: the bias is ≤ span / 2^64, far below
                // anything the workspace's statistical tests can resolve.
                let draw = ((rng.next_u64() as u128) % span) + lo_w;
                draw as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64, isize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256** with SplitMix64 seeding.
    ///
    /// Named `StdRng` so `use rand::rngs::StdRng` from the real crate
    /// keeps compiling; the stream differs from upstream's ChaCha12.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias: the workspace treats the small generator as interchangeable.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into full state
            // (the seeding scheme recommended by the xoshiro authors).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Conversion of range syntax into sampling bounds.
pub trait IntoSampleRange<T> {
    /// Returns `(lo, hi, inclusive)`.
    fn into_bounds(self) -> (T, T, bool);
}

impl<T: SampleUniform> IntoSampleRange<T> for std::ops::Range<T> {
    fn into_bounds(self) -> (T, T, bool) {
        (self.start, self.end, false)
    }
}

impl<T: SampleUniform> IntoSampleRange<T> for std::ops::RangeInclusive<T> {
    fn into_bounds(self) -> (T, T, bool) {
        let (lo, hi) = self.into_inner();
        (lo, hi, true)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
            let w: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(3..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = StdRng::seed_from_u64(10);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }
}
