//! Workspace-local stand-in for the subset of the crates.io `criterion`
//! API this repository's benches use. The build environment is offline,
//! so the real crate cannot be fetched.
//!
//! Instead of criterion's statistical engine, each benchmark runs
//! `sample_size` timed samples (after one warm-up), and reports min /
//! median / max wall-clock time both as a human line and as a JSON line
//! (`{"group":…,"bench":…,"median_ns":…}`) so tooling can scrape bench
//! output — the workspace's BENCH JSON convention.
//!
//! `cargo bench -- --test` (criterion's smoke mode, used by CI) runs a
//! single iteration per benchmark and skips timing output.

use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box`.
pub use std::hint::black_box;

/// Top-level bench context.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` forwards `--test`: smoke mode.
        let smoke = std::env::args().any(|a| a == "--test");
        Self { smoke }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            smoke: self.smoke,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let smoke = self.smoke;
        run_bench("ungrouped", id, 10, smoke, f);
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    smoke: bool,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&self.name, &id.0, self.sample_size, self.smoke, &mut f);
        self
    }

    /// Benchmarks `f` with an input value under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&self.name, &id.0, self.sample_size, self.smoke, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (separator line in the output).
    pub fn finish(self) {
        if !self.smoke {
            println!();
        }
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: usize,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iterations {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` on a fresh `setup()` product, excluding setup time.
    pub fn iter_with_setup<S, I, O, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iterations {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    sample_size: usize,
    smoke: bool,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        iterations: if smoke { 1 } else { sample_size },
    };
    f(&mut b);
    if smoke {
        println!("{group}/{id}: ok (smoke)");
        return;
    }
    if b.samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = *b.samples.last().unwrap();
    println!(
        "{group}/{id:<40} median {:>12?}  (min {:?}, max {:?}, n={})",
        median,
        min,
        max,
        b.samples.len()
    );
    println!(
        "{{\"group\":\"{group}\",\"bench\":\"{id}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}",
        median.as_nanos(),
        min.as_nanos(),
        max.as_nanos(),
        b.samples.len()
    );
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { smoke: true };
        let mut group = c.benchmark_group("unit");
        let mut ran = 0;
        group.sample_size(3).bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert!(ran >= 1);
    }

    #[test]
    fn iter_with_setup_excludes_setup() {
        let mut b = Bencher {
            samples: Vec::new(),
            iterations: 2,
        };
        b.iter_with_setup(|| vec![1, 2, 3], |v| v.len());
        assert_eq!(b.samples.len(), 2);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("algo", 42).0, "algo/42");
        assert_eq!(BenchmarkId::from_parameter("lru").0, "lru");
    }
}
