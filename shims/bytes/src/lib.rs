//! Workspace-local stand-in for the subset of the crates.io `bytes` API
//! this repository's storage layer uses: a cheaply clonable immutable
//! byte container ([`Bytes`]) and little-endian cursor traits
//! ([`Buf`] over `&[u8]`, [`BufMut`] over `Vec<u8>`). The build
//! environment is offline, so the real crate cannot be fetched.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer (reference-counted slice).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Little-endian read cursor. Implemented for `&[u8]`: reads consume the
/// front of the slice. All getters panic when the buffer is too short,
/// matching the real crate's contract.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

macro_rules! take_bytes {
    ($self:ident, $n:literal) => {{
        let (head, tail) = $self.split_at($n);
        let mut arr = [0u8; $n];
        arr.copy_from_slice(head);
        *$self = tail;
        arr
    }};
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let b = self[0];
        *self = &self[1..];
        b
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(take_bytes!(self, 2))
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(take_bytes!(self, 4))
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(take_bytes!(self, 4))
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(take_bytes!(self, 8))
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(take_bytes!(self, 8))
    }
}

/// Little-endian write cursor. Implemented for `Vec<u8>`: writes append.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
    /// Appends `count` copies of `val`.
    fn put_bytes(&mut self, val: u8, count: usize);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_bytes(&mut self, val: u8, count: usize) {
        self.resize(self.len() + count, val);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(0xAB);
        out.put_u16_le(0x1234);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_f32_le(1.5);
        out.put_u64_le(0x0102_0304_0506_0708);
        out.put_f64_le(-2.25);
        out.put_bytes(0, 3);
        let mut cur: &[u8] = &out;
        assert_eq!(cur.get_u8(), 0xAB);
        assert_eq!(cur.get_u16_le(), 0x1234);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_f32_le(), 1.5);
        assert_eq!(cur.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(cur.get_f64_le(), -2.25);
        assert_eq!(cur.remaining(), 3);
        cur.advance(3);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn bytes_container_semantics() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(&[9]).as_ref(), &[9]);
    }
}
