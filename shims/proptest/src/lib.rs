//! Workspace-local stand-in for the subset of the crates.io `proptest`
//! API this repository uses. The build environment is offline, so the
//! real crate cannot be fetched.
//!
//! Differences from real proptest, deliberate and documented:
//!
//! * **No shrinking.** A failing case reports its inputs (via `Debug`)
//!   and the case index, but is not minimized.
//! * **Deterministic seeding.** Each `proptest!` test derives its RNG
//!   seed from the test's name, so failures reproduce exactly on rerun.
//!   Set `PROPTEST_SEED_OFFSET` to explore different streams.
//! * **Strategies sample directly** — a [`Strategy`] is just a sampler,
//!   not a value tree.
//!
//! The macro grammar supported is the one the workspace's tests use:
//! optional `#![proptest_config(...)]`, `#[test] fn name(pat in strategy,
//! ...) { body }`, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!` with
//! optional weights, `prop::collection::vec`, tuples of strategies,
//! ranges as strategies, `any::<T>()`, and `Strategy::prop_map`.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng, Standard};
use std::fmt;

/// Failure raised by `prop_assert!` family; also usable directly.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Alias of [`TestCaseError::fail`] kept for API compatibility.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the workspace's debug
        // test runs quick while still exercising varied inputs.
        Self { cases: 64 }
    }
}

/// A sampler of random values of one type.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T: SampleUniform + 'static> Strategy for std::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform + 'static> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Constant strategy (`Just(v)` always yields clones of `v`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Full-domain strategy for `T`, as `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy over the full domain of `T`.
pub fn any<T: Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen::<T>()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Weighted union of boxed strategies — the engine of [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        Self { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum checked in constructor")
    }
}

/// Collection strategies under the `prop::` path of the real crate.
pub mod prop {
    /// `prop::collection` — sized containers of sampled elements.
    pub mod collection {
        use super::super::Strategy;

        /// Strategy for `Vec<S::Value>` with length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        /// Vector of `element` samples with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
                use rand::Rng;
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Derives the deterministic RNG for one test from its name.
pub fn test_rng(test_name: &str) -> StdRng {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    let offset: u64 = std::env::var("PROPTEST_SEED_OFFSET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    StdRng::seed_from_u64(h.finish().wrapping_add(offset))
}

/// Defines property tests; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( #[test] $(#[$meta:meta])* fn $name:ident
        ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)*),
                        $(&$arg),*
                    );
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\ninputs: {}",
                            stringify!($name), __case + 1, __config.cases, e, __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts inside a `proptest!` body, failing the case (not panicking
/// directly) so the harness can report the inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// Weighted choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strat:expr ),+ $(,)? ) => {
        $crate::Union::new_weighted(vec![
            $( ($weight, ::std::boxed::Box::new($strat) as $crate::BoxedStrategy<_>) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::Union::new_weighted(vec![
            $( (1u32, ::std::boxed::Box::new($strat) as $crate::BoxedStrategy<_>) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_respects_weights_roughly() {
        let s = prop_oneof![9 => 0usize..1, 1 => 1usize..2];
        let mut rng = crate::test_rng("union_respects_weights_roughly");
        let ones = (0..1000)
            .filter(|_| Strategy::sample(&s, &mut rng) == 1usize)
            .count();
        assert!((50..200).contains(&ones), "ones {ones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_sample_in_bounds(x in 0.0f64..1.0, n in 5usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((5..10).contains(&n));
        }

        #[test]
        fn vec_strategy_obeys_length(v in prop::collection::vec(0u32..100, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn map_and_tuple_compose(p in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&p));
        }

        #[test]
        fn any_bool_varies(bits in prop::collection::vec(any::<bool>(), 64..65)) {
            // 64 fair coin flips virtually never agree unanimously.
            prop_assert!(bits.iter().any(|&b| b) || bits.iter().any(|&b| !b));
        }
    }

    #[test]
    fn question_mark_propagates_as_failure() {
        fn inner() -> Result<(), TestCaseError> {
            Err(TestCaseError::fail("boom"))
        }
        let r: Result<(), TestCaseError> = (|| {
            inner()?;
            Ok(())
        })();
        assert!(r.is_err());
    }
}
