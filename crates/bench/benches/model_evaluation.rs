//! Cost-model evaluation benchmarks — the practical argument for the
//! paper: an optimizer can afford these formulas. Evaluating Eq 10/12
//! takes microseconds; *running* the join it prices takes milliseconds
//! to seconds (see `join_algorithms`). The planner's exhaustive
//! enumeration is benchmarked too.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sjcm_core::nonuniform::join_cost_nonuniform;
use sjcm_core::{join, range, DataProfile, DensitySurface, ModelConfig, TreeParams};
use sjcm_geom::Rect;
use sjcm_optimizer::{Catalog, DatasetStats, JoinQuery, Planner};
use std::hint::black_box;

fn bench_formulas(c: &mut Criterion) {
    let cfg = ModelConfig::paper(2);
    let mut group = c.benchmark_group("model_formulas");
    group.bench_function("tree_params_from_data", |b| {
        b.iter(|| {
            black_box(TreeParams::<2>::from_data(
                DataProfile::new(black_box(60_000), 0.5),
                &cfg,
            ))
        })
    });
    let p1 = TreeParams::<2>::from_data(DataProfile::new(60_000, 0.5), &cfg);
    let p2 = TreeParams::<2>::from_data(DataProfile::new(20_000, 0.5), &cfg);
    group.bench_function("join_cost_na", |b| {
        b.iter(|| black_box(join::join_cost_na(&p1, &p2)))
    });
    group.bench_function("join_cost_da", |b| {
        b.iter(|| black_box(join::join_cost_da(&p1, &p2)))
    });
    group.bench_function("range_query_cost", |b| {
        b.iter(|| black_box(range::range_query_cost(&p1, &[0.05, 0.05])))
    });
    group.finish();
}

fn bench_nonuniform(c: &mut Criterion) {
    let cfg = ModelConfig::paper(2);
    let rects = sjcm_datagen::tiger::generate(sjcm_datagen::tiger::TigerConfig::roads(20_000, 400));
    let prof = DataProfile::new(rects.len() as u64, sjcm_geom::density(rects.iter()));
    let mut group = c.benchmark_group("nonuniform_model");
    group.sample_size(20);
    for grid in [4usize, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("surface_build", grid),
            &grid,
            |b, &grid| b.iter(|| black_box(DensitySurface::<2>::from_rects(&rects, grid))),
        );
        let surface = DensitySurface::<2>::from_rects(&rects, grid);
        group.bench_with_input(BenchmarkId::new("join_cost_local", grid), &grid, |b, _| {
            b.iter(|| black_box(join_cost_nonuniform(prof, &surface, prof, &surface, &cfg)))
        });
    }
    group.finish();
}

fn bench_planner(c: &mut Criterion) {
    let mut catalog = Catalog::<2>::new();
    catalog.register("a", DatasetStats::new(60_000, 0.5));
    catalog.register("b", DatasetStats::new(20_000, 0.4));
    catalog.register("c", DatasetStats::new(40_000, 0.3));
    catalog.register("d", DatasetStats::new(10_000, 0.2));
    let window = Rect::new([0.0, 0.0], [0.3, 0.3]).unwrap();
    let mut group = c.benchmark_group("planner");
    group.bench_function("two_way", |b| {
        let q = JoinQuery::new(["a", "b"]).with_selection("b", window);
        b.iter(|| black_box(Planner::new(&catalog).best_plan(&q).unwrap().total_cost))
    });
    group.bench_function("four_way", |b| {
        let q = JoinQuery::new(["a", "b", "c", "d"]).with_selection("b", window);
        b.iter(|| black_box(Planner::new(&catalog).best_plan(&q).unwrap().total_cost))
    });
    group.finish();
}

criterion_group!(benches, bench_formulas, bench_nonuniform, bench_planner);
criterion_main!(benches);
