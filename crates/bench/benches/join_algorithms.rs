//! Join-algorithm benchmarks: the synchronized traversal (SJ) against
//! the index-nested-loop and brute-force baselines, plus the plane-sweep
//! CPU optimization of [BKS93] and the parallel variant (§5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sjcm_bench::{uniform_items, uniform_tree};
use sjcm_join::baselines::{index_nested_loop_join, nested_loop_join};
use sjcm_join::{
    BufferPolicy, Governor, JoinConfig, JoinObs, JoinResultSet, JoinSession, MatchOrder, Scheduler,
};
use sjcm_obs::{DriftMonitor, ProgressTracker, Tracer};
use sjcm_rtree::RTree;
use sjcm_storage::{FaultInjector, FlightRecorder};
use std::hint::black_box;
use std::time::Instant;

fn config() -> JoinConfig {
    JoinConfig {
        buffer: BufferPolicy::Path,
        collect_pairs: false,
        ..JoinConfig::default()
    }
}

/// The session front door with everything defaulted — the shape every
/// ungoverned bench arm uses.
fn session_join(t1: &RTree<2>, t2: &RTree<2>, cfg: JoinConfig, sched: Scheduler) -> JoinResultSet {
    JoinSession::new(t1, t2)
        .config(cfg)
        .scheduler(sched)
        .run()
        .expect("ungoverned join cannot fail")
        .result
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_algorithms");
    group.sample_size(10);
    for &n in &[2_000usize, 8_000] {
        let t1 = uniform_tree(n, 0.4, 100);
        let t2 = uniform_tree(n, 0.4, 101);
        let probes = uniform_items(n, 0.4, 101);
        group.bench_with_input(BenchmarkId::new("sj_synchronized", n), &n, |b, _| {
            b.iter(|| black_box(session_join(&t1, &t2, config(), Scheduler::Sequential)))
        });
        group.bench_with_input(BenchmarkId::new("index_nested_loop", n), &n, |b, _| {
            b.iter(|| black_box(index_nested_loop_join(&t1, &probes)))
        });
        if n <= 2_000 {
            let items1 = uniform_items(n, 0.4, 100);
            group.bench_with_input(BenchmarkId::new("brute_force", n), &n, |b, _| {
                b.iter(|| black_box(nested_loop_join(&items1, &probes)))
            });
        }
    }
    group.finish();
}

fn bench_match_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("entry_matching");
    group.sample_size(10);
    let n = 8_000;
    let t1 = uniform_tree(n, 0.6, 102);
    let t2 = uniform_tree(n, 0.6, 103);
    group.bench_function("nested_loop_order", |b| {
        b.iter(|| {
            black_box(session_join(
                &t1,
                &t2,
                JoinConfig {
                    order: MatchOrder::NestedLoop,
                    ..config()
                },
                Scheduler::Sequential,
            ))
        })
    });
    group.bench_function("plane_sweep_order", |b| {
        b.iter(|| {
            black_box(session_join(
                &t1,
                &t2,
                JoinConfig {
                    order: MatchOrder::PlaneSweep,
                    ..config()
                },
                Scheduler::Sequential,
            ))
        })
    });
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_join");
    group.sample_size(10);
    let n = 12_000;
    let t1 = uniform_tree(n, 0.5, 104);
    let t2 = uniform_tree(n, 0.5, 105);
    type SchedulerFor = fn(usize) -> Scheduler;
    let rr: SchedulerFor = |threads| Scheduler::RoundRobin { threads };
    let cg: SchedulerFor = |threads| Scheduler::CostGuided { threads };
    for threads in [1usize, 2, 4, 8] {
        for (label, sched_for) in [("round_robin", rr), ("cost_guided", cg)] {
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                b.iter(|| black_box(session_join(&t1, &t2, config(), sched_for(threads))))
            });
        }
    }
    group.finish();
    // The schedule quality itself, in the BENCH JSON convention: the
    // planned per-worker NA split is deterministic per mode, so one run
    // per (mode, threads) suffices (smoke mode keeps one thread count
    // so CI still collects the lines). Each run carries an enabled
    // tracer so the line also reports where the time went (span
    // totals).
    let thread_counts: &[usize] = if std::env::args().any(|a| a == "--test") {
        &[4]
    } else {
        &[2, 4, 8]
    };
    for &threads in thread_counts {
        for (label, sched_for) in [("round_robin", rr), ("cost_guided", cg)] {
            let tracer = Tracer::enabled();
            let obs = JoinObs {
                tracer: tracer.clone(),
                drift: None,
                recorder: FlightRecorder::disabled(),
                progress: ProgressTracker::disabled(),
            };
            let result = JoinSession::new(&t1, &t2)
                .config(config())
                .scheduler(sched_for(threads))
                .observe(&obs)
                .run()
                .expect("ungoverned join cannot fail")
                .result;
            let worker_na: Vec<String> = result.workers.iter().map(|w| w.na.to_string()).collect();
            let span_totals: Vec<String> = tracer
                .totals_by_name()
                .iter()
                .map(|(name, count, us)| format!("\"{name}\":{{\"count\":{count},\"us\":{us}}}"))
                .collect();
            println!(
                "{{\"group\":\"parallel_join\",\"bench\":\"imbalance/{label}/{threads}\",\
                 \"na_imbalance\":{:.4},\"na_total\":{},\"da_total\":{},\
                 \"worker_na\":[{}],\"span_totals\":{{{}}}}}",
                result.na_imbalance(),
                result.na_total(),
                result.da_total(),
                worker_na.join(","),
                span_totals.join(",")
            );
        }
    }
}

/// The observability overhead guard: the same fixed-seed cost-guided
/// join with observability disabled (the production default), fully
/// enabled (tracer + in-flight drift checks), enabled *with the
/// page-access flight recorder armed*, and with *only the progress
/// tracker* armed, reported as a BENCH JSON line. The disabled path
/// must be indistinguishable from the pre-observability code (a single
/// `Option` check per hook); enabled tracing — recorder included —
/// targets < 3% overhead, and the progress tracker alone must stay
/// under 2% (asserted on full runs; its hot path is one `Option`
/// check per access plus a delta flush every 512th). The same line
/// carries the EXPLAIN ANALYZE arm: `Explainer::analyze` against the
/// plain `PlanExecutor::run` on the optimizer's plan for the same
/// trees, with the post-hoc annotation layer held to the same < 2%
/// budget (`explain_overhead_pct`).
fn bench_obs_overhead(c: &mut Criterion) {
    let _ = c; // manual timing: one JSON line, not a criterion group
    let smoke = std::env::args().any(|a| a == "--test");
    // Smoke mode still emits the line so CI collects it, on a smaller
    // workload with fewer repetitions.
    let (n, reps) = if smoke { (4_000, 7) } else { (12_000, 15) };
    let t1 = uniform_tree(n, 0.5, 104);
    let t2 = uniform_tree(n, 0.5, 105);
    let threads = 4;
    // Prime caches and learn the exact totals so the enabled runs can
    // exercise the drift monitor with realistic registered predictions.
    let warm = session_join(&t1, &t2, config(), Scheduler::CostGuided { threads });
    let observed = |obs: &JoinObs<'_>| {
        JoinSession::new(&t1, &t2)
            .config(config())
            .scheduler(Scheduler::CostGuided { threads })
            .observe(obs)
            .run()
            .expect("ungoverned join cannot fail")
            .result
    };
    let run_disabled = || {
        let start = Instant::now();
        let r = black_box(session_join(
            &t1,
            &t2,
            config(),
            Scheduler::CostGuided { threads },
        ));
        assert_eq!(r.na_total(), warm.na_total());
        start.elapsed()
    };
    let run_enabled = || {
        // Fresh tracer and monitor per iteration, as a real observed
        // run would have — span buffers must not accumulate.
        let drift = DriftMonitor::default();
        drift.predict(sjcm_obs::NA_TOTAL, warm.na_total() as f64);
        drift.predict(sjcm_obs::DA_TOTAL, warm.da_total() as f64);
        let obs = JoinObs {
            tracer: Tracer::enabled(),
            drift: Some(&drift),
            recorder: FlightRecorder::disabled(),
            progress: ProgressTracker::disabled(),
        };
        let start = Instant::now();
        let r = black_box(observed(&obs));
        let elapsed = start.elapsed();
        assert_eq!(r.na_total(), warm.na_total());
        elapsed
    };
    let run_recorded = || {
        let drift = DriftMonitor::default();
        drift.predict(sjcm_obs::NA_TOTAL, warm.na_total() as f64);
        drift.predict(sjcm_obs::DA_TOTAL, warm.da_total() as f64);
        let recorder = FlightRecorder::enabled();
        let obs = JoinObs {
            tracer: Tracer::enabled(),
            drift: Some(&drift),
            recorder: recorder.clone(),
            progress: ProgressTracker::disabled(),
        };
        let start = Instant::now();
        let r = black_box(observed(&obs));
        let elapsed = start.elapsed();
        assert_eq!(r.na_total(), warm.na_total());
        // The trace must be complete: one event per node access, no
        // ring overwrites. Draining outside the timed region is fair —
        // a real run serializes after the join too.
        let (events, dropped) = recorder.drain();
        assert_eq!(dropped, 0);
        assert_eq!(events.len() as u64, r.na_total());
        elapsed
    };
    let run_progress = || {
        let tracker = ProgressTracker::enabled();
        let obs = JoinObs {
            tracer: Tracer::disabled(),
            drift: None,
            recorder: FlightRecorder::disabled(),
            progress: tracker.clone(),
        };
        let start = Instant::now();
        let r = black_box(observed(&obs));
        let elapsed = start.elapsed();
        // Progress must be invisible in the answer and complete in its
        // own counters.
        assert_eq!(r.na_total(), warm.na_total());
        assert_eq!(r.da_total(), warm.da_total());
        elapsed
    };
    // EXPLAIN ANALYZE overhead: `Explainer::analyze` is exactly
    // `PlanExecutor::run_measured` (which `run` also is, minus the
    // discarded stream) followed by the annotation layer — the post-hoc
    // re-estimates and per-operator attribution. Execution is shared
    // code, so EXPLAIN's overhead over plain execution *is* the
    // annotation layer, and that is what the guard measures: timed
    // directly via `annotate_run` on a captured measurement, because a
    // tens-of-microseconds layer cannot be resolved as the difference
    // of two independently-noisy multi-millisecond joins. `plan_us` and
    // `explain_us` are still reported whole for context.
    use sjcm::exec::PlanExecutor;
    use sjcm::explain::Explainer;
    use sjcm::optimizer::{Catalog, DatasetStats, JoinQuery, Planner};
    let regen = |seed: u64| {
        sjcm_datagen::uniform::generate::<2>(sjcm_datagen::uniform::UniformConfig::new(
            n, 0.5, seed,
        ))
    };
    // Seeds 104/105 regenerate exactly the rectangles behind t1/t2.
    let rects1 = regen(104);
    let rects2 = regen(105);
    let mut catalog = Catalog::new();
    catalog.register(
        "r1",
        DatasetStats::new(n as u64, sjcm_geom::density(rects1.iter())),
    );
    catalog.register(
        "r2",
        DatasetStats::new(n as u64, sjcm_geom::density(rects2.iter())),
    );
    let plan = Planner::new(&catalog)
        .best_plan(&JoinQuery::new(["r1", "r2"]))
        .expect("pure-join plan");
    // Both sides reuse one long-lived driver, the way a resident
    // optimizer service would: the explainer's one-time stats walk
    // amortizes across analyses and is paid during warm-up.
    let executor = PlanExecutor::new()
        .bind("r1", &t1, &rects1)
        .bind("r2", &t2, &rects2)
        .with_threads(threads);
    let explainer = Explainer::new(&catalog)
        .bind("r1", &t1, &rects1)
        .bind("r2", &t2, &rects2)
        .with_threads(threads);
    let run_plain = || {
        let start = Instant::now();
        let out = black_box(executor.run(&plan).expect("plan executes"));
        let elapsed = start.elapsed();
        assert_eq!(out.na, warm.na_total());
        elapsed
    };
    let run_explain = || {
        let start = Instant::now();
        let analysis = black_box(explainer.analyze(&plan).expect("plan analyzes"));
        let elapsed = start.elapsed();
        assert_eq!(analysis.na, warm.na_total());
        elapsed
    };
    // Warm up once, then interleave the variants so all see the same
    // machine conditions, and compare minima (noise on a 6 ms parallel
    // join is strictly additive).
    let _ = (
        run_disabled(),
        run_enabled(),
        run_recorded(),
        run_progress(),
        run_plain(),
        run_explain(),
    );
    let mut disabled = std::time::Duration::MAX;
    let mut enabled = std::time::Duration::MAX;
    let mut recorded = std::time::Duration::MAX;
    let mut progress = std::time::Duration::MAX;
    let mut plain = std::time::Duration::MAX;
    let mut explained = std::time::Duration::MAX;
    for _ in 0..reps {
        disabled = disabled.min(run_disabled());
        enabled = enabled.min(run_enabled());
        recorded = recorded.min(run_recorded());
        progress = progress.min(run_progress());
        plain = plain.min(run_plain());
        explained = explained.min(run_explain());
    }
    // The annotation layer alone, on a captured measured run: a
    // ~50 µs operation needs a tight loop to produce a stable minimum.
    let (out, ops) = executor.run_measured(&plan).expect("plan executes");
    let mut annotate = std::time::Duration::MAX;
    for _ in 0..64 {
        let start = Instant::now();
        let analysis =
            black_box(explainer.annotate_run(&plan, &out, &ops)).expect("annotation succeeds");
        let elapsed = start.elapsed();
        assert_eq!(analysis.na, warm.na_total());
        annotate = annotate.min(elapsed);
    }
    let pct_over = |v: std::time::Duration| {
        (v.as_secs_f64() - disabled.as_secs_f64()) / disabled.as_secs_f64() * 100.0
    };
    let explain_pct = annotate.as_secs_f64() / plain.as_secs_f64() * 100.0;
    println!(
        "{{\"group\":\"join_algorithms\",\"bench\":\"obs_overhead/{n}/{threads}\",\
         \"disabled_us\":{},\"enabled_us\":{},\"recorded_us\":{},\"progress_us\":{},\
         \"plan_us\":{},\"explain_us\":{},\"explain_annotate_us\":{},\
         \"overhead_pct\":{:.2},\"recorder_overhead_pct\":{:.2},\
         \"progress_overhead_pct\":{:.2},\"explain_overhead_pct\":{:.2}}}",
        disabled.as_micros(),
        enabled.as_micros(),
        recorded.as_micros(),
        progress.as_micros(),
        plain.as_micros(),
        explained.as_micros(),
        annotate.as_micros(),
        pct_over(enabled),
        pct_over(recorded),
        pct_over(progress),
        explain_pct
    );
    // The < 2% guards run at full scale only: smoke workloads are too
    // small for the percentages to be meaningful.
    if !smoke {
        assert!(
            pct_over(progress) < 2.0,
            "progress tracker overhead {:.2}% exceeds the 2% budget \
             (disabled {disabled:?}, progress {progress:?})",
            pct_over(progress)
        );
        assert!(
            explain_pct < 2.0,
            "EXPLAIN ANALYZE annotation overhead {explain_pct:.2}% exceeds the 2% \
             budget (plain {plain:?}, annotation {annotate:?})"
        );
    }
}

/// The fault-injection overhead guard: the same fixed-seed cost-guided
/// join through the infallible entry point and through its fallible
/// twin with the injector *disabled* (the production default — one
/// `Option` discriminant check per node pair), reported as a BENCH
/// JSON line. The disabled twin targets < 1% overhead and must return
/// exactly the infallible result.
fn bench_fault_overhead(c: &mut Criterion) {
    let _ = c; // manual timing: one JSON line, not a criterion group
    let smoke = std::env::args().any(|a| a == "--test");
    let (n, reps) = if smoke { (4_000, 7) } else { (12_000, 15) };
    let t1 = uniform_tree(n, 0.5, 104);
    let t2 = uniform_tree(n, 0.5, 105);
    let threads = 4;
    let warm = session_join(&t1, &t2, config(), Scheduler::CostGuided { threads });
    let run_infallible = || {
        let start = Instant::now();
        let r = black_box(session_join(
            &t1,
            &t2,
            config(),
            Scheduler::CostGuided { threads },
        ));
        assert_eq!(r.na_total(), warm.na_total());
        start.elapsed()
    };
    let run_fallible = || {
        let faults = FaultInjector::disabled();
        let start = Instant::now();
        let d = black_box(
            JoinSession::new(&t1, &t2)
                .config(config())
                .scheduler(Scheduler::CostGuided { threads })
                .faults(&faults)
                .run(),
        )
        .expect("a disabled injector cannot fail");
        let elapsed = start.elapsed();
        assert!(d.is_exact());
        assert_eq!(d.result.na_total(), warm.na_total());
        assert_eq!(d.result.da_total(), warm.da_total());
        elapsed
    };
    let _ = (run_infallible(), run_fallible());
    let mut infallible = std::time::Duration::MAX;
    let mut fallible = std::time::Duration::MAX;
    for _ in 0..reps {
        infallible = infallible.min(run_infallible());
        fallible = fallible.min(run_fallible());
    }
    let overhead =
        (fallible.as_secs_f64() - infallible.as_secs_f64()) / infallible.as_secs_f64() * 100.0;
    println!(
        "{{\"group\":\"join_algorithms\",\"bench\":\"fault_overhead/{n}/{threads}\",\
         \"infallible_us\":{},\"fallible_disabled_us\":{},\"overhead_pct\":{:.2}}}",
        infallible.as_micros(),
        fallible.as_micros(),
        overhead
    );
}

/// The governor overhead guard: the same fixed-seed cost-guided join
/// through the infallible entry point and through the fallible twin
/// with an *unlimited* governor (the production default — one `Option`
/// discriminant check per call site), reported as a BENCH JSON line.
/// The `speedup` field (infallible / governed, ≈ 1.0) rides the
/// bench-compare `speedup >= 0.8` gate; the assert holds the measured
/// overhead under the 2% budget the issue requires.
fn bench_governor_overhead(c: &mut Criterion) {
    let _ = c; // manual timing: one JSON line, not a criterion group
    let smoke = std::env::args().any(|a| a == "--test");
    let (n, reps) = if smoke { (4_000, 7) } else { (12_000, 15) };
    let t1 = uniform_tree(n, 0.5, 106);
    let t2 = uniform_tree(n, 0.5, 107);
    let threads = 4;
    let warm = session_join(&t1, &t2, config(), Scheduler::CostGuided { threads });
    let run_infallible = || {
        let start = Instant::now();
        let r = black_box(session_join(
            &t1,
            &t2,
            config(),
            Scheduler::CostGuided { threads },
        ));
        assert_eq!(r.na_total(), warm.na_total());
        start.elapsed()
    };
    let run_governed = || {
        let gov = Governor::unlimited();
        let start = Instant::now();
        let d = black_box(
            JoinSession::new(&t1, &t2)
                .config(config())
                .scheduler(Scheduler::CostGuided { threads })
                .govern(&gov)
                .run(),
        )
        .expect("an unlimited governor cannot fail");
        let elapsed = start.elapsed();
        assert!(d.is_exact());
        assert_eq!(d.result.na_total(), warm.na_total());
        assert_eq!(d.result.da_total(), warm.da_total());
        elapsed
    };
    let _ = (run_infallible(), run_governed());
    let mut infallible = std::time::Duration::MAX;
    let mut governed = std::time::Duration::MAX;
    for _ in 0..reps {
        infallible = infallible.min(run_infallible());
        governed = governed.min(run_governed());
    }
    let overhead =
        (governed.as_secs_f64() - infallible.as_secs_f64()) / infallible.as_secs_f64() * 100.0;
    let speedup = infallible.as_secs_f64() / governed.as_secs_f64();
    println!(
        "{{\"group\":\"join_algorithms\",\"bench\":\"governor_overhead/{n}/{threads}\",\
         \"infallible_us\":{},\"governed_unlimited_us\":{},\"overhead_pct\":{:.2},\
         \"speedup\":{:.4}}}",
        infallible.as_micros(),
        governed.as_micros(),
        overhead,
        speedup
    );
    if !smoke {
        assert!(
            overhead < 2.0,
            "unlimited-governor overhead {overhead:.2}% exceeds the 2% budget \
             (infallible {infallible:?}, governed {governed:?})"
        );
    }
}

/// The session-dispatch overhead guard: the same fixed-seed cost-guided
/// join through the deprecated direct entry point
/// (`parallel_spatial_join_with`) and through the unified
/// `JoinSession` builder, reported as a BENCH JSON line. The builder
/// is a compile-time-thin shim — it allocates one `ExecContext` on the
/// stack and dispatches on the `Scheduler` enum — so the target is
/// < 1% overhead. The `speedup` field (direct / session, ≈ 1.0) rides
/// the bench-compare `speedup >= 0.8` gate.
fn bench_session_overhead(c: &mut Criterion) {
    let _ = c; // manual timing: one JSON line, not a criterion group
    let smoke = std::env::args().any(|a| a == "--test");
    let (n, reps) = if smoke { (4_000, 7) } else { (12_000, 15) };
    let t1 = uniform_tree(n, 0.5, 108);
    let t2 = uniform_tree(n, 0.5, 109);
    let threads = 4;
    let warm = session_join(&t1, &t2, config(), Scheduler::CostGuided { threads });
    let run_direct = || {
        let start = Instant::now();
        #[allow(deprecated)]
        let r = black_box(sjcm_join::parallel_spatial_join_with(
            &t1,
            &t2,
            config(),
            threads,
            sjcm_join::ScheduleMode::CostGuided,
        ));
        assert_eq!(r.na_total(), warm.na_total());
        start.elapsed()
    };
    let run_session = || {
        let start = Instant::now();
        let r = black_box(session_join(
            &t1,
            &t2,
            config(),
            Scheduler::CostGuided { threads },
        ));
        let elapsed = start.elapsed();
        assert_eq!(r.na_total(), warm.na_total());
        assert_eq!(r.da_total(), warm.da_total());
        elapsed
    };
    let _ = (run_direct(), run_session());
    let mut direct = std::time::Duration::MAX;
    let mut session = std::time::Duration::MAX;
    for _ in 0..reps {
        direct = direct.min(run_direct());
        session = session.min(run_session());
    }
    let overhead = (session.as_secs_f64() - direct.as_secs_f64()) / direct.as_secs_f64() * 100.0;
    let speedup = direct.as_secs_f64() / session.as_secs_f64();
    println!(
        "{{\"group\":\"join_algorithms\",\"bench\":\"session_overhead/{n}/{threads}\",\
         \"direct_us\":{},\"session_us\":{},\"overhead_pct\":{:.2},\
         \"speedup\":{:.4}}}",
        direct.as_micros(),
        session.as_micros(),
        overhead,
        speedup
    );
    if !smoke {
        assert!(
            overhead < 1.0,
            "session-dispatch overhead {overhead:.2}% exceeds the 1% budget \
             (direct {direct:?}, session {session:?})"
        );
    }
}

criterion_group!(
    benches,
    bench_algorithms,
    bench_match_order,
    bench_parallel,
    bench_obs_overhead,
    bench_fault_overhead,
    bench_governor_overhead,
    bench_session_overhead
);
criterion_main!(benches);
