//! Join-algorithm benchmarks: the synchronized traversal (SJ) against
//! the index-nested-loop and brute-force baselines, plus the plane-sweep
//! CPU optimization of [BKS93] and the parallel variant (§5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sjcm_bench::{uniform_items, uniform_tree};
use sjcm_join::baselines::{index_nested_loop_join, nested_loop_join};
use sjcm_join::parallel::{parallel_spatial_join_with, ScheduleMode};
use sjcm_join::{spatial_join_with, BufferPolicy, JoinConfig, MatchOrder};
use std::hint::black_box;

fn config() -> JoinConfig {
    JoinConfig {
        buffer: BufferPolicy::Path,
        collect_pairs: false,
        ..JoinConfig::default()
    }
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_algorithms");
    group.sample_size(10);
    for &n in &[2_000usize, 8_000] {
        let t1 = uniform_tree(n, 0.4, 100);
        let t2 = uniform_tree(n, 0.4, 101);
        let probes = uniform_items(n, 0.4, 101);
        group.bench_with_input(BenchmarkId::new("sj_synchronized", n), &n, |b, _| {
            b.iter(|| black_box(spatial_join_with(&t1, &t2, config())))
        });
        group.bench_with_input(BenchmarkId::new("index_nested_loop", n), &n, |b, _| {
            b.iter(|| black_box(index_nested_loop_join(&t1, &probes)))
        });
        if n <= 2_000 {
            let items1 = uniform_items(n, 0.4, 100);
            group.bench_with_input(BenchmarkId::new("brute_force", n), &n, |b, _| {
                b.iter(|| black_box(nested_loop_join(&items1, &probes)))
            });
        }
    }
    group.finish();
}

fn bench_match_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("entry_matching");
    group.sample_size(10);
    let n = 8_000;
    let t1 = uniform_tree(n, 0.6, 102);
    let t2 = uniform_tree(n, 0.6, 103);
    group.bench_function("nested_loop_order", |b| {
        b.iter(|| {
            black_box(spatial_join_with(
                &t1,
                &t2,
                JoinConfig {
                    order: MatchOrder::NestedLoop,
                    ..config()
                },
            ))
        })
    });
    group.bench_function("plane_sweep_order", |b| {
        b.iter(|| {
            black_box(spatial_join_with(
                &t1,
                &t2,
                JoinConfig {
                    order: MatchOrder::PlaneSweep,
                    ..config()
                },
            ))
        })
    });
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_join");
    group.sample_size(10);
    let n = 12_000;
    let t1 = uniform_tree(n, 0.5, 104);
    let t2 = uniform_tree(n, 0.5, 105);
    for threads in [1usize, 2, 4, 8] {
        for mode in [ScheduleMode::RoundRobin, ScheduleMode::CostGuided] {
            let label = match mode {
                ScheduleMode::RoundRobin => "round_robin",
                ScheduleMode::CostGuided => "cost_guided",
            };
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                b.iter(|| {
                    black_box(parallel_spatial_join_with(
                        &t1,
                        &t2,
                        config(),
                        threads,
                        mode,
                    ))
                })
            });
        }
    }
    group.finish();
    if std::env::args().any(|a| a == "--test") {
        return; // smoke mode: timing and tallies both skipped
    }
    // The schedule quality itself, in the BENCH JSON convention: the
    // planned per-worker NA split is deterministic per mode, so one run
    // per (mode, threads) suffices.
    for threads in [2usize, 4, 8] {
        for mode in [ScheduleMode::RoundRobin, ScheduleMode::CostGuided] {
            let label = match mode {
                ScheduleMode::RoundRobin => "round_robin",
                ScheduleMode::CostGuided => "cost_guided",
            };
            let result = parallel_spatial_join_with(&t1, &t2, config(), threads, mode);
            let worker_na: Vec<String> = result.workers.iter().map(|w| w.na.to_string()).collect();
            println!(
                "{{\"group\":\"parallel_join\",\"bench\":\"imbalance/{label}/{threads}\",\
                 \"na_imbalance\":{:.4},\"na_total\":{},\"da_total\":{},\
                 \"worker_na\":[{}]}}",
                result.na_imbalance(),
                result.na_total(),
                result.da_total(),
                worker_na.join(",")
            );
        }
    }
}

criterion_group!(benches, bench_algorithms, bench_match_order, bench_parallel);
criterion_main!(benches);
