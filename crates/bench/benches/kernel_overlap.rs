//! Batched-kernel benchmarks: the SoA intersection kernels of
//! `sjcm-geom` against the scalar predicates they replace.
//!
//! Two layers are measured, both in the BENCH JSON convention (one
//! `{...}` line per result, collected by CI into `BENCH_pr6.json`):
//!
//! * `kernel_micro` — raw one-vs-many predicate throughput on a fixed
//!   slab of rectangles, isolating the autovectorized inner loop;
//! * `node_matching` — the R-tree join's entry-matching phase on the
//!   60K fixed-seed workload: the exact multiset of node pairs the SJ
//!   traversal visits is collected once, then re-matched with the
//!   scalar and batched kernels (informational: short runs);
//! * `pbsm_sweep` — the PBSM plane sweep over the two 60K datasets,
//!   whose long candidate runs are the workload the kernels target.
//!
//! The **guard**: batched sweep matching (`pbsm_sweep` at `grid = 1` —
//! one sweep of the full sorted lists) must be at least 1.5× the
//! scalar one on the full 60K workload (smoke mode runs a reduced
//! scale and only asserts no regression). Both kernels must produce
//! identical results — asserted on every timed run.

use criterion::{criterion_group, criterion_main, Criterion};
use sjcm_bench::uniform_items;
use sjcm_geom::{OverlapMask, Rect, RectBatch};
use sjcm_join::{matched_entries, JoinConfig, MatchKernel, MatchOrder, MatchScratch, PbsmSession};
use sjcm_rtree::{BulkLoad, NodeId, ObjectId, RTree, RTreeConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn smoke() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn str_tree(n: usize, d: f64, seed: u64) -> RTree<2> {
    let items: Vec<_> =
        sjcm_datagen::uniform::generate::<2>(sjcm_datagen::uniform::UniformConfig::new(n, d, seed))
            .into_iter()
            .enumerate()
            .map(|(i, r)| (r, ObjectId(i as u32)))
            .collect();
    RTree::bulk_load(RTreeConfig::paper(2), items, BulkLoad::Str, 0.67)
}

/// Raw kernel throughput: one query rectangle against a slab of
/// candidates, scalar `Rect::intersects` loop vs `overlap_mask`.
fn bench_kernel_micro(c: &mut Criterion) {
    let _ = c; // manual timing: JSON lines, not a criterion group
    let (cands, queries, reps) = if smoke() {
        (4_096usize, 64usize, 5u32)
    } else {
        (4_096, 512, 15)
    };
    let rects: Vec<Rect<2>> = sjcm_datagen::uniform::generate::<2>(
        sjcm_datagen::uniform::UniformConfig::new(cands, 0.5, 600),
    );
    let probes: Vec<Rect<2>> = sjcm_datagen::uniform::generate::<2>(
        sjcm_datagen::uniform::UniformConfig::new(queries, 0.5, 601),
    );
    let batch: RectBatch<2> = rects.iter().copied().collect();
    let mut mask = OverlapMask::new();

    let run_scalar = |hits: &mut u64| {
        let start = Instant::now();
        for q in &probes {
            for r in &rects {
                *hits += u64::from(q.intersects(r));
            }
        }
        start.elapsed()
    };
    let run_batched = |hits: &mut u64, mask: &mut OverlapMask| {
        let start = Instant::now();
        for q in &probes {
            batch.overlap_mask(q, 0, batch.len(), mask);
            *hits += mask.count() as u64;
        }
        start.elapsed()
    };

    let (mut warm_s, mut warm_b) = (0u64, 0u64);
    let _ = (run_scalar(&mut warm_s), run_batched(&mut warm_b, &mut mask));
    assert_eq!(warm_s, warm_b, "kernel disagrees with scalar predicate");

    let (mut scalar, mut batched) = (Duration::MAX, Duration::MAX);
    for _ in 0..reps {
        let (mut hs, mut hb) = (0u64, 0u64);
        scalar = scalar.min(run_scalar(&mut hs));
        batched = batched.min(run_batched(&mut hb, &mut mask));
        assert_eq!(hs, hb);
        black_box((hs, hb));
    }
    let tests = (cands * queries) as f64;
    println!(
        "{{\"group\":\"kernel_overlap\",\"bench\":\"kernel_micro/{cands}x{queries}\",\
         \"scalar_us\":{},\"batched_us\":{},\"scalar_ns_per_test\":{:.3},\
         \"batched_ns_per_test\":{:.3},\"speedup\":{:.2}}}",
        scalar.as_micros(),
        batched.as_micros(),
        scalar.as_nanos() as f64 / tests,
        batched.as_nanos() as f64 / tests,
        scalar.as_secs_f64() / batched.as_secs_f64()
    );
}

/// Collects the multiset of node pairs the synchronized traversal
/// visits — the inputs of every `matched_entries` call in a join of
/// the two trees. Both trees are STR-built from the same generator, so
/// heights match and no pinning arises.
fn visited_node_pairs(t1: &RTree<2>, t2: &RTree<2>) -> Vec<(NodeId, NodeId)> {
    assert_eq!(t1.height(), t2.height(), "bench assumes equal heights");
    let config = JoinConfig::default();
    let mut scratch = MatchScratch::new();
    let mut frontier = vec![(t1.root_id(), t2.root_id())];
    let mut out = Vec::new();
    while let Some((a, b)) = frontier.pop() {
        out.push((a, b));
        let n1 = t1.node(a);
        let n2 = t2.node(b);
        if n1.is_leaf() {
            continue;
        }
        for (c1, c2) in matched_entries(n1, n2, &config, &mut scratch) {
            frontier.push((c1.node(), c2.node()));
        }
    }
    out
}

/// Node-level entry matching on the 60K fixed-seed workload: re-match
/// the exact node pairs the synchronized traversal visits, scalar vs
/// batched, for both entry orders (informational — R-tree nodes hold
/// ~66 entries and sweep runs there are 1–3 candidates long, so this
/// phase is bounded by merge bookkeeping both kernels share; the
/// guard lives on the long-run sweep below).
fn bench_node_matching(c: &mut Criterion) {
    let _ = c; // manual timing: JSON lines, not a criterion group
    let (n, reps) = if smoke() {
        (8_000usize, 5u32)
    } else {
        (60_000, 9)
    };
    let t1 = str_tree(n, 0.5, 4242);
    let t2 = str_tree(n, 0.5, 2424);
    let pairs = visited_node_pairs(&t1, &t2);

    for order in [MatchOrder::PlaneSweep, MatchOrder::NestedLoop] {
        let run = |kernel: MatchKernel| {
            let config = JoinConfig {
                order,
                kernel,
                ..JoinConfig::default()
            };
            let mut scratch = MatchScratch::new();
            let start = Instant::now();
            let mut matched = 0u64;
            for &(a, b) in &pairs {
                matched +=
                    matched_entries(t1.node(a), t2.node(b), &config, &mut scratch).len() as u64;
            }
            let elapsed = start.elapsed();
            black_box(matched);
            (elapsed, matched)
        };
        let (_, expect) = run(MatchKernel::Scalar);
        let (mut scalar, mut batched) = (Duration::MAX, Duration::MAX);
        for _ in 0..reps {
            let (ts, ms) = run(MatchKernel::Scalar);
            let (tb, mb) = run(MatchKernel::Batched);
            assert_eq!(ms, expect, "scalar match count drifted");
            assert_eq!(mb, expect, "batched kernel changed the match count");
            scalar = scalar.min(ts);
            batched = batched.min(tb);
        }
        let label = match order {
            MatchOrder::PlaneSweep => "plane_sweep",
            MatchOrder::NestedLoop => "nested_loop",
        };
        println!(
            "{{\"group\":\"kernel_overlap\",\"bench\":\"node_matching/{label}/{n}\",\
             \"node_pairs\":{},\"entry_matches\":{expect},\
             \"scalar_us\":{},\"batched_us\":{},\"speedup\":{:.2}}}",
            pairs.len(),
            scalar.as_micros(),
            batched.as_micros(),
            scalar.as_secs_f64() / batched.as_secs_f64()
        );
    }
}

/// The sweep-phase guard on the 60K fixed-seed workload: the PBSM
/// plane sweep over both datasets, scalar vs batched. At `grid = 1`
/// the join *is* one sweep of the two sorted 60K lists (candidate runs
/// of ~350 — the workload the SoA kernels target); partitioning and
/// the shared one-time sort are identical across kernels, so the
/// end-to-end ratio understates the kernel win, making the ≥1.5× bar
/// conservative. Higher grid resolutions are reported informationally
/// (shorter runs → the kernel's short-run fallback → parity).
fn bench_pbsm_sweep(c: &mut Criterion) {
    let _ = c; // manual timing: JSON lines, not a criterion group
    let (n, reps) = if smoke() {
        (8_000usize, 5u32)
    } else {
        (60_000, 9)
    };
    let items1 = uniform_items(n, 0.5, 4242);
    let items2 = uniform_items(n, 0.5, 2424);
    let grids: &[usize] = if smoke() { &[1, 16] } else { &[1, 4, 8, 16] };
    for &grid in grids {
        let run = |kernel: MatchKernel| {
            let start = Instant::now();
            let r = PbsmSession::new(&items1, &items2, grid, 50)
                .kernel(kernel)
                .run()
                .expect("ungoverned PBSM cannot fail")
                .result;
            let elapsed = start.elapsed();
            let pairs = r.pairs.len();
            black_box(r);
            (elapsed, pairs)
        };
        let (_, expect) = run(MatchKernel::Scalar);
        assert!(expect > 0, "workload produced no pairs");
        let (mut scalar, mut batched) = (Duration::MAX, Duration::MAX);
        for _ in 0..reps {
            let (ts, ps) = run(MatchKernel::Scalar);
            let (tb, pb) = run(MatchKernel::Batched);
            assert_eq!(ps, expect, "scalar pair count drifted");
            assert_eq!(pb, expect, "batched kernel changed the pair count");
            scalar = scalar.min(ts);
            batched = batched.min(tb);
        }
        let speedup = scalar.as_secs_f64() / batched.as_secs_f64();
        println!(
            "{{\"group\":\"kernel_overlap\",\"bench\":\"pbsm_sweep/{grid}/{n}\",\
             \"pairs\":{expect},\"scalar_us\":{},\"batched_us\":{},\"speedup\":{speedup:.2}}}",
            scalar.as_micros(),
            batched.as_micros(),
        );
        if grid == 1 {
            // The acceptance guard. Smoke mode (reduced scale, shared
            // CI runners) only insists the batched kernel is not a
            // regression; the 1.5× bar applies at full scale.
            let bar = if smoke() { 1.0 } else { 1.5 };
            assert!(
                speedup >= bar,
                "batched sweep matching {speedup:.2}x < required {bar:.1}x \
                 (scalar {scalar:?}, batched {batched:?})"
            );
        }
        if grid == 16 {
            // High-resolution grids produce cells too small (~230
            // entries at 60K) to amortize the per-cell SoA fill, so
            // the kernel demotes them to the scalar path and the two
            // arms run identical code: the expected speedup is parity,
            // and what this guard rejects is the 0.91× class of
            // regression where batched pays the fill without using it.
            // The bar sits a noise margin below 1.0 — back-to-back
            // parity runs measure 0.99–1.01×.
            let bar = if smoke() { 0.9 } else { 0.95 };
            assert!(
                speedup >= bar,
                "batched sweep at grid 16 regressed to {speedup:.2}x \
                 (< {bar:.1}x; scalar {scalar:?}, batched {batched:?})"
            );
        }
    }
}

criterion_group!(
    benches,
    bench_kernel_micro,
    bench_node_matching,
    bench_pbsm_sweep
);
criterion_main!(benches);
