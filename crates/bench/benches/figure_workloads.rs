//! Reduced-scale regenerations of the paper's figure workloads as
//! benchmarks: one representative measurement per figure, so `cargo
//! bench` exercises the exact code paths that `experiments <figure>`
//! runs at paper scale. (The accuracy numbers themselves come from the
//! experiments binary; criterion measures the cost of producing them.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sjcm_bench::uniform_tree;
use sjcm_core::{join, DataProfile, ModelConfig, TreeParams};
use sjcm_join::{BufferPolicy, JoinConfig, JoinResultSet, JoinSession};
use sjcm_rtree::RTree;
use std::hint::black_box;

fn join_config() -> JoinConfig {
    JoinConfig {
        buffer: BufferPolicy::Path,
        collect_pairs: false,
        ..JoinConfig::default()
    }
}

fn session_join(t1: &RTree<2>, t2: &RTree<2>) -> JoinResultSet {
    JoinSession::new(t1, t2)
        .config(join_config())
        .run()
        .expect("ungoverned join cannot fail")
        .result
}

/// Figure 5 rows (reduced): one small and one asymmetric combo per
/// dimensionality-2 grid, measured end to end (build excluded).
fn bench_figure5_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5_join_rows");
    group.sample_size(10);
    let scale = [(2_000usize, 2_000usize), (2_000, 8_000), (8_000, 8_000)];
    for &(n1, n2) in &scale {
        let t1 = uniform_tree(n1, 0.5, 500);
        let t2 = uniform_tree(n2, 0.5, 501);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n1}x{n2}")),
            &(n1, n2),
            |b, _| b.iter(|| black_box(session_join(&t1, &t2))),
        );
    }
    group.finish();
}

/// Figure 6/7 series: the analytic sweeps (pure model evaluation over
/// the cardinality grid), which an optimizer would run per candidate
/// plan.
fn bench_figure67_series(c: &mut Criterion) {
    let cfg = ModelConfig::paper(2);
    let mut group = c.benchmark_group("figure67_analytic_series");
    group.bench_function("figure6_na_da_grid", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in [20_000u64, 40_000, 60_000, 80_000] {
                let p = TreeParams::<2>::from_data(DataProfile::new(n, 0.5), &cfg);
                acc += join::join_cost_na(&p, &p) + join::join_cost_da(&p, &p);
            }
            black_box(acc)
        })
    });
    group.bench_function("figure7_da_sweep", |b| {
        b.iter(|| {
            let fixed = TreeParams::<2>::from_data(DataProfile::new(20_000, 0.5), &cfg);
            let mut acc = 0.0;
            for step in 0..13u64 {
                let n = 20_000 + step * 5_000;
                let p = TreeParams::<2>::from_data(DataProfile::new(n, 0.5), &cfg);
                acc += join::join_cost_da(&p, &fixed) + join::join_cost_da(&fixed, &p);
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// §4.2-style workload: the instrumented join over skewed data, the
/// measurement behind the non-uniform accuracy table.
fn bench_nonuniform_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("nonuniform_join_row");
    group.sample_size(10);
    let rects1 = sjcm_datagen::skewed::gaussian_clusters::<2>(
        sjcm_datagen::skewed::ClusterConfig::new(6_000, 0.4, 502),
    );
    let rects2 = sjcm_datagen::skewed::gaussian_clusters::<2>(
        sjcm_datagen::skewed::ClusterConfig::new(6_000, 0.4, 503),
    );
    let build = |rects: &[sjcm_geom::Rect<2>]| {
        let mut t = sjcm_rtree::RTree::new(sjcm_rtree::RTreeConfig::paper(2));
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, sjcm_rtree::ObjectId(i as u32));
        }
        t
    };
    let t1 = build(&rects1);
    let t2 = build(&rects2);
    group.bench_function("clustered_6k_x_6k", |b| {
        b.iter(|| black_box(session_join(&t1, &t2)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_figure5_rows,
    bench_figure67_series,
    bench_nonuniform_row
);
criterion_main!(benches);
