//! Tree-construction benchmarks: R\* vs quadratic insertion, STR vs
//! Hilbert bulk loading, plus deletion and persistence round-trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sjcm_bench::uniform_items;
use sjcm_rtree::{BulkLoad, RTree, RTreeConfig, SplitStrategy};
use sjcm_storage::InMemoryPageStore;
use std::hint::black_box;

fn bench_insertion(c: &mut Criterion) {
    let mut group = c.benchmark_group("insertion_build");
    group.sample_size(10);
    for &n in &[2_000usize, 10_000] {
        let items = uniform_items(n, 0.4, 300);
        group.bench_with_input(BenchmarkId::new("rstar", n), &items, |b, items| {
            b.iter(|| {
                let mut tree = RTree::new(RTreeConfig::paper(2));
                for &(r, id) in items {
                    tree.insert(r, id);
                }
                black_box(tree.node_count())
            })
        });
        group.bench_with_input(BenchmarkId::new("quadratic", n), &items, |b, items| {
            b.iter(|| {
                let mut tree =
                    RTree::new(RTreeConfig::paper(2).with_split(SplitStrategy::Quadratic));
                for &(r, id) in items {
                    tree.insert(r, id);
                }
                black_box(tree.node_count())
            })
        });
    }
    group.finish();
}

fn bench_bulk_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk_load");
    group.sample_size(10);
    for &n in &[10_000usize, 40_000] {
        let items = uniform_items(n, 0.4, 301);
        group.bench_with_input(BenchmarkId::new("str", n), &items, |b, items| {
            b.iter(|| {
                black_box(RTree::bulk_load(
                    RTreeConfig::paper(2),
                    items.clone(),
                    BulkLoad::Str,
                    1.0,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("hilbert", n), &items, |b, items| {
            b.iter(|| {
                black_box(RTree::bulk_load(
                    RTreeConfig::paper(2),
                    items.clone(),
                    BulkLoad::Hilbert,
                    1.0,
                ))
            })
        });
    }
    group.finish();
}

fn bench_persistence(c: &mut Criterion) {
    let mut group = c.benchmark_group("persistence");
    group.sample_size(10);
    let items = uniform_items(20_000, 0.4, 302);
    let tree = RTree::bulk_load(RTreeConfig::paper(2), items, BulkLoad::Str, 0.8);
    group.bench_function("save", |b| {
        b.iter(|| {
            let mut store = InMemoryPageStore::with_default_page_size();
            black_box(tree.save(&mut store).unwrap())
        })
    });
    let mut store = InMemoryPageStore::with_default_page_size();
    let handle = tree.save(&mut store).unwrap();
    group.bench_function("load", |b| {
        b.iter(|| black_box(RTree::<2>::load(&store, handle, *tree.config()).unwrap()))
    });
    group.finish();
}

fn bench_deletion(c: &mut Criterion) {
    let mut group = c.benchmark_group("deletion");
    group.sample_size(10);
    let items = uniform_items(5_000, 0.4, 303);
    group.bench_function("delete_half", |b| {
        b.iter_with_setup(
            || {
                let mut tree = RTree::new(RTreeConfig::paper(2));
                for &(r, id) in &items {
                    tree.insert(r, id);
                }
                tree
            },
            |mut tree| {
                for &(r, id) in items.iter().step_by(2) {
                    assert!(tree.remove(&r, id));
                }
                black_box(tree.len())
            },
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_insertion,
    bench_bulk_load,
    bench_persistence,
    bench_deletion
);
criterion_main!(benches);
