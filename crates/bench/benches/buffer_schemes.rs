//! Buffer-manager benchmarks: executor throughput under each scheme and
//! the raw buffer data structures themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sjcm_bench::uniform_tree;
use sjcm_join::{BufferPolicy, JoinConfig, JoinSession};
use sjcm_storage::{BufferManager, LruBuffer, NoBuffer, PageId, PathBuffer};
use std::hint::black_box;

fn bench_join_under_buffers(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_under_buffer");
    group.sample_size(10);
    let n = 8_000;
    let t1 = uniform_tree(n, 0.5, 200);
    let t2 = uniform_tree(n, 0.5, 201);
    for (label, policy) in [
        ("none", BufferPolicy::None),
        ("path", BufferPolicy::Path),
        ("lru64", BufferPolicy::Lru(64)),
        ("lru1024", BufferPolicy::Lru(1024)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, &policy| {
            b.iter(|| {
                black_box(
                    JoinSession::new(&t1, &t2)
                        .config(JoinConfig {
                            buffer: policy,
                            collect_pairs: false,
                            ..JoinConfig::default()
                        })
                        .run()
                        .expect("ungoverned join cannot fail")
                        .result,
                )
            })
        });
    }
    group.finish();
}

fn bench_buffer_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_access");
    // A synthetic access trace: cyclic with some locality.
    let trace: Vec<(PageId, u8)> = (0..10_000u32)
        .map(|i| (PageId(i % 700), (i % 4) as u8))
        .collect();
    group.bench_function("no_buffer", |b| {
        b.iter(|| {
            let mut buf = NoBuffer::new();
            let mut misses = 0u64;
            for &(p, l) in &trace {
                misses += u64::from(buf.access(p, l).is_miss());
            }
            black_box(misses)
        })
    });
    group.bench_function("path_buffer", |b| {
        b.iter(|| {
            let mut buf = PathBuffer::new();
            let mut misses = 0u64;
            for &(p, l) in &trace {
                misses += u64::from(buf.access(p, l).is_miss());
            }
            black_box(misses)
        })
    });
    for cap in [64usize, 512] {
        group.bench_with_input(BenchmarkId::new("lru", cap), &cap, |b, &cap| {
            b.iter(|| {
                let mut buf = LruBuffer::new(cap);
                let mut misses = 0u64;
                for &(p, l) in &trace {
                    misses += u64::from(buf.access(p, l).is_miss());
                }
                black_box(misses)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join_under_buffers, bench_buffer_primitives);
criterion_main!(benches);
