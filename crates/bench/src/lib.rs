//! Shared fixtures for the criterion benchmarks.
//!
//! The benchmark crate has no library API of its own; this module only
//! hosts the helpers the `benches/` targets share, so they stay
//! consistent about workload shapes and seeds.

/// Builds a paper-configured R\*-tree over `n` uniform rectangles of
/// density `d`.
pub fn uniform_tree(n: usize, d: f64, seed: u64) -> sjcm_rtree::RTree<2> {
    let mut tree = sjcm_rtree::RTree::new(sjcm_rtree::RTreeConfig::paper(2));
    for (r, id) in uniform_items(n, d, seed) {
        tree.insert(r, id);
    }
    tree
}

/// Uniform items `(rect, id)` for construction benches.
pub fn uniform_items(
    n: usize,
    d: f64,
    seed: u64,
) -> Vec<(sjcm_geom::Rect<2>, sjcm_rtree::ObjectId)> {
    sjcm_datagen::uniform::generate::<2>(sjcm_datagen::uniform::UniformConfig::new(n, d, seed))
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, sjcm_rtree::ObjectId(i as u32)))
        .collect()
}
