//! TIGER-like synthetic geography — the substitution for the paper's
//! real data sets.
//!
//! The paper's real workloads are segment files from the TIGER/Line
//! database of the U.S. Bureau of the Census \[Bur91\]: road and
//! hydrography line segments, stored as the MBRs of short polyline
//! segments. What makes that data *hard* for a uniform cost model — and
//! therefore what the substitution must preserve — is:
//!
//! * objects are tiny, thin rectangles (segment MBRs), often degenerate
//!   in one dimension (axis-aligned road segments);
//! * they are **spatially correlated** — chained along polylines — so
//!   local density varies by orders of magnitude across the workspace;
//! * networks cluster around "settlements" with sparse countryside
//!   between them.
//!
//! The generator grows a road network as seeded random walks: trunk
//! roads start at settlement centers and wander with small heading
//! changes, occasionally spawning branches; each step emits one segment
//! MBR. A "hydro" preset produces longer, meandering polylines (rivers).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sjcm_geom::{Point, Rect};

/// Configuration of the synthetic TIGER-like network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TigerConfig {
    /// Approximate number of segment MBRs to produce.
    pub target_segments: usize,
    /// Number of settlement centers the networks radiate from.
    pub settlements: usize,
    /// Mean segment length in workspace units.
    pub segment_length: f64,
    /// Per-step heading jitter in radians (small = straight roads,
    /// large = meandering rivers).
    pub heading_jitter: f64,
    /// Probability of spawning a branch at each step.
    pub branch_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TigerConfig {
    /// Road-network preset: fairly straight, heavily branching.
    pub fn roads(target_segments: usize, seed: u64) -> Self {
        Self {
            target_segments,
            settlements: 8,
            segment_length: 0.0025,
            heading_jitter: 0.35,
            branch_probability: 0.08,
            seed,
        }
    }

    /// Hydrography preset: long meandering polylines, few branches.
    pub fn hydro(target_segments: usize, seed: u64) -> Self {
        Self {
            target_segments,
            settlements: 6,
            segment_length: 0.006,
            heading_jitter: 0.8,
            branch_probability: 0.015,
            seed,
        }
    }
}

/// Generates the segment MBRs of a synthetic network.
pub fn generate(config: TigerConfig) -> Vec<Rect<2>> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut segments: Vec<Rect<2>> = Vec::with_capacity(config.target_segments);
    if config.target_segments == 0 {
        return segments;
    }
    let settlements: Vec<[f64; 2]> = (0..config.settlements.max(1))
        .map(|_| [rng.gen_range(0.1..0.9), rng.gen_range(0.1..0.9)])
        .collect();
    // Walker stack: (position, heading, remaining steps).
    let mut walkers: Vec<([f64; 2], f64, usize)> = Vec::new();
    let spawn_len = |rng: &mut StdRng| rng.gen_range(20..150usize);
    while segments.len() < config.target_segments {
        if walkers.is_empty() {
            let s = settlements[rng.gen_range(0..settlements.len())];
            let jitter = [
                (s[0] + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0),
                (s[1] + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0),
            ];
            walkers.push((
                jitter,
                rng.gen_range(0.0..std::f64::consts::TAU),
                spawn_len(&mut rng),
            ));
        }
        let (mut pos, mut heading, steps) = walkers.pop().expect("walker pushed above");
        for _ in 0..steps {
            if segments.len() >= config.target_segments {
                break;
            }
            heading += rng.gen_range(-config.heading_jitter..config.heading_jitter);
            let len = config.segment_length * rng.gen_range(0.3..1.7);
            let next = [pos[0] + len * heading.cos(), pos[1] + len * heading.sin()];
            // Bounce off workspace walls by reflecting the heading.
            let next = [next[0].clamp(0.0, 1.0), next[1].clamp(0.0, 1.0)];
            if next[0] <= 0.0 || next[0] >= 1.0 {
                heading = std::f64::consts::PI - heading;
            }
            if next[1] <= 0.0 || next[1] >= 1.0 {
                heading = -heading;
            }
            segments.push(Rect::from_corners(Point::new(pos), Point::new(next)));
            pos = next;
            if rng.gen_bool(config.branch_probability) {
                let branch_heading = heading
                    + if rng.gen_bool(0.5) {
                        std::f64::consts::FRAC_PI_2
                    } else {
                        -std::f64::consts::FRAC_PI_2
                    };
                walkers.push((pos, branch_heading, spawn_len(&mut rng)));
            }
        }
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjcm_geom::density;

    #[test]
    fn produces_requested_count_in_unit_space() {
        let segs = generate(TigerConfig::roads(10_000, 1));
        assert_eq!(segs.len(), 10_000);
        for s in &segs {
            assert!(s.in_unit_space());
        }
    }

    #[test]
    fn segments_are_small_and_thin() {
        let segs = generate(TigerConfig::roads(5_000, 2));
        let d = density(segs.iter());
        // Thin segment MBRs: total coverage far below uniform workloads.
        assert!(d < 0.2, "density {d}");
        let avg_diag: f64 = segs
            .iter()
            .map(|s| (s.extent(0).powi(2) + s.extent(1).powi(2)).sqrt())
            .sum::<f64>()
            / segs.len() as f64;
        assert!(avg_diag < 0.02, "avg segment diagonal {avg_diag}");
    }

    #[test]
    fn network_is_spatially_correlated() {
        // Consecutive segments chain: each starts where the previous
        // ended (within a walker). Proxy check: nearest-neighbour
        // distances are far below uniform expectation.
        let segs = generate(TigerConfig::roads(2_000, 3));
        let centers: Vec<_> = segs.iter().map(|s| s.center()).collect();
        let mut adjacent = 0;
        for pair in centers.windows(2) {
            if pair[0].dist(&pair[1]) < 0.02 {
                adjacent += 1;
            }
        }
        assert!(
            adjacent > centers.len() / 2,
            "only {adjacent} chained neighbours"
        );
    }

    #[test]
    fn local_density_is_highly_nonuniform() {
        use sjcm_core_free_density_cv::count_cv;
        // Uniform data at this scale would have cv ≈ sqrt(cells/N) ≈ 0.14;
        // the network should be several times more skewed.
        let segs = generate(TigerConfig::roads(20_000, 4));
        let cv = count_cv(&segs, 20);
        assert!(cv > 0.6, "segment field too uniform: cv = {cv}");
    }

    // Local helper replicating a grid-count CV without depending on the
    // core crate (which sits above datagen in the layering).
    mod sjcm_core_free_density_cv {
        use sjcm_geom::Rect;

        pub fn count_cv(rects: &[Rect<2>], grid: usize) -> f64 {
            let mut counts = vec![0f64; grid * grid];
            for r in rects {
                let c = r.center();
                let x = ((c[0] * grid as f64) as usize).min(grid - 1);
                let y = ((c[1] * grid as f64) as usize).min(grid - 1);
                counts[y * grid + x] += 1.0;
            }
            let n = counts.len() as f64;
            let mean = counts.iter().sum::<f64>() / n;
            let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / n;
            var.sqrt() / mean
        }
    }

    #[test]
    fn hydro_meanders_more_than_roads() {
        // Rivers turn harder: over a 50-segment window, the straight-line
        // displacement per unit of path length is smaller. Normalize by
        // the summed segment diagonals so the different segment lengths
        // of the two presets cancel.
        let roads = generate(TigerConfig::roads(5_000, 5));
        let hydro = generate(TigerConfig::hydro(5_000, 5));
        let straightness = |segs: &[Rect<2>]| {
            let mut total = 0.0;
            let mut windows = 0usize;
            for c in segs.chunks(50).filter(|c| c.len() == 50) {
                let path: f64 = c
                    .iter()
                    .map(|s| (s.extent(0).powi(2) + s.extent(1).powi(2)).sqrt())
                    .sum();
                if path > 0.0 {
                    total += c[0].center().dist(&c[49].center()) / path;
                    windows += 1;
                }
            }
            total / windows as f64
        };
        assert!(
            straightness(&roads) > straightness(&hydro),
            "roads should run straighter: {} vs {}",
            straightness(&roads),
            straightness(&hydro)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(TigerConfig::roads(500, 6));
        let b = generate(TigerConfig::roads(500, 6));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_request() {
        assert!(generate(TigerConfig::roads(0, 7)).is_empty());
    }
}
