//! Seeded synthetic data generators for the spatial-join cost-model
//! experiments.
//!
//! §4 of the paper evaluates on three families of data, all reproduced
//! here:
//!
//! * [`uniform`] — "random" data sets: `N ∈ [20K, 80K]` rectangles of
//!   exact target density `D ∈ [0.2, 0.8]`, uniformly placed in the unit
//!   workspace.
//! * [`skewed`] — non-uniform synthetic data: Gaussian cluster fields
//!   and power-law (Zipf-like) coordinate skew.
//! * [`tiger`] — a **substitution** for the TIGER/Line census files used
//!   in the paper (real U.S. road/hydrography data, not redistributable
//!   here): seeded random-walk polyline networks whose segment MBRs have
//!   the same statistical character — many small, thin, spatially
//!   correlated rectangles with highly non-uniform local density. See
//!   DESIGN.md ("Substitutions") for the rationale.
//!
//! Every generator is a deterministic function of its seed, so every
//! experiment in the repository is bit-reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod skewed;
pub mod tiger;
pub mod uniform;

use sjcm_geom::Rect;

/// Attaches sequential raw object ids (0, 1, 2, …) to a rectangle list;
/// callers wrap them in `sjcm_rtree::ObjectId` (this crate sits below the
/// tree crate in the dependency graph).
pub fn with_ids<const N: usize>(rects: Vec<Rect<N>>) -> Vec<(Rect<N>, u32)> {
    rects
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, i as u32))
        .collect()
}

/// Uniformly placed query windows of fixed extents, for range-query
/// experiments. Windows are fully contained in the unit workspace.
pub fn query_windows<const N: usize>(count: usize, extents: [f64; N], seed: u64) -> Vec<Rect<N>> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut lo = [0.0; N];
            let mut hi = [0.0; N];
            for k in 0..N {
                let e = extents[k].clamp(0.0, 1.0);
                let start = rng.gen_range(0.0..=(1.0 - e));
                lo[k] = start;
                hi[k] = start + e;
            }
            Rect::new(lo, hi).expect("window construction is well-formed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_ids_is_sequential() {
        let rects = vec![Rect::<2>::unit(); 3];
        let items = with_ids(rects);
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].1, 0);
        assert_eq!(items[2].1, 2);
    }

    #[test]
    fn query_windows_in_unit_space() {
        let windows = query_windows::<2>(100, [0.25, 0.1], 7);
        assert_eq!(windows.len(), 100);
        for w in &windows {
            assert!(w.in_unit_space());
            assert!((w.extent(0) - 0.25).abs() < 1e-12);
            assert!((w.extent(1) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn query_windows_deterministic_per_seed() {
        let a = query_windows::<2>(10, [0.1, 0.1], 42);
        let b = query_windows::<2>(10, [0.1, 0.1], 42);
        let c = query_windows::<2>(10, [0.1, 0.1], 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn full_extent_window_is_workspace() {
        let w = query_windows::<1>(1, [1.0], 1);
        assert_eq!(w[0], Rect::unit());
    }
}
