//! Skewed (non-uniform) synthetic data.
//!
//! The paper's §4.2 evaluates the model on "skewed distributions …
//! constructed by using random number generators" without further
//! detail. Two standard skew families are provided:
//!
//! * [`gaussian_clusters`] — a cluster field: object centers are drawn
//!   from a mixture of isotropic Gaussians with uniformly placed means.
//! * [`power_law`] — coordinate skew: each center coordinate is
//!   `u^θ` for uniform `u`, concentrating mass near the origin for
//!   `θ > 1` (a Zipf-like marginal).
//!
//! Both clamp objects into the unit workspace and draw square objects of
//! a given *average* measure, so the realized density is close to (but,
//! unlike the uniform generator, not exactly) the target — matching how
//! real skewed data behaves.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr_normal::sample_normal;
use sjcm_geom::{Point, Rect};

// A tiny Box–Muller shim: `rand` (without rand_distr, which is not in
// the approved crate list) only gives uniform samples.
mod rand_distr_normal {
    use rand::Rng;

    /// One standard-normal sample via Box–Muller.
    pub fn sample_normal(rng: &mut impl Rng) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Configuration of the Gaussian-cluster generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of rectangles.
    pub cardinality: usize,
    /// Target density (approximate; see module docs).
    pub density: f64,
    /// Number of cluster centers.
    pub clusters: usize,
    /// Standard deviation of each cluster, in workspace units.
    pub sigma: f64,
    /// RNG seed for the object draws.
    pub seed: u64,
    /// RNG seed for the cluster-center placement (defaults to `seed`).
    /// Two datasets generated with the same `center_seed` but different
    /// `seed`s share a cluster layout while drawing disjoint objects —
    /// the "co-located hot spots" scenario that makes clustered joins
    /// produce far more pairs than a uniform model predicts.
    pub center_seed: u64,
}

impl ClusterConfig {
    /// A reasonable default cluster field: 10 clusters of σ = 0.05.
    pub fn new(cardinality: usize, density: f64, seed: u64) -> Self {
        Self {
            cardinality,
            density,
            clusters: 10,
            sigma: 0.05,
            seed,
            center_seed: seed,
        }
    }

    /// Overrides the cluster count.
    pub fn with_clusters(mut self, clusters: usize) -> Self {
        assert!(clusters >= 1);
        self.clusters = clusters;
        self
    }

    /// Overrides the cluster spread.
    pub fn with_sigma(mut self, sigma: f64) -> Self {
        assert!(sigma > 0.0);
        self.sigma = sigma;
        self
    }

    /// Overrides the cluster-center seed (see [`ClusterConfig::center_seed`]).
    pub fn with_center_seed(mut self, center_seed: u64) -> Self {
        self.center_seed = center_seed;
        self
    }
}

/// Generates a Gaussian cluster field.
pub fn gaussian_clusters<const N: usize>(config: ClusterConfig) -> Vec<Rect<N>> {
    // Centers and objects use independent streams so that `center_seed`
    // alone determines the cluster layout.
    let mut center_rng = StdRng::seed_from_u64(config.center_seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut rng = StdRng::seed_from_u64(config.seed);
    if config.cardinality == 0 {
        return Vec::new();
    }
    let side = (config.density / config.cardinality as f64).powf(1.0 / N as f64);
    let centers: Vec<[f64; N]> = (0..config.clusters)
        .map(|_| {
            let mut c = [0.0; N];
            for ck in c.iter_mut() {
                *ck = center_rng.gen_range(0.1..0.9);
            }
            c
        })
        .collect();
    (0..config.cardinality)
        .map(|_| {
            let cluster = &centers[rng.gen_range(0..centers.len())];
            let mut center = [0.0; N];
            for k in 0..N {
                let offset = sample_normal(&mut rng) * config.sigma;
                center[k] = (cluster[k] + offset).clamp(side / 2.0, 1.0 - side / 2.0);
            }
            Rect::centered(Point::new(center), [side; N])
        })
        .collect()
}

/// Generates power-law coordinate skew: centers at `u^θ` per dimension.
/// `theta = 1` reduces to uniform; larger values skew harder toward the
/// origin.
pub fn power_law<const N: usize>(
    cardinality: usize,
    density: f64,
    theta: f64,
    seed: u64,
) -> Vec<Rect<N>> {
    assert!(theta >= 1.0, "theta < 1 would skew away from the origin");
    let mut rng = StdRng::seed_from_u64(seed);
    if cardinality == 0 {
        return Vec::new();
    }
    let side = (density / cardinality as f64).powf(1.0 / N as f64);
    (0..cardinality)
        .map(|_| {
            let mut center = [0.0; N];
            for ck in center.iter_mut() {
                let u: f64 = rng.gen_range(0.0..1.0);
                *ck = u.powf(theta).clamp(side / 2.0, 1.0 - side / 2.0);
            }
            Rect::centered(Point::new(center), [side; N])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjcm_geom::density;

    #[test]
    fn clusters_are_clustered() {
        let rects = gaussian_clusters::<2>(
            ClusterConfig::new(5_000, 0.2, 1)
                .with_clusters(3)
                .with_sigma(0.02),
        );
        assert_eq!(rects.len(), 5_000);
        // With 3 tight clusters, a 10×10 grid should leave most cells
        // empty.
        let mut occupied = std::collections::HashSet::new();
        for r in &rects {
            let c = r.center();
            occupied.insert((
                (c[0] * 10.0).min(9.0) as usize,
                (c[1] * 10.0).min(9.0) as usize,
            ));
        }
        assert!(
            occupied.len() < 40,
            "{} of 100 cells occupied — not clustered",
            occupied.len()
        );
    }

    #[test]
    fn cluster_density_close_to_target() {
        let rects = gaussian_clusters::<2>(ClusterConfig::new(10_000, 0.4, 2));
        let d = density(rects.iter());
        assert!((d - 0.4).abs() < 0.02, "density {d}");
        for r in &rects {
            assert!(r.in_unit_space());
        }
    }

    #[test]
    fn power_law_skews_toward_origin() {
        let rects = power_law::<2>(10_000, 0.1, 3.0, 3);
        let near_origin = rects
            .iter()
            .filter(|r| r.center()[0] < 0.25 && r.center()[1] < 0.25)
            .count();
        // Uniform would give ~625; θ = 3 concentrates the majority there
        // (P[u³ < 0.25] = 0.25^(1/3) ≈ 0.63 per axis → ~0.4 jointly).
        assert!(near_origin > 3_000, "only {near_origin} near origin");
    }

    #[test]
    fn power_law_theta_one_is_roughly_uniform() {
        let rects = power_law::<2>(10_000, 0.1, 1.0, 4);
        let near_origin = rects
            .iter()
            .filter(|r| r.center()[0] < 0.25 && r.center()[1] < 0.25)
            .count();
        assert!((400..900).contains(&near_origin), "{near_origin}");
    }

    #[test]
    fn shared_center_seed_colocates_clusters() {
        let base = ClusterConfig::new(2_000, 0.1, 70)
            .with_clusters(3)
            .with_sigma(0.02);
        let a = gaussian_clusters::<2>(base);
        let b = gaussian_clusters::<2>(ClusterConfig { seed: 71, ..base });
        assert_ne!(a, b, "different object seeds must draw different objects");
        // Same layout: the occupied coarse-grid cells largely coincide.
        let cells = |rects: &[Rect<2>]| {
            rects
                .iter()
                .map(|r| {
                    let c = r.center();
                    (
                        (c[0] * 10.0).min(9.0) as usize,
                        (c[1] * 10.0).min(9.0) as usize,
                    )
                })
                .collect::<std::collections::HashSet<_>>()
        };
        let (ca, cb) = (cells(&a), cells(&b));
        let shared = ca.intersection(&cb).count();
        assert!(
            2 * shared >= ca.len().max(cb.len()),
            "layouts diverge: {} shared of {}/{}",
            shared,
            ca.len(),
            cb.len()
        );
    }

    #[test]
    fn generators_deterministic() {
        let a = gaussian_clusters::<2>(ClusterConfig::new(100, 0.1, 5));
        let b = gaussian_clusters::<2>(ClusterConfig::new(100, 0.1, 5));
        assert_eq!(a, b);
        let p = power_law::<1>(100, 0.1, 2.0, 6);
        let q = power_law::<1>(100, 0.1, 2.0, 6);
        assert_eq!(p, q);
    }

    #[test]
    fn normal_shim_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn power_law_rejects_theta_below_one() {
        power_law::<2>(10, 0.1, 0.5, 8);
    }

    #[test]
    fn empty_sets() {
        assert!(gaussian_clusters::<2>(ClusterConfig::new(0, 0.0, 9)).is_empty());
        assert!(power_law::<2>(0, 0.0, 2.0, 9).is_empty());
    }
}
