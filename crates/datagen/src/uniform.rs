//! Uniform ("random") rectangle sets with exact target density.
//!
//! The paper's synthetic workloads are specified by `(N, D)` only. For a
//! target density `D`, the average object measure must be `D / N`; the
//! generator draws square objects of exactly that measure (optionally
//! jittering the aspect ratio while preserving the measure) and places
//! their centers so the object stays inside the unit workspace, which
//! keeps the realized density exactly `D`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sjcm_geom::{Point, Rect};

/// Configuration of the uniform generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformConfig {
    /// Number of rectangles, the paper's `N`.
    pub cardinality: usize,
    /// Target density `D` (sum of measures over the unit workspace).
    pub density: f64,
    /// Aspect-ratio jitter in `[0, 1)`: 0 draws squares; larger values
    /// scale each dimension by a random factor in `[1−j, 1+j]` …
    /// renormalized so the measure (hence the density) is unchanged.
    pub aspect_jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl UniformConfig {
    /// Squares of exact density, the paper's baseline workload.
    pub fn new(cardinality: usize, density: f64, seed: u64) -> Self {
        assert!(density >= 0.0 && density.is_finite());
        Self {
            cardinality,
            density,
            aspect_jitter: 0.0,
            seed,
        }
    }

    /// Enables aspect-ratio jitter.
    pub fn with_aspect_jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter));
        self.aspect_jitter = jitter;
        self
    }
}

/// Generates the rectangle set described by `config` in `N` dimensions.
pub fn generate<const N: usize>(config: UniformConfig) -> Vec<Rect<N>> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let count = config.cardinality;
    if count == 0 {
        return Vec::new();
    }
    let avg_measure = config.density / count as f64;
    let base_side = avg_measure.powf(1.0 / N as f64);
    assert!(
        base_side <= 1.0,
        "density {} over {count} objects needs sides > 1",
        config.density
    );
    (0..count)
        .map(|_| {
            let mut sides = [base_side; N];
            if config.aspect_jitter > 0.0 {
                let mut measure = 1.0;
                for s in sides.iter_mut() {
                    let f = rng.gen_range(1.0 - config.aspect_jitter..=1.0 + config.aspect_jitter);
                    *s *= f;
                    measure *= f;
                }
                // Renormalize so the object's measure is exactly
                // avg_measure again.
                let fix = measure.powf(1.0 / N as f64);
                for s in sides.iter_mut() {
                    *s /= fix;
                    // Jitter must never push a side past the workspace.
                    *s = s.min(1.0);
                }
            }
            let mut center = [0.0; N];
            for k in 0..N {
                let half = sides[k] / 2.0;
                center[k] = rng.gen_range(half..=1.0 - half);
            }
            Rect::centered(Point::new(center), sides)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjcm_geom::density;

    #[test]
    fn exact_density_squares() {
        let rects = generate::<2>(UniformConfig::new(10_000, 0.5, 1));
        assert_eq!(rects.len(), 10_000);
        let d = density(rects.iter());
        assert!((d - 0.5).abs() < 1e-9, "density {d}");
        for r in &rects {
            assert!(r.in_unit_space());
            assert!((r.extent(0) - r.extent(1)).abs() < 1e-12, "squares");
        }
    }

    #[test]
    fn exact_density_with_jitter() {
        let rects = generate::<2>(UniformConfig::new(5_000, 0.3, 2).with_aspect_jitter(0.5));
        let d = density(rects.iter());
        assert!((d - 0.3).abs() < 1e-9, "density {d}");
        // Jitter actually varies the aspect.
        let distinct_aspects = rects
            .iter()
            .filter(|r| (r.extent(0) - r.extent(1)).abs() > 1e-9)
            .count();
        assert!(distinct_aspects > 4_000);
        for r in &rects {
            assert!(r.in_unit_space());
        }
    }

    #[test]
    fn one_dimensional_intervals() {
        let rects = generate::<1>(UniformConfig::new(20_000, 0.5, 3));
        let d = density(rects.iter());
        assert!((d - 0.5).abs() < 1e-9);
        // Interval length = D/N.
        assert!((rects[0].extent(0) - 2.5e-5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate::<2>(UniformConfig::new(100, 0.2, 9));
        let b = generate::<2>(UniformConfig::new(100, 0.2, 9));
        let c = generate::<2>(UniformConfig::new(100, 0.2, 10));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_density_gives_points() {
        let rects = generate::<2>(UniformConfig::new(100, 0.0, 4));
        for r in &rects {
            assert_eq!(r.measure(), 0.0);
        }
    }

    #[test]
    fn empty_set() {
        assert!(generate::<2>(UniformConfig::new(0, 0.5, 5)).is_empty());
    }

    #[test]
    fn centers_cover_the_workspace() {
        // Spot-check the placement is not degenerate: all four quadrants
        // are populated.
        let rects = generate::<2>(UniformConfig::new(2_000, 0.1, 6));
        let mut quadrants = [0usize; 4];
        for r in &rects {
            let c = r.center();
            let q = usize::from(c[0] > 0.5) * 2 + usize::from(c[1] > 0.5);
            quadrants[q] += 1;
        }
        for (i, &q) in quadrants.iter().enumerate() {
            assert!(q > 300, "quadrant {i} only has {q} rects");
        }
    }

    #[test]
    #[should_panic(expected = "sides > 1")]
    fn rejects_impossible_density() {
        generate::<2>(UniformConfig::new(1, 2.0, 7));
    }
}
