//! Property tests for the trace replay engine: the single-pass Mattson
//! stack-distance analyzer must agree with brute-force LRU simulation
//! on every trace and every capacity, and replay must be an exact
//! reconstruction when the recorded policy is replayed.

use proptest::prelude::*;
use sjcm_storage::recorder::{FlightRecorder, PageAccessEvent, RecordedPolicy};
use sjcm_storage::replay::{replay, StackDistance};
use sjcm_storage::{AccessStats, BufferManager, PageId};
use std::collections::HashMap;

/// One randomized access: (corr domain, tree, page, level).
fn access() -> impl Strategy<Value = (u32, u8, u32, u8)> {
    (0u32..3, 1u8..3, 0u32..20, 0u8..4)
}

/// Records `seq` through live buffers of `policy`, producing a faithful
/// tick-ordered event stream (the same shape the join executors emit).
fn record(seq: &[(u32, u8, u32, u8)], policy: RecordedPolicy) -> Vec<PageAccessEvent> {
    let recorder = FlightRecorder::enabled();
    let mut lanes = HashMap::new();
    let mut bufs: HashMap<(u32, u8), Box<dyn BufferManager>> = HashMap::new();
    for &(corr, tree, page, level) in seq {
        let lane = lanes.entry((corr, tree)).or_insert_with(|| {
            let mut l = recorder.lane(tree);
            l.set_corr(corr);
            l
        });
        let buf = bufs.entry((corr, tree)).or_insert_with(|| policy.build());
        let kind = buf.access(PageId(page), level);
        lane.record(PageId(page), level, kind);
    }
    drop(lanes);
    recorder.drain().0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Mattson hit counts equal brute-force LRU replay at every
    // capacity — the inclusion property made executable.
    #[test]
    fn mattson_matches_brute_force_lru(seq in prop::collection::vec(access(), 1..120)) {
        let events = record(&seq, RecordedPolicy::None);
        let sd = StackDistance::analyze(&events);
        for cap in 0usize..12 {
            let brute = replay(&events, RecordedPolicy::Lru(cap as u32));
            prop_assert_eq!(
                sd.misses_at(cap),
                brute.da_total(),
                "capacity {}", cap
            );
        }
        // The curve the sweep reports must be monotone non-increasing.
        for cap in 1usize..12 {
            prop_assert!(sd.misses_at(cap) <= sd.misses_at(cap - 1));
        }
        // Floor: unlimited capacity leaves exactly the cold misses.
        prop_assert_eq!(sd.misses_at(usize::MAX / 2), sd.cold_misses());
    }

    // Replaying the recorded policy reproduces the recorded hit/miss
    // stream exactly, for all three policies.
    #[test]
    fn replay_of_recorded_policy_is_exact(
        seq in prop::collection::vec(access(), 1..120),
        policy_pick in 0u8..4,
    ) {
        let policy = match policy_pick {
            0 => RecordedPolicy::None,
            1 => RecordedPolicy::Path,
            2 => RecordedPolicy::Lru(3),
            _ => RecordedPolicy::Lru(0),
        };
        let events = record(&seq, policy);
        let out = replay(&events, policy);
        prop_assert_eq!(out.kind_mismatches, 0);
        let mut want1 = AccessStats::new();
        let mut want2 = AccessStats::new();
        for e in &events {
            if e.tree == 1 { want1.record(e.level, e.kind) } else { want2.record(e.level, e.kind) }
        }
        prop_assert_eq!(out.stats1, want1);
        prop_assert_eq!(out.stats2, want2);
    }

    // NA is invariant across replayed policies; DA is ordered
    // none ≥ path and none ≥ any LRU.
    #[test]
    fn na_invariant_da_ordered(seq in prop::collection::vec(access(), 1..120)) {
        let events = record(&seq, RecordedPolicy::Path);
        let none = replay(&events, RecordedPolicy::None);
        let path = replay(&events, RecordedPolicy::Path);
        let lru = replay(&events, RecordedPolicy::Lru(8));
        prop_assert_eq!(none.na_total(), events.len() as u64);
        prop_assert_eq!(path.na_total(), events.len() as u64);
        prop_assert_eq!(lru.na_total(), events.len() as u64);
        prop_assert!(path.da_total() <= none.da_total());
        prop_assert!(lru.da_total() <= none.da_total());
    }

    // Serialization round-trips through the binary format.
    #[test]
    fn trace_bytes_round_trip(seq in prop::collection::vec(access(), 0..60)) {
        let events = record(&seq, RecordedPolicy::Path);
        let trace = sjcm_storage::AccessTrace {
            policy: RecordedPolicy::Path,
            dropped: 0,
            na_pred: 12.5,
            da_pred: 3.25,
            events,
        };
        let round = sjcm_storage::AccessTrace::from_bytes(&trace.to_bytes()).unwrap();
        prop_assert_eq!(round, trace);
    }
}
