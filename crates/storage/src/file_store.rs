//! A file-backed [`PageStore`]: real disk pages for persisted trees.
//!
//! Layout: page `i` lives at byte offset `i · page_size` of a single
//! file; pages are zero-padded to full size on write. A freed page's id
//! goes to an in-memory free list (recycled within the session) — the
//! file itself never shrinks, like a real database heap file.
//!
//! Integrity relies on the node layout's own validation (magic byte,
//! dimensionality, entry-count bounds — see [`crate::layout`]); unlike
//! the in-memory simulator there is no out-of-band checksum, which
//! matches how the paper's 1 KiB pages would sit on disk.

use crate::page::{PageId, PageStore, StorageError};
use bytes::Bytes;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Disk-backed page store over a single file.
pub struct FilePageStore {
    file: File,
    path: PathBuf,
    page_size: usize,
    pages: u32,
    free_list: Vec<PageId>,
}

impl FilePageStore {
    /// Creates a new store file (truncating any existing one).
    pub fn create(path: &Path, page_size: usize) -> Result<Self, StorageError> {
        assert!(page_size > 0, "page size must be positive");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| StorageError::Io(format!("cannot create {path:?}: {e}")))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            page_size,
            pages: 0,
            free_list: Vec::new(),
        })
    }

    /// Opens an existing store file; the page count is derived from the
    /// file length (which must be a multiple of the page size).
    pub fn open(path: &Path, page_size: usize) -> Result<Self, StorageError> {
        assert!(page_size > 0, "page size must be positive");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StorageError::Io(format!("cannot open {path:?}: {e}")))?;
        let len = file
            .metadata()
            .map_err(|e| StorageError::Io(format!("metadata: {e}")))?
            .len();
        if len % page_size as u64 != 0 {
            // A torn tail — e.g. a crash mid-write or an external
            // truncation — is data corruption of the last page, not a
            // structural decode failure.
            return Err(StorageError::Corrupt(PageId(
                (len / page_size as u64) as u32,
            )));
        }
        let pages = len / page_size as u64;
        if pages > u64::from(u32::MAX) {
            return Err(StorageError::OutOfPages);
        }
        Ok(Self {
            file,
            path: path.to_path_buf(),
            page_size,
            pages: pages as u32,
            free_list: Vec::new(),
        })
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn offset(&self, id: PageId) -> u64 {
        u64::from(id.0) * self.page_size as u64
    }

    fn check_id(&self, id: PageId) -> Result<(), StorageError> {
        if id.0 >= self.pages {
            Err(StorageError::UnknownPage(id))
        } else {
            Ok(())
        }
    }
}

impl PageStore for FilePageStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&mut self) -> Result<PageId, StorageError> {
        if let Some(id) = self.free_list.pop() {
            // Zero the recycled page so stale bytes cannot resurface.
            self.write(id, &[])?;
            return Ok(id);
        }
        if self.pages == u32::MAX {
            return Err(StorageError::OutOfPages);
        }
        let id = PageId(self.pages);
        self.pages += 1;
        self.write(id, &[])?;
        Ok(id)
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> Result<(), StorageError> {
        // `allocate` increments `pages` before writing the fresh page, so
        // a plain bounds check covers that path too; in particular a
        // write to an unallocated id on an empty store is rejected.
        self.check_id(id)?;
        if data.len() > self.page_size {
            return Err(StorageError::PageOverflow {
                len: data.len(),
                page_size: self.page_size,
            });
        }
        let mut buf = vec![0u8; self.page_size];
        buf[..data.len()].copy_from_slice(data);
        self.file
            .seek(SeekFrom::Start(self.offset(id)))
            .and_then(|_| self.file.write_all(&buf))
            .map_err(|e| StorageError::Io(format!("write page {id}: {e}")))
    }

    fn read(&self, id: PageId) -> Result<Bytes, StorageError> {
        self.check_id(id)?;
        let mut file = &self.file;
        let mut buf = vec![0u8; self.page_size];
        file.seek(SeekFrom::Start(self.offset(id)))
            .and_then(|_| file.read_exact(&mut buf))
            .map_err(|e| StorageError::Io(format!("read page {id}: {e}")))?;
        Ok(Bytes::from(buf))
    }

    fn free(&mut self, id: PageId) -> Result<(), StorageError> {
        self.check_id(id)?;
        self.free_list.push(id);
        Ok(())
    }

    fn live_pages(&self) -> usize {
        self.pages as usize - self.free_list.len()
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.file
            .sync_all()
            .map_err(|e| StorageError::Io(format!("sync {:?}: {e}", self.path)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sjcm_filestore_{name}_{}", std::process::id()));
        p
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn create_write_read_roundtrip() {
        let path = temp_path("roundtrip");
        let _guard = Cleanup(path.clone());
        let mut store = FilePageStore::create(&path, 64).unwrap();
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        store.write(a, b"page a").unwrap();
        store.write(b, b"page b content").unwrap();
        assert_eq!(&store.read(a).unwrap()[..6], b"page a");
        assert_eq!(&store.read(b).unwrap()[..14], b"page b content");
        // Tail of the page is zero-padded.
        assert!(store.read(a).unwrap()[6..].iter().all(|&x| x == 0));
        assert_eq!(store.live_pages(), 2);
    }

    #[test]
    fn reopen_preserves_pages() {
        let path = temp_path("reopen");
        let _guard = Cleanup(path.clone());
        {
            let mut store = FilePageStore::create(&path, 32).unwrap();
            let a = store.allocate().unwrap();
            store.write(a, b"persist me").unwrap();
        }
        let store = FilePageStore::open(&path, 32).unwrap();
        assert_eq!(store.live_pages(), 1);
        assert_eq!(&store.read(PageId(0)).unwrap()[..10], b"persist me");
    }

    #[test]
    fn open_rejects_misaligned_file_as_corrupt() {
        let path = temp_path("misaligned");
        let _guard = Cleanup(path.clone());
        std::fs::write(&path, vec![0u8; 33]).unwrap();
        // 33 bytes at page size 32 = one whole page plus a torn tail: the
        // torn page is page 1.
        assert!(matches!(
            FilePageStore::open(&path, 32),
            Err(StorageError::Corrupt(PageId(1)))
        ));
    }

    #[test]
    fn open_missing_file_is_io_not_malformed() {
        let path = temp_path("missing");
        let _guard = Cleanup(path.clone());
        assert!(matches!(
            FilePageStore::open(&path, 32),
            Err(StorageError::Io(_))
        ));
    }

    #[test]
    fn sync_flushes_without_error() {
        let path = temp_path("sync");
        let _guard = Cleanup(path.clone());
        let mut store = FilePageStore::create(&path, 32).unwrap();
        let a = store.allocate().unwrap();
        store.write(a, b"durable").unwrap();
        store.sync().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 32);
    }

    #[test]
    fn oversize_write_rejected() {
        let path = temp_path("oversize");
        let _guard = Cleanup(path.clone());
        let mut store = FilePageStore::create(&path, 16).unwrap();
        let a = store.allocate().unwrap();
        assert!(matches!(
            store.write(a, &[1u8; 17]),
            Err(StorageError::PageOverflow { .. })
        ));
    }

    #[test]
    fn unknown_page_read_rejected() {
        let path = temp_path("unknown");
        let _guard = Cleanup(path.clone());
        let store = FilePageStore::create(&path, 16).unwrap();
        assert!(matches!(
            store.read(PageId(5)),
            Err(StorageError::UnknownPage(_))
        ));
    }

    #[test]
    fn freed_pages_recycle_zeroed() {
        let path = temp_path("recycle");
        let _guard = Cleanup(path.clone());
        let mut store = FilePageStore::create(&path, 16).unwrap();
        let a = store.allocate().unwrap();
        store.write(a, b"old").unwrap();
        store.free(a).unwrap();
        assert_eq!(store.live_pages(), 0);
        let b = store.allocate().unwrap();
        assert_eq!(a, b);
        assert!(store.read(b).unwrap().iter().all(|&x| x == 0));
    }
}
