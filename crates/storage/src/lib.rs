//! Paged storage simulator for the spatial-join cost-model workspace.
//!
//! The paper measures join cost in **node accesses** (`NA`, every
//! `ReadPage` call of the SJ algorithm) and **disk accesses** (`DA`, the
//! `ReadPage` calls that miss the buffer), on 1 KiB pages with maximum
//! node capacities M = 84 (n = 1) and M = 50 (n = 2). This crate provides
//! the substrate that makes those numbers *measurable* rather than
//! estimated:
//!
//! * [`page`] — page identifiers and an in-memory [`page::PageStore`]
//!   with checksummed pages.
//! * [`layout`] — the on-page binary layout of an R-tree node. The layout
//!   (8-byte header + (8·n+4)-byte entries with `f32` coordinates and
//!   `u32` child pointers) reproduces the paper's capacities exactly; see
//!   [`layout::max_entries`].
//! * [`buffer`] — pluggable buffer managers: [`buffer::NoBuffer`] (every
//!   access is a disk access ⇒ DA = NA), [`buffer::PathBuffer`] (the
//!   paper's per-tree most-recently-visited-path buffer behind Eqs 8–12),
//!   and [`buffer::LruBuffer`] (the future-work extension of §5).
//! * [`counters`] — per-level NA/DA tallies ([`counters::AccessStats`])
//!   that the join executor fills in and the experiments compare against
//!   the analytical model level by level.
//! * [`recorder`] — the page-access flight recorder: every buffered
//!   access can emit a compact binary event (tree, level, page,
//!   hit/miss, monotonic tick, correlation id) into a bounded ring,
//!   serialized as an [`recorder::AccessTrace`] for offline analysis.
//! * [`mod@replay`] — trace-driven what-if analysis: re-simulate a captured
//!   trace under any buffer policy ([`replay::replay`]), or get the hit
//!   ratio of *every* LRU capacity from one scan with the Mattson
//!   stack-distance analyzer ([`replay::StackDistance`]).
//! * [`fault`] — deterministic fault injection ([`fault::FaultPlan`],
//!   [`fault::FaultyPageStore`]) and recovery ([`fault::ResilientStore`]
//!   with bounded retry + quarantine, [`fault::FaultInjector`] as the
//!   join executor's access oracle), tallied in
//!   [`fault::FaultCounters`].
//! * [`mem`] — shared byte-budget accounting ([`mem::MemoryMeter`]) for
//!   the query governor: executor arenas (PBSM partitions, parallel
//!   deques) reserve against a per-query budget before allocating, so
//!   over-budget queries fail typed instead of aborting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod counters;
pub mod fault;
pub mod file_store;
pub mod layout;
pub mod mem;
pub mod page;
pub mod recorder;
pub mod replay;

pub use buffer::{AccessKind, BufferCounters, BufferManager, LruBuffer, NoBuffer, PathBuffer};
pub use counters::{hit_ratio, AccessStats};
pub use fault::{
    FaultCounters, FaultInjector, FaultPlan, FaultyPageStore, ResilientStore, RetryPolicy,
    FAULT_INJECTED, FAULT_QUARANTINED, FAULT_RECOVERED, FAULT_RETRIED,
};
pub use file_store::FilePageStore;
pub use layout::{max_entries, DiskEntry, DiskNode};
pub use mem::{MemoryBudgetExceeded, MemoryMeter};
pub use page::{fnv1a, InMemoryPageStore, PageId, PageStore, StorageError, DEFAULT_PAGE_SIZE};
pub use recorder::{AccessTrace, FlightRecorder, PageAccessEvent, RecordedPolicy, RecorderLane};
pub use replay::{replay, ReplayOutcome, StackDistance};
