//! Paged storage simulator for the spatial-join cost-model workspace.
//!
//! The paper measures join cost in **node accesses** (`NA`, every
//! `ReadPage` call of the SJ algorithm) and **disk accesses** (`DA`, the
//! `ReadPage` calls that miss the buffer), on 1 KiB pages with maximum
//! node capacities M = 84 (n = 1) and M = 50 (n = 2). This crate provides
//! the substrate that makes those numbers *measurable* rather than
//! estimated:
//!
//! * [`page`] — page identifiers and an in-memory [`page::PageStore`]
//!   with checksummed pages.
//! * [`layout`] — the on-page binary layout of an R-tree node. The layout
//!   (8-byte header + (8·n+4)-byte entries with `f32` coordinates and
//!   `u32` child pointers) reproduces the paper's capacities exactly; see
//!   [`layout::max_entries`].
//! * [`buffer`] — pluggable buffer managers: [`buffer::NoBuffer`] (every
//!   access is a disk access ⇒ DA = NA), [`buffer::PathBuffer`] (the
//!   paper's per-tree most-recently-visited-path buffer behind Eqs 8–12),
//!   and [`buffer::LruBuffer`] (the future-work extension of §5).
//! * [`counters`] — per-level NA/DA tallies ([`counters::AccessStats`])
//!   that the join executor fills in and the experiments compare against
//!   the analytical model level by level.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod counters;
pub mod file_store;
pub mod layout;
pub mod page;

pub use buffer::{AccessKind, BufferCounters, BufferManager, LruBuffer, NoBuffer, PathBuffer};
pub use counters::AccessStats;
pub use file_store::FilePageStore;
pub use layout::{max_entries, DiskEntry, DiskNode};
pub use page::{InMemoryPageStore, PageId, PageStore, StorageError, DEFAULT_PAGE_SIZE};
