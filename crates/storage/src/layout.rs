//! On-page binary layout of R-tree nodes.
//!
//! The paper's node capacities — M = 84 for n = 1 and M = 50 for n = 2 on
//! 1 KiB pages — correspond to an entry of `2·n` single-precision
//! coordinates plus a 4-byte child pointer (8·n + 4 bytes) under an
//! 8-byte page header: `(1024 − 8) / 12 = 84`, `(1024 − 8) / 20 = 50`.
//! [`max_entries`] computes exactly that, and the encoder refuses to
//! build nodes that would not fit their page.
//!
//! In memory the tree keeps `f64` rectangles; on the page they are
//! quantized to `f32` with **outward rounding** (low corners toward −∞,
//! high corners toward +∞) so that a persisted node's rectangle always
//! *covers* the exact one. A bounding rectangle that shrank under
//! rounding could make range queries miss answers; growing by at most one
//! ulp only costs the occasional extra node visit.

use crate::page::{PageId, StorageError};
use bytes::{Buf, BufMut};
use sjcm_geom::Rect;

/// Size of the node header in bytes: magic, level, entry count, dims,
/// three reserved bytes.
pub const HEADER_SIZE: usize = 8;

/// Bytes per entry for dimensionality `n`: `2·n` `f32` coordinates plus a
/// `u32` child pointer / object id.
pub const fn entry_size(n: usize) -> usize {
    8 * n + 4
}

/// Maximum number of entries an R-tree node can hold on a page of
/// `page_size` bytes in `n` dimensions — the paper's `M`.
///
/// ```
/// use sjcm_storage::max_entries;
/// assert_eq!(max_entries(1024, 1), 84); // paper, n = 1
/// assert_eq!(max_entries(1024, 2), 50); // paper, n = 2
/// ```
pub const fn max_entries(page_size: usize, n: usize) -> usize {
    (page_size - HEADER_SIZE) / entry_size(n)
}

const MAGIC: u8 = 0x52; // 'R'

/// One serialized node entry: a bounding rectangle and either a child
/// page id (internal nodes) or an object id (leaf nodes). The paper's
/// layout gives both the same 4-byte representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskEntry<const N: usize> {
    /// Bounding rectangle (outward-rounded on disk).
    pub rect: Rect<N>,
    /// Child page id or object id, depending on `level`.
    pub child: u32,
}

/// A node in its serialized form: its level (0 = leaf) and entries.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskNode<const N: usize> {
    /// Level of the node; leaves are level 0. (The paper numbers leaves
    /// as level 1 in the formulas; the crate-internal convention is
    /// 0-based and the cost-model crate does the shifting explicitly.)
    pub level: u8,
    /// Node entries, at most [`max_entries`] for the page size in use.
    pub entries: Vec<DiskEntry<N>>,
}

/// Largest `f32` not exceeding `x` (rounding toward −∞).
fn f32_down(x: f64) -> f32 {
    let f = x as f32;
    if f64::from(f) > x {
        f32_prev(f)
    } else {
        f
    }
}

/// Smallest `f32` not below `x` (rounding toward +∞).
fn f32_up(x: f64) -> f32 {
    let f = x as f32;
    if f64::from(f) < x {
        f32_next(f)
    } else {
        f
    }
}

fn f32_prev(f: f32) -> f32 {
    if f.is_nan() || (f.is_infinite() && f < 0.0) {
        return f;
    }
    if f > 0.0 {
        f32::from_bits(f.to_bits() - 1)
    } else if f == 0.0 {
        // Covers +0.0 and -0.0: the next value toward −∞ is the smallest
        // negative subnormal.
        -f32::from_bits(1)
    } else {
        f32::from_bits(f.to_bits() + 1)
    }
}

fn f32_next(f: f32) -> f32 {
    -f32_prev(-f)
}

impl<const N: usize> DiskNode<N> {
    /// Serializes the node for a page of `page_size` bytes.
    ///
    /// Fails with [`StorageError::MalformedNode`] when the node holds more
    /// entries than the page can fit, keeping over-full nodes impossible
    /// to persist by construction.
    pub fn encode(&self, page_size: usize) -> Result<Vec<u8>, StorageError> {
        let cap = max_entries(page_size, N);
        if self.entries.len() > cap {
            return Err(StorageError::MalformedNode(format!(
                "{} entries exceed page capacity {} (n = {N})",
                self.entries.len(),
                cap
            )));
        }
        let mut buf = Vec::with_capacity(HEADER_SIZE + self.entries.len() * entry_size(N));
        buf.put_u8(MAGIC);
        buf.put_u8(self.level);
        buf.put_u16_le(self.entries.len() as u16);
        buf.put_u8(N as u8);
        buf.put_bytes(0, 3);
        for e in &self.entries {
            for k in 0..N {
                buf.put_f32_le(f32_down(e.rect.lo_k(k)));
                buf.put_f32_le(f32_up(e.rect.hi_k(k)));
            }
            buf.put_u32_le(e.child);
        }
        Ok(buf)
    }

    /// Deserializes a node, validating magic, dimensionality, entry count
    /// and rectangle well-formedness.
    pub fn decode(mut data: &[u8]) -> Result<Self, StorageError> {
        if data.len() < HEADER_SIZE {
            return Err(StorageError::MalformedNode(format!(
                "page too short: {} bytes",
                data.len()
            )));
        }
        let magic = data.get_u8();
        if magic != MAGIC {
            return Err(StorageError::MalformedNode(format!(
                "bad magic byte 0x{magic:02x}"
            )));
        }
        let level = data.get_u8();
        let count = data.get_u16_le() as usize;
        let dims = data.get_u8() as usize;
        if dims != N {
            return Err(StorageError::MalformedNode(format!(
                "dimensionality mismatch: page has {dims}, expected {N}"
            )));
        }
        data.advance(3);
        if data.len() < count * entry_size(N) {
            return Err(StorageError::MalformedNode(format!(
                "entry area truncated: {} bytes for {count} entries",
                data.len()
            )));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let mut lo = [0.0f64; N];
            let mut hi = [0.0f64; N];
            for k in 0..N {
                lo[k] = f64::from(data.get_f32_le());
                hi[k] = f64::from(data.get_f32_le());
            }
            let child = data.get_u32_le();
            let rect = Rect::new(lo, hi)
                .map_err(|e| StorageError::MalformedNode(format!("bad rectangle: {e}")))?;
            entries.push(DiskEntry { rect, child });
        }
        Ok(Self { level, entries })
    }

    /// Convenience: interpret a child field as a page id (internal nodes).
    pub fn child_page(&self, idx: usize) -> PageId {
        PageId(self.entries[idx].child)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjcm_geom::Rect;

    fn sample_node() -> DiskNode<2> {
        DiskNode {
            level: 1,
            entries: vec![
                DiskEntry {
                    rect: Rect::new([0.1, 0.2], [0.3, 0.4]).unwrap(),
                    child: 7,
                },
                DiskEntry {
                    rect: Rect::new([0.5, 0.0], [0.9, 1.0]).unwrap(),
                    child: 42,
                },
            ],
        }
    }

    #[test]
    fn paper_capacities() {
        assert_eq!(max_entries(1024, 1), 84);
        assert_eq!(max_entries(1024, 2), 50);
        assert_eq!(max_entries(1024, 3), 36);
        assert_eq!(max_entries(1024, 4), 28);
        assert_eq!(max_entries(4096, 2), 204);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let node = sample_node();
        let bytes = node.encode(1024).unwrap();
        assert_eq!(bytes.len(), HEADER_SIZE + 2 * entry_size(2));
        let back = DiskNode::<2>::decode(&bytes).unwrap();
        assert_eq!(back.level, 1);
        assert_eq!(back.entries.len(), 2);
        assert_eq!(back.entries[0].child, 7);
        assert_eq!(back.child_page(1), PageId(42));
    }

    #[test]
    fn roundtrip_rects_cover_originals() {
        let node = sample_node();
        let back = DiskNode::<2>::decode(&node.encode(1024).unwrap()).unwrap();
        for (orig, dec) in node.entries.iter().zip(&back.entries) {
            assert!(
                dec.rect.contains_rect(&orig.rect),
                "decoded {dec:?} must cover original {orig:?}"
            );
            // ...and by no more than a couple of f32 ulps per side.
            for k in 0..2 {
                assert!((dec.rect.extent(k) - orig.rect.extent(k)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn outward_rounding_never_shrinks() {
        for &x in &[0.0, 0.1, -0.1, 1.0 / 3.0, 0.999_999_9, 1e-300, -1e-300] {
            assert!(f64::from(f32_down(x)) <= x, "down({x})");
            assert!(f64::from(f32_up(x)) >= x, "up({x})");
        }
    }

    #[test]
    fn f32_neighbors() {
        assert!(f32_prev(1.0) < 1.0);
        assert!(f32_next(1.0) > 1.0);
        assert!(f32_prev(0.0) < 0.0);
        assert!(f32_next(0.0) > 0.0);
        assert!(f32_prev(-1.0) < -1.0);
        assert_eq!(f32_prev(f32::NEG_INFINITY), f32::NEG_INFINITY);
    }

    #[test]
    fn encode_rejects_overfull_node() {
        let entry = DiskEntry {
            rect: Rect::<2>::unit(),
            child: 0,
        };
        let node = DiskNode {
            level: 0,
            entries: vec![entry; 51],
        };
        assert!(matches!(
            node.encode(1024),
            Err(StorageError::MalformedNode(_))
        ));
        let ok = DiskNode {
            level: 0,
            entries: vec![entry; 50],
        };
        assert!(ok.encode(1024).is_ok());
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut bytes = sample_node().encode(1024).unwrap();
        bytes[0] = 0x00;
        assert!(matches!(
            DiskNode::<2>::decode(&bytes),
            Err(StorageError::MalformedNode(_))
        ));
    }

    #[test]
    fn decode_rejects_wrong_dimensionality() {
        let bytes = sample_node().encode(1024).unwrap();
        assert!(matches!(
            DiskNode::<3>::decode(&bytes),
            Err(StorageError::MalformedNode(_))
        ));
    }

    #[test]
    fn decode_rejects_truncated_entries() {
        let bytes = sample_node().encode(1024).unwrap();
        assert!(matches!(
            DiskNode::<2>::decode(&bytes[..bytes.len() - 1]),
            Err(StorageError::MalformedNode(_))
        ));
        assert!(matches!(
            DiskNode::<2>::decode(&bytes[..4]),
            Err(StorageError::MalformedNode(_))
        ));
    }

    #[test]
    fn empty_node_roundtrip() {
        let node = DiskNode::<1> {
            level: 3,
            entries: vec![],
        };
        let back = DiskNode::<1>::decode(&node.encode(1024).unwrap()).unwrap();
        assert_eq!(back.level, 3);
        assert!(back.entries.is_empty());
    }

    #[test]
    fn one_dimensional_roundtrip() {
        let node = DiskNode::<1> {
            level: 0,
            entries: vec![DiskEntry {
                rect: Rect::new([0.123_456_789], [0.987_654_321]).unwrap(),
                child: 99,
            }],
        };
        let back = DiskNode::<1>::decode(&node.encode(1024).unwrap()).unwrap();
        assert!(back.entries[0].rect.contains_rect(&node.entries[0].rect));
    }
}
