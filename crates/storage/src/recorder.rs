//! The page-access flight recorder.
//!
//! The observability layer's drift monitor (PR 2) sees only *aggregate*
//! NA/DA counters: when the Eq 8–12 DA prediction drifts, the counters
//! cannot say *which* accesses diverged, and the one buffer
//! configuration that actually ran is the only one that can be
//! evaluated. The flight recorder fixes both: every buffered page
//! access emits one compact event — tree id, level, page, hit/miss, a
//! monotonic tick and a **correlation id** tying it to the owning
//! work unit / span — so a captured trace can be replayed offline
//! through *any* buffer policy (see [`mod@crate::replay`]) and rendered
//! per-access rather than per-run.
//!
//! # Cost discipline
//!
//! The recorder follows the `sjcm-obs` tracer's design: a **disabled**
//! recorder is a single `Option` discriminant check per access — no
//! clock, no atomics, no allocation. An **enabled** recorder costs a
//! lane-local vector write plus, once per [`TICK_BLOCK`] events, one
//! relaxed `fetch_add` claiming a block of globally unique ticks.
//! Per-block claiming keeps the shared tick cacheline out of the hot
//! path (a contended per-access `fetch_add` measurably slowed 4-worker
//! joins); ticks stay strictly increasing *within* each lane, which is
//! the only order replay depends on — buffers are per tree and per
//! residency domain, so cross-lane interleaving (now block-granular
//! rather than exact) cannot change any replay verdict. Lanes are
//! thread-private and only merge into the shared sink when dropped, so
//! the hot path takes no lock. The `obs_overhead` bench in
//! `sjcm-bench` holds this within the observability layer's <3%
//! overhead guard.
//!
//! # Bounded ring
//!
//! Each lane is a bounded ring of [`FlightRecorder::lane_capacity`]
//! events: when full, the newest event overwrites the oldest and the
//! overwritten event counts as *dropped*. A trace with `dropped > 0` is
//! truncated — still useful for inspection, but [`crate::replay()`] and
//! `validate-obs` reject it, because replay exactness needs the full
//! access history.
//!
//! # Correlation ids
//!
//! A correlation id names a **buffer-residency domain**: a maximal run
//! of accesses that one buffer instance served without an intervening
//! reset. The sequential executor and the parallel coordinator use
//! domain 0; the cost-guided scheduler gives every work unit its own
//! domain (the unit index + 1, also attached to the unit's span as the
//! `corr` field); the round-robin scheduler, whose shard buffers
//! persist across units, uses one domain per shard. Replaying each
//! domain against a fresh buffer therefore reproduces the live
//! hit/miss sequence exactly, whatever the schedule was.

use crate::buffer::AccessKind;
use crate::page::PageId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Serialized size of one event, bytes.
pub const EVENT_SIZE: usize = 20;

/// Trace file magic ("SJTR").
pub const TRACE_MAGIC: [u8; 4] = *b"SJTR";

/// Trace format version this crate writes and reads.
pub const TRACE_VERSION: u32 = 1;

/// Serialized size of the trace header, bytes.
pub const HEADER_SIZE: usize = 48;

/// Default per-lane ring capacity (events). Sized so the paper-scale
/// 60K×60K join (a few hundred thousand accesses per executor) records
/// completely; memory is allocated lazily, so idle lanes cost nothing.
pub const DEFAULT_LANE_CAPACITY: usize = 1 << 22;

/// Ticks a lane claims from the shared counter at a time. Large enough
/// to amortize the cross-core `fetch_add` to noise, small enough that
/// tick values stay dense (a 60K-scale join claims a few hundred
/// blocks).
pub const TICK_BLOCK: u64 = 1024;

/// One recorded page access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageAccessEvent {
    /// Global monotonic tick (unique across all lanes of a recorder;
    /// orders events totally, including across threads).
    pub tick: u64,
    /// The accessed page.
    pub page: PageId,
    /// Buffer-residency domain (see the module docs).
    pub corr: u32,
    /// Which tree's buffer served the access (1 or 2).
    pub tree: u8,
    /// Tree level of the page (0 = leaf, crate convention).
    pub level: u8,
    /// Buffer outcome.
    pub kind: AccessKind,
}

impl PageAccessEvent {
    /// Encodes the event as [`EVENT_SIZE`] little-endian bytes.
    pub fn to_bytes(&self) -> [u8; EVENT_SIZE] {
        let mut b = [0u8; EVENT_SIZE];
        b[0..8].copy_from_slice(&self.tick.to_le_bytes());
        b[8..12].copy_from_slice(&self.page.0.to_le_bytes());
        b[12..16].copy_from_slice(&self.corr.to_le_bytes());
        b[16] = self.tree;
        b[17] = self.level;
        b[18] = self.kind.is_miss() as u8;
        // b[19] reserved, zero.
        b
    }

    /// Decodes an event; rejects invalid tree/kind bytes.
    pub fn from_bytes(b: &[u8; EVENT_SIZE]) -> Result<Self, String> {
        let tree = b[16];
        if !(1..=2).contains(&tree) {
            return Err(format!("invalid tree id {tree}"));
        }
        let kind = match b[18] {
            0 => AccessKind::Hit,
            1 => AccessKind::Miss,
            k => return Err(format!("invalid access kind {k}")),
        };
        Ok(Self {
            tick: u64::from_le_bytes(b[0..8].try_into().unwrap()),
            page: PageId(u32::from_le_bytes(b[8..12].try_into().unwrap())),
            corr: u32::from_le_bytes(b[12..16].try_into().unwrap()),
            tree,
            level: b[17],
            kind,
        })
    }
}

/// The buffer policy a trace was recorded under (or is replayed
/// against). The storage-level mirror of the join crate's
/// `BufferPolicy`, carried inside the trace file so replay knows which
/// configuration reproduces the recorded hit/miss sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordedPolicy {
    /// No buffering (DA = NA).
    None,
    /// The paper's per-tree path buffer (Eqs 8–12).
    Path,
    /// LRU of the given page capacity.
    Lru(u32),
}

impl RecordedPolicy {
    /// Builds a fresh buffer manager implementing this policy.
    pub fn build(self) -> Box<dyn crate::buffer::BufferManager> {
        match self {
            RecordedPolicy::None => Box::new(crate::buffer::NoBuffer::new()),
            RecordedPolicy::Path => Box::new(crate::buffer::PathBuffer::new()),
            RecordedPolicy::Lru(cap) => Box::new(crate::buffer::LruBuffer::new(cap as usize)),
        }
    }

    fn to_byte(self) -> (u8, u32) {
        match self {
            RecordedPolicy::None => (0, 0),
            RecordedPolicy::Path => (1, 0),
            RecordedPolicy::Lru(cap) => (2, cap),
        }
    }

    fn from_byte(tag: u8, cap: u32) -> Result<Self, String> {
        match tag {
            0 => Ok(RecordedPolicy::None),
            1 => Ok(RecordedPolicy::Path),
            2 => Ok(RecordedPolicy::Lru(cap)),
            t => Err(format!("invalid policy tag {t}")),
        }
    }
}

/// A complete captured trace: header metadata plus the events in tick
/// order. The `na_pred` / `da_pred` fields carry the Eq 7/11 and
/// Eq 10/12 analytical predictions of the run that was recorded (0.0
/// when the recorder had none), so the offline toolchain can draw its
/// what-if curves against the paper's model without re-deriving tree
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessTrace {
    /// Buffer policy the trace was recorded under.
    pub policy: RecordedPolicy,
    /// Events overwritten by the bounded rings (0 ⇒ the trace is
    /// complete and replayable).
    pub dropped: u64,
    /// Analytical NA prediction for the recorded run (0.0 = none).
    pub na_pred: f64,
    /// Analytical DA prediction for the recorded run (0.0 = none).
    pub da_pred: f64,
    /// The events, sorted by tick (strictly increasing).
    pub events: Vec<PageAccessEvent>,
}

impl AccessTrace {
    /// Serializes the trace (48-byte header + 20 bytes per event,
    /// little-endian throughout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_SIZE + self.events.len() * EVENT_SIZE);
        let (tag, cap) = self.policy.to_byte();
        out.extend_from_slice(&TRACE_MAGIC);
        out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        out.push(tag);
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&cap.to_le_bytes());
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.dropped.to_le_bytes());
        out.extend_from_slice(&self.na_pred.to_le_bytes());
        out.extend_from_slice(&self.da_pred.to_le_bytes());
        for e in &self.events {
            out.extend_from_slice(&e.to_bytes());
        }
        out
    }

    /// Parses and validates a serialized trace. Rejects wrong magic or
    /// version, truncated or oversized files, invalid event bytes, and
    /// non-monotonic ticks — the checks `validate-obs` runs on the CI
    /// artifact.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < HEADER_SIZE {
            return Err(format!(
                "trace too short: {} bytes < {HEADER_SIZE}-byte header",
                bytes.len()
            ));
        }
        if bytes[0..4] != TRACE_MAGIC {
            return Err("bad magic (not an SJTR trace)".into());
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != TRACE_VERSION {
            return Err(format!("unsupported trace version {version}"));
        }
        if bytes[9..12] != [0u8; 3] {
            return Err("nonzero header padding".into());
        }
        let cap = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let policy = RecordedPolicy::from_byte(bytes[8], cap)?;
        let count = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        let dropped = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        let na_pred = f64::from_le_bytes(bytes[32..40].try_into().unwrap());
        let da_pred = f64::from_le_bytes(bytes[40..48].try_into().unwrap());
        let body = &bytes[HEADER_SIZE..];
        let expected = count
            .checked_mul(EVENT_SIZE)
            .ok_or("event count overflows")?;
        if body.len() != expected {
            return Err(format!(
                "truncated trace: header promises {count} events \
                 ({expected} bytes), body has {} bytes",
                body.len()
            ));
        }
        let mut events = Vec::with_capacity(count);
        let mut last_tick = None;
        for (i, chunk) in body.chunks_exact(EVENT_SIZE).enumerate() {
            let e = PageAccessEvent::from_bytes(chunk.try_into().unwrap())
                .map_err(|m| format!("event {i}: {m}"))?;
            if let Some(last) = last_tick {
                if e.tick <= last {
                    return Err(format!(
                        "event {i}: tick {} not strictly increasing (prev {last})",
                        e.tick
                    ));
                }
            }
            last_tick = Some(e.tick);
            events.push(e);
        }
        Ok(Self {
            policy,
            dropped,
            na_pred,
            da_pred,
            events,
        })
    }

    /// Writes the serialized trace to `path` (parent directories are
    /// created).
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_bytes())
    }

    /// Reads and validates a trace from `path`.
    pub fn read(path: &std::path::Path) -> Result<Self, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("cannot read trace: {e}"))?;
        Self::from_bytes(&bytes)
    }
}

struct RecorderInner {
    tick: AtomicU64,
    lane_capacity: usize,
    dropped: AtomicU64,
    flushed: Mutex<Vec<Vec<PageAccessEvent>>>,
}

/// The shared event sink. Cheap to clone (shared buffer); see the
/// module docs for the disabled-mode guarantee.
#[derive(Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<RecorderInner>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder whose every operation is a no-op (the default).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A collecting recorder with the default per-lane ring capacity.
    pub fn enabled() -> Self {
        Self::with_lane_capacity(DEFAULT_LANE_CAPACITY)
    }

    /// A collecting recorder whose lanes hold at most `capacity` events
    /// each (older events are overwritten and counted as dropped).
    pub fn with_lane_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(RecorderInner {
                tick: AtomicU64::new(0),
                lane_capacity: capacity.max(1),
                dropped: AtomicU64::new(0),
                flushed: Mutex::new(Vec::new()),
            })),
        }
    }

    /// `true` when accesses are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Per-lane ring capacity; `None` when disabled.
    pub fn lane_capacity(&self) -> Option<usize> {
        self.inner.as_ref().map(|i| i.lane_capacity)
    }

    /// Opens a recording lane for tree `tree ∈ {1, 2}`. Lanes buffer
    /// thread-locally and merge into the recorder on drop (or
    /// [`RecorderLane::flush`]).
    pub fn lane(&self, tree: u8) -> RecorderLane {
        debug_assert!((1..=2).contains(&tree), "tree must be 1 or 2");
        match &self.inner {
            None => RecorderLane { live: None },
            Some(inner) => RecorderLane {
                live: Some(LaneInner {
                    recorder: Arc::clone(inner),
                    buf: Vec::new(),
                    start: 0,
                    dropped: 0,
                    tree,
                    corr: 0,
                    tick_next: 0,
                    tick_end: 0,
                }),
            },
        }
    }

    /// Events overwritten by full rings so far (flushed lanes only).
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Drains every flushed lane into one tick-sorted event vector.
    /// Returns `(events, dropped)`. Call after all lanes are dropped —
    /// live lanes' events are not visible here.
    pub fn drain(&self) -> (Vec<PageAccessEvent>, u64) {
        let Some(inner) = &self.inner else {
            return (Vec::new(), 0);
        };
        let mut lanes = inner.flushed.lock().expect("recorder poisoned");
        let mut events: Vec<PageAccessEvent> = lanes.drain(..).flatten().collect();
        events.sort_unstable_by_key(|e| e.tick);
        (events, inner.dropped.load(Ordering::Relaxed))
    }

    /// Drains the recorder into an [`AccessTrace`] carrying the given
    /// policy and analytical predictions (see [`AccessTrace`]).
    pub fn into_trace(&self, policy: RecordedPolicy, na_pred: f64, da_pred: f64) -> AccessTrace {
        let (events, dropped) = self.drain();
        AccessTrace {
            policy,
            dropped,
            na_pred,
            da_pred,
            events,
        }
    }
}

struct LaneInner {
    recorder: Arc<RecorderInner>,
    /// Ring storage: grows to `lane_capacity`, then wraps at `start`.
    buf: Vec<PageAccessEvent>,
    /// Oldest element once the ring has wrapped.
    start: usize,
    dropped: u64,
    tree: u8,
    corr: u32,
    /// Next tick to stamp; valid while `< tick_end`.
    tick_next: u64,
    /// End of the claimed tick block (exclusive). `0` ⇒ none claimed.
    tick_end: u64,
}

/// A thread-private recording lane (one per tree per executor). All
/// methods are no-ops for lanes of a disabled recorder.
pub struct RecorderLane {
    live: Option<LaneInner>,
}

impl RecorderLane {
    /// `true` when this lane records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.live.is_some()
    }

    /// Sets the correlation id stamped on subsequent events (the
    /// buffer-residency domain — see the module docs).
    #[inline]
    pub fn set_corr(&mut self, corr: u32) {
        if let Some(live) = &mut self.live {
            live.corr = corr;
        }
    }

    /// Records one access. The hot-path cost when enabled is a ring
    /// write (plus one relaxed `fetch_add` per [`TICK_BLOCK`] events);
    /// when disabled, one discriminant check.
    #[inline]
    pub fn record(&mut self, page: PageId, level: u8, kind: AccessKind) {
        let Some(live) = &mut self.live else {
            return;
        };
        if live.tick_next == live.tick_end {
            live.tick_next = live.recorder.tick.fetch_add(TICK_BLOCK, Ordering::Relaxed);
            live.tick_end = live.tick_next + TICK_BLOCK;
        }
        let tick = live.tick_next;
        live.tick_next += 1;
        let event = PageAccessEvent {
            tick,
            page,
            corr: live.corr,
            tree: live.tree,
            level,
            kind,
        };
        if live.buf.len() < live.recorder.lane_capacity {
            live.buf.push(event);
        } else {
            live.buf[live.start] = event;
            live.start = (live.start + 1) % live.buf.len();
            live.dropped += 1;
        }
    }

    /// Merges the lane's events into the recorder now (also happens on
    /// drop).
    pub fn flush(self) {}
}

impl Drop for RecorderLane {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let mut events = live.buf;
        events.rotate_left(live.start);
        live.recorder
            .dropped
            .fetch_add(live.dropped, Ordering::Relaxed);
        live.recorder
            .flushed
            .lock()
            .expect("recorder poisoned")
            .push(events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PageId {
        PageId(i)
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = FlightRecorder::disabled();
        assert!(!r.is_enabled());
        let mut lane = r.lane(1);
        assert!(!lane.is_enabled());
        lane.record(p(1), 0, AccessKind::Miss);
        drop(lane);
        let (events, dropped) = r.drain();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn events_merge_in_tick_order_across_lanes() {
        let r = FlightRecorder::enabled();
        let mut l1 = r.lane(1);
        let mut l2 = r.lane(2);
        l1.record(p(10), 0, AccessKind::Miss);
        l2.record(p(20), 1, AccessKind::Hit);
        l1.record(p(11), 0, AccessKind::Hit);
        drop(l1);
        drop(l2);
        let (events, dropped) = r.drain();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 3);
        // Ticks are globally unique and strictly increasing after the
        // merge; cross-lane interleaving is block-granular (each lane
        // claims TICK_BLOCK ticks at a time), but within-lane order —
        // the only order replay depends on — is exact.
        assert!(events.windows(2).all(|w| w[0].tick < w[1].tick));
        let lane1: Vec<_> = events
            .iter()
            .filter(|e| e.tree == 1)
            .map(|e| e.page)
            .collect();
        assert_eq!(lane1, vec![p(10), p(11)]);
        assert_eq!(events.iter().filter(|e| e.tree == 2).count(), 1);
    }

    #[test]
    fn corr_stamps_subsequent_events() {
        let r = FlightRecorder::enabled();
        let mut lane = r.lane(1);
        lane.record(p(1), 0, AccessKind::Miss);
        lane.set_corr(7);
        lane.record(p(2), 0, AccessKind::Miss);
        drop(lane);
        let (events, _) = r.drain();
        assert_eq!(events[0].corr, 0);
        assert_eq!(events[1].corr, 7);
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let r = FlightRecorder::with_lane_capacity(3);
        let mut lane = r.lane(1);
        for i in 0..5 {
            lane.record(p(i), 0, AccessKind::Miss);
        }
        drop(lane);
        let (events, dropped) = r.drain();
        assert_eq!(dropped, 2);
        assert_eq!(events.len(), 3);
        // Oldest two overwritten; survivors in tick order.
        let pages: Vec<u32> = events.iter().map(|e| e.page.0).collect();
        assert_eq!(pages, vec![2, 3, 4]);
        assert!(events.windows(2).all(|w| w[0].tick < w[1].tick));
    }

    #[test]
    fn concurrent_lanes_get_unique_ticks() {
        let r = FlightRecorder::enabled();
        std::thread::scope(|scope| {
            for t in 0..4u8 {
                let r = r.clone();
                scope.spawn(move || {
                    let mut lane = r.lane(1 + t % 2);
                    for i in 0..100 {
                        lane.record(p(i), 0, AccessKind::Hit);
                    }
                });
            }
        });
        let (events, _) = r.drain();
        assert_eq!(events.len(), 400);
        assert!(events.windows(2).all(|w| w[0].tick < w[1].tick));
    }

    #[test]
    fn event_bytes_round_trip() {
        let e = PageAccessEvent {
            tick: 0xDEAD_BEEF_0123,
            page: p(42),
            corr: 7,
            tree: 2,
            level: 3,
            kind: AccessKind::Miss,
        };
        let round = PageAccessEvent::from_bytes(&e.to_bytes()).unwrap();
        assert_eq!(round, e);
    }

    #[test]
    fn event_bytes_reject_garbage() {
        let mut b = PageAccessEvent {
            tick: 1,
            page: p(1),
            corr: 0,
            tree: 1,
            level: 0,
            kind: AccessKind::Hit,
        }
        .to_bytes();
        b[16] = 3; // invalid tree
        assert!(PageAccessEvent::from_bytes(&b).is_err());
        b[16] = 1;
        b[18] = 9; // invalid kind
        assert!(PageAccessEvent::from_bytes(&b).is_err());
    }

    fn sample_trace() -> AccessTrace {
        let r = FlightRecorder::enabled();
        let mut l1 = r.lane(1);
        let mut l2 = r.lane(2);
        for i in 0..10 {
            l1.record(p(i), (i % 3) as u8, AccessKind::Miss);
            l2.record(p(100 + i), 0, AccessKind::Hit);
        }
        drop(l1);
        drop(l2);
        r.into_trace(RecordedPolicy::Path, 123.0, 45.0)
    }

    #[test]
    fn trace_bytes_round_trip() {
        let trace = sample_trace();
        let round = AccessTrace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(round, trace);
        assert_eq!(round.policy, RecordedPolicy::Path);
        assert_eq!(round.na_pred, 123.0);
        assert_eq!(round.da_pred, 45.0);
    }

    #[test]
    fn trace_rejects_corruption() {
        let trace = sample_trace();
        let bytes = trace.to_bytes();
        // Truncated body.
        assert!(AccessTrace::from_bytes(&bytes[..bytes.len() - 1])
            .unwrap_err()
            .contains("truncated"));
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(AccessTrace::from_bytes(&bad).unwrap_err().contains("magic"));
        // Bad version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(AccessTrace::from_bytes(&bad)
            .unwrap_err()
            .contains("version"));
        // Non-monotonic ticks: swap two events.
        let mut bad = bytes.clone();
        let (a, b) = (HEADER_SIZE, HEADER_SIZE + EVENT_SIZE);
        let first: Vec<u8> = bad[a..a + EVENT_SIZE].to_vec();
        bad.copy_within(b..b + EVENT_SIZE, a);
        bad[b..b + EVENT_SIZE].copy_from_slice(&first);
        assert!(AccessTrace::from_bytes(&bad)
            .unwrap_err()
            .contains("strictly increasing"));
    }

    #[test]
    fn trace_file_round_trip() {
        let trace = sample_trace();
        let path = std::env::temp_dir().join(format!("sjcm_trace_{}.bin", std::process::id()));
        trace.write(&path).unwrap();
        let round = AccessTrace::read(&path).unwrap();
        assert_eq!(round, trace);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lru_policy_round_trips_capacity() {
        let t = AccessTrace {
            policy: RecordedPolicy::Lru(512),
            dropped: 0,
            na_pred: 0.0,
            da_pred: 0.0,
            events: Vec::new(),
        };
        let round = AccessTrace::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(round.policy, RecordedPolicy::Lru(512));
    }
}
