//! Per-level access statistics.
//!
//! The analytical model predicts NA and DA *per tree and per level*
//! (Eqs 6, 8, 9); the experiments compare those predictions against the
//! per-level tallies collected here during actual SJ runs.

use crate::buffer::AccessKind;

/// Buffer hit ratio `hits / (hits + misses)` — the one definition
/// shared by [`AccessStats::hit_ratio`] and
/// [`crate::buffer::BufferCounters::hit_ratio`]. Zero-access semantics
/// are explicit: with no accesses the ratio is **undefined** (`None`),
/// not 0.0 — an untouched buffer is not a buffer that always missed.
pub fn hit_ratio(hits: u64, misses: u64) -> Option<f64> {
    let total = hits + misses;
    if total == 0 {
        None
    } else {
        Some(hits as f64 / total as f64)
    }
}

/// Node/disk access counts for one tree, broken down by level
/// (0 = leaf, following the crate convention; the cost-model crate maps
/// to the paper's 1-based levels).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessStats {
    na_by_level: Vec<u64>,
    da_by_level: Vec<u64>,
}

impl AccessStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one page access at `level` with the buffer outcome `kind`.
    pub fn record(&mut self, level: u8, kind: AccessKind) {
        let idx = level as usize;
        if self.na_by_level.len() <= idx {
            self.na_by_level.resize(idx + 1, 0);
            self.da_by_level.resize(idx + 1, 0);
        }
        self.na_by_level[idx] += 1;
        if kind.is_miss() {
            self.da_by_level[idx] += 1;
        }
    }

    /// Total node accesses (every `ReadPage`).
    pub fn na_total(&self) -> u64 {
        self.na_by_level.iter().sum()
    }

    /// Total disk accesses (buffer misses).
    pub fn da_total(&self) -> u64 {
        self.da_by_level.iter().sum()
    }

    /// Node accesses at `level`, 0 when never touched.
    pub fn na_at(&self, level: u8) -> u64 {
        self.na_by_level.get(level as usize).copied().unwrap_or(0)
    }

    /// Disk accesses at `level`, 0 when never touched.
    pub fn da_at(&self, level: u8) -> u64 {
        self.da_by_level.get(level as usize).copied().unwrap_or(0)
    }

    /// Highest level that saw any access, or `None` when empty.
    pub fn max_level(&self) -> Option<u8> {
        self.na_by_level
            .iter()
            .rposition(|&c| c > 0)
            .map(|l| l as u8)
    }

    /// Per-level `(level, NA, DA)` triples for every level touched so
    /// far, in ascending level order — the counter plumbing a live
    /// progress sink drains periodically (it diffs two snapshots of
    /// this iterator, so reading must not perturb the tallies).
    pub fn per_level(&self) -> impl Iterator<Item = (u8, u64, u64)> + '_ {
        self.na_by_level
            .iter()
            .zip(&self.da_by_level)
            .enumerate()
            .map(|(i, (&na, &da))| (i as u8, na, da))
    }

    /// Adds another tally into this one (used to combine the per-thread
    /// statistics of the parallel join).
    pub fn merge(&mut self, other: &AccessStats) {
        if self.na_by_level.len() < other.na_by_level.len() {
            self.na_by_level.resize(other.na_by_level.len(), 0);
            self.da_by_level.resize(other.da_by_level.len(), 0);
        }
        for (i, &c) in other.na_by_level.iter().enumerate() {
            self.na_by_level[i] += c;
        }
        for (i, &c) in other.da_by_level.iter().enumerate() {
            self.da_by_level[i] += c;
        }
    }

    /// Resets all counters.
    pub fn clear(&mut self) {
        self.na_by_level.clear();
        self.da_by_level.clear();
    }

    /// Buffer hit ratio implied by the tallies: hits are `NA − DA`
    /// (accesses the buffer absorbed), misses are `DA`. Delegates to
    /// the shared [`hit_ratio`] helper; `None` when no accesses were
    /// recorded.
    pub fn hit_ratio(&self) -> Option<f64> {
        let na = self.na_total();
        let da = self.da_total();
        hit_ratio(na - da, da)
    }

    /// The structural invariant `DA ≤ NA`, level by level. Always true
    /// for tallies produced through [`AccessStats::record`]; asserted by
    /// tests after every experiment.
    pub fn da_bounded_by_na(&self) -> bool {
        self.na_by_level
            .iter()
            .zip(&self.da_by_level)
            .all(|(na, da)| da <= na)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tallies_na_and_da() {
        let mut s = AccessStats::new();
        s.record(0, AccessKind::Miss);
        s.record(0, AccessKind::Hit);
        s.record(2, AccessKind::Miss);
        assert_eq!(s.na_total(), 3);
        assert_eq!(s.da_total(), 2);
        assert_eq!(s.na_at(0), 2);
        assert_eq!(s.da_at(0), 1);
        assert_eq!(s.na_at(1), 0);
        assert_eq!(s.na_at(2), 1);
        assert_eq!(s.max_level(), Some(2));
        assert!(s.da_bounded_by_na());
    }

    #[test]
    fn empty_stats() {
        let s = AccessStats::new();
        assert_eq!(s.na_total(), 0);
        assert_eq!(s.da_total(), 0);
        assert_eq!(s.max_level(), None);
        assert!(s.da_bounded_by_na());
    }

    #[test]
    fn merge_adds_levelwise() {
        let mut a = AccessStats::new();
        a.record(0, AccessKind::Miss);
        let mut b = AccessStats::new();
        b.record(0, AccessKind::Hit);
        b.record(3, AccessKind::Miss);
        a.merge(&b);
        assert_eq!(a.na_at(0), 2);
        assert_eq!(a.da_at(0), 1);
        assert_eq!(a.na_at(3), 1);
        assert_eq!(a.max_level(), Some(3));
    }

    #[test]
    fn per_level_mirrors_the_accessors() {
        let mut s = AccessStats::new();
        s.record(0, AccessKind::Miss);
        s.record(0, AccessKind::Hit);
        s.record(2, AccessKind::Miss);
        let levels: Vec<_> = s.per_level().collect();
        assert_eq!(levels, vec![(0, 2, 1), (1, 0, 0), (2, 1, 1)]);
        assert!(AccessStats::new().per_level().next().is_none());
    }

    #[test]
    fn clear_resets() {
        let mut s = AccessStats::new();
        s.record(1, AccessKind::Miss);
        s.clear();
        assert_eq!(s.na_total(), 0);
        assert_eq!(s.max_level(), None);
    }

    #[test]
    fn hits_do_not_count_as_disk_accesses() {
        let mut s = AccessStats::new();
        for _ in 0..10 {
            s.record(0, AccessKind::Hit);
        }
        assert_eq!(s.na_total(), 10);
        assert_eq!(s.da_total(), 0);
    }

    #[test]
    fn hit_ratio_is_na_minus_da_over_na() {
        let mut s = AccessStats::new();
        assert_eq!(s.hit_ratio(), None);
        s.record(0, AccessKind::Miss);
        s.record(0, AccessKind::Hit);
        s.record(1, AccessKind::Hit);
        s.record(1, AccessKind::Hit);
        // NA = 4, DA = 1 ⇒ (4 − 1)/4.
        assert!((s.hit_ratio().unwrap() - 0.75).abs() < 1e-12);
        s.clear();
        assert_eq!(s.hit_ratio(), None);
    }
}
