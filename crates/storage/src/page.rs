//! Page identifiers and page stores.
//!
//! The store is deliberately minimal: fixed-size pages addressed by dense
//! [`PageId`]s, with a checksum over each page so that layout bugs (or a
//! corrupted simulated disk) surface as explicit [`StorageError::Corrupt`]
//! failures instead of silently wrong query answers.

use bytes::Bytes;
use std::fmt;

/// Default page size — 1 KiB, the value used throughout the paper's
/// evaluation ("values that correspond to page size of 1 Kbyte").
pub const DEFAULT_PAGE_SIZE: usize = 1024;

/// Identifier of a page in a [`PageStore`]. Dense, 32-bit, matching the
/// 4-byte child pointers of the paper's node layout.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel used by serialization for "no page" (e.g. leaf children
    /// carry object ids instead). `u32::MAX` is never allocated.
    pub const INVALID: PageId = PageId(u32::MAX);

    /// The raw index.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Errors from the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page id referenced a page that was never allocated.
    UnknownPage(PageId),
    /// Data written to a page exceeded the page size.
    PageOverflow {
        /// Bytes that were attempted to be written.
        len: usize,
        /// Configured page size.
        page_size: usize,
    },
    /// Checksum mismatch on read.
    Corrupt(PageId),
    /// A serialized node failed structural validation.
    MalformedNode(String),
    /// The page store ran out of 32-bit page ids.
    OutOfPages,
    /// A real (or injected) I/O failure: the operating system refused the
    /// operation, the device lost the page, or a transient fault fired.
    /// Carries a human-readable description rather than `std::io::Error`
    /// so the variant stays `Clone + Eq` for deterministic comparisons.
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownPage(p) => write!(f, "unknown page {p}"),
            StorageError::PageOverflow { len, page_size } => {
                write!(f, "write of {len} bytes exceeds page size {page_size}")
            }
            StorageError::Corrupt(p) => write!(f, "checksum mismatch on page {p}"),
            StorageError::MalformedNode(msg) => write!(f, "malformed node: {msg}"),
            StorageError::OutOfPages => write!(f, "page id space exhausted"),
            StorageError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Abstract page store. Implementations must be deterministic so that the
/// experiments are reproducible.
pub trait PageStore {
    /// Configured page size in bytes.
    fn page_size(&self) -> usize;

    /// Allocates a fresh, zeroed page.
    fn allocate(&mut self) -> Result<PageId, StorageError>;

    /// Overwrites a page's contents. `data` may be shorter than the page
    /// size (the remainder reads back as zeros) but never longer.
    fn write(&mut self, id: PageId, data: &[u8]) -> Result<(), StorageError>;

    /// Reads a page's contents (cheaply clonable [`Bytes`]).
    fn read(&self, id: PageId) -> Result<Bytes, StorageError>;

    /// Frees a page; its id may be recycled by later allocations.
    fn free(&mut self, id: PageId) -> Result<(), StorageError>;

    /// Number of live (allocated, not freed) pages.
    fn live_pages(&self) -> usize;

    /// Flushes buffered writes to durable storage. A no-op for memory-
    /// backed stores; file-backed stores must not consider a `write`
    /// durable until `sync` returns `Ok`.
    fn sync(&mut self) -> Result<(), StorageError> {
        Ok(())
    }
}

/// FNV-1a, the checksum stored alongside each page. Not cryptographic —
/// it only needs to catch layout bugs and simulated corruption.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[derive(Clone)]
struct Slot {
    data: Bytes,
    checksum: u64,
    live: bool,
}

/// In-memory page store backing the simulated disk. Pages live in a dense
/// vector; freed ids go to a free list and are recycled in LIFO order.
pub struct InMemoryPageStore {
    page_size: usize,
    slots: Vec<Slot>,
    free_list: Vec<PageId>,
}

impl InMemoryPageStore {
    /// Creates a store with the given page size.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Self {
            page_size,
            slots: Vec::new(),
            free_list: Vec::new(),
        }
    }

    /// Creates a store with the paper's 1 KiB pages.
    pub fn with_default_page_size() -> Self {
        Self::new(DEFAULT_PAGE_SIZE)
    }

    /// Deliberately corrupts a page (flips one byte) — used by failure-
    /// injection tests to prove reads detect corruption.
    pub fn corrupt_for_test(&mut self, id: PageId) -> Result<(), StorageError> {
        let slot = self
            .slots
            .get_mut(id.0 as usize)
            .filter(|s| s.live)
            .ok_or(StorageError::UnknownPage(id))?;
        let mut data = slot.data.to_vec();
        if data.is_empty() {
            data.push(0xff);
        } else {
            data[0] ^= 0xff;
        }
        slot.data = Bytes::from(data);
        Ok(())
    }

    fn slot(&self, id: PageId) -> Result<&Slot, StorageError> {
        self.slots
            .get(id.0 as usize)
            .filter(|s| s.live)
            .ok_or(StorageError::UnknownPage(id))
    }
}

impl PageStore for InMemoryPageStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&mut self) -> Result<PageId, StorageError> {
        if let Some(id) = self.free_list.pop() {
            let slot = &mut self.slots[id.0 as usize];
            slot.data = Bytes::new();
            slot.checksum = fnv1a(&[]);
            slot.live = true;
            return Ok(id);
        }
        let idx = self.slots.len();
        if idx >= u32::MAX as usize {
            return Err(StorageError::OutOfPages);
        }
        self.slots.push(Slot {
            data: Bytes::new(),
            checksum: fnv1a(&[]),
            live: true,
        });
        Ok(PageId(idx as u32))
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> Result<(), StorageError> {
        if data.len() > self.page_size {
            return Err(StorageError::PageOverflow {
                len: data.len(),
                page_size: self.page_size,
            });
        }
        let checksum = fnv1a(data);
        let slot = self
            .slots
            .get_mut(id.0 as usize)
            .filter(|s| s.live)
            .ok_or(StorageError::UnknownPage(id))?;
        slot.data = Bytes::copy_from_slice(data);
        slot.checksum = checksum;
        Ok(())
    }

    fn read(&self, id: PageId) -> Result<Bytes, StorageError> {
        let slot = self.slot(id)?;
        if fnv1a(&slot.data) != slot.checksum {
            return Err(StorageError::Corrupt(id));
        }
        Ok(slot.data.clone())
    }

    fn free(&mut self, id: PageId) -> Result<(), StorageError> {
        let slot = self
            .slots
            .get_mut(id.0 as usize)
            .filter(|s| s.live)
            .ok_or(StorageError::UnknownPage(id))?;
        slot.live = false;
        slot.data = Bytes::new();
        self.free_list.push(id);
        Ok(())
    }

    fn live_pages(&self) -> usize {
        self.slots.iter().filter(|s| s.live).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read_roundtrip() {
        let mut store = InMemoryPageStore::new(64);
        let id = store.allocate().unwrap();
        store.write(id, b"hello pages").unwrap();
        assert_eq!(&store.read(id).unwrap()[..], b"hello pages");
    }

    #[test]
    fn write_rejects_oversized_payload() {
        let mut store = InMemoryPageStore::new(8);
        let id = store.allocate().unwrap();
        let err = store.write(id, &[0u8; 9]).unwrap_err();
        assert_eq!(
            err,
            StorageError::PageOverflow {
                len: 9,
                page_size: 8
            }
        );
    }

    #[test]
    fn read_unknown_page_fails() {
        let store = InMemoryPageStore::with_default_page_size();
        assert_eq!(
            store.read(PageId(3)).unwrap_err(),
            StorageError::UnknownPage(PageId(3))
        );
    }

    #[test]
    fn freed_pages_are_recycled() {
        let mut store = InMemoryPageStore::new(32);
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        assert_ne!(a, b);
        store.free(a).unwrap();
        assert_eq!(store.live_pages(), 1);
        let c = store.allocate().unwrap();
        assert_eq!(c, a, "LIFO free-list recycling");
        assert_eq!(store.live_pages(), 2);
    }

    #[test]
    fn read_after_free_fails() {
        let mut store = InMemoryPageStore::new(32);
        let a = store.allocate().unwrap();
        store.free(a).unwrap();
        assert_eq!(store.read(a).unwrap_err(), StorageError::UnknownPage(a));
        assert_eq!(store.free(a).unwrap_err(), StorageError::UnknownPage(a));
    }

    #[test]
    fn corruption_is_detected() {
        let mut store = InMemoryPageStore::new(32);
        let a = store.allocate().unwrap();
        store.write(a, b"payload").unwrap();
        store.corrupt_for_test(a).unwrap();
        assert_eq!(store.read(a).unwrap_err(), StorageError::Corrupt(a));
    }

    #[test]
    fn recycled_page_is_zeroed() {
        let mut store = InMemoryPageStore::new(32);
        let a = store.allocate().unwrap();
        store.write(a, b"old data").unwrap();
        store.free(a).unwrap();
        let b = store.allocate().unwrap();
        assert_eq!(a, b);
        assert!(store.read(b).unwrap().is_empty());
    }

    #[test]
    fn fnv_distinguishes_small_changes() {
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }

    #[test]
    fn invalid_sentinel_never_allocated() {
        let mut store = InMemoryPageStore::new(8);
        let id = store.allocate().unwrap();
        assert_ne!(id, PageId::INVALID);
    }
}
