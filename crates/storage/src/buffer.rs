//! Buffer managers.
//!
//! The distinction between the paper's two cost measures is entirely a
//! buffering question: **NA** counts every `ReadPage` call, **DA** counts
//! only the calls that miss the buffer, so `DA ≤ NA` always (§3). Three
//! schemes are provided:
//!
//! * [`NoBuffer`] — every access misses; models Eq 7/11 (`DA = NA`).
//! * [`PathBuffer`] — keeps the most recently visited page *per level*,
//!   i.e. the root-to-current-node path of one tree. This is exactly the
//!   "simple path buffer" behind Eqs 8–12.
//! * [`LruBuffer`] — least-recently-used buffer of parametric capacity,
//!   the §5 future-work extension (cf. Leutenegger & Lopez, ICDE 1998).

use crate::page::PageId;
use std::collections::HashMap;

/// Outcome of a buffered page access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Page served from the buffer — a node access but not a disk access.
    Hit,
    /// Page fetched from disk — both a node access and a disk access.
    Miss,
}

impl AccessKind {
    /// `true` for [`AccessKind::Miss`].
    #[inline]
    pub fn is_miss(self) -> bool {
        matches!(self, AccessKind::Miss)
    }
}

/// Lifetime tallies of a buffer manager, for the observability layer:
/// hits and misses partition the accesses (`hits + misses = NA` of the
/// tree the buffer serves, `misses = DA`), evictions count pages pushed
/// out to make room. Counters are cumulative across
/// [`BufferManager::clear`] — the parallel join resets residency at
/// every unit boundary, and the per-run totals must survive that.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferCounters {
    /// Accesses served from the buffer.
    pub hits: u64,
    /// Accesses that went to disk.
    pub misses: u64,
    /// Resident pages displaced by a newcomer (not counted for
    /// [`BufferManager::clear`], which models a deliberate reset, nor
    /// for [`NoBuffer`], which never holds a page to displace).
    pub evictions: u64,
}

impl BufferCounters {
    /// Merges another tally into this one (used to combine the
    /// per-worker buffers of the parallel join).
    pub fn merge(&mut self, other: &BufferCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }

    /// Hit ratio `hits / (hits + misses)`, `None` before any access
    /// (delegates to the shared [`crate::counters::hit_ratio`]).
    pub fn hit_ratio(&self) -> Option<f64> {
        crate::counters::hit_ratio(self.hits, self.misses)
    }
}

/// A buffer manager decides, per page access, whether the page was
/// already resident. Implementations are deterministic functions of the
/// access trace, which keeps every experiment reproducible.
pub trait BufferManager {
    /// Registers an access to `page` at tree `level` and reports whether
    /// it hit. Levels use the crate convention (0 = leaf).
    fn access(&mut self, page: PageId, level: u8) -> AccessKind;

    /// Forgets all buffered pages.
    fn clear(&mut self);

    /// Human-readable scheme name for experiment reports.
    fn name(&self) -> &'static str;

    /// Lifetime hit/miss/eviction tallies (see [`BufferCounters`]).
    fn counters(&self) -> BufferCounters;
}

/// The trivial scheme: nothing is ever buffered, so `DA = NA`.
#[derive(Debug, Default, Clone)]
pub struct NoBuffer {
    counters: BufferCounters,
}

impl NoBuffer {
    /// Creates the no-op buffer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BufferManager for NoBuffer {
    fn access(&mut self, _page: PageId, _level: u8) -> AccessKind {
        self.counters.misses += 1;
        AccessKind::Miss
    }

    fn clear(&mut self) {}

    fn name(&self) -> &'static str {
        "none"
    }

    fn counters(&self) -> BufferCounters {
        self.counters
    }
}

/// Path buffer: one frame per tree level holding the most recently
/// visited page of that level. Re-visiting the same page consecutively
/// (at its level) hits; any other page evicts the frame.
///
/// This reproduces the behaviour analyzed in §3.1: the node pointed to by
/// the current outer-loop entry stays resident across the inner loop, so
/// the "query" tree's accesses mostly hit, while the "data" tree's
/// accesses mostly miss.
#[derive(Debug, Default, Clone)]
pub struct PathBuffer {
    frames: Vec<Option<PageId>>,
    counters: BufferCounters,
}

impl PathBuffer {
    /// Creates an empty path buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The page currently buffered at `level`, if any.
    pub fn resident(&self, level: u8) -> Option<PageId> {
        self.frames.get(level as usize).copied().flatten()
    }
}

impl BufferManager for PathBuffer {
    fn access(&mut self, page: PageId, level: u8) -> AccessKind {
        let idx = level as usize;
        if self.frames.len() <= idx {
            self.frames.resize(idx + 1, None);
        }
        if self.frames[idx] == Some(page) {
            self.counters.hits += 1;
            AccessKind::Hit
        } else {
            if self.frames[idx].is_some() {
                self.counters.evictions += 1;
            }
            self.frames[idx] = Some(page);
            self.counters.misses += 1;
            AccessKind::Miss
        }
    }

    fn clear(&mut self) {
        self.frames.clear();
    }

    fn name(&self) -> &'static str {
        "path"
    }

    fn counters(&self) -> BufferCounters {
        self.counters
    }
}

/// LRU buffer of fixed capacity (in pages), level-oblivious.
///
/// Implementation: a hash map from page to a monotonically increasing
/// "last used" stamp, plus a `BTreeMap` keyed by stamp as the recency
/// index, so eviction is O(log capacity) rather than a scan. Capacity 0
/// degenerates to [`NoBuffer`] behaviour.
#[derive(Debug, Clone)]
pub struct LruBuffer {
    capacity: usize,
    stamp: u64,
    resident: HashMap<PageId, u64>,
    by_stamp: std::collections::BTreeMap<u64, PageId>,
    counters: BufferCounters,
}

impl LruBuffer {
    /// Creates an LRU buffer holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            stamp: 0,
            resident: HashMap::with_capacity(capacity.min(1024)),
            by_stamp: std::collections::BTreeMap::new(),
            counters: BufferCounters::default(),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently resident.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    fn evict_lru(&mut self) {
        if let Some((_, victim)) = self.by_stamp.pop_first() {
            self.resident.remove(&victim);
            self.counters.evictions += 1;
        }
    }
}

impl BufferManager for LruBuffer {
    fn access(&mut self, page: PageId, _level: u8) -> AccessKind {
        if self.capacity == 0 {
            self.counters.misses += 1;
            return AccessKind::Miss;
        }
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(old) = self.resident.insert(page, stamp) {
            self.by_stamp.remove(&old);
            self.by_stamp.insert(stamp, page);
            self.counters.hits += 1;
            return AccessKind::Hit;
        }
        self.by_stamp.insert(stamp, page);
        if self.resident.len() > self.capacity {
            // The just-inserted page has the freshest stamp, so it is
            // never its own victim.
            self.evict_lru();
        }
        self.counters.misses += 1;
        AccessKind::Miss
    }

    fn clear(&mut self) {
        self.resident.clear();
        self.by_stamp.clear();
        self.stamp = 0;
    }

    fn name(&self) -> &'static str {
        "lru"
    }

    fn counters(&self) -> BufferCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PageId {
        PageId(i)
    }

    #[test]
    fn no_buffer_always_misses() {
        let mut b = NoBuffer::new();
        assert_eq!(b.access(p(1), 0), AccessKind::Miss);
        assert_eq!(b.access(p(1), 0), AccessKind::Miss);
    }

    #[test]
    fn path_buffer_hits_on_repeat_at_same_level() {
        let mut b = PathBuffer::new();
        assert_eq!(b.access(p(1), 2), AccessKind::Miss);
        assert_eq!(b.access(p(1), 2), AccessKind::Hit);
        assert_eq!(b.resident(2), Some(p(1)));
    }

    #[test]
    fn path_buffer_one_frame_per_level() {
        let mut b = PathBuffer::new();
        b.access(p(1), 1);
        b.access(p(2), 0);
        // Level 1 frame untouched by level-0 traffic.
        assert_eq!(b.access(p(1), 1), AccessKind::Hit);
        // Different page at level 1 evicts.
        assert_eq!(b.access(p(3), 1), AccessKind::Miss);
        assert_eq!(b.access(p(1), 1), AccessKind::Miss);
    }

    #[test]
    fn path_buffer_models_figure3_case_i() {
        // Figure 3 case (i): the paper keeps one path buffer *per tree*.
        // Entry D2's child node (page 10, tree R2) is fetched from disk
        // once per R1 parent node it is compared under — here A1 and B1 —
        // even though it is *accessed* once per overlapping R1 entry.
        let mut r1_buf = PathBuffer::new();
        let mut r2_buf = PathBuffer::new();
        let mut d2_misses = 0;
        let mut d2_accesses = 0;
        // Under parent A1: D2 overlaps {D1, E1}.
        for r1_child in [20, 21] {
            r1_buf.access(p(r1_child), 0);
            d2_accesses += 1;
            if r2_buf.access(p(10), 0).is_miss() {
                d2_misses += 1;
            }
        }
        // E2 (same R2 node as D2) is processed next under A1, evicting
        // D2's child from R2's level-0 frame.
        r2_buf.access(p(11), 0);
        // Under parent B1: D2 overlaps {H1, I1}.
        for r1_child in [30, 31] {
            r1_buf.access(p(r1_child), 0);
            d2_accesses += 1;
            if r2_buf.access(p(10), 0).is_miss() {
                d2_misses += 1;
            }
        }
        // NA counts 4 accesses; DA counts one miss per intersected R1
        // parent node {A1, B1} = 2, exactly Eq 8's intsect(...) factor.
        assert_eq!(d2_accesses, 4);
        assert_eq!(d2_misses, 2);
    }

    #[test]
    fn path_buffer_clear() {
        let mut b = PathBuffer::new();
        b.access(p(1), 0);
        b.clear();
        assert_eq!(b.access(p(1), 0), AccessKind::Miss);
    }

    #[test]
    fn lru_hits_within_capacity() {
        let mut b = LruBuffer::new(2);
        assert_eq!(b.access(p(1), 0), AccessKind::Miss);
        assert_eq!(b.access(p(2), 0), AccessKind::Miss);
        assert_eq!(b.access(p(1), 0), AccessKind::Hit);
        assert_eq!(b.access(p(2), 0), AccessKind::Hit);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut b = LruBuffer::new(2);
        b.access(p(1), 0);
        b.access(p(2), 0);
        b.access(p(1), 0); // 2 is now LRU
        assert_eq!(b.access(p(3), 0), AccessKind::Miss); // evicts 2
        assert_eq!(b.access(p(1), 0), AccessKind::Hit);
        assert_eq!(b.access(p(2), 0), AccessKind::Miss);
    }

    #[test]
    fn lru_capacity_zero_is_no_buffer() {
        let mut b = LruBuffer::new(0);
        assert_eq!(b.access(p(1), 0), AccessKind::Miss);
        assert_eq!(b.access(p(1), 0), AccessKind::Miss);
        assert!(b.is_empty());
    }

    #[test]
    fn lru_never_evicts_fresh_insert() {
        let mut b = LruBuffer::new(1);
        b.access(p(1), 0);
        b.access(p(2), 0); // evicts 1, keeps 2
        assert_eq!(b.access(p(2), 0), AccessKind::Hit);
    }

    #[test]
    fn path_buffer_counters_track_hits_misses_evictions() {
        let mut b = PathBuffer::new();
        b.access(p(1), 0); // miss, empty frame: no eviction
        b.access(p(1), 0); // hit
        b.access(p(2), 0); // miss, evicts page 1
        b.access(p(3), 1); // miss, empty frame at level 1
        let c = b.counters();
        assert_eq!(
            c,
            BufferCounters {
                hits: 1,
                misses: 3,
                evictions: 1
            }
        );
        assert!((c.hit_ratio().unwrap() - 0.25).abs() < 1e-12);
        // clear() resets residency, not the counters, and is not an
        // eviction.
        b.clear();
        assert_eq!(b.counters().evictions, 1);
        b.access(p(2), 0); // miss again after clear
        assert_eq!(b.counters().misses, 4);
    }

    #[test]
    fn lru_counters_track_hits_misses_evictions() {
        let mut b = LruBuffer::new(2);
        b.access(p(1), 0); // miss
        b.access(p(2), 0); // miss
        b.access(p(1), 0); // hit
        b.access(p(3), 0); // miss, evicts 2
        b.access(p(2), 0); // miss, evicts 1
        let c = b.counters();
        assert_eq!(
            c,
            BufferCounters {
                hits: 1,
                misses: 4,
                evictions: 2
            }
        );
        assert!((c.hit_ratio().unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn no_buffer_counts_only_misses() {
        let mut b = NoBuffer::new();
        b.access(p(1), 0);
        b.access(p(1), 0);
        let c = b.counters();
        assert_eq!(c.hits, 0);
        assert_eq!(c.misses, 2);
        assert_eq!(c.evictions, 0);
        assert_eq!(c.hit_ratio(), Some(0.0));
    }

    #[test]
    fn counters_merge_and_empty_hit_ratio() {
        let mut a = BufferCounters {
            hits: 1,
            misses: 2,
            evictions: 3,
        };
        a.merge(&BufferCounters {
            hits: 10,
            misses: 20,
            evictions: 30,
        });
        assert_eq!(a.hits, 11);
        assert_eq!(a.misses, 22);
        assert_eq!(a.evictions, 33);
        assert_eq!(BufferCounters::default().hit_ratio(), None);
    }

    #[test]
    fn lru_dominates_path_dominates_none_on_a_trace() {
        // On any trace, a big-enough LRU cannot miss more than the path
        // buffer, which cannot miss more than no buffer. Spot-check on a
        // representative mixed trace.
        let trace: Vec<(u32, u8)> = vec![
            (1, 2),
            (2, 1),
            (3, 0),
            (2, 1),
            (4, 0),
            (3, 0),
            (2, 1),
            (1, 2),
            (5, 1),
            (2, 1),
        ];
        let mut none = NoBuffer::new();
        let mut path = PathBuffer::new();
        let mut lru = LruBuffer::new(16);
        let (mut m_none, mut m_path, mut m_lru) = (0, 0, 0);
        for &(pg, lvl) in &trace {
            m_none += usize::from(none.access(p(pg), lvl).is_miss());
            m_path += usize::from(path.access(p(pg), lvl).is_miss());
            m_lru += usize::from(lru.access(p(pg), lvl).is_miss());
        }
        assert_eq!(m_none, trace.len());
        assert!(m_lru <= m_path);
        assert!(m_path <= m_none);
    }
}
