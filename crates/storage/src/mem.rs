//! Memory-budget accounting for the query governor.
//!
//! The paper prices a join's I/O before it runs; treating *memory* as a
//! first-class budget alongside I/O (after the space–time tradeoff
//! literature) needs the same discipline: every transient arena an
//! executor allocates — PBSM partition replicas, the parallel
//! scheduler's deque arena — is charged against a [`MemoryMeter`]
//! *before* the allocation happens, so an over-budget query fails with
//! a typed error instead of aborting the process.
//!
//! The meter follows the [`crate::FaultInjector`] pattern: a disabled
//! meter is one `Option` discriminant check, so the unmetered path pays
//! nothing, and clones share the same counters (one budget per query,
//! however many executors it fans out to).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A reservation was denied because it would exceed the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudgetExceeded {
    /// Bytes the denied reservation asked for.
    pub requested: u64,
    /// Bytes already reserved when the request was denied.
    pub used: u64,
    /// The configured budget.
    pub limit: u64,
}

impl std::fmt::Display for MemoryBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory budget exceeded: requested {} bytes with {} of {} already reserved",
            self.requested, self.used, self.limit
        )
    }
}

impl std::error::Error for MemoryBudgetExceeded {}

#[derive(Debug, Default)]
struct MeterInner {
    limit: u64,
    used: AtomicU64,
    peak: AtomicU64,
}

/// Shared byte-budget meter. `unlimited()` never denies and costs one
/// `Option` check per call; `with_limit(bytes)` admits reservations
/// only while the running total stays at or under the limit.
#[derive(Debug, Clone, Default)]
pub struct MemoryMeter {
    inner: Option<Arc<MeterInner>>,
}

impl MemoryMeter {
    /// A meter that admits everything (the disabled fast path).
    pub fn unlimited() -> Self {
        Self { inner: None }
    }

    /// A meter with a hard byte budget.
    pub fn with_limit(bytes: u64) -> Self {
        Self {
            inner: Some(Arc::new(MeterInner {
                limit: bytes,
                used: AtomicU64::new(0),
                peak: AtomicU64::new(0),
            })),
        }
    }

    /// `true` when a budget is armed.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Reserves `bytes` against the budget, or reports why it cannot.
    /// An unlimited meter always succeeds (and tracks nothing).
    pub fn try_reserve(&self, bytes: u64) -> Result<(), MemoryBudgetExceeded> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let mut used = inner.used.load(Ordering::Relaxed);
        loop {
            let new = used.saturating_add(bytes);
            if new > inner.limit {
                return Err(MemoryBudgetExceeded {
                    requested: bytes,
                    used,
                    limit: inner.limit,
                });
            }
            match inner
                .used
                .compare_exchange(used, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    inner.peak.fetch_max(new, Ordering::Relaxed);
                    return Ok(());
                }
                Err(actual) => used = actual,
            }
        }
    }

    /// Releases a previous reservation (saturating — releasing more
    /// than was reserved clamps to zero rather than wrapping).
    pub fn release(&self, bytes: u64) {
        if let Some(inner) = &self.inner {
            let mut used = inner.used.load(Ordering::Relaxed);
            loop {
                let new = used.saturating_sub(bytes);
                match inner
                    .used
                    .compare_exchange(used, new, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => return,
                    Err(actual) => used = actual,
                }
            }
        }
    }

    /// Bytes currently reserved (0 for an unlimited meter).
    pub fn used(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.used.load(Ordering::Relaxed))
    }

    /// High-water mark of reserved bytes (0 for an unlimited meter).
    pub fn peak(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.peak.load(Ordering::Relaxed))
    }

    /// The configured budget, if any.
    pub fn limit(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_admits_everything_and_tracks_nothing() {
        let m = MemoryMeter::unlimited();
        assert!(!m.is_enabled());
        assert!(m.try_reserve(u64::MAX).is_ok());
        assert_eq!(m.used(), 0);
        assert_eq!(m.peak(), 0);
        assert_eq!(m.limit(), None);
    }

    #[test]
    fn limited_meter_admits_until_the_budget_then_denies() {
        let m = MemoryMeter::with_limit(100);
        assert!(m.is_enabled());
        assert!(m.try_reserve(60).is_ok());
        assert!(m.try_reserve(40).is_ok());
        let err = m.try_reserve(1).unwrap_err();
        assert_eq!(
            err,
            MemoryBudgetExceeded {
                requested: 1,
                used: 100,
                limit: 100
            }
        );
        assert_eq!(m.used(), 100);
        assert_eq!(m.peak(), 100);
        m.release(50);
        assert_eq!(m.used(), 50);
        assert!(m.try_reserve(50).is_ok());
        // Peak is the high-water mark, not the current level.
        assert_eq!(m.peak(), 100);
    }

    #[test]
    fn clones_share_one_budget() {
        let m = MemoryMeter::with_limit(10);
        let c = m.clone();
        assert!(c.try_reserve(8).is_ok());
        assert!(m.try_reserve(4).is_err());
        c.release(8);
        assert!(m.try_reserve(4).is_ok());
    }

    #[test]
    fn release_saturates_at_zero() {
        let m = MemoryMeter::with_limit(10);
        m.release(5);
        assert_eq!(m.used(), 0);
        assert!(m.try_reserve(10).is_ok());
    }
}
