//! Trace-driven buffer what-if replay.
//!
//! A captured [`crate::recorder::AccessTrace`] fixes the *access
//! sequence* of a join run; the hit/miss outcome of each access is then
//! a deterministic function of the buffer policy. This module
//! re-simulates a trace under any [`RecordedPolicy`]:
//!
//! * [`replay`] runs the events through concrete buffer managers, one
//!   fresh pair (tree 1, tree 2) per correlation domain — reproducing
//!   the live per-level NA/DA counters **exactly** when the replayed
//!   policy matches the recorded one ([`ReplayOutcome::kind_mismatches`]
//!   is 0), and answering "what if we had run policy X instead?"
//!   otherwise.
//! * [`StackDistance`] is a single-pass Mattson stack-distance
//!   analyzer: because LRU has the *inclusion property* (the content of
//!   an LRU buffer of capacity C is a subset of capacity C+1's), one
//!   scan yields the hit count of **every** LRU capacity at once — the
//!   whole DA-vs-buffer-size curve from one pass instead of one replay
//!   per size. Cross-checked against brute-force [`replay`] by the
//!   property tests.
//!
//! Both respect correlation domains: accesses with different `corr`
//! never share a buffer (the live schedulers reset or separate buffers
//! exactly there — see [`crate::recorder`]), and tree 1 / tree 2 each
//! have their own buffer, mirroring the executors' `buf1`/`buf2`.

use crate::buffer::BufferManager;
use crate::counters::AccessStats;
use crate::recorder::{PageAccessEvent, RecordedPolicy};
use std::collections::HashMap;

/// Result of re-simulating a trace under one buffer policy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Per-level NA/DA for tree 1 under the replayed policy.
    pub stats1: AccessStats,
    /// Per-level NA/DA for tree 2 under the replayed policy.
    pub stats2: AccessStats,
    /// Events whose replayed hit/miss differs from the recorded one.
    /// 0 when the replayed policy is the recorded policy — that is the
    /// "replay reproduces the live counters exactly" acceptance check.
    pub kind_mismatches: u64,
}

impl ReplayOutcome {
    /// Combined DA over both trees.
    pub fn da_total(&self) -> u64 {
        self.stats1.da_total() + self.stats2.da_total()
    }

    /// Combined NA over both trees (policy-independent: replaying any
    /// policy preserves NA, only DA moves).
    pub fn na_total(&self) -> u64 {
        self.stats1.na_total() + self.stats2.na_total()
    }
}

/// Re-simulates `events` (tick-sorted, as produced by
/// [`crate::recorder::FlightRecorder::drain`]) under `policy`.
///
/// Each correlation domain gets a fresh buffer pair, created at the
/// domain's first event. Because domains never share buffers, replaying
/// in global tick order is equivalent to replaying domain by domain,
/// and a single pass suffices even when the live run interleaved
/// domains across worker threads.
pub fn replay(events: &[PageAccessEvent], policy: RecordedPolicy) -> ReplayOutcome {
    type BufferPair = (Box<dyn BufferManager>, Box<dyn BufferManager>);
    let mut outcome = ReplayOutcome::default();
    let mut domains: HashMap<u32, BufferPair> = HashMap::new();
    for e in events {
        let (buf1, buf2) = domains
            .entry(e.corr)
            .or_insert_with(|| (policy.build(), policy.build()));
        let (buf, stats) = if e.tree == 1 {
            (buf1, &mut outcome.stats1)
        } else {
            (buf2, &mut outcome.stats2)
        };
        let kind = buf.access(e.page, e.level);
        stats.record(e.level, kind);
        if kind != e.kind {
            outcome.kind_mismatches += 1;
        }
    }
    outcome
}

/// Binary indexed tree (Fenwick) over access positions; supports the
/// point-update / prefix-sum pair the stack-distance computation needs.
/// Fixed capacity: a Fenwick tree cannot grow lazily (parent nodes past
/// the old length would have missed earlier updates), so the analyzer
/// pre-sizes one per domain from the event counts.
#[derive(Debug)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn with_capacity(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    /// Adds `delta` at position `i` (0-based, must be `< capacity`).
    fn add(&mut self, i: usize, delta: i64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i` (0-based).
    fn prefix(&self, i: usize) -> u64 {
        let mut i = (i + 1).min(self.tree.len() - 1);
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

/// Per-domain Mattson state: one logical LRU stack per
/// (correlation, tree) pair, matching how [`replay`] instantiates
/// buffers.
#[derive(Debug)]
struct DomainState {
    /// Position of the most recent access to each page.
    last_pos: HashMap<u32, usize>,
    /// 1 at the position of each page's most recent access.
    recent: Fenwick,
    /// Next access position.
    time: usize,
}

impl DomainState {
    fn with_capacity(n: usize) -> Self {
        Self {
            last_pos: HashMap::new(),
            recent: Fenwick::with_capacity(n),
            time: 0,
        }
    }
}

/// Single-pass reuse-distance (Mattson) analysis of a trace.
///
/// For each access, the *stack distance* is the number of distinct
/// pages touched since the previous access to the same page, plus one —
/// equivalently, the page's depth in the LRU stack. An access with
/// stack distance `d` hits every LRU buffer of capacity `≥ d` and
/// misses every smaller one, so the histogram of distances determines
/// the hit count of **all** capacities simultaneously. First-ever
/// accesses (cold misses) miss at every capacity.
///
/// Distances are tracked per (correlation domain, tree), mirroring
/// [`replay`]'s buffer instantiation, so
/// [`StackDistance::misses_at`]`(c)` equals the brute-force
/// `replay(events, RecordedPolicy::Lru(c)).da_total()` for every `c`
/// (the property tests assert this).
#[derive(Debug, Clone, Default)]
pub struct StackDistance {
    /// `hist[d - 1]` = number of accesses with stack distance `d`.
    hist: Vec<u64>,
    cold: u64,
    total: u64,
}

impl StackDistance {
    /// Analyzes `events` in one scan (plus a counting pre-pass to size
    /// the per-domain index structures).
    pub fn analyze(events: &[PageAccessEvent]) -> Self {
        let mut out = Self::default();
        let mut sizes: HashMap<(u32, u8), usize> = HashMap::new();
        for e in events {
            *sizes.entry((e.corr, e.tree)).or_default() += 1;
        }
        let mut domains: HashMap<(u32, u8), DomainState> = sizes
            .into_iter()
            .map(|(k, n)| (k, DomainState::with_capacity(n)))
            .collect();
        for e in events {
            let dom = domains.get_mut(&(e.corr, e.tree)).expect("pre-sized");
            let t = dom.time;
            dom.time += 1;
            match dom.last_pos.insert(e.page.0, t) {
                None => out.cold += 1,
                Some(prev) => {
                    // Distinct pages touched strictly after `prev` =
                    // most-recent-access marks in (prev, t) — the mark
                    // at `prev` is this page's own, position `t` is not
                    // yet marked — plus 1 for the page itself.
                    let d = (dom.recent.prefix(t) - dom.recent.prefix(prev)) as usize + 1;
                    if out.hist.len() < d {
                        out.hist.resize(d, 0);
                    }
                    out.hist[d - 1] += 1;
                    dom.recent.add(prev, -1);
                }
            }
            dom.recent.add(t, 1);
            out.total += 1;
        }
        out
    }

    /// Total accesses analyzed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Accesses that can never hit (first touch of their page in their
    /// domain).
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Hits an LRU buffer of `capacity` pages would serve.
    pub fn hits_at(&self, capacity: usize) -> u64 {
        self.hist.iter().take(capacity).sum()
    }

    /// Misses (= DA) an LRU buffer of `capacity` pages would incur.
    pub fn misses_at(&self, capacity: usize) -> u64 {
        self.total - self.hits_at(capacity)
    }

    /// Smallest capacity achieving the maximum possible hit count;
    /// every larger buffer is wasted. 0 for an empty trace.
    pub fn saturating_capacity(&self) -> usize {
        self.hist.iter().rposition(|&c| c > 0).map_or(0, |d| d + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::AccessKind;
    use crate::page::PageId;
    use crate::recorder::FlightRecorder;

    /// Builds tick-ordered events from (corr, tree, page, level)
    /// tuples, with kinds produced by live buffers of `policy` — i.e. a
    /// faithful recording of a real run.
    fn record(seq: &[(u32, u8, u32, u8)], policy: RecordedPolicy) -> Vec<PageAccessEvent> {
        let recorder = FlightRecorder::enabled();
        let mut lanes: HashMap<(u32, u8), _> = HashMap::new();
        let mut bufs: HashMap<(u32, u8), Box<dyn BufferManager>> = HashMap::new();
        for &(corr, tree, page, level) in seq {
            let lane = lanes.entry((corr, tree)).or_insert_with(|| {
                let mut l = recorder.lane(tree);
                l.set_corr(corr);
                l
            });
            let buf = bufs.entry((corr, tree)).or_insert_with(|| policy.build());
            let kind = buf.access(PageId(page), level);
            lane.record(PageId(page), level, kind);
        }
        drop(lanes);
        recorder.drain().0
    }

    #[test]
    fn replaying_the_recorded_policy_is_exact() {
        let seq = [
            (0, 1, 1, 1),
            (0, 2, 10, 1),
            (0, 1, 2, 0),
            (0, 2, 10, 1),
            (0, 1, 2, 0),
            (0, 2, 11, 0),
            (0, 1, 1, 1),
            (0, 2, 11, 0),
        ];
        for policy in [
            RecordedPolicy::None,
            RecordedPolicy::Path,
            RecordedPolicy::Lru(2),
        ] {
            let events = record(&seq, policy);
            let out = replay(&events, policy);
            assert_eq!(out.kind_mismatches, 0, "{policy:?}");
            // Replayed stats equal the stats implied by recorded kinds.
            let mut want1 = AccessStats::new();
            let mut want2 = AccessStats::new();
            for e in &events {
                if e.tree == 1 {
                    want1.record(e.level, e.kind);
                } else {
                    want2.record(e.level, e.kind);
                }
            }
            assert_eq!(out.stats1, want1);
            assert_eq!(out.stats2, want2);
        }
    }

    #[test]
    fn corr_domains_do_not_share_buffers() {
        // Same page twice in one domain: second access hits under path.
        // Same page in two domains: both are cold misses.
        let events = record(
            &[(1, 1, 7, 0), (1, 1, 7, 0), (2, 1, 7, 0)],
            RecordedPolicy::Path,
        );
        let out = replay(&events, RecordedPolicy::Path);
        assert_eq!(out.stats1.na_total(), 3);
        assert_eq!(out.stats1.da_total(), 2);
    }

    #[test]
    fn what_if_replay_changes_da_not_na() {
        let seq = [
            (0, 1, 1, 0),
            (0, 1, 2, 0),
            (0, 1, 1, 0),
            (0, 1, 3, 0),
            (0, 1, 1, 0),
        ];
        let events = record(&seq, RecordedPolicy::Path);
        let none = replay(&events, RecordedPolicy::None);
        let path = replay(&events, RecordedPolicy::Path);
        let lru = replay(&events, RecordedPolicy::Lru(8));
        assert_eq!(none.na_total(), 5);
        assert_eq!(path.na_total(), 5);
        assert_eq!(lru.na_total(), 5);
        assert_eq!(none.da_total(), 5);
        // Path: 1,2 miss, 1 miss (2 evicted it), 3 miss, 1 miss = 5?
        // level-0 frame: 1→miss, 2→miss, 1→miss, 3→miss, 1→miss.
        assert_eq!(path.da_total(), 5);
        // LRU(8): 1,2,3 cold; the two re-reads of 1 hit.
        assert_eq!(lru.da_total(), 3);
        assert!(none.kind_mismatches == 0);
        assert!(lru.kind_mismatches > 0);
    }

    #[test]
    fn mattson_matches_brute_force_on_handcrafted_trace() {
        let seq = [
            (0, 1, 1, 0),
            (0, 1, 2, 1),
            (0, 1, 3, 0),
            (0, 1, 1, 2),
            (0, 1, 2, 0),
            (0, 1, 1, 0),
            (0, 2, 1, 0),
            (0, 2, 1, 0),
            (1, 1, 3, 0),
            (1, 1, 3, 1),
            (1, 1, 4, 0),
            (1, 1, 3, 0),
        ];
        let events = record(&seq, RecordedPolicy::None);
        let sd = StackDistance::analyze(&events);
        assert_eq!(sd.total(), events.len() as u64);
        for cap in 0..8 {
            let brute = replay(&events, RecordedPolicy::Lru(cap as u32));
            assert_eq!(
                sd.misses_at(cap),
                brute.da_total(),
                "capacity {cap}: mattson vs brute force"
            );
        }
        // Capacity 0 = no buffer; huge capacity = only cold misses.
        assert_eq!(sd.misses_at(0), events.len() as u64);
        assert_eq!(sd.misses_at(1024), sd.cold_misses());
    }

    #[test]
    fn mattson_curve_is_monotone_non_increasing() {
        let seq: Vec<(u32, u8, u32, u8)> = (0..200u32)
            .map(|i| {
                (
                    i % 3,
                    1 + (i % 2) as u8,
                    (i * 7 + i * i / 5) % 17,
                    (i % 4) as u8,
                )
            })
            .collect();
        let events = record(&seq, RecordedPolicy::None);
        let sd = StackDistance::analyze(&events);
        let mut prev = sd.misses_at(0);
        for cap in 1..=sd.saturating_capacity() + 2 {
            let m = sd.misses_at(cap);
            assert!(
                m <= prev,
                "misses rose from {prev} to {m} at capacity {cap}"
            );
            prev = m;
        }
        assert_eq!(
            sd.misses_at(sd.saturating_capacity()),
            sd.cold_misses(),
            "saturating capacity reaches the cold-miss floor"
        );
    }

    #[test]
    fn empty_trace() {
        let sd = StackDistance::analyze(&[]);
        assert_eq!(sd.total(), 0);
        assert_eq!(sd.misses_at(4), 0);
        assert_eq!(sd.saturating_capacity(), 0);
        let out = replay(&[], RecordedPolicy::Path);
        assert_eq!(out.na_total(), 0);
        assert_eq!(out.kind_mismatches, 0);
    }

    #[test]
    fn replay_respects_levels_for_path_buffer() {
        // Alternating levels never evict each other under path.
        let seq = [(0, 1, 1, 0), (0, 1, 2, 1), (0, 1, 1, 0), (0, 1, 2, 1)];
        let events = record(&seq, RecordedPolicy::Path);
        let out = replay(&events, RecordedPolicy::Path);
        assert_eq!(out.kind_mismatches, 0);
        assert_eq!(out.stats1.da_at(0), 1);
        assert_eq!(out.stats1.da_at(1), 1);
        assert_eq!(out.stats1.na_at(0), 2);
        assert_eq!(out.stats1.na_at(1), 2);
    }

    #[test]
    fn access_kind_equality_drives_mismatch_counting() {
        assert_ne!(AccessKind::Hit, AccessKind::Miss);
    }
}
