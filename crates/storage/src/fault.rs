//! Deterministic fault injection and resilient retry for page stores.
//!
//! The chaos experiments need failures that are *reproducible*: the same
//! seed must injure the same pages in the same way on every run, on any
//! thread schedule. A [`FaultPlan`] therefore derives every decision from
//! a pure hash of `(seed, domain, page)` — no RNG state, no wall clock:
//!
//! * **transient read faults** — a faulty page's first `budget` reads
//!   fail with [`StorageError::Io`], then the page reads fine. Faults are
//!   consumed atomically, so the *totals* are thread-order independent
//!   and a retry budget ≥ the fault budget always recovers.
//! * **permanent loss** — every read of a lost page fails; the paper's
//!   cost model (Eq 6 on the subtree's measured stats) then prices what
//!   the join forfeits.
//! * **silent bit flips** — the read returns data with one bit flipped;
//!   the FNV-1a checksum recorded at write time catches the flip and
//!   surfaces it as [`StorageError::Corrupt`].
//! * **allocation failures** — `allocate` fails on hash-selected calls.
//!
//! Three consumers:
//!
//! * [`FaultyPageStore`] wraps any [`PageStore`] and injects the plan on
//!   the real read/write/allocate path (persisted trees).
//! * [`ResilientStore`] wraps any [`PageStore`] (typically a faulty one)
//!   with bounded retry, a deterministic exponential backoff schedule
//!   counted in *virtual ticks* (never sleeps), and a per-page
//!   quarantine list for pages that exhaust their retries.
//! * [`FaultInjector`] is the join executor's access oracle: the
//!   traversal simulates page reads against in-memory nodes, so it asks
//!   the injector — retry semantics included — whether an access
//!   succeeds. Disabled, it costs one `Option` discriminant check.
//!
//! Everything observable lands in [`FaultCounters`], the fault-side
//! sibling of `BufferCounters`, published as `fault.*` metrics.

use crate::page::{fnv1a, PageId, PageStore, StorageError};
use bytes::Bytes;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

/// Metric name for total injected faults (all kinds).
pub const FAULT_INJECTED: &str = "fault.injected";
/// Metric name for retry attempts spent recovering from faults.
pub const FAULT_RETRIED: &str = "fault.retried";
/// Metric name for fault episodes that ended in a successful read.
pub const FAULT_RECOVERED: &str = "fault.recovered";
/// Metric name for pages quarantined after exhausting their retries.
pub const FAULT_QUARANTINED: &str = "fault.quarantined";

const SALT_TRANSIENT: u64 = 0x7472_616e_7369_656e; // "transien"
const SALT_FLIP: u64 = 0x666c_6970_666c_6970; // "flipflip"
const SALT_LOSS: u64 = 0x6c6f_7373_6c6f_7373; // "lossloss"
const SALT_ALLOC: u64 = 0x616c_6c6f_6361_7465; // "allocate"

/// SplitMix64 finalizer — the avalanche behind every plan decision.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Seeded, stateless description of which faults fire where. Every
/// decision is a pure function of the plan and the `(domain, page)`
/// coordinates, so two runs with the same plan injure identical pages.
///
/// `domain` separates independent fault universes sharing one plan — the
/// join layer uses the tree index (1 or 2), store wrappers default to 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Root seed; campaigns vary this to explore fault placements.
    pub seed: u64,
    /// Probability that a page suffers transient read faults at all.
    pub transient_rate: f64,
    /// How many reads of a transiently faulty page fail before it heals.
    pub transient_budget: u32,
    /// Probability that a page's first read returns bit-flipped data.
    pub flip_rate: f64,
    /// Probability that a page is permanently lost (every read fails).
    pub loss_rate: f64,
    /// Restrict permanent loss to tree levels ≤ this (leaf = 0). `None`
    /// puts every level at risk. Only the [`FaultInjector`] sees levels;
    /// store wrappers treat all pages as level 0.
    pub max_loss_level: Option<u8>,
    /// Probability that an `allocate` call fails.
    pub alloc_rate: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a builder base).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            transient_rate: 0.0,
            transient_budget: 0,
            flip_rate: 0.0,
            loss_rate: 0.0,
            max_loss_level: None,
            alloc_rate: 0.0,
        }
    }

    /// Adds transient read faults: a `rate` fraction of pages fail their
    /// first `budget` reads.
    pub fn with_transient(mut self, rate: f64, budget: u32) -> Self {
        self.transient_rate = rate;
        self.transient_budget = budget;
        self
    }

    /// Adds silent single-bit flips on a `rate` fraction of pages.
    pub fn with_flips(mut self, rate: f64) -> Self {
        self.flip_rate = rate;
        self
    }

    /// Adds permanent loss of a `rate` fraction of pages.
    pub fn with_loss(mut self, rate: f64) -> Self {
        self.loss_rate = rate;
        self
    }

    /// Adds permanent loss restricted to levels ≤ `max_level` (leaf = 0).
    pub fn with_loss_at_level(mut self, rate: f64, max_level: u8) -> Self {
        self.loss_rate = rate;
        self.max_loss_level = Some(max_level);
        self
    }

    /// Adds allocation failures on a `rate` fraction of `allocate` calls.
    pub fn with_alloc_failures(mut self, rate: f64) -> Self {
        self.alloc_rate = rate;
        self
    }

    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        (self.transient_rate > 0.0 && self.transient_budget > 0)
            || self.flip_rate > 0.0
            || self.loss_rate > 0.0
            || self.alloc_rate > 0.0
    }

    fn hash(&self, salt: u64, domain: u8, key: u32) -> u64 {
        mix(self.seed ^ mix(salt) ^ mix((u64::from(domain) << 32) | u64::from(key)))
    }

    fn hits(&self, salt: u64, domain: u8, key: u32, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        // Top 53 bits → uniform in [0, 1).
        let u = (self.hash(salt, domain, key) >> 11) as f64 / (1u64 << 53) as f64;
        u < rate
    }

    /// Number of transient faults budgeted for this page (0 = healthy).
    pub fn transient_faults(&self, domain: u8, page: PageId) -> u32 {
        if self.hits(SALT_TRANSIENT, domain, page.0, self.transient_rate) {
            self.transient_budget
        } else {
            0
        }
    }

    /// Whether this page's first read returns bit-flipped data.
    pub fn flips(&self, domain: u8, page: PageId) -> bool {
        self.hits(SALT_FLIP, domain, page.0, self.flip_rate)
    }

    /// Which bit of a `len`-byte page the flip lands on.
    pub fn flip_bit(&self, domain: u8, page: PageId, len: usize) -> usize {
        debug_assert!(len > 0);
        (self.hash(SALT_FLIP, domain, page.0) % (len as u64 * 8)) as usize
    }

    /// Whether this page is permanently lost.
    pub fn is_lost(&self, domain: u8, page: PageId, level: u8) -> bool {
        if let Some(max) = self.max_loss_level {
            if level > max {
                return false;
            }
        }
        self.hits(SALT_LOSS, domain, page.0, self.loss_rate)
    }

    /// Whether the `nth` allocation call fails.
    pub fn alloc_fails(&self, nth: u64) -> bool {
        self.hits(SALT_ALLOC, 0, (nth & 0xffff_ffff) as u32, self.alloc_rate)
    }
}

/// Tallies of everything the fault layer did — injections by kind, retry
/// work, and outcomes. The fault-side sibling of `BufferCounters`;
/// mergeable across stores/threads and published as `fault.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Transient read faults injected (one per failed read attempt).
    pub injected_transient: u64,
    /// Bit flips injected.
    pub injected_flip: u64,
    /// Reads refused because the page is permanently lost.
    pub injected_loss: u64,
    /// Allocation calls refused.
    pub injected_alloc: u64,
    /// Retry attempts spent (a first attempt is not a retry).
    pub retried: u64,
    /// Fault episodes that ended in a successful operation.
    pub recovered: u64,
    /// Pages quarantined after exhausting their retry budget.
    pub quarantined: u64,
    /// Accesses refused immediately because the page was quarantined.
    pub quarantine_hits: u64,
    /// Virtual backoff ticks accumulated by the retry schedule.
    pub backoff_ticks: u64,
}

impl FaultCounters {
    /// Total injected faults across all kinds.
    pub fn injected(&self) -> u64 {
        self.injected_transient + self.injected_flip + self.injected_loss + self.injected_alloc
    }

    /// Fraction of fault episodes that ended in success:
    /// `recovered / (recovered + quarantined)`. `None` when no episode
    /// concluded (nothing injected, or faults only on healthy retries).
    pub fn recovery_rate(&self) -> Option<f64> {
        let episodes = self.recovered + self.quarantined;
        (episodes > 0).then(|| self.recovered as f64 / episodes as f64)
    }

    /// Accumulates another tally into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.injected_transient += other.injected_transient;
        self.injected_flip += other.injected_flip;
        self.injected_loss += other.injected_loss;
        self.injected_alloc += other.injected_alloc;
        self.retried += other.retried;
        self.recovered += other.recovered;
        self.quarantined += other.quarantined;
        self.quarantine_hits += other.quarantine_hits;
        self.backoff_ticks += other.backoff_ticks;
    }
}

/// Bounded-retry policy with a deterministic exponential backoff
/// schedule measured in virtual ticks (nothing ever sleeps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (total attempts = this + 1).
    pub max_retries: u32,
    /// Ticks charged for the first backoff; doubles per further retry.
    pub base_backoff_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff_ticks: 1,
        }
    }
}

impl RetryPolicy {
    /// Ticks charged before retry `attempt` (0-based): `base · 2^attempt`.
    pub fn backoff_ticks(&self, attempt: u32) -> u64 {
        self.base_backoff_ticks
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
    }

    /// Total ticks charged by a run of `retries` consecutive retries.
    pub fn ticks_for(&self, retries: u32) -> u64 {
        (0..retries).fold(0u64, |acc, a| acc.saturating_add(self.backoff_ticks(a)))
    }
}

/// Only I/O-ish failures are worth retrying; structural errors
/// (`UnknownPage`, `PageOverflow`, `MalformedNode`) are deterministic.
fn retryable(e: &StorageError) -> bool {
    matches!(e, StorageError::Io(_) | StorageError::Corrupt(_))
}

#[derive(Default)]
struct FaultState {
    /// FNV-1a of the last data written per page; catches injected flips.
    checksums: HashMap<u32, u64>,
    /// Remaining transient faults per page (lazily seeded from the plan).
    transient_left: HashMap<u32, u32>,
    /// Whether the page's one flip is still pending.
    flip_pending: HashMap<u32, bool>,
    allocs: u64,
    counters: FaultCounters,
}

/// A [`PageStore`] wrapper that injects the faults of a [`FaultPlan`]
/// into the real read/write/allocate path. Wrap it in a
/// [`ResilientStore`] to get retry + quarantine on top.
pub struct FaultyPageStore<S> {
    inner: S,
    plan: FaultPlan,
    domain: u8,
    state: RefCell<FaultState>,
}

impl<S: PageStore> FaultyPageStore<S> {
    /// Wraps `inner` under `plan` (fault domain 0).
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        Self::with_domain(inner, plan, 0)
    }

    /// Wraps `inner` under `plan` with an explicit fault domain, so
    /// several stores sharing one plan fail independently.
    pub fn with_domain(inner: S, plan: FaultPlan, domain: u8) -> Self {
        Self {
            inner,
            plan,
            domain,
            state: RefCell::new(FaultState::default()),
        }
    }

    /// Snapshot of the injection tallies.
    pub fn counters(&self) -> FaultCounters {
        self.state.borrow().counters
    }

    /// The wrapped store.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PageStore> PageStore for FaultyPageStore<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn allocate(&mut self) -> Result<PageId, StorageError> {
        let st = self.state.get_mut();
        let nth = st.allocs;
        st.allocs += 1;
        if self.plan.alloc_fails(nth) {
            st.counters.injected_alloc += 1;
            return Err(StorageError::Io(format!(
                "injected allocation failure (call #{nth})"
            )));
        }
        self.inner.allocate()
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> Result<(), StorageError> {
        self.inner.write(id, data)?;
        self.state.get_mut().checksums.insert(id.0, fnv1a(data));
        Ok(())
    }

    fn read(&self, id: PageId) -> Result<Bytes, StorageError> {
        let mut st = self.state.borrow_mut();
        if self.plan.is_lost(self.domain, id, 0) {
            st.counters.injected_loss += 1;
            return Err(StorageError::Io(format!("injected permanent loss of {id}")));
        }
        let fired = {
            let left = st
                .transient_left
                .entry(id.0)
                .or_insert_with(|| self.plan.transient_faults(self.domain, id));
            if *left > 0 {
                *left -= 1;
                true
            } else {
                false
            }
        };
        if fired {
            st.counters.injected_transient += 1;
            return Err(StorageError::Io(format!(
                "injected transient read fault on {id}"
            )));
        }
        let data = self.inner.read(id)?;
        let flip = {
            let pending = st
                .flip_pending
                .entry(id.0)
                .or_insert_with(|| self.plan.flips(self.domain, id));
            std::mem::replace(pending, false)
        };
        if flip && !data.is_empty() {
            st.counters.injected_flip += 1;
            let mut buf = data.to_vec();
            let bit = self.plan.flip_bit(self.domain, id, buf.len());
            buf[bit / 8] ^= 1 << (bit % 8);
            if let Some(&sum) = st.checksums.get(&id.0) {
                if fnv1a(&buf) != sum {
                    // The write-time checksum catches the flip: surface
                    // it as corruption instead of returning wrong bytes.
                    return Err(StorageError::Corrupt(id));
                }
            }
            // No checksum on record (page written behind our back):
            // genuinely silent corruption, exactly what the checksum
            // discipline is there to prevent.
            return Ok(Bytes::from(buf));
        }
        Ok(data)
    }

    fn free(&mut self, id: PageId) -> Result<(), StorageError> {
        self.inner.free(id)
    }

    fn live_pages(&self) -> usize {
        self.inner.live_pages()
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.inner.sync()
    }
}

#[derive(Default)]
struct ResilientState {
    quarantine: BTreeSet<u32>,
    counters: FaultCounters,
}

/// A [`PageStore`] wrapper that retries retryable failures with a
/// bounded, deterministic backoff schedule and quarantines pages whose
/// reads or writes exhaust the budget. Quarantined pages fail fast.
pub struct ResilientStore<S> {
    inner: S,
    policy: RetryPolicy,
    state: RefCell<ResilientState>,
}

impl<S: PageStore> ResilientStore<S> {
    /// Wraps `inner` under `policy`.
    pub fn new(inner: S, policy: RetryPolicy) -> Self {
        Self {
            inner,
            policy,
            state: RefCell::new(ResilientState::default()),
        }
    }

    /// Snapshot of the retry/quarantine tallies (injection tallies live
    /// on the wrapped [`FaultyPageStore`], if any).
    pub fn counters(&self) -> FaultCounters {
        self.state.borrow().counters
    }

    /// Pages currently quarantined, in ascending order.
    pub fn quarantined_pages(&self) -> Vec<PageId> {
        self.state
            .borrow()
            .quarantine
            .iter()
            .map(|&p| PageId(p))
            .collect()
    }

    /// The wrapped store.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Shared read/write retry loop; quarantines `id` on exhaustion.
    fn with_retries<T>(
        state: &mut ResilientState,
        policy: &RetryPolicy,
        id: PageId,
        mut op: impl FnMut() -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        if state.quarantine.contains(&id.0) {
            state.counters.quarantine_hits += 1;
            return Err(StorageError::Io(format!("page {id} is quarantined")));
        }
        let mut last = None;
        for attempt in 0..=policy.max_retries {
            match op() {
                Ok(v) => {
                    if attempt > 0 {
                        state.counters.recovered += 1;
                    }
                    return Ok(v);
                }
                Err(e) if retryable(&e) => {
                    if attempt < policy.max_retries {
                        state.counters.retried += 1;
                        state.counters.backoff_ticks += policy.backoff_ticks(attempt);
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        state.quarantine.insert(id.0);
        state.counters.quarantined += 1;
        Err(last.expect("at least one attempt ran"))
    }
}

impl<S: PageStore> PageStore for ResilientStore<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn allocate(&mut self) -> Result<PageId, StorageError> {
        // Allocation has no page to quarantine; plain bounded retry.
        let mut last = None;
        for attempt in 0..=self.policy.max_retries {
            match self.inner.allocate() {
                Ok(id) => {
                    let st = self.state.get_mut();
                    if attempt > 0 {
                        st.counters.recovered += 1;
                    }
                    return Ok(id);
                }
                Err(e) if retryable(&e) => {
                    let st = self.state.get_mut();
                    if attempt < self.policy.max_retries {
                        st.counters.retried += 1;
                        st.counters.backoff_ticks += self.policy.backoff_ticks(attempt);
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> Result<(), StorageError> {
        let policy = self.policy;
        let Self { inner, state, .. } = self;
        Self::with_retries(state.get_mut(), &policy, id, || inner.write(id, data))
    }

    fn read(&self, id: PageId) -> Result<Bytes, StorageError> {
        let mut st = self.state.borrow_mut();
        Self::with_retries(&mut st, &self.policy, id, || self.inner.read(id))
    }

    fn free(&mut self, id: PageId) -> Result<(), StorageError> {
        self.inner.free(id)
    }

    fn live_pages(&self) -> usize {
        self.inner.live_pages()
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.inner.sync()
    }
}

#[derive(Default)]
struct InjectorState {
    transient_left: HashMap<(u8, u32), u32>,
    quarantine: BTreeSet<(u8, u32)>,
    counters: FaultCounters,
}

struct InjectorInner {
    plan: FaultPlan,
    policy: RetryPolicy,
    state: Mutex<InjectorState>,
}

/// The join executor's fault oracle. The traversal keeps its nodes in
/// memory and only *simulates* page reads, so instead of wrapping a
/// store it consults this injector per access: `Ok` means the read
/// succeeded (possibly after internally-simulated retries), `Err` means
/// the page is gone for good and the subtree must be skipped.
///
/// Cloning shares state (same pattern as `FlightRecorder`); a disabled
/// injector costs one `Option` discriminant check per access, and
/// healthy pages are dismissed by pure hashing without taking the lock.
/// Fault consumption is atomic per access, so counter totals do not
/// depend on which worker thread reaches a faulty page first.
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<InjectorInner>>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("enabled", &self.inner.is_some())
            .finish_non_exhaustive()
    }
}

impl FaultInjector {
    /// An injector that never fires (the default).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An injector driven by `plan`, recovering via `policy`.
    pub fn enabled(plan: FaultPlan, policy: RetryPolicy) -> Self {
        Self {
            inner: Some(Arc::new(InjectorInner {
                plan,
                policy,
                state: Mutex::new(InjectorState::default()),
            })),
        }
    }

    /// Whether any faults can fire.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Snapshot of the fault tallies (all zero when disabled).
    pub fn counters(&self) -> FaultCounters {
        match &self.inner {
            Some(inner) => inner.lock().counters,
            None => FaultCounters::default(),
        }
    }

    /// Quarantined `(tree, page)` pairs, in ascending order.
    pub fn quarantined(&self) -> Vec<(u8, PageId)> {
        match &self.inner {
            Some(inner) => inner
                .lock()
                .quarantine
                .iter()
                .map(|&(t, p)| (t, PageId(p)))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Simulates the read of `page` (level `level`, leaf = 0) in tree
    /// domain `tree`. `Ok(())` — the read succeeded, charge it normally.
    /// `Err` — the page is permanently unreadable (lost or quarantined);
    /// the caller must contain the damage and skip the subtree.
    #[inline]
    pub fn access(&self, tree: u8, page: PageId, level: u8) -> Result<(), StorageError> {
        match &self.inner {
            None => Ok(()),
            Some(inner) => inner.access(tree, page, level),
        }
    }
}

impl InjectorInner {
    fn lock(&self) -> std::sync::MutexGuard<'_, InjectorState> {
        // A poisoned lock only means another worker panicked mid-update;
        // the counters are plain integers, so keep serving.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn access(&self, tree: u8, page: PageId, level: u8) -> Result<(), StorageError> {
        let budget = self.plan.transient_faults(tree, page);
        let lost = self.plan.is_lost(tree, page, level);
        if budget == 0 && !lost {
            return Ok(()); // healthy page: pure hash check, no lock
        }
        let mut st = self.lock();
        if st.quarantine.contains(&(tree, page.0)) {
            st.counters.quarantine_hits += 1;
            return Err(StorageError::Io(format!(
                "tree {tree} page {page} is quarantined"
            )));
        }
        if lost {
            st.counters.injected_loss += 1;
            st.counters.retried += u64::from(self.policy.max_retries);
            st.counters.backoff_ticks += self.policy.ticks_for(self.policy.max_retries);
            st.counters.quarantined += 1;
            st.quarantine.insert((tree, page.0));
            return Err(StorageError::Io(format!(
                "injected permanent loss of tree {tree} page {page}"
            )));
        }
        let attempts = self.policy.max_retries + 1;
        let consumed = {
            let left = st.transient_left.entry((tree, page.0)).or_insert(budget);
            let consumed = (*left).min(attempts);
            *left -= consumed;
            consumed
        };
        if consumed == 0 {
            return Ok(()); // faults already consumed by earlier accesses
        }
        st.counters.injected_transient += u64::from(consumed);
        if consumed == attempts {
            // Every attempt (first try + all retries) hit a fault.
            st.counters.retried += u64::from(self.policy.max_retries);
            st.counters.backoff_ticks += self.policy.ticks_for(self.policy.max_retries);
            st.counters.quarantined += 1;
            st.quarantine.insert((tree, page.0));
            Err(StorageError::Io(format!(
                "transient faults on tree {tree} page {page} exhausted {} retries",
                self.policy.max_retries
            )))
        } else {
            // Attempt `consumed` succeeded after `consumed` failures.
            st.counters.retried += u64::from(consumed);
            st.counters.backoff_ticks += self.policy.ticks_for(consumed);
            st.counters.recovered += 1;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::InMemoryPageStore;

    fn seeded_store(pages: u32) -> InMemoryPageStore {
        let mut store = InMemoryPageStore::new(64);
        for i in 0..pages {
            let id = store.allocate().unwrap();
            store
                .write(id, format!("page {i} payload").as_bytes())
                .unwrap();
        }
        store
    }

    #[test]
    fn plan_decisions_are_deterministic() {
        let plan = FaultPlan::none(42).with_transient(0.3, 2).with_loss(0.1);
        for p in 0..64u32 {
            assert_eq!(
                plan.transient_faults(1, PageId(p)),
                plan.transient_faults(1, PageId(p))
            );
            assert_eq!(plan.is_lost(1, PageId(p), 0), plan.is_lost(1, PageId(p), 0));
        }
        // Domains are independent fault universes: with 64 pages at 30%
        // the two domains all but surely disagree somewhere.
        assert!((0..64u32).any(|p| {
            plan.transient_faults(1, PageId(p)) != plan.transient_faults(2, PageId(p))
        }));
    }

    #[test]
    fn plan_rates_are_roughly_respected() {
        let plan = FaultPlan::none(7).with_transient(0.25, 1);
        let hit = (0..4000u32)
            .filter(|&p| plan.transient_faults(0, PageId(p)) > 0)
            .count();
        let frac = hit as f64 / 4000.0;
        assert!((0.2..0.3).contains(&frac), "got {frac}");
    }

    #[test]
    fn transient_faults_heal_after_budget() {
        let plan = FaultPlan::none(3).with_transient(1.0, 2);
        let store = FaultyPageStore::new(seeded_store(1), plan);
        let id = PageId(0);
        assert!(matches!(store.read(id), Err(StorageError::Io(_))));
        assert!(matches!(store.read(id), Err(StorageError::Io(_))));
        assert!(store.read(id).is_ok(), "page heals after its budget");
        assert_eq!(store.counters().injected_transient, 2);
    }

    #[test]
    fn lost_pages_never_heal() {
        let plan = FaultPlan::none(3).with_loss(1.0);
        let store = FaultyPageStore::new(seeded_store(1), plan);
        for _ in 0..5 {
            assert!(matches!(store.read(PageId(0)), Err(StorageError::Io(_))));
        }
        assert_eq!(store.counters().injected_loss, 5);
    }

    #[test]
    fn bit_flip_is_caught_by_write_checksum() {
        let plan = FaultPlan::none(9).with_flips(1.0);
        let mut store = FaultyPageStore::new(InMemoryPageStore::new(64), plan);
        let id = store.allocate().unwrap();
        store.write(id, b"precious payload").unwrap();
        assert_eq!(store.read(id).unwrap_err(), StorageError::Corrupt(id));
        assert_eq!(store.counters().injected_flip, 1);
        // The flip fires once; the page then reads back intact.
        assert_eq!(&store.read(id).unwrap()[..], b"precious payload");
    }

    #[test]
    fn alloc_failures_fire_on_planned_calls() {
        let plan = FaultPlan::none(5).with_alloc_failures(0.5);
        let mut store = FaultyPageStore::new(InMemoryPageStore::new(64), plan);
        let mut failures: u32 = 0;
        for _ in 0..100 {
            if store.allocate().is_err() {
                failures += 1;
            }
        }
        assert_eq!(u64::from(failures), store.counters().injected_alloc);
        assert!((20..80).contains(&failures), "got {failures}");
    }

    #[test]
    fn resilient_store_recovers_when_faults_fit_budget() {
        let plan = FaultPlan::none(3).with_transient(1.0, 2);
        let faulty = FaultyPageStore::new(seeded_store(4), plan);
        let store = ResilientStore::new(faulty, RetryPolicy::default());
        for p in 0..4u32 {
            assert!(store.read(PageId(p)).is_ok(), "retries absorb 2 faults");
        }
        let c = store.counters();
        assert_eq!(c.recovered, 4);
        assert_eq!(c.retried, 8, "2 retries per page");
        assert_eq!(c.quarantined, 0);
        assert_eq!(c.recovery_rate(), Some(1.0));
        // Deterministic exponential backoff: 2 retries cost 1 + 2 ticks.
        assert_eq!(c.backoff_ticks, 4 * 3);
    }

    #[test]
    fn resilient_store_quarantines_exhausted_pages() {
        let plan = FaultPlan::none(3).with_loss(1.0);
        let faulty = FaultyPageStore::new(seeded_store(1), plan);
        let store = ResilientStore::new(faulty, RetryPolicy::default());
        assert!(store.read(PageId(0)).is_err());
        let c = store.counters();
        assert_eq!(c.quarantined, 1);
        assert_eq!(store.quarantined_pages(), vec![PageId(0)]);
        // Second read fails fast without retrying.
        assert!(store.read(PageId(0)).is_err());
        let c2 = store.counters();
        assert_eq!(c2.quarantine_hits, 1);
        assert_eq!(c2.retried, c.retried, "no further retries");
    }

    #[test]
    fn resilient_store_does_not_retry_structural_errors() {
        let store = ResilientStore::new(InMemoryPageStore::new(64), RetryPolicy::default());
        assert!(matches!(
            store.read(PageId(99)),
            Err(StorageError::UnknownPage(_))
        ));
        assert_eq!(store.counters().retried, 0);
        assert_eq!(store.counters().quarantined, 0);
    }

    #[test]
    fn injector_disabled_is_free_and_infallible() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_enabled());
        for p in 0..100u32 {
            assert!(inj.access(1, PageId(p), 0).is_ok());
        }
        assert_eq!(inj.counters(), FaultCounters::default());
    }

    #[test]
    fn injector_recovers_transients_within_budget() {
        let plan = FaultPlan::none(11).with_transient(1.0, 2);
        let inj = FaultInjector::enabled(plan, RetryPolicy::default());
        assert!(inj.access(1, PageId(7), 0).is_ok());
        let c = inj.counters();
        assert_eq!(c.injected_transient, 2);
        assert_eq!(c.retried, 2);
        assert_eq!(c.recovered, 1);
        assert_eq!(c.quarantined, 0);
        // Faults are consumed: the next access is clean.
        assert!(inj.access(1, PageId(7), 0).is_ok());
        assert_eq!(inj.counters().injected_transient, 2);
    }

    #[test]
    fn injector_quarantines_when_budget_exceeds_retries() {
        let plan = FaultPlan::none(11).with_transient(1.0, 10);
        let policy = RetryPolicy {
            max_retries: 3,
            base_backoff_ticks: 1,
        };
        let inj = FaultInjector::enabled(plan, policy);
        assert!(inj.access(2, PageId(5), 0).is_err());
        let c = inj.counters();
        assert_eq!(c.injected_transient, 4, "first try + 3 retries");
        assert_eq!(c.quarantined, 1);
        assert_eq!(inj.quarantined(), vec![(2, PageId(5))]);
        // Fail-fast on the quarantined page.
        assert!(inj.access(2, PageId(5), 0).is_err());
        assert_eq!(inj.counters().quarantine_hits, 1);
    }

    #[test]
    fn injector_loss_respects_level_restriction() {
        let plan = FaultPlan::none(13).with_loss_at_level(1.0, 0);
        let inj = FaultInjector::enabled(plan, RetryPolicy::default());
        assert!(inj.access(1, PageId(0), 2).is_ok(), "internal level spared");
        assert!(inj.access(1, PageId(0), 0).is_err(), "leaf level lost");
        assert_eq!(inj.counters().injected_loss, 1);
    }

    #[test]
    fn injector_totals_are_thread_order_independent() {
        let plan = FaultPlan::none(17).with_transient(0.5, 2).with_loss(0.05);
        let run = |order: &[u32]| {
            let inj = FaultInjector::enabled(plan, RetryPolicy::default());
            for &p in order {
                let _ = inj.access(1, PageId(p), 0);
                let _ = inj.access(1, PageId(p), 0);
            }
            inj.counters()
        };
        let fwd: Vec<u32> = (0..64).collect();
        let rev: Vec<u32> = (0..64).rev().collect();
        assert_eq!(run(&fwd), run(&rev));
    }

    #[test]
    fn counters_merge_adds_fields() {
        let mut a = FaultCounters {
            injected_transient: 1,
            recovered: 2,
            ..FaultCounters::default()
        };
        let b = FaultCounters {
            injected_transient: 3,
            quarantined: 1,
            backoff_ticks: 7,
            ..FaultCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.injected_transient, 4);
        assert_eq!(a.recovered, 2);
        assert_eq!(a.quarantined, 1);
        assert_eq!(a.backoff_ticks, 7);
        assert_eq!(a.injected(), 4);
        assert_eq!(a.recovery_rate(), Some(2.0 / 3.0));
    }
}
