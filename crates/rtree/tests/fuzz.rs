//! Oracle-based property tests: the R-tree against a flat-list oracle
//! under randomized operation sequences — the standard way to fuzz an
//! index structure.

use proptest::prelude::*;
use sjcm_geom::{Point, Rect};
use sjcm_rtree::{BulkLoad, ObjectId, RTree, RTreeConfig, SplitStrategy};

#[derive(Debug, Clone)]
enum Op {
    Insert { cx: f64, cy: f64, w: f64, h: f64 },
    Remove { victim: usize },
    Query { cx: f64, cy: f64, w: f64, h: f64 },
    Knn { cx: f64, cy: f64, k: usize },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0.0f64..1.0, 0.0f64..1.0, 0.001f64..0.1, 0.001f64..0.1)
            .prop_map(|(cx, cy, w, h)| Op::Insert { cx, cy, w, h }),
        2 => (0usize..usize::MAX).prop_map(|victim| Op::Remove { victim }),
        2 => (0.0f64..1.0, 0.0f64..1.0, 0.01f64..0.5, 0.01f64..0.5)
            .prop_map(|(cx, cy, w, h)| Op::Query { cx, cy, w, h }),
        1 => (0.0f64..1.0, 0.0f64..1.0, 1usize..8)
            .prop_map(|(cx, cy, k)| Op::Knn { cx, cy, k }),
    ]
}

fn run_ops(ops: Vec<Op>, config: RTreeConfig) -> Result<(), TestCaseError> {
    let mut tree = RTree::<2>::new(config);
    let mut oracle: Vec<(Rect<2>, ObjectId)> = Vec::new();
    let mut next_id = 0u32;
    for op in ops {
        match op {
            Op::Insert { cx, cy, w, h } => {
                let r = Rect::centered(Point::new([cx, cy]), [w, h]);
                tree.insert(r, ObjectId(next_id));
                oracle.push((r, ObjectId(next_id)));
                next_id += 1;
            }
            Op::Remove { victim } => {
                if oracle.is_empty() {
                    continue;
                }
                let (r, id) = oracle.swap_remove(victim % oracle.len());
                prop_assert!(tree.remove(&r, id), "oracle says {id:?} exists");
            }
            Op::Query { cx, cy, w, h } => {
                let q = Rect::centered(Point::new([cx, cy]), [w, h]);
                let mut got = tree.query_window(&q);
                got.sort();
                let mut want: Vec<ObjectId> = oracle
                    .iter()
                    .filter(|(r, _)| r.intersects(&q))
                    .map(|&(_, id)| id)
                    .collect();
                want.sort();
                prop_assert_eq!(got, want);
            }
            Op::Knn { cx, cy, k } => {
                let q = Point::new([cx, cy]);
                let got = tree.nearest_neighbors(&q, k);
                prop_assert_eq!(got.len(), k.min(oracle.len()));
                // Distances must be the k smallest among the oracle's.
                let mut dists: Vec<f64> = oracle
                    .iter()
                    .map(|(r, _)| {
                        let clamped = Point::new([
                            q[0].clamp(r.lo_k(0), r.hi_k(0)),
                            q[1].clamp(r.lo_k(1), r.hi_k(1)),
                        ]);
                        q.dist2(&clamped)
                    })
                    .collect();
                dists.sort_by(f64::total_cmp);
                for (g, want) in got.iter().zip(dists.iter()) {
                    prop_assert!((g.dist2 - want).abs() < 1e-12);
                }
            }
        }
        prop_assert_eq!(tree.len(), oracle.len());
    }
    tree.check_invariants()
        .map_err(|e| TestCaseError::fail(format!("invariant violated: {e}")))?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rstar_survives_random_operation_sequences(ops in prop::collection::vec(op(), 1..120)) {
        run_ops(ops, RTreeConfig::with_capacity(6))?;
    }

    #[test]
    fn quadratic_survives_random_operation_sequences(ops in prop::collection::vec(op(), 1..120)) {
        run_ops(ops, RTreeConfig::with_capacity(6).with_split(SplitStrategy::Quadratic))?;
    }

    #[test]
    fn bulk_loaded_tree_answers_like_oracle(
        n in 1usize..400,
        seed in 0u64..1000,
        fill in 0.4f64..1.0,
        hilbert in any::<bool>(),
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let items: Vec<(Rect<2>, ObjectId)> = (0..n)
            .map(|i| {
                let c = Point::new([rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
                (
                    Rect::centered(c, [rng.gen_range(0.001..0.05); 2]),
                    ObjectId(i as u32),
                )
            })
            .collect();
        let algo = if hilbert { BulkLoad::Hilbert } else { BulkLoad::Str };
        let tree = RTree::bulk_load(RTreeConfig::with_capacity(8), items.clone(), algo, fill);
        tree.check_invariants()
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(tree.len(), n);
        let q = Rect::new([0.25, 0.25], [0.75, 0.6]).unwrap();
        let mut got = tree.query_window(&q);
        got.sort();
        let mut want: Vec<ObjectId> = items
            .iter()
            .filter(|(r, _)| r.intersects(&q))
            .map(|&(_, id)| id)
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn persistence_fuzz(n in 1usize..200, seed in 0u64..1000) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use sjcm_storage::InMemoryPageStore;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = RTree::<2>::new(RTreeConfig::with_capacity(8));
        for i in 0..n {
            let c = Point::new([rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
            tree.insert(Rect::centered(c, [0.01, 0.02]), ObjectId(i as u32));
        }
        let mut store = InMemoryPageStore::with_default_page_size();
        let handle = tree.save(&mut store).unwrap();
        let loaded = RTree::<2>::load(&store, handle, *tree.config()).unwrap();
        loaded
            .check_invariants_with_tolerance(1e-5)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(loaded.len(), n);
        // No object may be lost under any window.
        let q = Rect::centered(
            Point::new([rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]),
            [0.4, 0.4],
        );
        let orig = tree.query_window(&q);
        let got = loaded.query_window(&q);
        for id in orig {
            prop_assert!(got.contains(&id));
        }
    }
}
