//! Fault-tolerance coverage for paged persistence: corruption must
//! surface as [`StorageError::Corrupt`] — never as silently wrong MBRs —
//! no matter which buffer manager fronts the accesses, and torn or
//! missing files must come back as typed errors, not panics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sjcm_geom::{Point, Rect};
use sjcm_rtree::{BulkLoad, ObjectId, PersistedTree, RTree, RTreeConfig};
use sjcm_storage::{
    BufferManager, DiskNode, FaultyPageStore, FilePageStore, InMemoryPageStore, LruBuffer,
    NoBuffer, PageId, PageStore, PathBuffer, ResilientStore, RetryPolicy, StorageError,
};
use std::path::PathBuf;

fn sample_tree(n: usize, seed: u64) -> RTree<2> {
    let mut rng = StdRng::seed_from_u64(seed);
    let items: Vec<(Rect<2>, ObjectId)> = (0..n)
        .map(|i| {
            let c = Point::new([rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
            (Rect::centered(c, [0.01, 0.02]), ObjectId(i as u32))
        })
        .collect();
    RTree::bulk_load(RTreeConfig::paper(2), items, BulkLoad::Str, 0.8)
}

/// Finds a non-root interior page by decoding every saved page.
fn interior_page(store: &InMemoryPageStore, handle: PersistedTree) -> PageId {
    (0..handle.pages as u32)
        .map(PageId)
        .find(|&p| {
            p != handle.root
                && DiskNode::<2>::decode(&store.read(p).unwrap())
                    .map(|n| n.level >= 1)
                    .unwrap_or(false)
        })
        .expect("tree of height ≥ 3 has a non-root interior page")
}

#[test]
fn corrupt_interior_page_surfaces_under_every_buffer_manager() {
    let tree = sample_tree(5000, 11);
    assert!(tree.height() >= 3, "need a non-root interior level");
    let mut store = InMemoryPageStore::with_default_page_size();
    let handle = tree.save(&mut store).unwrap();
    let victim = interior_page(&store, handle);
    store.corrupt_for_test(victim).unwrap();

    let buffers: Vec<(&str, Box<dyn BufferManager>)> = vec![
        ("none", Box::new(NoBuffer::new())),
        ("path", Box::new(PathBuffer::new())),
        ("lru", Box::new(LruBuffer::new(8))),
    ];
    for (name, mut buf) in buffers {
        // The buffer layer only adjudicates hit vs miss — it caches no
        // bytes, so it cannot mask corruption. Touch the victim through
        // the manager, then prove the reload still detects it.
        for level in [2u8, 2, 1] {
            buf.access(victim, level);
        }
        let err = RTree::<2>::load(&store, handle, *tree.config()).unwrap_err();
        assert_eq!(
            err,
            StorageError::Corrupt(victim),
            "buffer manager {name} must not mask corruption"
        );
    }
}

#[test]
fn corrupt_page_is_quarantined_by_resilient_store() {
    let tree = sample_tree(5000, 13);
    let mut store = InMemoryPageStore::with_default_page_size();
    let handle = tree.save(&mut store).unwrap();
    let victim = interior_page(&store, handle);
    store.corrupt_for_test(victim).unwrap();

    // Corruption is not transient: retries burn down, the page lands in
    // quarantine, and the load still fails typed — never silently.
    let resilient = ResilientStore::new(store, RetryPolicy::default());
    let err = RTree::<2>::load(&resilient, handle, *tree.config()).unwrap_err();
    assert_eq!(err, StorageError::Corrupt(victim));
    assert_eq!(resilient.quarantined_pages(), vec![victim]);
    let c = resilient.counters();
    assert_eq!(c.quarantined, 1);
    assert_eq!(c.recovered, 0);
    assert!(c.retried > 0);
}

#[test]
fn transient_faults_on_reload_recover_through_resilient_store() {
    let tree = sample_tree(2000, 17);
    let mut store = InMemoryPageStore::with_default_page_size();
    let handle = tree.save(&mut store).unwrap();

    // Every page fails its first two reads; the default budget of three
    // retries absorbs that, so the reload succeeds bit-for-bit.
    let plan = sjcm_storage::FaultPlan::none(99).with_transient(1.0, 2);
    let faulty = FaultyPageStore::new(store, plan);
    let resilient = ResilientStore::new(faulty, RetryPolicy::default());
    let loaded = RTree::<2>::load(&resilient, handle, *tree.config()).unwrap();
    assert_eq!(loaded.len(), tree.len());
    assert_eq!(loaded.node_count(), tree.node_count());
    let c = resilient.counters();
    assert_eq!(c.quarantined, 0);
    assert_eq!(c.recovered as usize, handle.pages);
    assert_eq!(c.recovery_rate(), Some(1.0));
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sjcm_faulttol_{name}_{}", std::process::id()));
    p
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn truncated_file_reopens_as_typed_error_not_panic() {
    let path = temp_path("truncated");
    let _guard = Cleanup(path.clone());
    let tree = sample_tree(1000, 19);
    let handle = {
        let mut store = FilePageStore::create(&path, 1024).unwrap();
        // `save` syncs before returning, so the bytes are on disk.
        tree.save(&mut store).unwrap()
    };

    // Torn tail (truncation mid-page): the open itself reports the torn
    // page as corrupt.
    let full_len = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(full_len - 512).unwrap();
    drop(f);
    assert!(matches!(
        FilePageStore::open(&path, 1024),
        Err(StorageError::Corrupt(_))
    ));

    // Truncation at a page boundary: the open succeeds but the missing
    // pages are typed errors on access, and the load fails cleanly.
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(1024).unwrap();
    drop(f);
    let store = FilePageStore::open(&path, 1024).unwrap();
    assert!(RTree::<2>::load(&store, handle, *tree.config()).is_err());

    // A missing file is an I/O error, not a malformed node.
    std::fs::remove_file(&path).unwrap();
    assert!(matches!(
        FilePageStore::open(&path, 1024),
        Err(StorageError::Io(_))
    ));
}

#[test]
fn file_backed_save_load_roundtrip_syncs() {
    let path = temp_path("roundtrip");
    let _guard = Cleanup(path.clone());
    let tree = sample_tree(1500, 23);
    let handle = {
        let mut store = FilePageStore::create(&path, 1024).unwrap();
        tree.save(&mut store).unwrap()
    };
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        handle.pages as u64 * 1024
    );
    let store = FilePageStore::open(&path, 1024).unwrap();
    let loaded = RTree::<2>::load(&store, handle, *tree.config()).unwrap();
    assert_eq!(loaded.len(), tree.len());
    loaded.check_invariants_with_tolerance(1e-5).unwrap();
}
