//! R-tree family built from scratch for the spatial-join cost-model
//! reproduction.
//!
//! The paper evaluates its analytical formulas against joins executed on
//! **R\*-trees** (Beckmann et al., SIGMOD 1990). This crate implements
//! that structure — plus Guttman's original quadratic R-tree and two
//! bulk-loading ("packing") algorithms — with the instrumentation the
//! reproduction needs and an off-the-shelf library would not give us:
//!
//! * per-level structural statistics ([`stats::TreeStats`]): node counts
//!   `N_j`, average node extents `s_{j,k}` and node-rectangle densities
//!   `D_j`, the *measured* counterparts of the model's Eqs 3–5;
//! * direct node access by id so the join crate can drive a synchronized
//!   traversal over two trees while routing every node fetch through a
//!   simulated buffer manager;
//! * paged persistence over [`sjcm_storage`] using the paper's exact
//!   1 KiB page layout (M = 84 / 50 for n = 1 / 2).
//!
//! # Quick example
//!
//! ```
//! use sjcm_rtree::{RTree, RTreeConfig, ObjectId};
//! use sjcm_geom::Rect;
//!
//! let mut tree = RTree::<2>::new(RTreeConfig::paper(2));
//! tree.insert(Rect::new([0.1, 0.1], [0.2, 0.2]).unwrap(), ObjectId(1));
//! tree.insert(Rect::new([0.5, 0.5], [0.6, 0.8]).unwrap(), ObjectId(2));
//! let hits = tree.query_window(&Rect::new([0.0, 0.0], [0.3, 0.3]).unwrap());
//! assert_eq!(hits, vec![ObjectId(1)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bulk;
pub mod config;
pub mod knn;
pub mod node;
pub mod persist;
pub mod split;
pub mod stats;
pub mod tree;
pub mod validate;

pub use bulk::BulkLoad;
pub use config::{RTreeConfig, SplitStrategy};
pub use knn::Neighbor;
pub use node::{Child, Entry, Node, NodeId, ObjectId};
pub use persist::PersistedTree;
pub use stats::{LevelStats, TreeStats};
pub use tree::RTree;
