//! Measured per-level tree statistics.
//!
//! The analytical model predicts, for each level `j`, the node count
//! `N_j` (Eq 3), the average node extent `s_{j,k}` (Eq 4) and the node-
//! rectangle density `D_j` (Eq 5) from data properties alone. This module
//! *measures* the same quantities from a built tree, which serves two
//! purposes: validating Eqs 2–5 directly, and the "measured parameters"
//! ablation that isolates parameter-prediction error from traversal-model
//! error.

use crate::tree::RTree;
use sjcm_geom::density;

/// Statistics of one tree level, using the **paper's** level numbering:
/// leaves are level `j = 1`, the root is level `j = h`.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelStats {
    /// Paper level `j` (1 = leaf).
    pub level: usize,
    /// Number of nodes at this level — the measured `N_j`.
    pub node_count: usize,
    /// Average node-rectangle extent per dimension — the measured
    /// `s_{j,k}`.
    pub avg_extents: Vec<f64>,
    /// Density of the node rectangles over the unit workspace — the
    /// measured `D_j`.
    pub density: f64,
    /// Average entries per node at this level.
    pub avg_fanout: f64,
}

/// Whole-tree statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Height `h` in the paper's convention (leaf level 1 … root level h).
    pub height: usize,
    /// Number of stored objects `N`.
    pub num_objects: usize,
    /// Density `D` of the stored object MBRs.
    pub data_density: f64,
    /// Per-level statistics for `j = 1 … h` (index 0 ↦ level 1).
    pub levels: Vec<LevelStats>,
    /// Average node capacity utilization over all nodes — the measured
    /// counterpart of the paper's `c` (typically ≈ 0.67).
    pub avg_utilization: f64,
}

impl TreeStats {
    /// Statistics for paper level `j` (1-based), if the tree is tall
    /// enough.
    pub fn level(&self, j: usize) -> Option<&LevelStats> {
        if j == 0 {
            return None;
        }
        self.levels.get(j - 1)
    }
}

impl<const N: usize> RTree<N> {
    /// Measures the per-level statistics of this tree.
    pub fn stats(&self) -> TreeStats {
        let height = self.height();
        let max_entries = self.config().max_entries;
        let mut levels = Vec::with_capacity(height);
        let mut total_entries = 0usize;
        let mut total_nodes = 0usize;
        for crate_level in 0..height {
            let ids = self.node_ids_at_level(crate_level as u8);
            let rects: Vec<_> = ids.iter().filter_map(|&id| self.node(id).mbr()).collect();
            let node_count = ids.len();
            let entries: usize = ids.iter().map(|&id| self.node(id).len()).sum();
            total_entries += entries;
            total_nodes += node_count;
            let mut avg = vec![0.0; N];
            for r in &rects {
                for (k, a) in avg.iter_mut().enumerate() {
                    *a += r.extent(k);
                }
            }
            if !rects.is_empty() {
                for a in avg.iter_mut() {
                    *a /= rects.len() as f64;
                }
            }
            levels.push(LevelStats {
                level: crate_level + 1,
                node_count,
                avg_extents: avg,
                density: density(rects.iter()),
                avg_fanout: if node_count == 0 {
                    0.0
                } else {
                    entries as f64 / node_count as f64
                },
            });
        }
        let data_density = density(self.objects().iter().map(|(r, _)| r).collect::<Vec<_>>());
        TreeStats {
            height,
            num_objects: self.len(),
            data_density,
            levels,
            avg_utilization: if total_nodes == 0 {
                0.0
            } else {
                total_entries as f64 / (total_nodes * max_entries) as f64
            },
        }
    }

    /// Measures the statistics of the subtree rooted at `root` — the same
    /// quantities as [`RTree::stats`] restricted to that subtree, with
    /// levels renumbered so the subtree's leaves are paper level 1 and
    /// `root` itself is level `height`.
    ///
    /// The parallel join scheduler uses these to price a work unit with
    /// the Eq-6 cost formula on the unit's *measured* shape instead of a
    /// whole-tree average.
    pub fn subtree_stats(&self, root: crate::node::NodeId) -> TreeStats {
        let max_entries = self.config().max_entries;
        let height = self.node(root).level as usize + 1;
        // Group the subtree's nodes by crate level (0 = leaf).
        let mut by_level: Vec<Vec<crate::node::NodeId>> = vec![Vec::new(); height];
        let mut frontier = vec![root];
        while let Some(id) = frontier.pop() {
            let node = self.node(id);
            by_level[node.level as usize].push(id);
            if !node.is_leaf() {
                frontier.extend(node.entries.iter().map(|e| e.child.node()));
            }
        }
        let mut levels = Vec::with_capacity(height);
        let mut total_entries = 0usize;
        let mut total_nodes = 0usize;
        let mut object_rects = Vec::new();
        for (crate_level, ids) in by_level.iter().enumerate() {
            let rects: Vec<_> = ids.iter().filter_map(|&id| self.node(id).mbr()).collect();
            let node_count = ids.len();
            let entries: usize = ids.iter().map(|&id| self.node(id).len()).sum();
            total_entries += entries;
            total_nodes += node_count;
            if crate_level == 0 {
                for &id in ids {
                    object_rects.extend(self.node(id).entries.iter().map(|e| e.rect));
                }
            }
            let mut avg = vec![0.0; N];
            for r in &rects {
                for (k, a) in avg.iter_mut().enumerate() {
                    *a += r.extent(k);
                }
            }
            if !rects.is_empty() {
                for a in avg.iter_mut() {
                    *a /= rects.len() as f64;
                }
            }
            levels.push(LevelStats {
                level: crate_level + 1,
                node_count,
                avg_extents: avg,
                density: density(rects.iter()),
                avg_fanout: if node_count == 0 {
                    0.0
                } else {
                    entries as f64 / node_count as f64
                },
            });
        }
        TreeStats {
            height,
            num_objects: object_rects.len(),
            data_density: density(object_rects.iter()),
            levels,
            avg_utilization: if total_nodes == 0 {
                0.0
            } else {
                total_entries as f64 / (total_nodes * max_entries) as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;
    use crate::node::ObjectId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sjcm_geom::{Point, Rect};

    fn build_uniform(n: usize, side: f64, seed: u64) -> RTree<2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = RTree::<2>::new(RTreeConfig::with_capacity(16));
        for i in 0..n {
            let c = Point::new([rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
            tree.insert(Rect::centered(c, [side, side]), ObjectId(i as u32));
        }
        tree
    }

    #[test]
    fn stats_shape_matches_height() {
        let tree = build_uniform(500, 0.01, 1);
        let s = tree.stats();
        assert_eq!(s.height, tree.height());
        assert_eq!(s.levels.len(), s.height);
        assert_eq!(s.num_objects, 500);
        // Root level has exactly one node.
        assert_eq!(s.levels.last().unwrap().node_count, 1);
        // Leaf level has the most nodes.
        assert!(s.levels[0].node_count >= s.levels.last().unwrap().node_count);
    }

    #[test]
    fn level_accessor_is_one_based() {
        let tree = build_uniform(300, 0.01, 2);
        let s = tree.stats();
        assert!(s.level(0).is_none());
        assert_eq!(s.level(1).unwrap().level, 1);
        assert_eq!(s.level(s.height).unwrap().node_count, 1);
        assert!(s.level(s.height + 1).is_none());
    }

    #[test]
    fn data_density_matches_construction() {
        // 400 squares of side 0.02 → density ≈ 400 · 4e-4 = 0.16 (squares
        // protruding past the workspace edge still count fully, matching
        // the D = N·avg_area convention).
        let tree = build_uniform(400, 0.02, 3);
        let s = tree.stats();
        assert!(
            (s.data_density - 0.16).abs() < 0.01,
            "density {}",
            s.data_density
        );
    }

    #[test]
    fn node_density_grows_toward_root() {
        // Node rectangles higher in the tree cover more space, so D_j
        // increases with j (Eq 5's behaviour).
        let tree = build_uniform(2000, 0.005, 4);
        let s = tree.stats();
        assert!(s.height >= 3);
        for w in s.levels.windows(2) {
            // Tolerate small non-monotonicity at the root (single node).
            if w[1].node_count > 1 {
                assert!(
                    w[1].density > w[0].density * 0.8,
                    "density should grow with level: {} -> {}",
                    w[0].density,
                    w[1].density
                );
            }
        }
    }

    #[test]
    fn avg_utilization_reasonable() {
        let tree = build_uniform(2000, 0.005, 5);
        let s = tree.stats();
        assert!(
            (0.5..=1.0).contains(&s.avg_utilization),
            "utilization {}",
            s.avg_utilization
        );
    }

    #[test]
    fn subtree_stats_of_root_match_whole_tree() {
        let tree = build_uniform(1200, 0.008, 7);
        let whole = tree.stats();
        let sub = tree.subtree_stats(tree.root_id());
        assert_eq!(sub.height, whole.height);
        assert_eq!(sub.num_objects, whole.num_objects);
        assert_eq!(sub.levels.len(), whole.levels.len());
        for (s, w) in sub.levels.iter().zip(&whole.levels) {
            assert_eq!(s.level, w.level);
            assert_eq!(s.node_count, w.node_count);
            // The two walks visit nodes in different orders, so float
            // sums agree only up to rounding.
            for (a, b) in s.avg_extents.iter().zip(&w.avg_extents) {
                assert!((a - b).abs() < 1e-9);
            }
            assert!((s.density - w.density).abs() < 1e-9);
            assert!((s.avg_fanout - w.avg_fanout).abs() < 1e-12);
        }
        assert!((sub.data_density - whole.data_density).abs() < 1e-9);
        assert!((sub.avg_utilization - whole.avg_utilization).abs() < 1e-12);
    }

    #[test]
    fn subtree_stats_partition_the_objects() {
        let tree = build_uniform(1500, 0.008, 8);
        assert!(tree.height() >= 2);
        let root = tree.node(tree.root_id());
        let mut total = 0usize;
        for entry in &root.entries {
            let sub = tree.subtree_stats(entry.child.node());
            assert_eq!(sub.height, tree.height() - 1);
            assert_eq!(sub.levels.len(), sub.height);
            assert_eq!(sub.levels.last().unwrap().node_count, 1);
            assert!(sub.num_objects > 0);
            total += sub.num_objects;
        }
        assert_eq!(total, 1500, "children's subtrees must partition the data");
    }

    #[test]
    fn leaf_fanout_counts_objects() {
        let tree = build_uniform(100, 0.01, 6);
        let s = tree.stats();
        let leaf = s.level(1).unwrap();
        let total = leaf.avg_fanout * leaf.node_count as f64;
        assert!((total - 100.0).abs() < 1e-9);
    }
}
