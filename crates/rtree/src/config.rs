//! Tree configuration.

use sjcm_storage::{max_entries, DEFAULT_PAGE_SIZE};

/// Which split algorithm the tree uses on node overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Guttman's quadratic split (SIGMOD 1984).
    Quadratic,
    /// The R\*-tree topological split (margin-driven axis choice, minimum
    /// overlap distribution) with forced reinsertion (SIGMOD 1990). This
    /// is what the paper's experiments use.
    RStar,
}

/// Configuration of an R-tree instance.
///
/// The defaults reproduce the paper's setup: 1 KiB pages (so `M` follows
/// from the dimensionality via the node layout), minimum fill `m = 40%·M`
/// (the R\*-tree recommendation) and forced reinsertion of `30%·M`
/// entries on first overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeConfig {
    /// Page size in bytes; determines the maximum node capacity.
    pub page_size: usize,
    /// Maximum entries per node — the paper's `M`.
    pub max_entries: usize,
    /// Minimum entries per non-root node — `m`, with `2 ≤ m ≤ M/2`.
    pub min_entries: usize,
    /// Split algorithm.
    pub split: SplitStrategy,
    /// Number of entries evicted by forced reinsertion (R\* only).
    pub reinsert_count: usize,
}

impl RTreeConfig {
    /// The paper's configuration for dimensionality `n`: 1 KiB pages,
    /// `M` from the page layout (84 for n = 1, 50 for n = 2), R\*-tree
    /// semantics.
    ///
    /// ```
    /// use sjcm_rtree::RTreeConfig;
    /// assert_eq!(RTreeConfig::paper(1).max_entries, 84);
    /// assert_eq!(RTreeConfig::paper(2).max_entries, 50);
    /// ```
    pub fn paper(n: usize) -> Self {
        Self::for_page_size(DEFAULT_PAGE_SIZE, n)
    }

    /// Configuration for an arbitrary page size and dimensionality,
    /// with R\*-tree defaults for `m` and the reinsert fraction.
    pub fn for_page_size(page_size: usize, n: usize) -> Self {
        let max = max_entries(page_size, n);
        assert!(
            max >= 4,
            "page of {page_size} bytes holds fewer than 4 entries in {n}-D"
        );
        Self::with_capacity(max).with_page_size(page_size)
    }

    /// Configuration from an explicit `M`, for tests that want tiny nodes
    /// to force deep trees on small data.
    pub fn with_capacity(max: usize) -> Self {
        assert!(max >= 4, "M must be at least 4, got {max}");
        Self {
            page_size: DEFAULT_PAGE_SIZE,
            max_entries: max,
            // R*-tree recommendation: m = 40% of M.
            min_entries: (max * 2 / 5).max(2),
            split: SplitStrategy::RStar,
            // R*-tree recommendation: p = 30% of M.
            reinsert_count: (max * 3 / 10).max(1),
        }
    }

    /// Replaces the page size (does not recompute `M`; use
    /// [`RTreeConfig::for_page_size`] for that).
    pub fn with_page_size(mut self, page_size: usize) -> Self {
        self.page_size = page_size;
        self
    }

    /// Replaces the split strategy.
    pub fn with_split(mut self, split: SplitStrategy) -> Self {
        self.split = split;
        self
    }

    /// Replaces the minimum fill.
    pub fn with_min_entries(mut self, m: usize) -> Self {
        assert!(m >= 1 && 2 * m <= self.max_entries, "need 1 ≤ m ≤ M/2");
        self.min_entries = m;
        self
    }

    /// Validates the configuration's internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_entries < 4 {
            return Err(format!("M = {} < 4", self.max_entries));
        }
        if self.min_entries < 1 || 2 * self.min_entries > self.max_entries {
            return Err(format!(
                "m = {} violates 1 ≤ m ≤ M/2 = {}",
                self.min_entries,
                self.max_entries / 2
            ));
        }
        if self.reinsert_count + self.min_entries > self.max_entries {
            return Err(format!(
                "reinsert count {} too large for M = {}, m = {}",
                self.reinsert_count, self.max_entries, self.min_entries
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_published_capacities() {
        let c1 = RTreeConfig::paper(1);
        assert_eq!(c1.max_entries, 84);
        assert_eq!(c1.min_entries, 33); // 40% of 84
        assert_eq!(c1.reinsert_count, 25); // 30% of 84
        let c2 = RTreeConfig::paper(2);
        assert_eq!(c2.max_entries, 50);
        assert_eq!(c2.min_entries, 20);
        assert_eq!(c2.reinsert_count, 15);
        c1.validate().unwrap();
        c2.validate().unwrap();
    }

    #[test]
    fn tiny_capacity_keeps_m_at_least_two() {
        let c = RTreeConfig::with_capacity(4);
        assert_eq!(c.min_entries, 2);
        c.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn rejects_capacity_below_four() {
        RTreeConfig::with_capacity(3);
    }

    #[test]
    fn validate_catches_bad_min() {
        let mut c = RTreeConfig::with_capacity(10);
        c.min_entries = 6;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_catches_excessive_reinsert() {
        let mut c = RTreeConfig::with_capacity(10);
        c.reinsert_count = 9;
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_min_entries_builder() {
        let c = RTreeConfig::with_capacity(20).with_min_entries(5);
        assert_eq!(c.min_entries, 5);
    }
}
