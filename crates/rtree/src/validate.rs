//! Structural invariant checking.
//!
//! Every mutation path of the tree is exercised against these checks in
//! the test suites; the join and experiment crates also assert them
//! before trusting access counts from a tree.

use crate::node::{Child, NodeId};
use crate::tree::RTree;
use std::collections::HashSet;

/// A violated R-tree invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// A non-root node holds fewer than `m` or more than `M` entries.
    BadFanout {
        /// Offending node.
        node: NodeId,
        /// Its entry count.
        len: usize,
    },
    /// An internal root with fewer than 2 entries (must have collapsed).
    BadRoot {
        /// Entry count of the root.
        len: usize,
    },
    /// A child's level is not exactly one below its parent's.
    BadLevel {
        /// Parent node.
        parent: NodeId,
        /// Child node.
        child: NodeId,
    },
    /// A parent entry's rectangle does not tightly cover the child MBR.
    LooseMbr {
        /// Parent node.
        parent: NodeId,
        /// Child node.
        child: NodeId,
    },
    /// A leaf entry holds a node child or an internal entry holds an
    /// object child.
    MixedChildren {
        /// Offending node.
        node: NodeId,
    },
    /// A node is reachable through two parents, or unreachable nodes
    /// exist in the arena.
    BrokenTopology {
        /// Description of the defect.
        detail: String,
    },
    /// The tree's cached object count disagrees with the leaves.
    BadLen {
        /// Cached count.
        cached: usize,
        /// Count found by scanning leaves.
        actual: usize,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::BadFanout { node, len } => {
                write!(f, "node {node:?} has illegal fanout {len}")
            }
            InvariantViolation::BadRoot { len } => {
                write!(f, "internal root has {len} entries")
            }
            InvariantViolation::BadLevel { parent, child } => {
                write!(f, "level mismatch between {parent:?} and {child:?}")
            }
            InvariantViolation::LooseMbr { parent, child } => {
                write!(
                    f,
                    "entry rect of {parent:?} does not tightly cover {child:?}"
                )
            }
            InvariantViolation::MixedChildren { node } => {
                write!(f, "node {node:?} mixes child kinds")
            }
            InvariantViolation::BrokenTopology { detail } => {
                write!(f, "broken topology: {detail}")
            }
            InvariantViolation::BadLen { cached, actual } => {
                write!(f, "cached len {cached} but {actual} leaf entries")
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

impl<const N: usize> RTree<N> {
    /// Checks all structural invariants with an exact MBR-tightness
    /// requirement (tolerance 1e-9), appropriate for trees built and
    /// mutated in memory.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        self.check_invariants_with_tolerance(1e-9)
    }

    /// Checks all structural invariants, allowing parent entry rectangles
    /// to exceed the child MBR by up to `tol` per side. Trees loaded from
    /// pages need a tolerance around the `f32` quantization error (1e-5).
    pub fn check_invariants_with_tolerance(&self, tol: f64) -> Result<(), InvariantViolation> {
        let root = self.root_id();
        let root_node = self.node(root);
        if !root_node.is_leaf() && root_node.len() < 2 {
            return Err(InvariantViolation::BadRoot {
                len: root_node.len(),
            });
        }
        if root_node.len() > self.config().max_entries {
            return Err(InvariantViolation::BadFanout {
                node: root,
                len: root_node.len(),
            });
        }
        let mut seen: HashSet<NodeId> = HashSet::new();
        seen.insert(root);
        let mut leaf_entries = 0usize;
        self.check_node(root, true, tol, &mut seen, &mut leaf_entries)?;
        if leaf_entries != self.len() {
            return Err(InvariantViolation::BadLen {
                cached: self.len(),
                actual: leaf_entries,
            });
        }
        let live = self.node_count();
        if live != seen.len() {
            return Err(InvariantViolation::BrokenTopology {
                detail: format!("{live} live nodes but only {} reachable", seen.len()),
            });
        }
        Ok(())
    }

    fn check_node(
        &self,
        id: NodeId,
        is_root: bool,
        tol: f64,
        seen: &mut HashSet<NodeId>,
        leaf_entries: &mut usize,
    ) -> Result<(), InvariantViolation> {
        let node = self.node(id);
        if !is_root
            && (node.len() < self.config().min_entries || node.len() > self.config().max_entries)
        {
            return Err(InvariantViolation::BadFanout {
                node: id,
                len: node.len(),
            });
        }
        if node.is_leaf() {
            for e in &node.entries {
                if !matches!(e.child, Child::Object(_)) {
                    return Err(InvariantViolation::MixedChildren { node: id });
                }
            }
            *leaf_entries += node.len();
            return Ok(());
        }
        for e in &node.entries {
            let child_id = match e.child {
                Child::Node(c) => c,
                Child::Object(_) => return Err(InvariantViolation::MixedChildren { node: id }),
            };
            if !seen.insert(child_id) {
                return Err(InvariantViolation::BrokenTopology {
                    detail: format!("node {child_id:?} has multiple parents"),
                });
            }
            let child = self.node(child_id);
            if child.level + 1 != node.level {
                return Err(InvariantViolation::BadLevel {
                    parent: id,
                    child: child_id,
                });
            }
            let child_mbr = child.mbr().ok_or(InvariantViolation::BrokenTopology {
                detail: format!("empty non-root node {child_id:?}"),
            })?;
            // Tight cover: the entry rect must contain the child MBR and
            // exceed it by at most `tol` per side.
            if !e.rect.contains_rect(&child_mbr) {
                return Err(InvariantViolation::LooseMbr {
                    parent: id,
                    child: child_id,
                });
            }
            for k in 0..N {
                if (child_mbr.lo_k(k) - e.rect.lo_k(k)) > tol
                    || (e.rect.hi_k(k) - child_mbr.hi_k(k)) > tol
                {
                    return Err(InvariantViolation::LooseMbr {
                        parent: id,
                        child: child_id,
                    });
                }
            }
            self.check_node(child_id, false, tol, seen, leaf_entries)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;
    use crate::node::ObjectId;
    use sjcm_geom::Rect;

    #[test]
    fn fresh_tree_is_valid() {
        let tree = RTree::<2>::new(RTreeConfig::with_capacity(8));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn populated_tree_is_valid() {
        let mut tree = RTree::<2>::new(RTreeConfig::with_capacity(4));
        for i in 0..200u32 {
            let x = (i % 20) as f64 / 20.0;
            let y = (i / 20) as f64 / 10.0;
            tree.insert(
                Rect::new([x, y], [x + 0.01, y + 0.01]).unwrap(),
                ObjectId(i),
            );
        }
        tree.check_invariants().unwrap();
    }

    #[test]
    fn violation_messages_render() {
        let v = InvariantViolation::BadFanout {
            node: NodeId(3),
            len: 1,
        };
        assert!(v.to_string().contains("n3"));
        let v = InvariantViolation::BadLen {
            cached: 5,
            actual: 4,
        };
        assert!(v.to_string().contains('5'));
    }
}
