//! Bulk loading ("packing") of R-trees.
//!
//! Two packers are provided:
//!
//! * **STR** (Sort-Tile-Recursive, Leutenegger et al.): recursively sorts
//!   and tiles the data into vertical slabs, dimension by dimension.
//!   Works for any `N`.
//! * **Hilbert packing** (Kamel & Faloutsos, CIKM 1993 — reference
//!   \[KF93\] of the paper): sorts by the Hilbert value of the MBR center
//!   and fills pages in that order. Falls back to a Morton sort for
//!   `N ≠ 2`.
//!
//! Packed trees have near-100% fill by default; a `fill` factor below
//! 1.0 reproduces insertion-like utilization (the paper's c = 67%) for
//! experiments that want packed construction speed with insertion-like
//! node geometry.

use crate::config::RTreeConfig;
use crate::node::{Entry, Node, NodeId, ObjectId};
use crate::tree::RTree;
use sjcm_geom::curve::{curve_key, CurveKind};
use sjcm_geom::Rect;

/// Bulk-loading algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BulkLoad {
    /// Sort-Tile-Recursive.
    Str,
    /// Space-filling-curve packing (Hilbert for `N = 2`, Morton
    /// otherwise).
    Hilbert,
}

impl<const N: usize> RTree<N> {
    /// Builds a tree from `(rect, id)` pairs using the given packer and
    /// fill factor (fraction of `M` used per node, clamped to
    /// `[2m/M, 1]`).
    ///
    /// ```
    /// use sjcm_rtree::{RTree, RTreeConfig, ObjectId, BulkLoad};
    /// use sjcm_geom::Rect;
    /// let items: Vec<_> = (0..1000u32)
    ///     .map(|i| {
    ///         let x = (i % 100) as f64 / 100.0;
    ///         let y = (i / 100) as f64 / 10.0;
    ///         (Rect::new([x, y], [x + 0.005, y + 0.005]).unwrap(), ObjectId(i))
    ///     })
    ///     .collect();
    /// let tree = RTree::<2>::bulk_load(
    ///     RTreeConfig::paper(2), items, BulkLoad::Str, 1.0);
    /// assert_eq!(tree.len(), 1000);
    /// ```
    pub fn bulk_load(
        mut config: RTreeConfig,
        items: Vec<(Rect<N>, ObjectId)>,
        algorithm: BulkLoad,
        fill: f64,
    ) -> Self {
        config.validate().expect("invalid R-tree configuration");
        let cap_f = (config.max_entries as f64 * fill).floor() as usize;
        let cap = cap_f.clamp(2, config.max_entries);
        // The last-two-chunk balancing in `pack_level` needs cap ≥ 2m. A
        // fill target below 2m/M is legitimate for a packed tree, so the
        // tree's own minimum fill is relaxed to match instead of raising
        // the cap.
        if cap < 2 * config.min_entries {
            config.min_entries = (cap / 2).max(1);
        }
        let mut tree = RTree::new(config);
        if items.is_empty() {
            return tree;
        }
        tree.set_len(items.len());

        // Build leaf level.
        let mut leaf_entries: Vec<Entry<N>> = items
            .into_iter()
            .map(|(rect, id)| Entry::leaf(rect, id))
            .collect();
        order_entries(&mut leaf_entries, algorithm);
        let mut level_nodes: Vec<NodeId> =
            pack_level(&mut tree, leaf_entries, 0, cap, config.min_entries);

        // Build upper levels until a single node remains.
        let mut level: u8 = 0;
        while level_nodes.len() > 1 {
            level += 1;
            let mut entries: Vec<Entry<N>> = level_nodes
                .iter()
                .map(|&id| {
                    let mbr = tree.node(id).mbr().expect("packed nodes are non-empty");
                    Entry::internal(mbr, id)
                })
                .collect();
            order_entries(&mut entries, algorithm);
            level_nodes = pack_level(&mut tree, entries, level, cap, config.min_entries);
        }
        let root = level_nodes[0];
        let placeholder = tree.root_id();
        tree.set_root(root);
        if placeholder != root {
            tree.release(placeholder);
        }
        tree
    }
}

/// Orders entries along the packer's curve. STR performs its recursive
/// sort-and-tile; the curve packers sort by center key.
fn order_entries<const N: usize>(entries: &mut [Entry<N>], algorithm: BulkLoad) {
    match algorithm {
        BulkLoad::Hilbert => {
            let kind = CurveKind::Hilbert;
            entries.sort_by_cached_key(|e| curve_key(kind, &e.rect.center()));
        }
        BulkLoad::Str => {
            // Slab count is decided against the *page* capacity; the
            // exact cap only affects the final chunking.
            str_order(entries, 0);
        }
    }
}

/// Recursive STR ordering: sort by the center of dimension `dim`, cut
/// into `S` slabs, recurse on each slab with the next dimension.
fn str_order<const N: usize>(entries: &mut [Entry<N>], dim: usize) {
    if entries.len() <= 1 {
        return;
    }
    entries.sort_by(|a, b| {
        a.rect.center()[dim]
            .total_cmp(&b.rect.center()[dim])
            .then_with(|| a.rect.lo_k(dim).total_cmp(&b.rect.lo_k(dim)))
    });
    if dim + 1 >= N {
        return;
    }
    let remaining_dims = (N - dim) as f64;
    // Standard STR: with P pages in an n-D tile, use P^(1/n) slabs per
    // dimension. Here we only need the *ordering*, so the slab count uses
    // the entry count directly.
    let slabs = (entries.len() as f64)
        .powf(1.0 / remaining_dims)
        .ceil()
        .max(1.0) as usize;
    let slab_len = entries.len().div_ceil(slabs);
    for chunk in entries.chunks_mut(slab_len) {
        str_order(chunk, dim + 1);
    }
}

/// Chunks ordered entries into nodes of `cap` entries, balancing the last
/// two chunks so no node falls below the minimum fill.
fn pack_level<const N: usize>(
    tree: &mut RTree<N>,
    entries: Vec<Entry<N>>,
    level: u8,
    cap: usize,
    min_entries: usize,
) -> Vec<NodeId> {
    let total = entries.len();
    let mut sizes: Vec<usize> = Vec::new();
    let mut remaining = total;
    while remaining > 0 {
        if remaining > cap {
            // If taking a full chunk would leave an underfull remainder
            // that a single next chunk must absorb, shrink this chunk.
            let after = remaining - cap;
            if after < min_entries && after > 0 && total > cap {
                let take = remaining - min_entries;
                let take = take.clamp(min_entries, cap);
                sizes.push(take);
                remaining -= take;
            } else {
                sizes.push(cap);
                remaining -= cap;
            }
        } else {
            sizes.push(remaining);
            remaining = 0;
        }
    }
    let mut out = Vec::with_capacity(sizes.len());
    let mut it = entries.into_iter();
    for size in sizes {
        let chunk: Vec<Entry<N>> = it.by_ref().take(size).collect();
        let node = Node {
            level,
            entries: chunk,
        };
        out.push(tree.alloc(node));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sjcm_geom::Point;

    fn random_items(n: usize, seed: u64) -> Vec<(Rect<2>, ObjectId)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = Point::new([rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
                (Rect::centered(c, [0.01, 0.01]), ObjectId(i as u32))
            })
            .collect()
    }

    #[test]
    fn str_load_is_valid_and_queryable() {
        let items = random_items(3000, 1);
        let tree = RTree::<2>::bulk_load(
            RTreeConfig::with_capacity(16),
            items.clone(),
            BulkLoad::Str,
            1.0,
        );
        tree.check_invariants().unwrap();
        assert_eq!(tree.len(), 3000);
        let q = Rect::new([0.2, 0.2], [0.4, 0.4]).unwrap();
        let mut got = tree.query_window(&q);
        got.sort();
        let mut want: Vec<ObjectId> = items
            .iter()
            .filter(|(r, _)| r.intersects(&q))
            .map(|&(_, id)| id)
            .collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn hilbert_load_is_valid_and_queryable() {
        let items = random_items(3000, 2);
        let tree = RTree::<2>::bulk_load(
            RTreeConfig::with_capacity(16),
            items.clone(),
            BulkLoad::Hilbert,
            1.0,
        );
        tree.check_invariants().unwrap();
        let q = Rect::new([0.6, 0.1], [0.9, 0.5]).unwrap();
        let mut got = tree.query_window(&q);
        got.sort();
        let mut want: Vec<ObjectId> = items
            .iter()
            .filter(|(r, _)| r.intersects(&q))
            .map(|&(_, id)| id)
            .collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn full_fill_produces_fewer_nodes_than_insertion() {
        let items = random_items(2000, 3);
        let packed = RTree::<2>::bulk_load(
            RTreeConfig::with_capacity(16),
            items.clone(),
            BulkLoad::Hilbert,
            1.0,
        );
        let mut inserted = RTree::<2>::new(RTreeConfig::with_capacity(16));
        for (r, id) in items {
            inserted.insert(r, id);
        }
        assert!(
            packed.node_count() < inserted.node_count(),
            "packed {} vs inserted {}",
            packed.node_count(),
            inserted.node_count()
        );
    }

    #[test]
    fn partial_fill_matches_target() {
        let items = random_items(4000, 4);
        let tree =
            RTree::<2>::bulk_load(RTreeConfig::with_capacity(20), items, BulkLoad::Str, 0.67);
        tree.check_invariants().unwrap();
        let s = tree.stats();
        // Leaf fanout ≈ floor(20 · 0.67) = 13.
        let leaf = s.level(1).unwrap();
        assert!(
            (12.0..=14.0).contains(&leaf.avg_fanout),
            "fanout {}",
            leaf.avg_fanout
        );
    }

    #[test]
    fn bulk_load_empty_and_tiny() {
        let empty =
            RTree::<2>::bulk_load(RTreeConfig::with_capacity(8), vec![], BulkLoad::Str, 1.0);
        assert!(empty.is_empty());
        empty.check_invariants().unwrap();

        let one = RTree::<2>::bulk_load(
            RTreeConfig::with_capacity(8),
            vec![(Rect::unit(), ObjectId(1))],
            BulkLoad::Hilbert,
            1.0,
        );
        assert_eq!(one.len(), 1);
        assert_eq!(one.height(), 1);
        one.check_invariants().unwrap();
    }

    #[test]
    fn bulk_load_exact_page_boundary() {
        // Exactly cap² items: two perfectly full levels.
        let items = random_items(64, 5);
        let tree = RTree::<2>::bulk_load(RTreeConfig::with_capacity(8), items, BulkLoad::Str, 1.0);
        tree.check_invariants().unwrap();
        assert_eq!(tree.height(), 2);
        assert_eq!(tree.stats().level(1).unwrap().node_count, 8);
    }

    #[test]
    fn hilbert_packing_clusters_better_than_random_order() {
        // The Hilbert-sorted leaves should have smaller total perimeter
        // than leaves packed in insertion (id) order.
        let items = random_items(2000, 6);
        let hilbert = RTree::<2>::bulk_load(
            RTreeConfig::with_capacity(16),
            items.clone(),
            BulkLoad::Hilbert,
            1.0,
        );
        // "Random order" packer: abuse STR with dim ordering suppressed by
        // packing the id-sorted list directly through a fresh tree.
        let mut tree = RTree::<2>::new(RTreeConfig::with_capacity(16));
        tree.set_len(items.len());
        let entries: Vec<Entry<2>> = items.iter().map(|&(r, id)| Entry::leaf(r, id)).collect();
        let ids = pack_level(&mut tree, entries, 0, 16, 6);
        let random_margin: f64 = ids
            .iter()
            .map(|&id| tree.node(id).mbr().unwrap().margin())
            .sum();
        let hilbert_margin: f64 = hilbert
            .node_ids_at_level(0)
            .iter()
            .map(|&id| hilbert.node(id).mbr().unwrap().margin())
            .sum();
        assert!(
            hilbert_margin < random_margin * 0.5,
            "hilbert {hilbert_margin} vs random {random_margin}"
        );
    }

    #[test]
    fn one_dimensional_bulk_load() {
        let items: Vec<(Rect<1>, ObjectId)> = (0..500u32)
            .map(|i| {
                let lo = f64::from(i) / 500.0;
                (Rect::new([lo], [lo + 0.001]).unwrap(), ObjectId(i))
            })
            .collect();
        let tree = RTree::<1>::bulk_load(RTreeConfig::with_capacity(10), items, BulkLoad::Str, 1.0);
        tree.check_invariants().unwrap();
        let hits = tree.query_window(&Rect::new([0.0], [0.1]).unwrap());
        assert_eq!(hits.len(), 51); // i = 0..=50 start at ≤ 0.1
    }
}
