//! In-memory node representation and the node arena.
//!
//! Nodes live in a dense arena (`Vec<Node<N>>`) indexed by [`NodeId`].
//! The id doubles as the simulated page id for buffer management in the
//! join crate: two different trees never share a buffer, so ids only need
//! to be unique within one tree.

use sjcm_geom::{mbr_of, Rect};
use std::fmt;

/// Identifier of a node within one tree's arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a stored spatial object (the tuple id the leaf entries
/// point at). 32-bit to match the paper's 4-byte leaf pointers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// What a node entry points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Child {
    /// Internal entry: a child node one level down.
    Node(NodeId),
    /// Leaf entry: a stored object.
    Object(ObjectId),
}

impl Child {
    /// The child node id; panics on leaf entries (programming error).
    #[inline]
    pub fn node(self) -> NodeId {
        match self {
            Child::Node(id) => id,
            Child::Object(o) => panic!("expected node child, found object {o:?}"),
        }
    }

    /// The object id; panics on internal entries (programming error).
    #[inline]
    pub fn object(self) -> ObjectId {
        match self {
            Child::Object(id) => id,
            Child::Node(n) => panic!("expected object child, found node {n:?}"),
        }
    }
}

/// One slot of a node: a bounding rectangle plus what it bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry<const N: usize> {
    /// MBR of the child subtree or of the stored object.
    pub rect: Rect<N>,
    /// Child node or object.
    pub child: Child,
}

impl<const N: usize> Entry<N> {
    /// Leaf entry constructor.
    #[inline]
    pub fn leaf(rect: Rect<N>, id: ObjectId) -> Self {
        Self {
            rect,
            child: Child::Object(id),
        }
    }

    /// Internal entry constructor.
    #[inline]
    pub fn internal(rect: Rect<N>, id: NodeId) -> Self {
        Self {
            rect,
            child: Child::Node(id),
        }
    }
}

/// An R-tree node: its level (0 = leaf) and its entries.
#[derive(Debug, Clone, PartialEq)]
pub struct Node<const N: usize> {
    /// 0 for leaves, increasing toward the root. (The paper's formulas
    /// number leaves as level 1; the cost-model crate shifts explicitly.)
    pub level: u8,
    /// Entries; capacity bounds are enforced by the tree, not the node.
    pub entries: Vec<Entry<N>>,
}

impl<const N: usize> Node<N> {
    /// New empty node at `level`.
    pub fn new(level: u8) -> Self {
        Self {
            level,
            entries: Vec::new(),
        }
    }

    /// `true` when this node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the node has no entries (only valid for an empty
    /// tree's root).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// MBR of all entries; `None` for an empty node.
    pub fn mbr(&self) -> Option<Rect<N>> {
        mbr_of(self.entries.iter().map(|e| e.rect))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_and_internal_entries() {
        let r = Rect::<2>::unit();
        let leaf = Entry::leaf(r, ObjectId(5));
        assert_eq!(leaf.child.object(), ObjectId(5));
        let internal = Entry::internal(r, NodeId(3));
        assert_eq!(internal.child.node(), NodeId(3));
    }

    #[test]
    #[should_panic(expected = "expected node child")]
    fn object_child_as_node_panics() {
        Child::Object(ObjectId(1)).node();
    }

    #[test]
    #[should_panic(expected = "expected object child")]
    fn node_child_as_object_panics() {
        Child::Node(NodeId(1)).object();
    }

    #[test]
    fn node_mbr_covers_entries() {
        let mut node = Node::<2>::new(0);
        assert!(node.is_leaf());
        assert_eq!(node.mbr(), None);
        node.entries.push(Entry::leaf(
            Rect::new([0.1, 0.1], [0.2, 0.2]).unwrap(),
            ObjectId(1),
        ));
        node.entries.push(Entry::leaf(
            Rect::new([0.5, 0.4], [0.9, 0.6]).unwrap(),
            ObjectId(2),
        ));
        let mbr = node.mbr().unwrap();
        assert_eq!(mbr.lo().coords(), [0.1, 0.1]);
        assert_eq!(mbr.hi().coords(), [0.9, 0.6]);
        assert_eq!(node.len(), 2);
        assert!(!node.is_empty());
    }
}
