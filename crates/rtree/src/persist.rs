//! Paged persistence: writing a tree to a [`PageStore`] in the paper's
//! 1 KiB node layout and loading it back.
//!
//! Persisted coordinates are `f32` with outward rounding (see
//! [`sjcm_storage::layout`]), so a reloaded tree's node rectangles may
//! exceed the in-memory originals by an ulp — queries stay correct (no
//! false negatives), and the invariant checker accepts the widened MBRs
//! under an `f32` tolerance.

use crate::config::RTreeConfig;
use crate::node::{Child, Entry, Node, NodeId, ObjectId};
use crate::tree::RTree;
use sjcm_storage::{DiskEntry, DiskNode, PageId, PageStore, StorageError};
use std::collections::HashMap;

/// Handle to a persisted tree: everything needed to load it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistedTree {
    /// Page of the root node.
    pub root: PageId,
    /// Number of stored objects.
    pub len: usize,
    /// Number of pages written.
    pub pages: usize,
}

impl<const N: usize> RTree<N> {
    /// Writes the tree to `store`, one node per page, returning the root
    /// page handle.
    pub fn save(&self, store: &mut dyn PageStore) -> Result<PersistedTree, StorageError> {
        // Allocate ids first so children can be referenced before being
        // written.
        let mut page_of: HashMap<NodeId, PageId> = HashMap::new();
        let live: Vec<NodeId> = self.iter_nodes().map(|(id, _)| id).collect();
        for &id in &live {
            page_of.insert(id, store.allocate()?);
        }
        for &id in &live {
            let node = self.node(id);
            let entries = node
                .entries
                .iter()
                .map(|e| {
                    let child = match e.child {
                        Child::Object(ObjectId(o)) => o,
                        Child::Node(n) => page_of[&n].index(),
                    };
                    DiskEntry {
                        rect: e.rect,
                        child,
                    }
                })
                .collect();
            let disk = DiskNode::<N> {
                level: node.level,
                entries,
            };
            let bytes = disk.encode(store.page_size())?;
            store.write(page_of[&id], &bytes)?;
        }
        // A save is only durable once the store has flushed it; without
        // this, a crash after `save` returns could tear the file.
        store.sync()?;
        Ok(PersistedTree {
            root: page_of[&self.root_id()],
            len: self.len(),
            pages: live.len(),
        })
    }

    /// Loads a tree from `store`, starting at the persisted root page.
    pub fn load(
        store: &dyn PageStore,
        handle: PersistedTree,
        config: RTreeConfig,
    ) -> Result<Self, StorageError> {
        let mut tree = RTree::new(config);
        let mut loaded: HashMap<PageId, NodeId> = HashMap::new();
        let root = load_node(store, handle.root, &mut tree, &mut loaded)?;
        let old_root = tree.root_id();
        tree.set_root(root);
        // Drop the placeholder empty root `RTree::new` created, unless it
        // happens to be the loaded root itself.
        if old_root != root {
            tree.release(old_root);
        }
        tree.set_len(handle.len);
        Ok(tree)
    }
}

fn load_node<const N: usize>(
    store: &dyn PageStore,
    page: PageId,
    tree: &mut RTree<N>,
    loaded: &mut HashMap<PageId, NodeId>,
) -> Result<NodeId, StorageError> {
    if let Some(&id) = loaded.get(&page) {
        // A page reachable twice means the on-disk structure is not a
        // tree.
        return Err(StorageError::MalformedNode(format!(
            "page {page} reachable through two parents (cycle or DAG); already node {id:?}"
        )));
    }
    let disk = DiskNode::<N>::decode(&store.read(page)?)?;
    let mut node = Node::new(disk.level);
    for e in &disk.entries {
        let child = if disk.level == 0 {
            Child::Object(ObjectId(e.child))
        } else {
            let child_page = PageId(e.child);
            let child_id = load_node(store, child_page, tree, loaded)?;
            let child_level = tree.node(child_id).level;
            if child_level + 1 != disk.level {
                return Err(StorageError::MalformedNode(format!(
                    "page {child_page} at level {child_level} under parent level {}",
                    disk.level
                )));
            }
            Child::Node(child_id)
        };
        node.entries.push(Entry {
            rect: e.rect,
            child,
        });
    }
    let id = tree.alloc(node);
    loaded.insert(page, id);
    Ok(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::BulkLoad;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sjcm_geom::{Point, Rect};
    use sjcm_storage::InMemoryPageStore;

    fn sample_tree(n: usize, seed: u64) -> RTree<2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let items: Vec<(Rect<2>, ObjectId)> = (0..n)
            .map(|i| {
                let c = Point::new([rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
                (Rect::centered(c, [0.01, 0.02]), ObjectId(i as u32))
            })
            .collect();
        RTree::bulk_load(RTreeConfig::paper(2), items, BulkLoad::Str, 0.8)
    }

    #[test]
    fn save_load_roundtrip_preserves_answers() {
        let tree = sample_tree(2000, 1);
        let mut store = InMemoryPageStore::with_default_page_size();
        let handle = tree.save(&mut store).unwrap();
        assert_eq!(handle.pages, tree.node_count());
        let loaded = RTree::<2>::load(&store, handle, *tree.config()).unwrap();
        assert_eq!(loaded.len(), tree.len());
        assert_eq!(loaded.height(), tree.height());
        assert_eq!(loaded.node_count(), tree.node_count());
        loaded.check_invariants_with_tolerance(1e-5).unwrap();
        // Every original object must still be found (f32 widening can
        // only add candidates, never lose them).
        let q = Rect::new([0.1, 0.3], [0.5, 0.6]).unwrap();
        let mut orig = tree.query_window(&q);
        orig.sort();
        let got = loaded.query_window(&q);
        for id in &orig {
            assert!(got.contains(id), "lost {id:?} across persistence");
        }
    }

    #[test]
    fn roundtrip_insertion_built_tree() {
        let mut tree = RTree::<2>::new(RTreeConfig::with_capacity(8));
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..500u32 {
            let c = Point::new([rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
            tree.insert(Rect::centered(c, [0.02, 0.02]), ObjectId(i));
        }
        let mut store = InMemoryPageStore::with_default_page_size();
        let handle = tree.save(&mut store).unwrap();
        let loaded = RTree::<2>::load(&store, handle, *tree.config()).unwrap();
        loaded.check_invariants_with_tolerance(1e-5).unwrap();
        assert_eq!(loaded.query_window(&Rect::unit()).len(), 500);
    }

    #[test]
    fn empty_tree_roundtrip() {
        let tree = RTree::<2>::new(RTreeConfig::paper(2));
        let mut store = InMemoryPageStore::with_default_page_size();
        let handle = tree.save(&mut store).unwrap();
        assert_eq!(handle.pages, 1);
        let loaded = RTree::<2>::load(&store, handle, *tree.config()).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.height(), 1);
    }

    #[test]
    fn load_detects_corruption() {
        let tree = sample_tree(200, 3);
        let mut store = InMemoryPageStore::with_default_page_size();
        let handle = tree.save(&mut store).unwrap();
        store.corrupt_for_test(handle.root).unwrap();
        let err = RTree::<2>::load(&store, handle, *tree.config()).unwrap_err();
        assert!(matches!(
            err,
            StorageError::Corrupt(_) | StorageError::MalformedNode(_)
        ));
    }

    #[test]
    fn load_rejects_wrong_dimensionality() {
        let tree = sample_tree(100, 4);
        let mut store = InMemoryPageStore::with_default_page_size();
        let handle = tree.save(&mut store).unwrap();
        let err = RTree::<3>::load(&store, handle, RTreeConfig::paper(3)).unwrap_err();
        assert!(matches!(err, StorageError::MalformedNode(_)));
    }

    #[test]
    fn one_kib_pages_fit_paper_capacity() {
        // A full paper-config node (M = 50 in 2-D) must encode into one
        // 1 KiB page.
        let items: Vec<(Rect<2>, ObjectId)> = (0..50u32)
            .map(|i| {
                let x = f64::from(i) / 50.0;
                (Rect::new([x, 0.0], [x + 0.01, 0.01]).unwrap(), ObjectId(i))
            })
            .collect();
        let tree = RTree::<2>::bulk_load(RTreeConfig::paper(2), items, BulkLoad::Str, 1.0);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.node(tree.root_id()).len(), 50);
        let mut store = InMemoryPageStore::with_default_page_size();
        tree.save(&mut store).unwrap();
    }
}
