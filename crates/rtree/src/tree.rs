//! The R-tree proper: insertion (Guttman / R\* with forced reinsertion),
//! deletion with tree condensation, and window queries.

use crate::config::{RTreeConfig, SplitStrategy};
use crate::node::{Child, Entry, Node, NodeId, ObjectId};
use crate::split::{quadratic_split, rstar_split};
use sjcm_geom::Rect;

/// An R-tree over `N`-dimensional rectangles.
///
/// Nodes live in an arena owned by the tree; [`NodeId`]s double as
/// simulated page ids for the join crate's buffer managers. The tree is
/// never empty structurally — an empty tree has a leaf root with zero
/// entries.
#[derive(Debug, Clone)]
pub struct RTree<const N: usize> {
    config: RTreeConfig,
    nodes: Vec<Option<Node<N>>>,
    free: Vec<NodeId>,
    root: NodeId,
    len: usize,
}

impl<const N: usize> RTree<N> {
    /// Creates an empty tree.
    pub fn new(config: RTreeConfig) -> Self {
        config.validate().expect("invalid R-tree configuration");
        Self {
            config,
            nodes: vec![Some(Node::new(0))],
            free: Vec::new(),
            root: NodeId(0),
            len: 0,
        }
    }

    /// The tree's configuration.
    #[inline]
    pub fn config(&self) -> &RTreeConfig {
        &self.config
    }

    /// Number of stored objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no objects are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree: the number of levels, so a leaf-only tree has
    /// height 1. This matches the paper's `h` (root at level `h`, leaves
    /// at level 1) up to the crate's 0-based level convention.
    #[inline]
    pub fn height(&self) -> usize {
        self.node(self.root).level as usize + 1
    }

    /// Root node id.
    #[inline]
    pub fn root_id(&self) -> NodeId {
        self.root
    }

    /// Borrow a node by id. Panics on a dangling id — the join executor
    /// only holds ids handed out by this tree, so a failure here is an
    /// internal bug, not an I/O condition.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node<N> {
        self.nodes[id.0 as usize]
            .as_ref()
            .expect("dangling node id")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node<N> {
        self.nodes[id.0 as usize]
            .as_mut()
            .expect("dangling node id")
    }

    pub(crate) fn alloc(&mut self, node: Node<N>) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id.0 as usize] = Some(node);
            id
        } else {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(Some(node));
            id
        }
    }

    pub(crate) fn release(&mut self, id: NodeId) {
        self.nodes[id.0 as usize] = None;
        self.free.push(id);
    }

    pub(crate) fn set_root(&mut self, id: NodeId) {
        self.root = id;
    }

    pub(crate) fn set_len(&mut self, len: usize) {
        self.len = len;
    }

    /// MBR of the whole data set, `None` when empty.
    pub fn mbr(&self) -> Option<Rect<N>> {
        self.node(self.root).mbr()
    }

    /// Number of live nodes (the tree's size in simulated pages).
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Ids of all live nodes at `level` (0 = leaf).
    pub fn node_ids_at_level(&self, level: u8) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match n {
                Some(node) if node.level == level => Some(NodeId(i as u32)),
                _ => None,
            })
            .collect()
    }

    /// Iterates over all live nodes with their ids.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &Node<N>)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|node| (NodeId(i as u32), node)))
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Inserts an object with the given MBR.
    pub fn insert(&mut self, rect: Rect<N>, id: ObjectId) {
        debug_assert!(rect.is_valid(), "invalid rectangle {rect:?}");
        self.insert_entry_at(Entry::leaf(rect, id), 0);
        self.len += 1;
    }

    /// Inserts an entry so that it ends up in a node at `target_level`.
    /// Used by insertion (level 0), forced reinsertion and deletion's
    /// orphan handling (any level).
    fn insert_entry_at(&mut self, entry: Entry<N>, target_level: u8) {
        // `overflow_done[l]` records whether forced reinsertion already
        // ran at level `l` during this logical insertion (R* runs it at
        // most once per level per insertion, then splits).
        let mut overflow_done = vec![false; self.height().max(16)];
        let mut queue: Vec<(Entry<N>, u8)> = vec![(entry, target_level)];
        while let Some((e, lvl)) = queue.pop() {
            debug_assert!(
                (lvl as usize) < self.height(),
                "reinsertion level {lvl} at height {}",
                self.height()
            );
            if let Some(sibling) =
                self.insert_desc(self.root, e, lvl, &mut overflow_done, &mut queue)
            {
                self.grow_root(sibling);
                if overflow_done.len() < self.height() {
                    overflow_done.resize(self.height(), false);
                }
            }
        }
    }

    /// Recursive descent. Returns a new sibling entry when this node was
    /// split and the parent must absorb the second half.
    fn insert_desc(
        &mut self,
        node_id: NodeId,
        entry: Entry<N>,
        target_level: u8,
        overflow_done: &mut [bool],
        reinsert_queue: &mut Vec<(Entry<N>, u8)>,
    ) -> Option<Entry<N>> {
        let node_level = self.node(node_id).level;
        if node_level == target_level {
            self.node_mut(node_id).entries.push(entry);
        } else {
            let idx = self.choose_subtree(node_id, &entry.rect, target_level);
            let child_id = self.node(node_id).entries[idx].child.node();
            let sibling =
                self.insert_desc(child_id, entry, target_level, overflow_done, reinsert_queue);
            // Refresh the child MBR unconditionally: the child may have
            // grown (insert), shrunk (forced reinsertion) or split.
            let child_mbr = self
                .node(child_id)
                .mbr()
                .expect("child node cannot be empty after insert");
            self.node_mut(node_id).entries[idx].rect = child_mbr;
            if let Some(sib) = sibling {
                self.node_mut(node_id).entries.push(sib);
            }
        }

        if self.node(node_id).len() <= self.config.max_entries {
            return None;
        }
        self.overflow_treatment(node_id, overflow_done, reinsert_queue)
    }

    /// R\* OverflowTreatment: forced reinsertion on the first overflow of
    /// a level (non-root), split otherwise.
    fn overflow_treatment(
        &mut self,
        node_id: NodeId,
        overflow_done: &mut [bool],
        reinsert_queue: &mut Vec<(Entry<N>, u8)>,
    ) -> Option<Entry<N>> {
        let level = self.node(node_id).level as usize;
        let use_reinsert = self.config.split == SplitStrategy::RStar
            && node_id != self.root
            && level < overflow_done.len()
            && !overflow_done[level];
        if use_reinsert {
            overflow_done[level] = true;
            self.forced_reinsert(node_id, reinsert_queue);
            None
        } else {
            Some(self.split_node(node_id))
        }
    }

    /// Removes the `p` entries whose centers lie farthest from the node
    /// MBR center and queues them for reinsertion at this node's level
    /// ("close reinsert": nearest-first reinsertion order, per BKSS90).
    fn forced_reinsert(&mut self, node_id: NodeId, reinsert_queue: &mut Vec<(Entry<N>, u8)>) {
        let p = self.config.reinsert_count;
        let node = self.node(node_id);
        let level = node.level;
        let center = node.mbr().expect("overflowing node is non-empty").center();
        let mut by_dist: Vec<(f64, usize)> = node
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.rect.center().dist2(&center), i))
            .collect();
        // Farthest first.
        by_dist.sort_by(|a, b| b.0.total_cmp(&a.0));
        let evict_indices: Vec<usize> = by_dist.iter().take(p).map(|&(_, i)| i).collect();
        let mut sorted_desc = evict_indices.clone();
        sorted_desc.sort_unstable_by(|a, b| b.cmp(a));
        let node = self.node_mut(node_id);
        let mut evicted: Vec<Entry<N>> = Vec::with_capacity(p);
        for idx in sorted_desc {
            evicted.push(node.entries.swap_remove(idx));
        }
        // `evicted` order is arbitrary after swap_remove; sort by distance
        // descending so that popping from the queue reinserts the nearest
        // entries first (close reinsert).
        evicted.sort_by(|a, b| {
            b.rect
                .center()
                .dist2(&center)
                .total_cmp(&a.rect.center().dist2(&center))
        });
        for e in evicted {
            reinsert_queue.push((e, level));
        }
    }

    fn split_node(&mut self, node_id: NodeId) -> Entry<N> {
        let level = self.node(node_id).level;
        let entries = std::mem::take(&mut self.node_mut(node_id).entries);
        let (g1, g2) = match self.config.split {
            SplitStrategy::Quadratic => quadratic_split(entries, self.config.min_entries),
            SplitStrategy::RStar => rstar_split(entries, self.config.min_entries),
        };
        self.node_mut(node_id).entries = g1;
        let new_node = Node { level, entries: g2 };
        let new_mbr = new_node.mbr().expect("split group non-empty");
        let new_id = self.alloc(new_node);
        Entry::internal(new_mbr, new_id)
    }

    fn grow_root(&mut self, sibling: Entry<N>) {
        let old_root = self.root;
        let old_mbr = self.node(old_root).mbr().expect("split root is non-empty");
        let new_level = self.node(old_root).level + 1;
        let mut new_root = Node::new(new_level);
        new_root.entries.push(Entry::internal(old_mbr, old_root));
        new_root.entries.push(sibling);
        self.root = self.alloc(new_root);
    }

    /// ChooseSubtree (R\*): minimum overlap enlargement when the children
    /// are leaves, minimum area enlargement otherwise. Guttman trees use
    /// minimum area enlargement at every level.
    fn choose_subtree(&self, node_id: NodeId, rect: &Rect<N>, target_level: u8) -> usize {
        let node = self.node(node_id);
        debug_assert!(node.level > target_level);
        let children_are_target = node.level == target_level + 1;
        let leaf_children = node.level == 1;
        let use_overlap =
            self.config.split == SplitStrategy::RStar && leaf_children && children_are_target;
        if use_overlap {
            self.choose_min_overlap(node, rect)
        } else {
            Self::choose_min_enlargement(node, rect)
        }
    }

    fn choose_min_enlargement(node: &Node<N>, rect: &Rect<N>) -> usize {
        let mut best = 0usize;
        let mut best_enl = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for (i, e) in node.entries.iter().enumerate() {
            let enl = e.rect.enlargement(rect);
            let area = e.rect.measure();
            if enl < best_enl || (enl == best_enl && area < best_area) {
                best = i;
                best_enl = enl;
                best_area = area;
            }
        }
        best
    }

    fn choose_min_overlap(&self, node: &Node<N>, rect: &Rect<N>) -> usize {
        let mut best = 0usize;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for (i, e) in node.entries.iter().enumerate() {
            let grown = e.rect.union(rect);
            let mut overlap_delta = 0.0;
            for (j, other) in node.entries.iter().enumerate() {
                if i == j {
                    continue;
                }
                overlap_delta += grown.intersection_measure(&other.rect)
                    - e.rect.intersection_measure(&other.rect);
            }
            let key = (overlap_delta, e.rect.enlargement(rect), e.rect.measure());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Removes one object identified by its exact MBR and id. Returns
    /// `true` when found.
    pub fn remove(&mut self, rect: &Rect<N>, id: ObjectId) -> bool {
        let mut orphans: Vec<(Entry<N>, u8)> = Vec::new();
        let found = self.remove_desc(self.root, rect, id, &mut orphans);
        if !found {
            debug_assert!(orphans.is_empty());
            return false;
        }
        self.len -= 1;
        // Reinsert orphaned entries at their original levels, deepest
        // (lowest level) first so upper-level orphans see a stable tree.
        orphans.sort_by_key(|&(_, lvl)| std::cmp::Reverse(lvl));
        while let Some((entry, lvl)) = orphans.pop() {
            self.insert_entry_at(entry, lvl);
        }
        self.shrink_root();
        true
    }

    fn remove_desc(
        &mut self,
        node_id: NodeId,
        rect: &Rect<N>,
        id: ObjectId,
        orphans: &mut Vec<(Entry<N>, u8)>,
    ) -> bool {
        if self.node(node_id).is_leaf() {
            let node = self.node_mut(node_id);
            if let Some(pos) = node
                .entries
                .iter()
                .position(|e| e.child == Child::Object(id) && e.rect == *rect)
            {
                node.entries.remove(pos);
                return true;
            }
            return false;
        }
        let candidates: Vec<(usize, NodeId)> = self
            .node(node_id)
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.rect.contains_rect(rect))
            .map(|(i, e)| (i, e.child.node()))
            .collect();
        for (idx, child_id) in candidates {
            if self.remove_desc(child_id, rect, id, orphans) {
                let child = self.node(child_id);
                if child.len() < self.config.min_entries {
                    // Condense: orphan the child's entries, drop the node.
                    let level = child.level;
                    let entries = std::mem::take(&mut self.node_mut(child_id).entries);
                    for e in entries {
                        orphans.push((e, level));
                    }
                    self.node_mut(node_id).entries.remove(idx);
                    self.release(child_id);
                } else if let Some(mbr) = self.node(child_id).mbr() {
                    self.node_mut(node_id).entries[idx].rect = mbr;
                }
                return true;
            }
        }
        false
    }

    fn shrink_root(&mut self) {
        loop {
            let root = self.node(self.root);
            if root.is_leaf() {
                return;
            }
            if root.len() == 1 {
                let child = root.entries[0].child.node();
                let old = self.root;
                self.root = child;
                self.release(old);
            } else if root.is_empty() {
                // All data deleted through condensation: reset to an
                // empty leaf root.
                let old = self.root;
                self.root = self.alloc(Node::new(0));
                self.release(old);
                return;
            } else {
                return;
            }
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// All objects whose MBR intersects the query window, in no
    /// particular order.
    pub fn query_window(&self, window: &Rect<N>) -> Vec<ObjectId> {
        let mut out = Vec::new();
        self.query_scan(window, &mut out, &mut |_| {});
        out
    }

    /// Window query that also reports the number of node accesses per
    /// level (index = crate level, 0 = leaf). Following the paper, the
    /// root is assumed memory-resident: the returned counts *include* the
    /// root visit at index `height-1`, and the cost-model comparison drops
    /// that top slot.
    pub fn query_window_counting(&self, window: &Rect<N>) -> (Vec<ObjectId>, Vec<u64>) {
        let mut out = Vec::new();
        let mut visits = vec![0u64; self.height()];
        self.query_scan(window, &mut out, &mut |level| {
            visits[level as usize] += 1;
        });
        (out, visits)
    }

    /// The query engine behind [`RTree::query_window`] and
    /// [`RTree::query_window_counting`]: an explicit-stack depth-first
    /// descent whose per-node entry matching runs through the batched
    /// [`sjcm_geom::RectBatch`] overlap kernel. Matched children are
    /// pushed in reverse so the stack pops them in entry order — the
    /// visit order (and therefore `out` and `on_visit` order) is exactly
    /// the recursive scalar descent's pre-order (asserted in tests
    /// against `query_desc_scalar`).
    fn query_scan(&self, window: &Rect<N>, out: &mut Vec<ObjectId>, on_visit: &mut impl FnMut(u8)) {
        let mut batch = sjcm_geom::RectBatch::new();
        let mut mask = sjcm_geom::OverlapMask::new();
        let mut matched: Vec<NodeId> = Vec::new();
        let mut stack = vec![self.root];
        while let Some(node_id) = stack.pop() {
            let node = self.node(node_id);
            on_visit(node.level);
            batch.clear();
            batch.extend(node.entries.iter().map(|e| e.rect));
            batch.overlap_mask(window, 0, batch.len(), &mut mask);
            if node.is_leaf() {
                out.extend(mask.iter_set().map(|i| node.entries[i].child.object()));
            } else {
                matched.clear();
                matched.extend(mask.iter_set().map(|i| node.entries[i].child.node()));
                stack.extend(matched.iter().rev());
            }
        }
    }

    /// The scalar recursive descent `query_scan` replaced — kept as the
    /// reference implementation the equivalence tests compare against.
    #[cfg(test)]
    fn query_desc_scalar(
        &self,
        node_id: NodeId,
        window: &Rect<N>,
        out: &mut Vec<ObjectId>,
        on_visit: &mut impl FnMut(u8),
    ) {
        let node = self.node(node_id);
        on_visit(node.level);
        for e in &node.entries {
            if !e.rect.intersects(window) {
                continue;
            }
            match e.child {
                Child::Object(id) => out.push(id),
                Child::Node(child) => self.query_desc_scalar(child, window, out, on_visit),
            }
        }
    }

    /// All `(rect, id)` pairs stored in the tree, by leaf scan.
    pub fn objects(&self) -> Vec<(Rect<N>, ObjectId)> {
        let mut out = Vec::with_capacity(self.len);
        for (_, node) in self.iter_nodes() {
            if node.is_leaf() {
                for e in &node.entries {
                    out.push((e.rect, e.child.object()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_config() -> RTreeConfig {
        RTreeConfig::with_capacity(8)
    }

    fn random_rects(n: usize, seed: u64) -> Vec<(Rect<2>, ObjectId)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let cx: f64 = rng.gen_range(0.0..1.0);
                let cy: f64 = rng.gen_range(0.0..1.0);
                let w: f64 = rng.gen_range(0.001..0.05);
                let h: f64 = rng.gen_range(0.001..0.05);
                (
                    Rect::centered(sjcm_geom::Point::new([cx, cy]), [w, h]),
                    ObjectId(i as u32),
                )
            })
            .collect()
    }

    fn brute_force_query(data: &[(Rect<2>, ObjectId)], q: &Rect<2>) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = data
            .iter()
            .filter(|(r, _)| r.intersects(q))
            .map(|&(_, id)| id)
            .collect();
        v.sort();
        v
    }

    #[test]
    fn empty_tree_basics() {
        let tree = RTree::<2>::new(small_config());
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.mbr(), None);
        assert!(tree.query_window(&Rect::unit()).is_empty());
    }

    #[test]
    fn batched_query_scan_is_byte_identical_to_scalar_descent() {
        let data = random_rects(800, 42);
        let mut tree = RTree::<2>::new(small_config());
        for &(r, id) in &data {
            tree.insert(r, id);
        }
        assert!(tree.height() >= 3, "want a multi-level tree");
        let mut rng = StdRng::seed_from_u64(4242);
        for _ in 0..40 {
            let cx: f64 = rng.gen_range(0.0..1.0);
            let cy: f64 = rng.gen_range(0.0..1.0);
            let q = Rect::centered(sjcm_geom::Point::new([cx, cy]), [0.25, 0.2]);
            // Same hits in the same order, same visit sequence — the
            // batched scan is the scalar pre-order descent, vectorized.
            let mut scalar = Vec::new();
            let mut scalar_levels = Vec::new();
            tree.query_desc_scalar(tree.root, &q, &mut scalar, &mut |l| scalar_levels.push(l));
            let mut batched = Vec::new();
            let mut batched_levels = Vec::new();
            tree.query_scan(&q, &mut batched, &mut |l| batched_levels.push(l));
            assert_eq!(batched, scalar);
            assert_eq!(batched_levels, scalar_levels);
        }
    }

    #[test]
    fn insert_and_query_single() {
        let mut tree = RTree::<2>::new(small_config());
        let r = Rect::new([0.2, 0.2], [0.3, 0.3]).unwrap();
        tree.insert(r, ObjectId(7));
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.query_window(&Rect::unit()), vec![ObjectId(7)]);
        assert!(tree
            .query_window(&Rect::new([0.5, 0.5], [0.6, 0.6]).unwrap())
            .is_empty());
    }

    #[test]
    fn tree_grows_in_height() {
        let mut tree = RTree::<2>::new(small_config());
        for (r, id) in random_rects(200, 1) {
            tree.insert(r, id);
        }
        assert!(tree.height() >= 2, "200 objects with M=8 must split");
        assert_eq!(tree.len(), 200);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn query_matches_brute_force_rstar() {
        let data = random_rects(500, 2);
        let mut tree = RTree::<2>::new(small_config());
        for &(r, id) in &data {
            tree.insert(r, id);
        }
        tree.check_invariants().unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let cx: f64 = rng.gen_range(0.0..1.0);
            let cy: f64 = rng.gen_range(0.0..1.0);
            let q = Rect::centered(sjcm_geom::Point::new([cx, cy]), [0.2, 0.15]);
            let mut got = tree.query_window(&q);
            got.sort();
            assert_eq!(got, brute_force_query(&data, &q));
        }
    }

    #[test]
    fn query_matches_brute_force_quadratic() {
        let data = random_rects(300, 3);
        let mut tree = RTree::<2>::new(small_config().with_split(SplitStrategy::Quadratic));
        for &(r, id) in &data {
            tree.insert(r, id);
        }
        tree.check_invariants().unwrap();
        let q = Rect::new([0.25, 0.25], [0.75, 0.5]).unwrap();
        let mut got = tree.query_window(&q);
        got.sort();
        assert_eq!(got, brute_force_query(&data, &q));
    }

    #[test]
    fn counting_query_counts_root() {
        let mut tree = RTree::<2>::new(small_config());
        for (r, id) in random_rects(100, 4) {
            tree.insert(r, id);
        }
        let (_, visits) = tree.query_window_counting(&Rect::unit());
        // Whole-space query visits every node once.
        assert_eq!(visits.iter().sum::<u64>() as usize, tree.node_count());
        assert_eq!(visits[tree.height() - 1], 1, "root visited exactly once");
    }

    #[test]
    fn remove_existing_object() {
        let data = random_rects(300, 5);
        let mut tree = RTree::<2>::new(small_config());
        for &(r, id) in &data {
            tree.insert(r, id);
        }
        let (victim_rect, victim_id) = data[137];
        assert!(tree.remove(&victim_rect, victim_id));
        assert_eq!(tree.len(), 299);
        tree.check_invariants().unwrap();
        let hits = tree.query_window(&victim_rect);
        assert!(!hits.contains(&victim_id));
        // Everything else still findable.
        let mut got = tree.query_window(&Rect::unit());
        got.sort();
        assert_eq!(got.len(), 299);
    }

    #[test]
    fn remove_missing_object_returns_false() {
        let mut tree = RTree::<2>::new(small_config());
        let r = Rect::new([0.1, 0.1], [0.2, 0.2]).unwrap();
        tree.insert(r, ObjectId(1));
        assert!(!tree.remove(&r, ObjectId(2)));
        let other = Rect::new([0.1, 0.1], [0.21, 0.2]).unwrap();
        assert!(!tree.remove(&other, ObjectId(1)), "rect must match exactly");
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn remove_all_objects_empties_tree() {
        let data = random_rects(150, 6);
        let mut tree = RTree::<2>::new(small_config());
        for &(r, id) in &data {
            tree.insert(r, id);
        }
        for &(r, id) in &data {
            assert!(tree.remove(&r, id), "failed to remove {id:?}");
            tree.check_invariants().unwrap();
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        assert!(tree.query_window(&Rect::unit()).is_empty());
    }

    #[test]
    fn interleaved_insert_delete_keeps_invariants() {
        let mut tree = RTree::<2>::new(small_config());
        let mut live: Vec<(Rect<2>, ObjectId)> = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut next_id = 0u32;
        for step in 0..600 {
            if live.is_empty() || rng.gen_bool(0.6) {
                let cx: f64 = rng.gen_range(0.0..1.0);
                let cy: f64 = rng.gen_range(0.0..1.0);
                let r = Rect::centered(sjcm_geom::Point::new([cx, cy]), [0.03, 0.03]);
                tree.insert(r, ObjectId(next_id));
                live.push((r, ObjectId(next_id)));
                next_id += 1;
            } else {
                let k = rng.gen_range(0..live.len());
                let (r, id) = live.swap_remove(k);
                assert!(tree.remove(&r, id));
            }
            if step % 50 == 0 {
                tree.check_invariants().unwrap();
            }
        }
        tree.check_invariants().unwrap();
        assert_eq!(tree.len(), live.len());
        let mut got = tree.query_window(&Rect::unit());
        got.sort();
        let mut want: Vec<ObjectId> = live.iter().map(|&(_, id)| id).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn duplicate_rects_are_supported() {
        let mut tree = RTree::<2>::new(small_config());
        let r = Rect::new([0.4, 0.4], [0.5, 0.5]).unwrap();
        for i in 0..50 {
            tree.insert(r, ObjectId(i));
        }
        assert_eq!(tree.query_window(&r).len(), 50);
        assert!(tree.remove(&r, ObjectId(25)));
        assert_eq!(tree.query_window(&r).len(), 49);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn one_dimensional_tree() {
        let mut tree = RTree::<1>::new(small_config());
        for i in 0..100 {
            let lo = i as f64 / 100.0;
            tree.insert(Rect::new([lo], [lo + 0.005]).unwrap(), ObjectId(i));
        }
        tree.check_invariants().unwrap();
        let hits = tree.query_window(&Rect::new([0.25], [0.35]).unwrap());
        // Intervals starting in [0.245, 0.35]: i = 25..=35 (i=24 ends at
        // 0.245 < 0.25; i=25 starts 0.25).
        assert!(hits.len() >= 10 && hits.len() <= 12, "{}", hits.len());
    }

    #[test]
    fn paper_config_fill_factor_near_67_percent() {
        // The paper sets c = 67% as the typical average node capacity;
        // an insertion-built R*-tree should land in that neighbourhood.
        let data = random_rects(5000, 11);
        let mut tree = RTree::<2>::new(RTreeConfig::paper(2));
        for &(r, id) in &data {
            tree.insert(r, id);
        }
        tree.check_invariants().unwrap();
        let total_entries: usize = tree.iter_nodes().map(|(_, n)| n.len()).sum();
        let capacity = tree.node_count() * tree.config().max_entries;
        let fill = total_entries as f64 / capacity as f64;
        assert!(
            (0.55..0.95).contains(&fill),
            "average fill {fill:.2} far from the paper's c = 0.67"
        );
    }

    #[test]
    fn objects_returns_all_pairs() {
        let data = random_rects(80, 12);
        let mut tree = RTree::<2>::new(small_config());
        for &(r, id) in &data {
            tree.insert(r, id);
        }
        let mut got = tree.objects();
        got.sort_by_key(|&(_, id)| id);
        let mut want = data.clone();
        want.sort_by_key(|&(_, id)| id);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.1, w.1);
            assert_eq!(g.0, w.0);
        }
    }
}
