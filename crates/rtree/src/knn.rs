//! k-nearest-neighbour search.
//!
//! Not part of the paper's evaluation, but a capability any adopter of
//! an R-tree library expects, and the natural companion of the distance
//! join: best-first (MINDIST-ordered) traversal after Hjaltason &
//! Samet's incremental nearest-neighbour algorithm. Distances are
//! point-to-MBR minimum Euclidean distances.

use crate::node::{Child, NodeId, ObjectId};
use crate::tree::RTree;
use sjcm_geom::{Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One kNN result: the object, its MBR and the squared distance from
/// the query point to that MBR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor<const N: usize> {
    /// The stored object.
    pub id: ObjectId,
    /// Its bounding rectangle.
    pub rect: Rect<N>,
    /// Squared minimum distance from the query point to `rect`.
    pub dist2: f64,
}

/// Min-heap entry: either a node to expand or an object candidate.
enum HeapItem<const N: usize> {
    Node(NodeId, f64),
    Object(ObjectId, Rect<N>, f64),
}

impl<const N: usize> HeapItem<N> {
    fn dist2(&self) -> f64 {
        match self {
            HeapItem::Node(_, d) | HeapItem::Object(_, _, d) => *d,
        }
    }
}

impl<const N: usize> PartialEq for HeapItem<N> {
    fn eq(&self, other: &Self) -> bool {
        self.dist2() == other.dist2()
    }
}

impl<const N: usize> Eq for HeapItem<N> {}

impl<const N: usize> PartialOrd for HeapItem<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const N: usize> Ord for HeapItem<N> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the closest first.
        other
            .dist2()
            .total_cmp(&self.dist2())
            // Tie-break objects before nodes so equal-distance answers
            // pop without needless expansion.
            .then_with(|| {
                let rank = |i: &HeapItem<N>| match i {
                    HeapItem::Object(..) => 0,
                    HeapItem::Node(..) => 1,
                };
                rank(other).cmp(&rank(self))
            })
    }
}

fn min_dist2_point<const N: usize>(p: &Point<N>, r: &Rect<N>) -> f64 {
    let mut acc = 0.0;
    for k in 0..N {
        let c = p[k];
        let gap = if c < r.lo_k(k) {
            r.lo_k(k) - c
        } else if c > r.hi_k(k) {
            c - r.hi_k(k)
        } else {
            0.0
        };
        acc += gap * gap;
    }
    acc
}

impl<const N: usize> RTree<N> {
    /// The `k` stored objects whose MBRs are nearest to `query`
    /// (Euclidean, MBR minimum distance), closest first. Returns fewer
    /// than `k` when the tree is smaller.
    pub fn nearest_neighbors(&self, query: &Point<N>, k: usize) -> Vec<Neighbor<N>> {
        let mut out = Vec::with_capacity(k.min(self.len()));
        if k == 0 || self.is_empty() {
            return out;
        }
        let mut heap: BinaryHeap<HeapItem<N>> = BinaryHeap::new();
        heap.push(HeapItem::Node(self.root_id(), 0.0));
        while let Some(item) = heap.pop() {
            match item {
                HeapItem::Object(id, rect, dist2) => {
                    out.push(Neighbor { id, rect, dist2 });
                    if out.len() == k {
                        break;
                    }
                }
                HeapItem::Node(node_id, _) => {
                    let node = self.node(node_id);
                    for e in &node.entries {
                        let d = min_dist2_point(query, &e.rect);
                        match e.child {
                            Child::Object(id) => {
                                heap.push(HeapItem::Object(id, e.rect, d));
                            }
                            Child::Node(child) => heap.push(HeapItem::Node(child, d)),
                        }
                    }
                }
            }
        }
        out
    }

    /// All objects within Euclidean distance `radius` of `query`,
    /// closest first.
    pub fn within_radius(&self, query: &Point<N>, radius: f64) -> Vec<Neighbor<N>> {
        assert!(radius >= 0.0, "radius must be non-negative");
        let r2 = radius * radius;
        let mut out = Vec::new();
        let mut heap: BinaryHeap<HeapItem<N>> = BinaryHeap::new();
        heap.push(HeapItem::Node(self.root_id(), 0.0));
        while let Some(item) = heap.pop() {
            if item.dist2() > r2 {
                break; // everything left is farther
            }
            match item {
                HeapItem::Object(id, rect, dist2) => out.push(Neighbor { id, rect, dist2 }),
                HeapItem::Node(node_id, _) => {
                    let node = self.node(node_id);
                    for e in &node.entries {
                        let d = min_dist2_point(query, &e.rect);
                        if d > r2 {
                            continue;
                        }
                        match e.child {
                            Child::Object(id) => {
                                heap.push(HeapItem::Object(id, e.rect, d));
                            }
                            Child::Node(child) => heap.push(HeapItem::Node(child, d)),
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_tree(n: usize, seed: u64) -> (RTree<2>, Vec<(Rect<2>, ObjectId)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = RTree::new(RTreeConfig::with_capacity(8));
        let mut items = Vec::new();
        for i in 0..n {
            let c = Point::new([rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
            let r = Rect::centered(c, [0.01, 0.01]);
            tree.insert(r, ObjectId(i as u32));
            items.push((r, ObjectId(i as u32)));
        }
        (tree, items)
    }

    fn brute_knn(items: &[(Rect<2>, ObjectId)], q: &Point<2>, k: usize) -> Vec<(f64, ObjectId)> {
        let mut v: Vec<(f64, ObjectId)> = items
            .iter()
            .map(|&(r, id)| (min_dist2_point(q, &r), id))
            .collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        v.truncate(k);
        v
    }

    #[test]
    fn knn_matches_brute_force() {
        let (tree, items) = sample_tree(500, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let q = Point::new([rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
            let got = tree.nearest_neighbors(&q, 10);
            let want = brute_knn(&items, &q, 10);
            assert_eq!(got.len(), 10);
            for (g, w) in got.iter().zip(&want) {
                // Distances must agree exactly; ids may differ on ties.
                assert!(
                    (g.dist2 - w.0).abs() < 1e-12,
                    "distance mismatch {} vs {}",
                    g.dist2,
                    w.0
                );
            }
            // Closest first.
            for pair in got.windows(2) {
                assert!(pair[0].dist2 <= pair[1].dist2);
            }
        }
    }

    #[test]
    fn knn_k_larger_than_tree() {
        let (tree, _) = sample_tree(5, 3);
        let q = Point::new([0.5, 0.5]);
        assert_eq!(tree.nearest_neighbors(&q, 100).len(), 5);
        assert!(tree.nearest_neighbors(&q, 0).is_empty());
    }

    #[test]
    fn knn_on_empty_tree() {
        let tree = RTree::<2>::new(RTreeConfig::with_capacity(8));
        assert!(tree
            .nearest_neighbors(&Point::new([0.5, 0.5]), 3)
            .is_empty());
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let (tree, items) = sample_tree(500, 4);
        let q = Point::new([0.3, 0.7]);
        for radius in [0.0, 0.05, 0.2] {
            let got = tree.within_radius(&q, radius);
            let want: Vec<ObjectId> = items
                .iter()
                .filter(|&&(r, _)| min_dist2_point(&q, &r) <= radius * radius)
                .map(|&(_, id)| id)
                .collect();
            assert_eq!(got.len(), want.len(), "radius {radius}");
            let mut ids: Vec<ObjectId> = got.iter().map(|n| n.id).collect();
            ids.sort();
            let mut want = want;
            want.sort();
            assert_eq!(ids, want);
            for pair in got.windows(2) {
                assert!(pair[0].dist2 <= pair[1].dist2);
            }
        }
    }

    #[test]
    fn point_inside_an_object_has_distance_zero() {
        let mut tree = RTree::<2>::new(RTreeConfig::with_capacity(8));
        let r = Rect::new([0.4, 0.4], [0.6, 0.6]).unwrap();
        tree.insert(r, ObjectId(9));
        let nn = tree.nearest_neighbors(&Point::new([0.5, 0.5]), 1);
        assert_eq!(nn[0].id, ObjectId(9));
        assert_eq!(nn[0].dist2, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_radius_rejected() {
        let (tree, _) = sample_tree(10, 5);
        tree.within_radius(&Point::new([0.5, 0.5]), -1.0);
    }
}
