//! Node split algorithms.
//!
//! Both splitters take the `M + 1` entries of an overflowing node and
//! partition them into two groups, each holding at least `m` entries:
//!
//! * [`quadratic_split`] — Guttman's original heuristic (SIGMOD 1984):
//!   seed the groups with the pair wasting the most area, then greedily
//!   assign the entry whose group preference is strongest.
//! * [`rstar_split`] — the R\*-tree topological split (SIGMOD 1990):
//!   choose the split *axis* by the minimum sum of group margins over all
//!   candidate distributions, then the *distribution* on that axis by
//!   minimum group overlap (ties: minimum combined area).

use crate::node::Entry;
use sjcm_geom::{mbr_of, Rect};

/// Result of a split: the two entry groups. Order is not meaningful.
pub type SplitResult<const N: usize> = (Vec<Entry<N>>, Vec<Entry<N>>);

fn group_mbr<const N: usize>(entries: &[Entry<N>]) -> Rect<N> {
    mbr_of(entries.iter().map(|e| e.rect)).expect("split groups are never empty")
}

/// Guttman's quadratic split.
///
/// Panics when `entries.len() < 2` or when `min_entries` makes a legal
/// split impossible — both are internal invariant violations, not user
/// errors, so they are defended with assertions rather than `Result`.
pub fn quadratic_split<const N: usize>(
    mut entries: Vec<Entry<N>>,
    min_entries: usize,
) -> SplitResult<N> {
    let total = entries.len();
    assert!(total >= 2, "cannot split {total} entries");
    assert!(
        2 * min_entries <= total,
        "min fill {min_entries} impossible for {total} entries"
    );

    // PickSeeds: the pair (i, j) maximizing the dead space of their union.
    let (mut seed_a, mut seed_b, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..total {
        for j in (i + 1)..total {
            let d = entries[i].rect.union(&entries[j].rect).measure()
                - entries[i].rect.measure()
                - entries[j].rect.measure();
            if d > worst {
                worst = d;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    // Remove the higher index first so the lower one stays valid.
    let eb = entries.swap_remove(seed_b);
    let ea = entries.swap_remove(seed_a);
    let mut group_a = vec![ea];
    let mut group_b = vec![eb];
    let mut mbr_a = group_a[0].rect;
    let mut mbr_b = group_b[0].rect;

    while !entries.is_empty() {
        // Force-assign when one group must take everything left to
        // reach the minimum fill.
        let remaining = entries.len();
        if group_a.len() + remaining == min_entries {
            for e in entries.drain(..) {
                mbr_a.expand_to(&e.rect);
                group_a.push(e);
            }
            break;
        }
        if group_b.len() + remaining == min_entries {
            for e in entries.drain(..) {
                mbr_b.expand_to(&e.rect);
                group_b.push(e);
            }
            break;
        }
        // PickNext: the entry with the greatest difference of enlargement
        // between the two groups.
        let (mut pick, mut best_diff) = (0usize, f64::NEG_INFINITY);
        for (i, e) in entries.iter().enumerate() {
            let d_a = mbr_a.enlargement(&e.rect);
            let d_b = mbr_b.enlargement(&e.rect);
            let diff = (d_a - d_b).abs();
            if diff > best_diff {
                best_diff = diff;
                pick = i;
            }
        }
        let e = entries.swap_remove(pick);
        let d_a = mbr_a.enlargement(&e.rect);
        let d_b = mbr_b.enlargement(&e.rect);
        // Prefer smaller enlargement; tie-break on area, then count.
        let to_a = match d_a.partial_cmp(&d_b).expect("finite enlargements") {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                if mbr_a.measure() != mbr_b.measure() {
                    mbr_a.measure() < mbr_b.measure()
                } else {
                    group_a.len() <= group_b.len()
                }
            }
        };
        if to_a {
            mbr_a.expand_to(&e.rect);
            group_a.push(e);
        } else {
            mbr_b.expand_to(&e.rect);
            group_b.push(e);
        }
    }
    (group_a, group_b)
}

/// The R\*-tree topological split.
///
/// For every axis `k`, the entries are sorted once by lower and once by
/// upper rectangle value; each sort induces `M − 2m + 2` candidate
/// distributions (first `m + i` entries vs the rest). The axis with the
/// minimum *margin sum* over its candidates is chosen, then the candidate
/// with minimum group overlap (ties: minimum combined area).
pub fn rstar_split<const N: usize>(entries: Vec<Entry<N>>, min_entries: usize) -> SplitResult<N> {
    let total = entries.len();
    assert!(total >= 2, "cannot split {total} entries");
    assert!(
        2 * min_entries <= total,
        "min fill {min_entries} impossible for {total} entries"
    );
    let m = min_entries.max(1);

    // ChooseSplitAxis: minimize the total margin over all distributions
    // of both sorts of each axis.
    let mut best_axis = 0usize;
    let mut best_axis_margin = f64::INFINITY;
    let mut sorted_per_axis: Vec<[Vec<Entry<N>>; 2]> = Vec::with_capacity(N);
    for k in 0..N {
        let mut by_lower = entries.clone();
        by_lower.sort_by(|a, b| {
            a.rect
                .lo_k(k)
                .total_cmp(&b.rect.lo_k(k))
                .then(a.rect.hi_k(k).total_cmp(&b.rect.hi_k(k)))
        });
        let mut by_upper = entries.clone();
        by_upper.sort_by(|a, b| {
            a.rect
                .hi_k(k)
                .total_cmp(&b.rect.hi_k(k))
                .then(a.rect.lo_k(k).total_cmp(&b.rect.lo_k(k)))
        });
        let mut margin_sum = 0.0;
        for sorted in [&by_lower, &by_upper] {
            for split_at in m..=(total - m) {
                let (g1, g2) = sorted.split_at(split_at);
                margin_sum += group_mbr(g1).margin() + group_mbr(g2).margin();
            }
        }
        if margin_sum < best_axis_margin {
            best_axis_margin = margin_sum;
            best_axis = k;
        }
        sorted_per_axis.push([by_lower, by_upper]);
    }

    // ChooseSplitIndex on the winning axis.
    let mut best: Option<(usize, usize, f64, f64)> = None; // (sort, split, overlap, area)
    for (sort_idx, sorted) in sorted_per_axis[best_axis].iter().enumerate() {
        for split_at in m..=(total - m) {
            let (g1, g2) = sorted.split_at(split_at);
            let r1 = group_mbr(g1);
            let r2 = group_mbr(g2);
            let overlap = r1.intersection_measure(&r2);
            let area = r1.measure() + r2.measure();
            let better = match best {
                None => true,
                Some((_, _, o, a)) => overlap < o || (overlap == o && area < a),
            };
            if better {
                best = Some((sort_idx, split_at, overlap, area));
            }
        }
    }
    let (sort_idx, split_at, _, _) = best.expect("at least one distribution exists");
    let sorted = &sorted_per_axis[best_axis][sort_idx];
    let g1 = sorted[..split_at].to_vec();
    let g2 = sorted[split_at..].to_vec();
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ObjectId;

    fn entry(lo: [f64; 2], hi: [f64; 2], id: u32) -> Entry<2> {
        Entry::leaf(Rect::new(lo, hi).unwrap(), ObjectId(id))
    }

    fn two_clusters() -> Vec<Entry<2>> {
        // Five entries near the origin, five near (1,1).
        let mut v = Vec::new();
        for i in 0..5 {
            let o = i as f64 * 0.02;
            v.push(entry([o, o], [o + 0.05, o + 0.05], i));
            v.push(entry([0.9 - o, 0.9 - o], [0.95 - o, 0.95 - o], 100 + i));
        }
        v
    }

    fn assert_split_separates_clusters(g1: &[Entry<2>], g2: &[Entry<2>]) {
        let ids = |g: &[Entry<2>]| {
            let mut low = 0;
            let mut high = 0;
            for e in g {
                match e.child {
                    crate::node::Child::Object(ObjectId(id)) if id < 100 => low += 1,
                    _ => high += 1,
                }
            }
            (low, high)
        };
        let (l1, h1) = ids(g1);
        let (l2, h2) = ids(g2);
        // One group should be all-low, the other all-high.
        assert!(
            (l1 == 5 && h1 == 0 && l2 == 0 && h2 == 5)
                || (l1 == 0 && h1 == 5 && l2 == 5 && h2 == 0),
            "clusters mixed: ({l1},{h1}) / ({l2},{h2})"
        );
    }

    #[test]
    fn quadratic_separates_obvious_clusters() {
        let (g1, g2) = quadratic_split(two_clusters(), 2);
        assert_eq!(g1.len() + g2.len(), 10);
        assert!(g1.len() >= 2 && g2.len() >= 2);
        assert_split_separates_clusters(&g1, &g2);
    }

    #[test]
    fn rstar_separates_obvious_clusters() {
        let (g1, g2) = rstar_split(two_clusters(), 2);
        assert_eq!(g1.len() + g2.len(), 10);
        assert!(g1.len() >= 2 && g2.len() >= 2);
        assert_split_separates_clusters(&g1, &g2);
    }

    #[test]
    fn rstar_groups_do_not_overlap_on_separable_input() {
        let (g1, g2) = rstar_split(two_clusters(), 2);
        let r1 = group_mbr(&g1);
        let r2 = group_mbr(&g2);
        assert_eq!(r1.intersection_measure(&r2), 0.0);
    }

    #[test]
    fn quadratic_respects_min_fill_under_adversarial_seeds() {
        // One far outlier forces the force-assignment path.
        let mut v = vec![entry([0.9, 0.9], [1.0, 1.0], 99)];
        for i in 0..7 {
            let o = i as f64 * 0.001;
            v.push(entry([o, o], [o + 0.001, o + 0.001], i));
        }
        let (g1, g2) = quadratic_split(v, 3);
        assert!(g1.len() >= 3, "group sizes {} / {}", g1.len(), g2.len());
        assert!(g2.len() >= 3);
    }

    #[test]
    fn rstar_respects_min_fill() {
        let mut v = vec![entry([0.9, 0.9], [1.0, 1.0], 99)];
        for i in 0..7 {
            let o = i as f64 * 0.001;
            v.push(entry([o, o], [o + 0.001, o + 0.001], i));
        }
        let (g1, g2) = rstar_split(v, 3);
        assert!(g1.len() >= 3 && g2.len() >= 3);
    }

    #[test]
    fn splits_preserve_entry_multiset() {
        let input = two_clusters();
        for split in [quadratic_split::<2>, rstar_split::<2>] {
            let (g1, g2) = split(input.clone(), 2);
            let mut got: Vec<u32> = g1
                .iter()
                .chain(&g2)
                .map(|e| match e.child {
                    crate::node::Child::Object(ObjectId(id)) => id,
                    _ => unreachable!(),
                })
                .collect();
            got.sort_unstable();
            let mut want: Vec<u32> = (0..5).chain(100..105).collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn split_of_single_entry_panics() {
        quadratic_split::<2>(vec![entry([0.0, 0.0], [0.1, 0.1], 1)], 1);
    }

    #[test]
    fn split_identical_rects_is_balanced_enough() {
        // Degenerate input: all rectangles identical. Both algorithms
        // must still produce two legal groups.
        let v: Vec<Entry<2>> = (0..9).map(|i| entry([0.4, 0.4], [0.6, 0.6], i)).collect();
        let (q1, q2) = quadratic_split(v.clone(), 3);
        assert!(q1.len() >= 3 && q2.len() >= 3);
        let (r1, r2) = rstar_split(v, 3);
        assert!(r1.len() >= 3 && r2.len() >= 3);
    }

    #[test]
    fn one_dimensional_split() {
        let v: Vec<Entry<1>> = (0..8)
            .map(|i| {
                let o = i as f64 / 10.0;
                Entry::leaf(Rect::new([o], [o + 0.05]).unwrap(), ObjectId(i))
            })
            .collect();
        let (g1, g2) = rstar_split(v, 2);
        assert_eq!(g1.len() + g2.len(), 8);
        // 1-D split should cut the sorted order: groups must not
        // interleave.
        let max1 = g1.iter().map(|e| e.rect.lo_k(0)).fold(f64::MIN, f64::max);
        let min2 = g2.iter().map(|e| e.rect.lo_k(0)).fold(f64::MAX, f64::min);
        let max2 = g2.iter().map(|e| e.rect.lo_k(0)).fold(f64::MIN, f64::max);
        let min1 = g1.iter().map(|e| e.rect.lo_k(0)).fold(f64::MAX, f64::min);
        assert!(max1 <= min2 || max2 <= min1);
    }
}
