//! A miniature cost-based spatial query optimizer driven by the ICDE'98
//! join cost models.
//!
//! The paper motivates its formulas with exactly this use: *"useful
//! tools for SDBMS query processors and optimizers, especially when
//! complex queries (e.g. nested joins) are involved"*, and its
//! introduction walks through a query — rivers crossing countries west
//! of a meridian — that admits several execution strategies whose costs
//! only a model can compare without running them.
//!
//! This crate closes that loop:
//!
//! * [`catalog`] — per-dataset statistics (the model's primitive
//!   properties `N` and `D`, plus an optional density surface for
//!   non-uniform data);
//! * [`plan`] — logical query shapes (selections over base data sets,
//!   chains of spatial joins) and physical plans (which index plays the
//!   R1/R2 role, which join algorithm runs, estimated cost and
//!   cardinality per operator);
//! * [`cost`] — the estimator: range costs from Eq 1, synchronized-
//!   traversal join costs from Eqs 10/12, selectivities from the §5
//!   extension;
//! * [`planner`] — exhaustive enumeration over join order, role
//!   assignment and selection placement, returning the cheapest plan
//!   with an `EXPLAIN`-style rendering.
//!
//! ```
//! use sjcm_optimizer::{Catalog, DatasetStats, JoinQuery, Planner};
//! use sjcm_geom::Rect;
//!
//! let mut catalog = Catalog::<2>::new();
//! catalog.register("countries", DatasetStats::new(20_000, 0.4));
//! catalog.register("rivers", DatasetStats::new(60_000, 0.2));
//!
//! let query = JoinQuery::new(["rivers", "countries"]) // overlap join
//!     .with_selection("rivers", Rect::new([0.0, 0.0], [0.45, 1.0]).unwrap());
//!
//! let plan = Planner::new(&catalog).best_plan(&query).unwrap();
//! println!("{plan}"); // EXPLAIN-style tree with per-operator costs
//! assert!(plan.total_cost > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod cost;
pub mod plan;
pub mod planner;

pub use catalog::{Catalog, CatalogError, DatasetStats};
pub use cost::{CostError, CostEstimator};
pub use plan::{Estimate, JoinAlgorithm, JoinQuery, PhysicalPlan, PlanNode};
pub use planner::{Planner, PlannerError};
