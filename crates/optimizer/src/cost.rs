//! The cost estimator: maps every physical operator to the paper's
//! formulas.
//!
//! | operator | cost source |
//! |----------|-------------|
//! | `IndexRangeSelect` | Eq 1 (range-query NA over the base index) |
//! | `Join[SJ]` | Eq 10/12 (path-buffer DA, role-sensitive) |
//! | `Join[INL]` | one Eq 1 probe per outer object |
//! | `Join[NL]` | block nested loop over materialized pages |
//! | cardinalities | §5 selectivity extension |

use crate::catalog::Catalog;
use crate::plan::{Estimate, JoinAlgorithm, PlanNode};
use sjcm_core::selectivity::join_selectivity;
use sjcm_core::{join, range, DataProfile, ModelConfig, SpatialOperator, TreeParams};
use std::collections::BTreeMap;

/// Estimation errors (unknown data sets are caught by the planner; this
/// covers programmatic misuse of raw plan nodes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostError {
    /// A plan node referenced a data set missing from the catalog.
    UnknownDataset(String),
    /// An SJ join was requested over an unindexed input.
    UnindexedSjInput,
}

impl std::fmt::Display for CostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostError::UnknownDataset(d) => write!(f, "unknown dataset {d}"),
            CostError::UnindexedSjInput => {
                write!(f, "synchronized traversal requires indexes on both inputs")
            }
        }
    }
}

impl std::error::Error for CostError {}

/// The estimator, parameterized by the model configuration.
pub struct CostEstimator<'a, const N: usize> {
    catalog: &'a Catalog<N>,
    config: ModelConfig,
    /// Post-hoc measured tree parameters per base data set (from
    /// `RTree::stats`), used instead of the Eq 2–5 analytical derivation
    /// when present. EXPLAIN ANALYZE uses this to separate catalog error
    /// from residual model error.
    params_override: BTreeMap<String, TreeParams<N>>,
}

impl<'a, const N: usize> CostEstimator<'a, N> {
    /// Creates an estimator over a catalog with the paper's model
    /// configuration for this dimensionality.
    pub fn new(catalog: &'a Catalog<N>) -> Self {
        Self {
            catalog,
            config: ModelConfig::paper(N),
            params_override: BTreeMap::new(),
        }
    }

    /// Overrides the model configuration.
    pub fn with_config(mut self, config: ModelConfig) -> Self {
        self.config = config;
        self
    }

    /// Supplies measured per-level tree parameters for base indexes.
    /// Data sets present in the map are priced from their actual tree
    /// shape (heights, node counts, extents) rather than Eqs 2–5.
    pub fn with_measured_params(mut self, params: BTreeMap<String, TreeParams<N>>) -> Self {
        self.params_override = params;
        self
    }

    fn profile_params(&self, profile: DataProfile) -> TreeParams<N> {
        TreeParams::from_data(profile, &self.config)
    }

    /// Tree parameters for the base index of `dataset`: the measured
    /// override when supplied, the analytical derivation otherwise.
    fn base_params(&self, dataset: &str, profile: DataProfile) -> TreeParams<N> {
        self.params_override
            .get(dataset)
            .cloned()
            .unwrap_or_else(|| self.profile_params(profile))
    }

    /// The base index behind an SJ input: a bare scan, or a window
    /// selection whose residual filter rides on top of the full-tree
    /// traversal. Returns the data set name and its catalog profile.
    fn sj_base<'n>(&self, node: &'n PlanNode<N>) -> Option<(&'n str, DataProfile)> {
        let dataset = match node {
            PlanNode::IndexScan { dataset } => dataset,
            PlanNode::IndexRangeSelect { dataset, .. } => dataset,
            _ => return None,
        };
        self.catalog
            .get(dataset)
            .filter(|s| s.indexed)
            .map(|s| (dataset.as_str(), s.profile))
    }

    fn estimate_profile(est: &Estimate) -> DataProfile {
        DataProfile::new(
            est.cardinality.round().max(0.0) as u64,
            est.density.max(0.0),
        )
    }

    /// Pages needed to materialize `cardinality` objects at the model's
    /// average node capacity (used by the NL baseline cost).
    fn pages(&self, cardinality: f64) -> f64 {
        (cardinality / self.config.fanout()).ceil().max(1.0)
    }

    /// Recursively estimates a plan node: output cardinality, density,
    /// whether indexed, and the cumulative I/O cost of the subtree.
    pub fn estimate(&self, node: &PlanNode<N>) -> Result<Estimate, CostError> {
        match node {
            PlanNode::IndexScan { dataset } => {
                let stats = self
                    .catalog
                    .get(dataset)
                    .ok_or_else(|| CostError::UnknownDataset(dataset.clone()))?;
                Ok(Estimate {
                    cardinality: stats.profile.cardinality as f64,
                    density: stats.profile.density,
                    cost: 0.0,
                    own_cost: 0.0,
                    indexed: stats.indexed,
                })
            }
            PlanNode::IndexRangeSelect { dataset, window } => {
                let stats = self
                    .catalog
                    .get(dataset)
                    .ok_or_else(|| CostError::UnknownDataset(dataset.clone()))?;
                let params = self.base_params(dataset, stats.profile);
                let q = window.extents();
                let cost = range::range_query_cost(&params, &q);
                let card = SpatialOperator::Overlap.selectivity(
                    stats.profile.cardinality,
                    stats.profile.density,
                    &q,
                );
                Ok(Estimate {
                    cardinality: card,
                    density: card * stats.profile.avg_measure(),
                    cost,
                    own_cost: cost,
                    indexed: false,
                })
            }
            PlanNode::Filter {
                input,
                dataset: _,
                window,
            } => {
                let inner = self.estimate(input)?;
                let profile = Self::estimate_profile(&inner);
                let q = window.extents();
                let fraction = if profile.cardinality == 0 {
                    0.0
                } else {
                    SpatialOperator::Overlap.selectivity(profile.cardinality, profile.density, &q)
                        / profile.cardinality as f64
                };
                Ok(Estimate {
                    cardinality: inner.cardinality * fraction,
                    density: inner.density * fraction,
                    cost: inner.cost,
                    own_cost: 0.0,
                    indexed: false,
                })
            }
            PlanNode::Join {
                data,
                query,
                algorithm,
            } => self.estimate_join(data, query, *algorithm),
        }
    }

    fn estimate_join(
        &self,
        data: &PlanNode<N>,
        query: &PlanNode<N>,
        algorithm: JoinAlgorithm,
    ) -> Result<Estimate, CostError> {
        let d = self.estimate(data)?;
        let q = self.estimate(query)?;
        let d_prof = Self::estimate_profile(&d);
        let q_prof = Self::estimate_profile(&q);
        let pairs = join_selectivity::<N>(d_prof, q_prof);
        // An output pair's MBR is roughly the union of the two inputs'
        // MBRs; its measure is bounded by the sum of measures plus the
        // gap, approximated here by the sum.
        let out_density = pairs * (d_prof.avg_measure() + q_prof.avg_measure());
        let own_cost = match algorithm {
            JoinAlgorithm::SynchronizedTraversal => {
                // SJ traverses the *base* trees even when a window
                // selection was pushed below it (the residual filter is
                // free); the selection's Eq 1 probe cost already sits in
                // the child estimate, so the traversal is priced on the
                // full-index profiles.
                let (Some((d_name, d_base)), Some((q_name, q_base))) =
                    (self.sj_base(data), self.sj_base(query))
                else {
                    return Err(CostError::UnindexedSjInput);
                };
                let pd = self.base_params(d_name, d_base);
                let pq = self.base_params(q_name, q_base);
                join::join_cost_da(&pd, &pq)
            }
            JoinAlgorithm::IndexNestedLoop => {
                // The indexed side is probed once per outer object with a
                // window the size of an average outer object. Only a bare
                // IndexScan estimates as indexed, so the name is there.
                let (indexed_node, indexed_prof, outer) = if d.indexed {
                    (data, d_prof, &q)
                } else if q.indexed {
                    (query, q_prof, &d)
                } else {
                    return Err(CostError::UnindexedSjInput);
                };
                let params = match indexed_node {
                    PlanNode::IndexScan { dataset } => self.base_params(dataset, indexed_prof),
                    _ => self.profile_params(indexed_prof),
                };
                let outer_prof = Self::estimate_profile(outer);
                let probe = [outer_prof.avg_extent(N); N];
                outer.cardinality * range::range_query_cost(&params, &probe)
            }
            JoinAlgorithm::NestedLoop => {
                // Block nested loop: scan the outer once, the inner once
                // per outer page.
                let outer_pages = self.pages(d.cardinality);
                let inner_pages = self.pages(q.cardinality);
                outer_pages + outer_pages * inner_pages
            }
        };
        Ok(Estimate {
            cardinality: pairs,
            density: out_density,
            cost: d.cost + q.cost + own_cost,
            own_cost,
            indexed: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DatasetStats;
    use sjcm_geom::Rect;

    fn catalog() -> Catalog<2> {
        let mut c = Catalog::new();
        c.register("big", DatasetStats::new(60_000, 0.5));
        c.register("small", DatasetStats::new(20_000, 0.5));
        c.register("raw", DatasetStats::new(10_000, 0.2).without_index());
        c
    }

    fn scan(name: &str) -> PlanNode<2> {
        PlanNode::IndexScan {
            dataset: name.into(),
        }
    }

    #[test]
    fn scan_estimate_is_catalog_profile() {
        let c = catalog();
        let est = CostEstimator::new(&c).estimate(&scan("big")).unwrap();
        assert_eq!(est.cardinality, 60_000.0);
        assert_eq!(est.cost, 0.0);
        assert!(est.indexed);
    }

    #[test]
    fn unknown_dataset_is_an_error() {
        let c = catalog();
        let err = CostEstimator::new(&c).estimate(&scan("nope")).unwrap_err();
        assert_eq!(err, CostError::UnknownDataset("nope".into()));
    }

    #[test]
    fn range_select_reduces_cardinality_and_costs_io() {
        let c = catalog();
        let est = CostEstimator::new(&c)
            .estimate(&PlanNode::IndexRangeSelect {
                dataset: "big".into(),
                window: Rect::new([0.0, 0.0], [0.25, 0.25]).unwrap(),
            })
            .unwrap();
        assert!(est.cardinality < 60_000.0);
        assert!(est.cardinality > 0.0);
        assert!(est.cost > 0.0);
        assert!(!est.indexed);
    }

    #[test]
    fn sj_requires_indexes() {
        let c = catalog();
        let join = PlanNode::Join {
            data: Box::new(scan("raw")),
            query: Box::new(scan("big")),
            algorithm: JoinAlgorithm::SynchronizedTraversal,
        };
        assert_eq!(
            CostEstimator::new(&c).estimate(&join).unwrap_err(),
            CostError::UnindexedSjInput
        );
    }

    #[test]
    fn sj_role_sensitivity_visible_through_estimator() {
        let c = catalog();
        let forward = PlanNode::Join {
            data: Box::new(scan("big")),
            query: Box::new(scan("small")),
            algorithm: JoinAlgorithm::SynchronizedTraversal,
        };
        let backward = PlanNode::Join {
            data: Box::new(scan("small")),
            query: Box::new(scan("big")),
            algorithm: JoinAlgorithm::SynchronizedTraversal,
        };
        let e = CostEstimator::new(&c);
        let f = e.estimate(&forward).unwrap();
        let b = e.estimate(&backward).unwrap();
        assert_ne!(f.cost, b.cost, "Eq 10/12 is role-sensitive");
        // Same output either way.
        assert!((f.cardinality - b.cardinality).abs() < 1e-6);
    }

    #[test]
    fn inl_cost_scales_with_outer_cardinality() {
        let c = catalog();
        let small_outer = PlanNode::Join {
            data: Box::new(scan("big")),
            query: Box::new(PlanNode::IndexRangeSelect {
                dataset: "small".into(),
                window: Rect::new([0.0, 0.0], [0.1, 0.1]).unwrap(),
            }),
            algorithm: JoinAlgorithm::IndexNestedLoop,
        };
        let big_outer = PlanNode::Join {
            data: Box::new(scan("big")),
            query: Box::new(PlanNode::IndexRangeSelect {
                dataset: "small".into(),
                window: Rect::new([0.0, 0.0], [0.8, 0.8]).unwrap(),
            }),
            algorithm: JoinAlgorithm::IndexNestedLoop,
        };
        let e = CostEstimator::new(&c);
        assert!(e.estimate(&small_outer).unwrap().cost < e.estimate(&big_outer).unwrap().cost);
    }

    #[test]
    fn nested_loop_is_quadratic_in_pages() {
        let c = catalog();
        let nl = PlanNode::Join {
            data: Box::new(scan("raw")),
            query: Box::new(scan("raw")),
            algorithm: JoinAlgorithm::NestedLoop,
        };
        let est = CostEstimator::new(&c).estimate(&nl).unwrap();
        let pages = (10_000.0f64 / ModelConfig::paper(2).fanout()).ceil();
        assert!((est.cost - (pages + pages * pages)).abs() < 1e-9);
    }

    #[test]
    fn filter_keeps_cost_reduces_rows() {
        let c = catalog();
        let plan = PlanNode::Filter {
            input: Box::new(PlanNode::IndexRangeSelect {
                dataset: "big".into(),
                window: Rect::new([0.0, 0.0], [0.5, 0.5]).unwrap(),
            }),
            dataset: "big".into(),
            window: Rect::new([0.0, 0.0], [0.25, 0.25]).unwrap(),
        };
        let e = CostEstimator::new(&c);
        let inner_est = e
            .estimate(&PlanNode::IndexRangeSelect {
                dataset: "big".into(),
                window: Rect::new([0.0, 0.0], [0.5, 0.5]).unwrap(),
            })
            .unwrap();
        let est = e.estimate(&plan).unwrap();
        assert_eq!(est.cost, inner_est.cost);
        assert!(est.cardinality < inner_est.cardinality);
    }
}
