//! Plan enumeration.
//!
//! For a [`JoinQuery`] the planner explores, exhaustively:
//!
//! * **join order** — every left-deep permutation of the data sets;
//! * **role assignment** — for each base-base SJ join, which index plays
//!   the data (R1) vs query (R2) role (Eq 10/12 is role-sensitive — this
//!   choice is precisely the paper's §4.1(iii) rule, discovered here by
//!   costing rather than hard-coded);
//! * **selection placement** — pushing a window selection below the join
//!   (cheap probe set, but the selected side loses its index and forces
//!   an INL join) versus filtering after an SJ join.
//!
//! Plans are costed by [`crate::cost::CostEstimator`]; the cheapest one
//! wins. Queries are small (SDBMS join chains of 2–4 data sets), so
//! exhaustive enumeration is the right tool — no DP needed.

use crate::catalog::Catalog;
use crate::cost::{CostError, CostEstimator};
use crate::plan::{JoinAlgorithm, JoinQuery, PhysicalPlan, PlanNode};

/// Planner failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlannerError {
    /// The query referenced a data set missing from the catalog.
    UnknownDataset(String),
    /// The query listed no data sets.
    EmptyQuery,
    /// More data sets than the exhaustive enumerator accepts.
    TooManyDatasets(usize),
    /// The same data set was listed twice (self-joins need distinct
    /// catalog aliases so filters and output columns stay unambiguous).
    DuplicateDataset(String),
    /// Cost estimation failed on every candidate (catalog misuse).
    NoFeasiblePlan,
}

impl std::fmt::Display for PlannerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlannerError::UnknownDataset(d) => write!(f, "unknown dataset {d}"),
            PlannerError::EmptyQuery => write!(f, "query lists no datasets"),
            PlannerError::TooManyDatasets(n) => {
                write!(
                    f,
                    "{n} datasets exceed the exhaustive enumeration limit (5)"
                )
            }
            PlannerError::DuplicateDataset(d) => {
                write!(
                    f,
                    "dataset {d} listed twice; register an alias for self-joins"
                )
            }
            PlannerError::NoFeasiblePlan => write!(f, "no feasible plan"),
        }
    }
}

impl std::error::Error for PlannerError {}

/// The cost-based planner.
pub struct Planner<'a, const N: usize> {
    catalog: &'a Catalog<N>,
    estimator: CostEstimator<'a, N>,
}

impl<'a, const N: usize> Planner<'a, N> {
    /// Creates a planner over a catalog.
    pub fn new(catalog: &'a Catalog<N>) -> Self {
        Self {
            catalog,
            estimator: CostEstimator::new(catalog),
        }
    }

    /// Returns the cheapest plan for the query.
    pub fn best_plan(&self, query: &JoinQuery<N>) -> Result<PhysicalPlan<N>, PlannerError> {
        let mut plans = self.enumerate(query)?;
        plans.sort_by(|a, b| a.total_cost.total_cmp(&b.total_cost));
        plans.into_iter().next().ok_or(PlannerError::NoFeasiblePlan)
    }

    /// Returns every feasible plan, cheapest first — useful for EXPLAIN-
    /// style demonstrations of why a strategy wins.
    pub fn enumerate(&self, query: &JoinQuery<N>) -> Result<Vec<PhysicalPlan<N>>, PlannerError> {
        if query.datasets.is_empty() {
            return Err(PlannerError::EmptyQuery);
        }
        if query.datasets.len() > 5 {
            return Err(PlannerError::TooManyDatasets(query.datasets.len()));
        }
        let mut names = std::collections::HashSet::new();
        for d in &query.datasets {
            if self.catalog.get(d).is_none() {
                return Err(PlannerError::UnknownDataset(d.clone()));
            }
            if !names.insert(d) {
                return Err(PlannerError::DuplicateDataset(d.clone()));
            }
        }
        let mut out = Vec::new();
        for order in permutations(&query.datasets) {
            // Each dataset with a selection can be pushed down (0) or
            // filtered after the joins (1): iterate the bitmask.
            let sel_sets: Vec<&String> = order
                .iter()
                .filter(|d| query.selection_on(d).is_some())
                .collect();
            let combos = 1usize << sel_sets.len();
            for mask in 0..combos {
                let pushed: Vec<&String> = sel_sets
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, d)| *d)
                    .collect();
                self.plans_for_order(query, &order, &pushed, &mut out);
            }
        }
        if out.is_empty() {
            return Err(PlannerError::NoFeasiblePlan);
        }
        // Different (order, role) combinations can produce structurally
        // identical plans (e.g. order a,b with roles swapped equals
        // order b,a); keep one of each.
        let mut seen = std::collections::HashSet::new();
        out.retain(|p| seen.insert(format!("{p}")));
        out.sort_by(|a, b| a.total_cost.total_cmp(&b.total_cost));
        Ok(out)
    }

    /// Builds all role-assignment variants for one dataset order and one
    /// pushdown choice, costing each and discarding infeasible ones.
    fn plans_for_order(
        &self,
        query: &JoinQuery<N>,
        order: &[String],
        pushed: &[&String],
        out: &mut Vec<PhysicalPlan<N>>,
    ) {
        // Base access path per dataset.
        let base = |name: &String| -> PlanNode<N> {
            if pushed.contains(&name) {
                PlanNode::IndexRangeSelect {
                    dataset: name.clone(),
                    window: *query.selection_on(name).expect("pushed ⇒ selection"),
                }
            } else {
                PlanNode::IndexScan {
                    dataset: name.clone(),
                }
            }
        };
        // Fold the order into left-deep join trees; at each step both
        // role assignments are explored.
        let mut partials: Vec<PlanNode<N>> = vec![base(&order[0])];
        for name in &order[1..] {
            let right = base(name);
            let mut next: Vec<PlanNode<N>> = Vec::new();
            for left in partials {
                for (data, query_side) in
                    [(left.clone(), right.clone()), (right.clone(), left.clone())]
                {
                    for algorithm in self.feasible_algorithms(&data, &query_side) {
                        next.push(PlanNode::Join {
                            data: Box::new(data.clone()),
                            query: Box::new(query_side.clone()),
                            algorithm,
                        });
                    }
                }
            }
            partials = next;
        }
        for mut root in partials {
            // Selections not pushed down become top-level filters.
            for (dataset, window) in &query.selections {
                if order.contains(dataset) && !pushed.contains(&dataset) {
                    root = PlanNode::Filter {
                        input: Box::new(root),
                        dataset: dataset.clone(),
                        window: *window,
                    };
                }
            }
            match self.estimator.estimate(&root) {
                Ok(est) => out.push(PhysicalPlan {
                    root,
                    total_cost: est.cost,
                    cardinality: est.cardinality,
                }),
                Err(CostError::UnindexedSjInput) => { /* infeasible variant */ }
                Err(CostError::UnknownDataset(_)) => unreachable!("validated above"),
            }
        }
    }

    /// Algorithm choices for one join, driven by index availability: SJ
    /// when both sides are indexed base scans, INL when exactly one is,
    /// NL otherwise. A window selection pushed below the join keeps its
    /// base index on disk, so a second variant traverses the full trees
    /// with SJ and applies the window as a residual filter — the
    /// estimator prices it (full-tree Eq 10/12 plus the Eq 1 probe) and
    /// enumeration lets costing decide.
    fn feasible_algorithms(&self, a: &PlanNode<N>, b: &PlanNode<N>) -> Vec<JoinAlgorithm> {
        let indexed = |n: &PlanNode<N>| -> bool {
            match n {
                PlanNode::IndexScan { dataset } => {
                    self.catalog.get(dataset).is_some_and(|s| s.indexed)
                }
                _ => false,
            }
        };
        let index_backed = |n: &PlanNode<N>| -> bool {
            match n {
                PlanNode::IndexScan { dataset } | PlanNode::IndexRangeSelect { dataset, .. } => {
                    self.catalog.get(dataset).is_some_and(|s| s.indexed)
                }
                _ => false,
            }
        };
        let forced = match (indexed(a), indexed(b)) {
            (true, true) => JoinAlgorithm::SynchronizedTraversal,
            (true, false) | (false, true) => JoinAlgorithm::IndexNestedLoop,
            (false, false) => JoinAlgorithm::NestedLoop,
        };
        let mut algorithms = vec![forced];
        if forced != JoinAlgorithm::SynchronizedTraversal && index_backed(a) && index_backed(b) {
            algorithms.push(JoinAlgorithm::SynchronizedTraversal);
        }
        algorithms
    }
}

/// All permutations of a small slice (n ≤ 5 enforced by the caller).
fn permutations(items: &[String]) -> Vec<Vec<String>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, head) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head.clone());
            out.push(tail);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DatasetStats;
    use sjcm_geom::Rect;

    fn catalog() -> Catalog<2> {
        let mut c = Catalog::new();
        c.register("countries", DatasetStats::new(20_000, 0.4));
        c.register("rivers", DatasetStats::new(60_000, 0.2));
        c.register("roads", DatasetStats::new(36_000, 0.3));
        c
    }

    #[test]
    fn permutations_count() {
        let items: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        assert_eq!(permutations(&items).len(), 6);
        assert_eq!(permutations(&items[..1]).len(), 1);
    }

    #[test]
    fn two_way_join_plans() {
        let c = catalog();
        let q = JoinQuery::new(["rivers", "countries"]);
        let plans = Planner::new(&c).enumerate(&q).unwrap();
        // Two orders × two roles collapse to the two distinct role
        // assignments after structural deduplication.
        assert_eq!(plans.len(), 2);
        // Sorted ascending.
        for w in plans.windows(2) {
            assert!(w[0].total_cost <= w[1].total_cost);
        }
    }

    #[test]
    fn best_plan_puts_smaller_index_in_query_role() {
        // §4.1(iii): for trees of *equal height*, the less populated
        // index plays the query role — discovered here by costing, not
        // hard-coded. (roads 36K and countries 20K both have h = 3 under
        // the paper's 2-D fanout; the rivers/countries pair has
        // different heights, where the paper itself notes the rule can
        // invert — AREA 2/3 of Figure 7b.)
        let c = catalog();
        let q = JoinQuery::new(["roads", "countries"]);
        let best = Planner::new(&c).best_plan(&q).unwrap();
        match &best.root {
            PlanNode::Join { data, query, .. } => {
                let name = |n: &PlanNode<2>| match n {
                    PlanNode::IndexScan { dataset } => dataset.clone(),
                    _ => panic!("expected scans"),
                };
                assert_eq!(name(data), "roads", "bigger set is the data tree");
                assert_eq!(name(query), "countries");
            }
            other => panic!("expected a join, got {other:?}"),
        }
    }

    #[test]
    fn selection_enables_pushdown_tradeoff() {
        let c = catalog();
        // A tiny selection window: pushing it down shrinks the probe set
        // massively, so the INL plan should win over SJ + filter.
        let q = JoinQuery::new(["rivers", "countries"])
            .with_selection("countries", Rect::new([0.0, 0.0], [0.05, 0.05]).unwrap());
        let plans = Planner::new(&c).enumerate(&q).unwrap();
        let best = &plans[0];
        let uses_inl = format!("{best}").contains("Join[INL]");
        assert!(
            uses_inl,
            "tiny selection should favour pushdown + INL:\n{best}"
        );
        // And the alternatives include SJ-based plans that cost more.
        assert!(plans.iter().any(|p| format!("{p}").contains("Join[SJ]")));
    }

    #[test]
    fn huge_selection_prefers_sj_then_filter() {
        let c = catalog();
        // A selection covering nearly everything: filtering after the SJ
        // join is cheaper than probing per selected object.
        let q = JoinQuery::new(["rivers", "countries"])
            .with_selection("countries", Rect::new([0.0, 0.0], [0.99, 0.99]).unwrap());
        let best = Planner::new(&c).best_plan(&q).unwrap();
        let text = format!("{best}");
        assert!(
            text.contains("Join[SJ]") && text.contains("Filter"),
            "expected SJ + filter:\n{text}"
        );
    }

    #[test]
    fn three_way_join_enumerates_orders() {
        let c = catalog();
        let q = JoinQuery::new(["rivers", "countries", "roads"]);
        let plans = Planner::new(&c).enumerate(&q).unwrap();
        assert!(plans.len() >= 12, "got {}", plans.len());
        let best = Planner::new(&c).best_plan(&q).unwrap();
        assert!(best.total_cost <= plans.last().unwrap().total_cost);
    }

    #[test]
    fn errors() {
        let c = catalog();
        let p = Planner::new(&c);
        assert_eq!(
            p.best_plan(&JoinQuery::new(["nope"])).unwrap_err(),
            PlannerError::UnknownDataset("nope".into())
        );
        assert_eq!(
            p.best_plan(&JoinQuery::<2>::new(Vec::<String>::new()))
                .unwrap_err(),
            PlannerError::EmptyQuery
        );
        let many: Vec<String> = (0..6).map(|i| format!("d{i}")).collect();
        assert_eq!(
            p.best_plan(&JoinQuery::new(many)).unwrap_err(),
            PlannerError::TooManyDatasets(6)
        );
    }

    #[test]
    fn single_dataset_selection_plans() {
        let c = catalog();
        let q = JoinQuery::new(["rivers"])
            .with_selection("rivers", Rect::new([0.0, 0.0], [0.3, 0.3]).unwrap());
        let best = Planner::new(&c).best_plan(&q).unwrap();
        let text = format!("{best}");
        assert!(
            text.contains("IndexRangeSelect") || text.contains("Filter"),
            "{text}"
        );
    }
}
