//! Query and plan representations.

use sjcm_geom::Rect;
use std::fmt;

/// A declarative join query: a set of base data sets combined by
/// pairwise `overlap` joins (the paper's operator), with optional window
/// selections on individual data sets — the shape of the paper's
/// motivating example ("rivers that cross countries and lie west of the
/// 7th meridian").
#[derive(Debug, Clone)]
pub struct JoinQuery<const N: usize> {
    /// Base data sets participating in the join chain (2 or more; a
    /// single data set with a selection is also allowed).
    pub datasets: Vec<String>,
    /// Window selections: `(dataset, window)`.
    pub selections: Vec<(String, Rect<N>)>,
}

impl<const N: usize> JoinQuery<N> {
    /// A pure join over the given data sets.
    pub fn new<I, S>(datasets: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            datasets: datasets.into_iter().map(Into::into).collect(),
            selections: Vec::new(),
        }
    }

    /// Adds a window selection on one data set.
    pub fn with_selection(mut self, dataset: &str, window: Rect<N>) -> Self {
        self.selections.push((dataset.to_string(), window));
        self
    }

    /// The selection window on `dataset`, if any.
    pub fn selection_on(&self, dataset: &str) -> Option<&Rect<N>> {
        self.selections
            .iter()
            .find(|(d, _)| d == dataset)
            .map(|(_, w)| w)
    }
}

/// Physical join algorithm chosen by the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgorithm {
    /// Synchronized R-tree traversal (SJ) — requires indexes on both
    /// inputs. Cost via Eq 10/12 (path buffer); role-sensitive.
    SynchronizedTraversal,
    /// Index nested loop: window query on the indexed side per object of
    /// the other side. Cost via Eq 1.
    IndexNestedLoop,
    /// Block nested loop over two unindexed inputs.
    NestedLoop,
}

impl fmt::Display for JoinAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinAlgorithm::SynchronizedTraversal => write!(f, "SJ"),
            JoinAlgorithm::IndexNestedLoop => write!(f, "INL"),
            JoinAlgorithm::NestedLoop => write!(f, "NL"),
        }
    }
}

/// One operator of a physical plan.
#[derive(Debug, Clone)]
pub enum PlanNode<const N: usize> {
    /// Use the base data set's R-tree as-is.
    IndexScan {
        /// Data set name.
        dataset: String,
    },
    /// Window selection executed through the base index (Eq 1 cost),
    /// producing an unindexed intermediate set.
    IndexRangeSelect {
        /// Data set name.
        dataset: String,
        /// Selection window.
        window: Rect<N>,
    },
    /// Window selection applied on the fly to an intermediate input
    /// (no additional I/O).
    Filter {
        /// Input plan.
        input: Box<PlanNode<N>>,
        /// The data set whose column the filter applies to (join outputs
        /// carry one column per base data set).
        dataset: String,
        /// Selection window.
        window: Rect<N>,
    },
    /// A spatial join of two inputs. For the SJ algorithm, `data` plays
    /// the R1 (inner-loop) role and `query` the R2 (outer-loop) role —
    /// the role assignment Eq 10/12 is sensitive to.
    Join {
        /// The R1 / data-tree side.
        data: Box<PlanNode<N>>,
        /// The R2 / query-tree side.
        query: Box<PlanNode<N>>,
        /// Chosen algorithm.
        algorithm: JoinAlgorithm,
    },
}

/// Estimated properties of one operator, filled in by the cost module.
#[derive(Debug, Clone, Copy)]
pub struct Estimate {
    /// Expected output cardinality.
    pub cardinality: f64,
    /// Expected output density (sum of MBR measures).
    pub density: f64,
    /// Cumulative I/O cost of the subtree rooted here (page accesses).
    pub cost: f64,
    /// I/O cost attributable to this operator alone, excluding its
    /// children — what EXPLAIN ANALYZE compares against the operator's
    /// measured accesses.
    pub own_cost: f64,
    /// Whether the output is backed by an R-tree index.
    pub indexed: bool,
}

/// A costed physical plan.
#[derive(Debug, Clone)]
pub struct PhysicalPlan<const N: usize> {
    /// Root operator.
    pub root: PlanNode<N>,
    /// Total estimated I/O cost (sum over operators).
    pub total_cost: f64,
    /// Estimated result cardinality.
    pub cardinality: f64,
}

impl<const N: usize> PlanNode<N> {
    fn render(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            PlanNode::IndexScan { dataset } => writeln!(f, "{pad}IndexScan({dataset})"),
            PlanNode::IndexRangeSelect { dataset, window } => {
                writeln!(
                    f,
                    "{pad}IndexRangeSelect({dataset}, window={:?})",
                    window.extents()
                )
            }
            PlanNode::Filter {
                input,
                dataset,
                window,
            } => {
                writeln!(f, "{pad}Filter({dataset}, window={:?})", window.extents())?;
                input.render(f, indent + 1)
            }
            PlanNode::Join {
                data,
                query,
                algorithm,
            } => {
                writeln!(f, "{pad}Join[{algorithm}]")?;
                writeln!(f, "{pad}  data(R1):")?;
                data.render(f, indent + 2)?;
                writeln!(f, "{pad}  query(R2):")?;
                query.render(f, indent + 2)
            }
        }
    }
}

impl<const N: usize> fmt::Display for PhysicalPlan<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan (est. cost {:.0} page accesses, est. cardinality {:.0}):",
            self.total_cost, self.cardinality
        )?;
        self.root.render(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_builder() {
        let q = JoinQuery::<2>::new(["a", "b"])
            .with_selection("a", Rect::new([0.0, 0.0], [0.5, 1.0]).unwrap());
        assert_eq!(q.datasets, vec!["a", "b"]);
        assert!(q.selection_on("a").is_some());
        assert!(q.selection_on("b").is_none());
    }

    #[test]
    fn plan_renders_tree() {
        let plan = PhysicalPlan {
            root: PlanNode::<2>::Join {
                data: Box::new(PlanNode::IndexScan {
                    dataset: "rivers".into(),
                }),
                query: Box::new(PlanNode::IndexRangeSelect {
                    dataset: "countries".into(),
                    window: Rect::unit(),
                }),
                algorithm: JoinAlgorithm::IndexNestedLoop,
            },
            total_cost: 123.0,
            cardinality: 45.0,
        };
        let text = plan.to_string();
        assert!(text.contains("Join[INL]"));
        assert!(text.contains("IndexScan(rivers)"));
        assert!(text.contains("IndexRangeSelect(countries"));
        assert!(text.contains("est. cost 123"));
    }

    #[test]
    fn algorithm_labels() {
        assert_eq!(JoinAlgorithm::SynchronizedTraversal.to_string(), "SJ");
        assert_eq!(JoinAlgorithm::IndexNestedLoop.to_string(), "INL");
        assert_eq!(JoinAlgorithm::NestedLoop.to_string(), "NL");
    }
}
