//! Dataset statistics catalog.
//!
//! The optimizer sees each base data set exactly the way the cost model
//! does: through its primitive properties `(N, D)`, optionally refined
//! by a density surface for non-uniform data. This mirrors a real
//! system catalog, where such statistics are maintained by `ANALYZE`-
//! style sampling rather than read from the index.
//!
//! The catalog round-trips through a small JSON file ([`Catalog::save`]
//! / [`Catalog::load`]) so measured statistics — e.g. the corrections
//! EXPLAIN ANALYZE's `--calibrate` mode derives from actual tree walks —
//! survive into the *next* planning run. Density surfaces are in-memory
//! refinements and are not persisted.

use sjcm_core::{DataProfile, DensitySurface};
use sjcm_obs::json::{self, Value};
use std::collections::BTreeMap;
use std::path::Path;

/// Statistics of one registered data set.
#[derive(Debug, Clone)]
pub struct DatasetStats<const N: usize> {
    /// Cardinality and density — the model's primitive properties.
    pub profile: DataProfile,
    /// Whether an R-tree index exists over the data set (base data sets
    /// normally have one; intermediate results never do).
    pub indexed: bool,
    /// Optional local-density refinement for skewed data.
    pub surface: Option<DensitySurface<N>>,
}

impl<const N: usize> DatasetStats<N> {
    /// An indexed data set with the given primitive properties.
    pub fn new(cardinality: u64, density: f64) -> Self {
        Self {
            profile: DataProfile::new(cardinality, density),
            indexed: true,
            surface: None,
        }
    }

    /// Marks the data set as unindexed.
    pub fn without_index(mut self) -> Self {
        self.indexed = false;
        self
    }

    /// Attaches a density surface (non-uniform statistics).
    pub fn with_surface(mut self, surface: DensitySurface<N>) -> Self {
        self.surface = Some(surface);
        self
    }
}

/// A name → statistics catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog<const N: usize> {
    datasets: BTreeMap<String, DatasetStats<N>>,
}

impl<const N: usize> Catalog<N> {
    /// An empty catalog.
    pub fn new() -> Self {
        Self {
            datasets: BTreeMap::new(),
        }
    }

    /// Registers (or replaces) a data set.
    pub fn register(&mut self, name: &str, stats: DatasetStats<N>) {
        self.datasets.insert(name.to_string(), stats);
    }

    /// Looks up a data set.
    pub fn get(&self, name: &str) -> Option<&DatasetStats<N>> {
        self.datasets.get(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.datasets.keys().map(String::as_str).collect()
    }

    /// Number of registered data sets.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// `true` when no data sets are registered.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// Iterates `(name, stats)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &DatasetStats<N>)> {
        self.datasets.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Serializes the catalog to one JSON document (surfaces excluded).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"dims\":{N},\"datasets\":{{"));
        for (i, (name, stats)) in self.datasets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"cardinality\":{},\"density\":{},\"indexed\":{}}}",
                json::escape(name),
                stats.profile.cardinality,
                stats.profile.density,
                stats.indexed
            ));
        }
        out.push_str("}}");
        out
    }

    /// Parses a catalog previously produced by [`Catalog::to_json`].
    pub fn from_json(text: &str) -> Result<Self, CatalogError> {
        let v = json::parse(text).map_err(CatalogError::Parse)?;
        let dims = v
            .get("dims")
            .and_then(Value::as_f64)
            .ok_or_else(|| CatalogError::Parse("missing dims".into()))?;
        if dims as usize != N {
            return Err(CatalogError::DimMismatch {
                expected: N,
                found: dims as usize,
            });
        }
        let Some(Value::Obj(entries)) = v.get("datasets") else {
            return Err(CatalogError::Parse("missing datasets object".into()));
        };
        let mut catalog = Self::new();
        for (name, entry) in entries {
            let num = |k: &str| {
                entry.get(k).and_then(Value::as_f64).ok_or_else(|| {
                    CatalogError::Parse(format!("dataset {name}: missing numeric {k}"))
                })
            };
            let cardinality = num("cardinality")?;
            let density = num("density")?;
            if !cardinality.is_finite()
                || !density.is_finite()
                || cardinality < 0.0
                || density < 0.0
            {
                return Err(CatalogError::Parse(format!(
                    "dataset {name}: negative cardinality/density"
                )));
            }
            let indexed = match entry.get("indexed") {
                Some(Value::Bool(b)) => *b,
                _ => {
                    return Err(CatalogError::Parse(format!(
                        "dataset {name}: missing boolean indexed"
                    )))
                }
            };
            let mut stats = DatasetStats::new(cardinality.round() as u64, density);
            stats.indexed = indexed;
            catalog.register(name, stats);
        }
        Ok(catalog)
    }

    /// Writes the catalog as JSON to `path`.
    pub fn save(&self, path: &Path) -> Result<(), CatalogError> {
        std::fs::write(path, self.to_json() + "\n")
            .map_err(|e| CatalogError::Io(format!("{}: {e}", path.display())))
    }

    /// Loads a catalog saved by [`Catalog::save`].
    pub fn load(path: &Path) -> Result<Self, CatalogError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CatalogError::Io(format!("{}: {e}", path.display())))?;
        Self::from_json(text.trim())
    }
}

/// Catalog persistence failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// Filesystem error (message includes the path).
    Io(String),
    /// Malformed catalog JSON.
    Parse(String),
    /// The file was saved for a different dimensionality.
    DimMismatch {
        /// Compile-time dimensionality of the loading catalog.
        expected: usize,
        /// Dimensionality recorded in the file.
        found: usize,
    },
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Io(e) => write!(f, "catalog io error: {e}"),
            CatalogError::Parse(e) => write!(f, "catalog parse error: {e}"),
            CatalogError::DimMismatch { expected, found } => {
                write!(f, "catalog dims {found} do not match expected {expected}")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::<2>::new();
        assert!(c.is_empty());
        c.register("roads", DatasetStats::new(1000, 0.1));
        c.register("rivers", DatasetStats::new(2000, 0.2).without_index());
        assert_eq!(c.len(), 2);
        assert!(c.get("roads").unwrap().indexed);
        assert!(!c.get("rivers").unwrap().indexed);
        assert!(c.get("missing").is_none());
        assert_eq!(c.names(), vec!["rivers", "roads"]);
    }

    #[test]
    fn register_replaces() {
        let mut c = Catalog::<2>::new();
        c.register("x", DatasetStats::new(10, 0.1));
        c.register("x", DatasetStats::new(20, 0.2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("x").unwrap().profile.cardinality, 20);
    }

    #[test]
    fn surface_attachment() {
        let surface = DensitySurface::<2>::from_rects(&[], 4);
        let s = DatasetStats::new(5, 0.0).with_surface(surface);
        assert!(s.surface.is_some());
    }

    #[test]
    fn json_round_trip() {
        let mut c = Catalog::<2>::new();
        c.register("rivers", DatasetStats::new(60_000, 0.2));
        c.register("scratch", DatasetStats::new(10, 0.5).without_index());
        let back = Catalog::<2>::from_json(&c.to_json()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get("rivers").unwrap().profile.cardinality, 60_000);
        assert!((back.get("rivers").unwrap().profile.density - 0.2).abs() < 1e-12);
        assert!(back.get("rivers").unwrap().indexed);
        assert!(!back.get("scratch").unwrap().indexed);
    }

    #[test]
    fn save_load_and_dim_mismatch() {
        let dir = std::env::temp_dir().join(format!("sjcm_catalog_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.json");
        let mut c = Catalog::<2>::new();
        c.register("roads", DatasetStats::new(36_000, 0.3));
        c.save(&path).unwrap();
        let back = Catalog::<2>::load(&path).unwrap();
        assert_eq!(back.get("roads").unwrap().profile.cardinality, 36_000);
        assert_eq!(
            Catalog::<3>::load(&path).unwrap_err(),
            CatalogError::DimMismatch {
                expected: 3,
                found: 2
            }
        );
        assert!(matches!(
            Catalog::<2>::load(&dir.join("missing.json")).unwrap_err(),
            CatalogError::Io(_)
        ));
    }

    /// Corruption matrix for [`Catalog::load`]: every way a catalog
    /// file can rot on disk must surface as a typed [`CatalogError`],
    /// never a panic and never a silently-empty catalog.
    #[test]
    fn load_survives_on_disk_corruption() {
        let dir = std::env::temp_dir().join(format!("sjcm_catalog_corrupt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, bytes: &[u8]| {
            let p = dir.join(name);
            std::fs::write(&p, bytes).unwrap();
            p
        };

        // A valid document chopped mid-token (simulates a crash during
        // `save`): the brace/string machinery is left dangling.
        let mut c = Catalog::<2>::new();
        c.register("roads", DatasetStats::new(36_000, 0.3));
        let full = c.to_json();
        let truncated = write("truncated.json", &full.as_bytes()[..full.len() / 2]);
        assert!(matches!(
            Catalog::<2>::load(&truncated).unwrap_err(),
            CatalogError::Parse(_)
        ));

        // `NaN` is not a JSON literal; a hand-edited file using it must
        // be rejected at parse, not round `NaN as u64` into 0.
        let nan = write(
            "nan.json",
            b"{\"dims\":2,\"datasets\":{\"x\":{\"cardinality\":NaN,\"density\":0.1,\"indexed\":true}}}",
        );
        assert!(matches!(
            Catalog::<2>::load(&nan).unwrap_err(),
            CatalogError::Parse(_)
        ));

        // Arbitrary non-UTF-8 bytes (wrong file, disk corruption).
        let garbage = write("garbage.json", &[0x80, 0xFF, 0x00, 0x13, 0x37, 0xC0]);
        assert!(matches!(
            Catalog::<2>::load(&garbage).unwrap_err(),
            CatalogError::Io(_)
        ));

        // An empty file is not an empty catalog — loading it must fail
        // loudly so a truncated-to-zero save is never mistaken for "no
        // datasets registered".
        let empty = write("empty.json", b"");
        assert!(matches!(
            Catalog::<2>::load(&empty).unwrap_err(),
            CatalogError::Parse(_)
        ));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_json_rejects_malformed_entries() {
        assert!(matches!(
            Catalog::<2>::from_json("{\"datasets\":{}}").unwrap_err(),
            CatalogError::Parse(_)
        ));
        assert!(matches!(
            Catalog::<2>::from_json(
                "{\"dims\":2,\"datasets\":{\"x\":{\"cardinality\":-1,\"density\":0.1,\"indexed\":true}}}"
            )
            .unwrap_err(),
            CatalogError::Parse(_)
        ));
    }
}
