//! Dataset statistics catalog.
//!
//! The optimizer sees each base data set exactly the way the cost model
//! does: through its primitive properties `(N, D)`, optionally refined
//! by a density surface for non-uniform data. This mirrors a real
//! system catalog, where such statistics are maintained by `ANALYZE`-
//! style sampling rather than read from the index.

use sjcm_core::{DataProfile, DensitySurface};
use std::collections::BTreeMap;

/// Statistics of one registered data set.
#[derive(Debug, Clone)]
pub struct DatasetStats<const N: usize> {
    /// Cardinality and density — the model's primitive properties.
    pub profile: DataProfile,
    /// Whether an R-tree index exists over the data set (base data sets
    /// normally have one; intermediate results never do).
    pub indexed: bool,
    /// Optional local-density refinement for skewed data.
    pub surface: Option<DensitySurface<N>>,
}

impl<const N: usize> DatasetStats<N> {
    /// An indexed data set with the given primitive properties.
    pub fn new(cardinality: u64, density: f64) -> Self {
        Self {
            profile: DataProfile::new(cardinality, density),
            indexed: true,
            surface: None,
        }
    }

    /// Marks the data set as unindexed.
    pub fn without_index(mut self) -> Self {
        self.indexed = false;
        self
    }

    /// Attaches a density surface (non-uniform statistics).
    pub fn with_surface(mut self, surface: DensitySurface<N>) -> Self {
        self.surface = Some(surface);
        self
    }
}

/// A name → statistics catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog<const N: usize> {
    datasets: BTreeMap<String, DatasetStats<N>>,
}

impl<const N: usize> Catalog<N> {
    /// An empty catalog.
    pub fn new() -> Self {
        Self {
            datasets: BTreeMap::new(),
        }
    }

    /// Registers (or replaces) a data set.
    pub fn register(&mut self, name: &str, stats: DatasetStats<N>) {
        self.datasets.insert(name.to_string(), stats);
    }

    /// Looks up a data set.
    pub fn get(&self, name: &str) -> Option<&DatasetStats<N>> {
        self.datasets.get(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.datasets.keys().map(String::as_str).collect()
    }

    /// Number of registered data sets.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// `true` when no data sets are registered.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::<2>::new();
        assert!(c.is_empty());
        c.register("roads", DatasetStats::new(1000, 0.1));
        c.register("rivers", DatasetStats::new(2000, 0.2).without_index());
        assert_eq!(c.len(), 2);
        assert!(c.get("roads").unwrap().indexed);
        assert!(!c.get("rivers").unwrap().indexed);
        assert!(c.get("missing").is_none());
        assert_eq!(c.names(), vec!["rivers", "roads"]);
    }

    #[test]
    fn register_replaces() {
        let mut c = Catalog::<2>::new();
        c.register("x", DatasetStats::new(10, 0.1));
        c.register("x", DatasetStats::new(20, 0.2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("x").unwrap().profile.cardinality, 20);
    }

    #[test]
    fn surface_attachment() {
        let surface = DensitySurface::<2>::from_rects(&[], 4);
        let s = DatasetStats::new(5, 0.0).with_surface(surface);
        assert!(s.surface.is_some());
    }
}
