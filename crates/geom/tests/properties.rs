//! Property-based tests for the geometry kernel: the algebraic laws the
//! R-tree and the cost model silently rely on.

use proptest::prelude::*;
use sjcm_geom::{curve, density, local_density, mbr_of, Point, Rect};

/// Strategy: a rectangle with corners in [0, 1]^2.
fn rect2() -> impl Strategy<Value = Rect<2>> {
    ((0.0f64..1.0, 0.0f64..1.0), (0.0f64..1.0, 0.0f64..1.0)).prop_map(|((ax, ay), (bx, by))| {
        Rect::from_corners(Point::new([ax, ay]), Point::new([bx, by]))
    })
}

fn rect1() -> impl Strategy<Value = Rect<1>> {
    (0.0f64..1.0, 0.0f64..1.0)
        .prop_map(|(a, b)| Rect::from_corners(Point::new([a]), Point::new([b])))
}

proptest! {
    #[test]
    fn union_contains_both(a in rect2(), b in rect2()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn union_is_commutative(a in rect2(), b in rect2()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn union_is_associative(a in rect2(), b in rect2(), c in rect2()) {
        let left = a.union(&b).union(&c);
        let right = a.union(&b.union(&c));
        for k in 0..2 {
            prop_assert!((left.lo_k(k) - right.lo_k(k)).abs() < 1e-12);
            prop_assert!((left.hi_k(k) - right.hi_k(k)).abs() < 1e-12);
        }
    }

    #[test]
    fn intersection_is_commutative(a in rect2(), b in rect2()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        prop_assert!((a.intersection_measure(&b) - b.intersection_measure(&a)).abs() < 1e-12);
    }

    #[test]
    fn intersection_contained_in_both(a in rect2(), b in rect2()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(a.intersects(&b));
        } else {
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn intersects_iff_positive_or_touching(a in rect2(), b in rect2()) {
        // intersection_measure > 0 implies intersects, and the measure is
        // never larger than either operand's measure.
        let m = a.intersection_measure(&b);
        prop_assert!(m >= 0.0);
        prop_assert!(m <= a.measure() + 1e-12);
        prop_assert!(m <= b.measure() + 1e-12);
        if m > 0.0 {
            prop_assert!(a.intersects(&b));
        }
    }

    #[test]
    fn enlargement_nonnegative(a in rect2(), b in rect2()) {
        prop_assert!(a.enlargement(&b) >= -1e-12);
    }

    #[test]
    fn measure_monotone_under_union(a in rect2(), b in rect2()) {
        let u = a.union(&b);
        prop_assert!(u.measure() + 1e-12 >= a.measure());
        prop_assert!(u.measure() + 1e-12 >= b.measure());
        prop_assert!(u.margin() + 1e-12 >= a.margin());
    }

    #[test]
    fn minkowski_contains_original(a in rect2(), d in 0.0f64..0.5) {
        prop_assert!(a.minkowski(d).contains_rect(&a));
        // Extent grows by exactly 2d per dimension.
        for k in 0..2 {
            prop_assert!((a.minkowski(d).extent(k) - (a.extent(k) + 2.0 * d)).abs() < 1e-12);
        }
    }

    #[test]
    fn min_dist_zero_iff_intersecting(a in rect2(), b in rect2()) {
        if a.intersects(&b) {
            prop_assert_eq!(a.min_dist2(&b), 0.0);
        } else {
            prop_assert!(a.min_dist2(&b) > 0.0);
        }
    }

    #[test]
    fn within_distance_implied_by_minkowski_intersection(
        a in rect2(), b in rect2(), eps in 0.0f64..0.5
    ) {
        // L2 ball is contained in the L∞ ball, so within_distance(eps)
        // implies minkowski(eps) intersection (but not conversely).
        if a.within_distance(&b, eps) {
            prop_assert!(a.minkowski(eps + 1e-12).intersects(&b));
        }
    }

    #[test]
    fn mbr_of_covers_all(rects in prop::collection::vec(rect2(), 1..20)) {
        let m = mbr_of(rects.iter().copied()).unwrap();
        for r in &rects {
            prop_assert!(m.contains_rect(r));
        }
    }

    #[test]
    fn local_density_of_unit_region_matches_density(
        rects in prop::collection::vec(rect2(), 0..20)
    ) {
        let global = density(rects.iter());
        let local = local_density(rects.iter(), &Rect::unit());
        prop_assert!((global - local).abs() < 1e-9);
    }

    #[test]
    fn interval_algebra_consistent(a in rect1(), b in rect1()) {
        // 1-D: intersects iff the intervals overlap as computed by hand.
        let overlap = a.lo_k(0) <= b.hi_k(0) && b.lo_k(0) <= a.hi_k(0);
        prop_assert_eq!(a.intersects(&b), overlap);
    }

    #[test]
    fn morton_key_in_range(x in 0.0f64..1.0, y in 0.0f64..1.0, bits in 1u32..16) {
        let k = curve::morton_key(&Point::new([x, y]), bits);
        prop_assert!(k < 1u64 << (2 * bits));
    }

    #[test]
    fn hilbert_key_in_range(x in 0.0f64..1.0, y in 0.0f64..1.0, bits in 1u32..16) {
        let k = curve::hilbert_key_2d(&Point::new([x, y]), bits);
        prop_assert!(k < 1u64 << (2 * bits));
    }

    #[test]
    fn hilbert_roundtrips_cell(key in 0u64..4096) {
        let bits = 6;
        let (x, y) = curve::hilbert_cell_2d(key, bits);
        let side = 1u64 << bits;
        prop_assert!(x < side && y < side);
        let p = Point::new([
            (x as f64 + 0.5) / side as f64,
            (y as f64 + 0.5) / side as f64,
        ]);
        prop_assert_eq!(curve::hilbert_key_2d(&p, bits), key);
    }
}
