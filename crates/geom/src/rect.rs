//! Axis-aligned `N`-dimensional rectangles (minimum bounding rectangles).
//!
//! The rectangle algebra in this module is the computational core of both
//! the R-tree implementation and the analytical cost model: node extents,
//! query windows and object MBRs are all [`Rect`]s, and the paper's
//! formulas are products over per-dimension extents of such rectangles.

use crate::Point;
use std::fmt;

/// Errors produced by rectangle constructors and workspace checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// A low corner coordinate exceeded the corresponding high coordinate.
    InvertedCorners {
        /// Dimension index at which `lo[k] > hi[k]` was detected.
        dim: usize,
    },
    /// A coordinate was NaN or infinite.
    NotFinite,
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::InvertedCorners { dim } => {
                write!(f, "inverted rectangle corners in dimension {dim}")
            }
            GeomError::NotFinite => write!(f, "rectangle coordinates must be finite"),
        }
    }
}

impl std::error::Error for GeomError {}

/// An axis-aligned rectangle in `N` dimensions, stored as its low and high
/// corners. For `N = 1` this is an interval; the paper's 1-D experiments
/// use exactly that degenerate case.
///
/// Invariant: `lo[k] <= hi[k]` for every dimension `k`, and all
/// coordinates are finite. The checked constructor [`Rect::new`] enforces
/// this; [`Rect::from_corners`] normalizes instead of failing.
///
/// ```
/// use sjcm_geom::Rect;
/// let a = Rect::new([0.0, 0.0], [0.5, 0.5]).unwrap();
/// let b = Rect::new([0.25, 0.25], [1.0, 1.0]).unwrap();
/// assert!(a.intersects(&b));
/// assert_eq!(a.measure(), 0.25);
/// ```
#[derive(Clone, Copy, PartialEq)]
pub struct Rect<const N: usize> {
    lo: [f64; N],
    hi: [f64; N],
}

impl<const N: usize> Rect<N> {
    /// Creates a rectangle, validating that corners are finite and ordered.
    pub fn new(lo: [f64; N], hi: [f64; N]) -> Result<Self, GeomError> {
        if !lo.iter().chain(hi.iter()).all(|c| c.is_finite()) {
            return Err(GeomError::NotFinite);
        }
        for k in 0..N {
            if lo[k] > hi[k] {
                return Err(GeomError::InvertedCorners { dim: k });
            }
        }
        Ok(Self { lo, hi })
    }

    /// Creates a rectangle from two arbitrary corner points, normalizing
    /// the coordinate order per dimension. Panics on non-finite input in
    /// debug builds only (the coordinates are then kept as-is).
    pub fn from_corners(a: Point<N>, b: Point<N>) -> Self {
        debug_assert!(a.is_finite() && b.is_finite(), "non-finite corner");
        Self {
            lo: a.component_min(&b).coords(),
            hi: a.component_max(&b).coords(),
        }
    }

    /// A degenerate rectangle covering exactly one point.
    #[inline]
    pub fn from_point(p: Point<N>) -> Self {
        Self {
            lo: p.coords(),
            hi: p.coords(),
        }
    }

    /// A rectangle centered at `center` with the given per-dimension
    /// side lengths (clamped to be non-negative).
    pub fn centered(center: Point<N>, sides: [f64; N]) -> Self {
        let mut lo = [0.0; N];
        let mut hi = [0.0; N];
        for k in 0..N {
            let half = sides[k].max(0.0) / 2.0;
            lo[k] = center[k] - half;
            hi[k] = center[k] + half;
        }
        Self { lo, hi }
    }

    /// The unit workspace `[0,1]^N` (closed; the half-open convention of
    /// the paper only matters for point *placement*, not for extents).
    #[inline]
    pub fn unit() -> Self {
        Self {
            lo: [0.0; N],
            hi: [1.0; N],
        }
    }

    /// Low corner.
    #[inline]
    pub fn lo(&self) -> Point<N> {
        Point::new(self.lo)
    }

    /// High corner.
    #[inline]
    pub fn hi(&self) -> Point<N> {
        Point::new(self.hi)
    }

    /// Low coordinate in dimension `k`.
    #[inline]
    pub fn lo_k(&self, k: usize) -> f64 {
        self.lo[k]
    }

    /// High coordinate in dimension `k`.
    #[inline]
    pub fn hi_k(&self, k: usize) -> f64 {
        self.hi[k]
    }

    /// Side length in dimension `k` — the paper's `s_k` when applied to a
    /// node rectangle, or `q_k` when applied to a query window.
    #[inline]
    pub fn extent(&self, k: usize) -> f64 {
        self.hi[k] - self.lo[k]
    }

    /// All side lengths.
    #[inline]
    pub fn extents(&self) -> [f64; N] {
        let mut out = [0.0; N];
        for (k, o) in out.iter_mut().enumerate() {
            *o = self.hi[k] - self.lo[k];
        }
        out
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point<N> {
        let mut out = [0.0; N];
        for (k, o) in out.iter_mut().enumerate() {
            *o = 0.5 * (self.lo[k] + self.hi[k]);
        }
        Point::new(out)
    }

    /// The `N`-dimensional Lebesgue measure (length, area, volume, …).
    /// This is the quantity the *density* statistic sums over a data set.
    #[inline]
    pub fn measure(&self) -> f64 {
        let mut m = 1.0;
        for k in 0..N {
            m *= self.extent(k);
        }
        m
    }

    /// Sum of side lengths — half the perimeter in 2-D. The R*-tree split
    /// heuristic minimizes this "margin" value.
    #[inline]
    pub fn margin(&self) -> f64 {
        let mut m = 0.0;
        for k in 0..N {
            m += self.extent(k);
        }
        m
    }

    /// `true` when the two rectangles share at least one point (closed
    /// intersection — touching boundaries count, matching the `overlap`
    /// predicate the paper uses for its joins).
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        for k in 0..N {
            if self.lo[k] > other.hi[k] || other.lo[k] > self.hi[k] {
                return false;
            }
        }
        true
    }

    /// The intersection rectangle, or `None` when disjoint.
    pub fn intersection(&self, other: &Self) -> Option<Self> {
        let mut lo = [0.0; N];
        let mut hi = [0.0; N];
        for k in 0..N {
            lo[k] = self.lo[k].max(other.lo[k]);
            hi[k] = self.hi[k].min(other.hi[k]);
            if lo[k] > hi[k] {
                return None;
            }
        }
        Some(Self { lo, hi })
    }

    /// Measure of the intersection (0 when disjoint). The R*-tree
    /// ChooseSubtree heuristic minimizes the *increase* of this quantity.
    #[inline]
    pub fn intersection_measure(&self, other: &Self) -> f64 {
        let mut m = 1.0;
        for k in 0..N {
            let lo = self.lo[k].max(other.lo[k]);
            let hi = self.hi[k].min(other.hi[k]);
            if lo >= hi {
                return 0.0;
            }
            m *= hi - lo;
        }
        m
    }

    /// The smallest rectangle covering both operands (MBR union).
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        let mut lo = [0.0; N];
        let mut hi = [0.0; N];
        for k in 0..N {
            lo[k] = self.lo[k].min(other.lo[k]);
            hi[k] = self.hi[k].max(other.hi[k]);
        }
        Self { lo, hi }
    }

    /// Grows `self` in place to cover `other`.
    #[inline]
    pub fn expand_to(&mut self, other: &Self) {
        for k in 0..N {
            self.lo[k] = self.lo[k].min(other.lo[k]);
            self.hi[k] = self.hi[k].max(other.hi[k]);
        }
    }

    /// How much `self.measure()` would grow if enlarged to cover `other`
    /// (Guttman's insertion criterion).
    #[inline]
    pub fn enlargement(&self, other: &Self) -> f64 {
        self.union(other).measure() - self.measure()
    }

    /// `true` when `other` lies entirely inside `self` (closed containment).
    #[inline]
    pub fn contains_rect(&self, other: &Self) -> bool {
        for k in 0..N {
            if other.lo[k] < self.lo[k] || other.hi[k] > self.hi[k] {
                return false;
            }
        }
        true
    }

    /// `true` when the point lies inside `self` (closed containment).
    #[inline]
    pub fn contains_point(&self, p: &Point<N>) -> bool {
        for k in 0..N {
            if p[k] < self.lo[k] || p[k] > self.hi[k] {
                return false;
            }
        }
        true
    }

    /// Minkowski enlargement: grows the rectangle by `delta` on *each*
    /// side in every dimension (total extent growth `2·delta` per
    /// dimension). This is the transformed-window construction used for
    /// the distance (ε-)join: `a` is within distance ε of `b` under the
    /// L∞ metric iff `a.minkowski(ε)` intersects `b`.
    pub fn minkowski(&self, delta: f64) -> Self {
        let mut lo = [0.0; N];
        let mut hi = [0.0; N];
        for k in 0..N {
            lo[k] = self.lo[k] - delta;
            hi[k] = self.hi[k] + delta;
            if lo[k] > hi[k] {
                // Negative delta larger than the half-extent collapses the
                // rectangle to its center in this dimension.
                let c = 0.5 * (self.lo[k] + self.hi[k]);
                lo[k] = c;
                hi[k] = c;
            }
        }
        Self { lo, hi }
    }

    /// Minimum squared Euclidean distance between the two rectangles
    /// (0 when they intersect).
    pub fn min_dist2(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for k in 0..N {
            let gap = if other.lo[k] > self.hi[k] {
                other.lo[k] - self.hi[k]
            } else if self.lo[k] > other.hi[k] {
                self.lo[k] - other.hi[k]
            } else {
                0.0
            };
            acc += gap * gap;
        }
        acc
    }

    /// `true` when the rectangles are within Euclidean distance `eps` of
    /// each other — the predicate of the distance join.
    #[inline]
    pub fn within_distance(&self, other: &Self, eps: f64) -> bool {
        self.min_dist2(other) <= eps * eps
    }

    /// Clamps the rectangle to the unit workspace `[0,1]^N`, returning
    /// `None` when it lies entirely outside.
    pub fn clamp_to_unit(&self) -> Option<Self> {
        self.intersection(&Self::unit())
    }

    /// `true` when the rectangle lies inside the unit workspace.
    #[inline]
    pub fn in_unit_space(&self) -> bool {
        Self::unit().contains_rect(self)
    }

    /// Validates the internal invariant. Always `true` for rectangles
    /// produced by this crate's constructors; exposed so the storage layer
    /// can check deserialized rectangles.
    pub fn is_valid(&self) -> bool {
        (0..N).all(|k| self.lo[k] <= self.hi[k] && self.lo[k].is_finite() && self.hi[k].is_finite())
    }
}

impl<const N: usize> fmt::Debug for Rect<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rect[{:?} .. {:?}]", self.lo, self.hi)
    }
}

/// Computes the minimum bounding rectangle of a non-empty iterator of
/// rectangles; `None` for an empty iterator.
pub fn mbr_of<const N: usize>(rects: impl IntoIterator<Item = Rect<N>>) -> Option<Rect<N>> {
    let mut it = rects.into_iter();
    let mut acc = it.next()?;
    for r in it {
        acc.expand_to(&r);
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(lo: [f64; 2], hi: [f64; 2]) -> Rect<2> {
        Rect::new(lo, hi).unwrap()
    }

    #[test]
    fn new_rejects_inverted_corners() {
        assert_eq!(
            Rect::new([1.0, 0.0], [0.0, 1.0]),
            Err(GeomError::InvertedCorners { dim: 0 })
        );
    }

    #[test]
    fn new_rejects_nan() {
        assert_eq!(Rect::new([f64::NAN], [1.0]), Err(GeomError::NotFinite));
        assert_eq!(Rect::new([0.0], [f64::INFINITY]), Err(GeomError::NotFinite));
    }

    #[test]
    fn from_corners_normalizes() {
        let r = Rect::from_corners(Point::new([1.0, 0.0]), Point::new([0.0, 1.0]));
        assert_eq!(r.lo().coords(), [0.0, 0.0]);
        assert_eq!(r.hi().coords(), [1.0, 1.0]);
    }

    #[test]
    fn centered_constructor() {
        let r = Rect::centered(Point::new([0.5, 0.5]), [0.2, 0.4]);
        assert!((r.lo_k(0) - 0.4).abs() < 1e-12);
        assert!((r.hi_k(1) - 0.7).abs() < 1e-12);
        assert!((r.measure() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn measure_and_margin() {
        let r = r2([0.0, 0.0], [2.0, 3.0]);
        assert_eq!(r.measure(), 6.0);
        assert_eq!(r.margin(), 5.0);
    }

    #[test]
    fn degenerate_interval_has_zero_measure_but_extent_margin() {
        let r = Rect::<1>::new([0.25], [0.75]).unwrap();
        assert_eq!(r.measure(), 0.5); // 1-D measure is length
        let point_rect = Rect::from_point(Point::new([0.5, 0.5]));
        assert_eq!(point_rect.measure(), 0.0);
    }

    #[test]
    fn intersects_includes_touching_boundaries() {
        let a = r2([0.0, 0.0], [0.5, 0.5]);
        let b = r2([0.5, 0.0], [1.0, 0.5]);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection_measure(&b), 0.0);
    }

    #[test]
    fn disjoint_rects_do_not_intersect() {
        let a = r2([0.0, 0.0], [0.4, 0.4]);
        let b = r2([0.5, 0.5], [1.0, 1.0]);
        assert!(!a.intersects(&b));
        assert_eq!(a.intersection(&b), None);
        assert_eq!(a.intersection_measure(&b), 0.0);
    }

    #[test]
    fn intersection_measure_matches_intersection() {
        let a = r2([0.0, 0.0], [0.6, 0.6]);
        let b = r2([0.4, 0.2], [1.0, 0.5]);
        let i = a.intersection(&b).unwrap();
        assert!((i.measure() - a.intersection_measure(&b)).abs() < 1e-12);
        assert!((a.intersection_measure(&b) - 0.2 * 0.3).abs() < 1e-12);
    }

    #[test]
    fn union_covers_both() {
        let a = r2([0.0, 0.1], [0.3, 0.2]);
        let b = r2([0.5, 0.0], [0.9, 0.4]);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u.lo().coords(), [0.0, 0.0]);
        assert_eq!(u.hi().coords(), [0.9, 0.4]);
    }

    #[test]
    fn enlargement_is_zero_for_contained() {
        let a = r2([0.0, 0.0], [1.0, 1.0]);
        let b = r2([0.2, 0.2], [0.4, 0.4]);
        assert_eq!(a.enlargement(&b), 0.0);
        assert!(b.enlargement(&a) > 0.0);
    }

    #[test]
    fn containment_is_closed() {
        let a = r2([0.0, 0.0], [1.0, 1.0]);
        assert!(a.contains_rect(&a));
        assert!(a.contains_point(&Point::new([1.0, 0.0])));
        assert!(!a.contains_point(&Point::new([1.0001, 0.0])));
    }

    #[test]
    fn minkowski_grows_each_side() {
        let a = r2([0.4, 0.4], [0.6, 0.6]);
        let g = a.minkowski(0.1);
        assert!((g.extent(0) - 0.4).abs() < 1e-12);
        assert!(g.contains_rect(&a));
    }

    #[test]
    fn minkowski_negative_collapses_to_center() {
        let a = r2([0.4, 0.4], [0.6, 0.6]);
        let g = a.minkowski(-0.5);
        assert_eq!(g.lo().coords(), [0.5, 0.5]);
        assert_eq!(g.hi().coords(), [0.5, 0.5]);
    }

    #[test]
    fn min_dist2_zero_when_intersecting() {
        let a = r2([0.0, 0.0], [0.5, 0.5]);
        let b = r2([0.25, 0.25], [1.0, 1.0]);
        assert_eq!(a.min_dist2(&b), 0.0);
    }

    #[test]
    fn min_dist2_diagonal_gap() {
        let a = r2([0.0, 0.0], [0.1, 0.1]);
        let b = r2([0.4, 0.5], [1.0, 1.0]);
        // gaps: 0.3 in x, 0.4 in y
        assert!((a.min_dist2(&b) - 0.25).abs() < 1e-12);
        assert!(a.within_distance(&b, 0.5 + 1e-9));
        assert!(!a.within_distance(&b, 0.49));
    }

    #[test]
    fn distance_predicate_agrees_with_minkowski_under_linf() {
        // Under L∞, within_distance(eps) == minkowski(eps).intersects.
        let a = r2([0.0, 0.0], [0.1, 0.1]);
        let b = r2([0.25, 0.05], [0.3, 0.6]);
        let eps = 0.2;
        // Here the gap is axis-aligned, so L2 and L∞ agree.
        assert_eq!(a.within_distance(&b, eps), a.minkowski(eps).intersects(&b));
    }

    #[test]
    fn clamp_to_unit() {
        let r = r2([-0.5, 0.5], [0.5, 1.5]);
        let c = r.clamp_to_unit().unwrap();
        assert_eq!(c.lo().coords(), [0.0, 0.5]);
        assert_eq!(c.hi().coords(), [0.5, 1.0]);
        let outside = r2([1.5, 1.5], [2.0, 2.0]);
        assert_eq!(outside.clamp_to_unit(), None);
    }

    #[test]
    fn mbr_of_iterator() {
        let rects = vec![
            r2([0.1, 0.1], [0.2, 0.2]),
            r2([0.5, 0.0], [0.6, 0.9]),
            r2([0.0, 0.3], [0.05, 0.4]),
        ];
        let m = mbr_of(rects).unwrap();
        assert_eq!(m.lo().coords(), [0.0, 0.0]);
        assert_eq!(m.hi().coords(), [0.6, 0.9]);
        assert_eq!(mbr_of(Vec::<Rect<2>>::new()), None);
    }

    #[test]
    fn one_dimensional_interval_algebra() {
        let a = Rect::<1>::new([0.0], [0.5]).unwrap();
        let b = Rect::<1>::new([0.4], [0.9]).unwrap();
        assert!(a.intersects(&b));
        assert!((a.intersection(&b).unwrap().measure() - 0.1).abs() < 1e-12);
        assert!((a.union(&b).measure() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn four_dimensional_measure() {
        let r = Rect::<4>::new([0.0; 4], [0.5; 4]).unwrap();
        assert!((r.measure() - 0.0625).abs() < 1e-12);
        assert_eq!(r.margin(), 2.0);
    }
}
