//! Batched structure-of-arrays rectangle kernels.
//!
//! The join executors spend their CPU time answering one question many
//! times in a row: *which of these rectangles intersect this one?* The
//! array-of-structs [`Rect`] layout answers it one rectangle at a time,
//! with a short-circuiting per-dimension loop whose branches the CPU
//! mispredicts on mixed workloads. This module restructures a rectangle
//! set into per-dimension `lo`/`hi` coordinate slabs ([`RectBatch`]) and
//! evaluates the predicate over **chunks of 64 candidates at once**,
//! branch-free, so LLVM autovectorizes the comparison loops into SIMD
//! compares and mask ANDs on any stable toolchain (no `std::simd`
//! required). Kernel output is a bitmask ([`OverlapMask`]); iterating
//! its set bits in ascending order reproduces exactly the candidate
//! order a scalar loop would visit, which is what lets the join
//! executors swap the kernel in without perturbing a single result
//! pair, NA or DA tally.
//!
//! Three kernel families are provided:
//!
//! * [`RectBatch::overlap_mask`] / [`RectBatch::overlap_mask_tail`] —
//!   one-vs-many closed-intersection tests. The `_tail` variant skips
//!   dimension 0, for plane-sweep consumers whose candidate range
//!   already guarantees dimension-0 overlap (see below).
//! * [`RectBatch::within_mask`] — one-vs-many Euclidean
//!   distance-within-ε tests (the distance-join predicate), evaluated
//!   as a branch-free clamped-gap accumulation that reproduces
//!   [`Rect::min_dist2`] bit-for-bit.
//! * [`RectBatch::ref_cell_mask`] — the fused intersect-and-reference-
//!   point kernel for PBSM duplicate suppression: one pass computes the
//!   intersection test *and* the unit-grid cell containing the
//!   intersection's low corner, replacing the intersects-then-
//!   `intersection().expect(..)` double scan.
//!
//! # Why `_tail` is exact for plane sweeps
//!
//! A sweep along dimension 0 considers, for an anchor `a`, only
//! candidates `b` with `a.lo₀ ≤ b.lo₀ ≤ a.hi₀` (both lists sorted by
//! `lo₀`, the anchor is the side with the smaller `lo₀`, and the scan
//! stops at `b.lo₀ > a.hi₀`). Within that range `b.lo₀ ≤ a.hi₀` and
//! `a.lo₀ ≤ b.lo₀ ≤ b.hi₀`, so the dimension-0 test of
//! [`Rect::intersects`] is *always true* — evaluating it again is pure
//! waste. The `_tail` kernels test dimensions `1..N` only, which for
//! the paper's 2-D workloads halves the comparison work on top of the
//! vectorization win.

use crate::Rect;

/// Candidates per kernel chunk — one `u64` mask word.
const CHUNK: usize = 64;

/// A bitmask over a candidate range, one bit per candidate, produced by
/// the [`RectBatch`] kernels. Bit `i` corresponds to candidate
/// `start + i` of the range the kernel was invoked on.
#[derive(Debug, Clone, Default)]
pub struct OverlapMask {
    words: Vec<u64>,
    len: usize,
}

impl OverlapMask {
    /// An empty mask (reusable across kernel calls; the kernels resize).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of candidates covered by the mask.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the mask covers no candidates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits (qualifying candidates).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether candidate `i` (range-relative) qualified.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / CHUNK] >> (i % CHUNK) & 1 == 1
    }

    /// Iterates the set bit positions in ascending order — the same
    /// order a scalar candidate loop visits, which is what keeps
    /// batched consumers byte-identical to their scalar twins.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(w, &word)| SetBits {
                word,
                base: w * CHUNK,
            })
    }

    /// Resets the mask to cover `len` candidates, all bits clear.
    fn reset(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(len.div_ceil(CHUNK), 0);
    }
}

/// Iterator over the set bits of one mask word.
struct SetBits {
    word: u64,
    base: usize,
}

impl Iterator for SetBits {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + bit)
    }
}

/// A rectangle set in structure-of-arrays layout: per dimension one
/// contiguous slab of low coordinates and one of high coordinates.
///
/// ```
/// use sjcm_geom::{Rect, RectBatch, OverlapMask};
/// let rects = [
///     Rect::new([0.0, 0.0], [0.2, 0.2]).unwrap(),
///     Rect::new([0.5, 0.5], [0.9, 0.9]).unwrap(),
///     Rect::new([0.1, 0.1], [0.6, 0.6]).unwrap(),
/// ];
/// let mut batch = RectBatch::new();
/// batch.extend(rects.iter().copied());
/// let q = Rect::new([0.15, 0.15], [0.4, 0.4]).unwrap();
/// let mut mask = OverlapMask::new();
/// batch.overlap_mask(&q, 0, batch.len(), &mut mask);
/// let hits: Vec<usize> = mask.iter_set().collect();
/// assert_eq!(hits, vec![0, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct RectBatch<const N: usize> {
    lo: [Vec<f64>; N],
    hi: [Vec<f64>; N],
    len: usize,
}

impl<const N: usize> Default for RectBatch<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> RectBatch<N> {
    /// An empty batch.
    pub fn new() -> Self {
        Self {
            lo: std::array::from_fn(|_| Vec::new()),
            hi: std::array::from_fn(|_| Vec::new()),
            len: 0,
        }
    }

    /// Number of rectangles in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the batch holds no rectangles.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Clears the batch, keeping the slab allocations for reuse — the
    /// hot consumers refill one scratch batch per node visit.
    pub fn clear(&mut self) {
        for k in 0..N {
            self.lo[k].clear();
            self.hi[k].clear();
        }
        self.len = 0;
    }

    /// Appends one rectangle.
    #[inline]
    pub fn push(&mut self, r: &Rect<N>) {
        for k in 0..N {
            self.lo[k].push(r.lo_k(k));
            self.hi[k].push(r.hi_k(k));
        }
        self.len += 1;
    }

    /// Appends every rectangle of the iterator.
    pub fn extend(&mut self, rects: impl IntoIterator<Item = Rect<N>>) {
        for r in rects {
            self.push(&r);
        }
    }

    /// Reconstructs rectangle `i` (corners are stored exactly, so this
    /// is lossless).
    pub fn get(&self, i: usize) -> Rect<N> {
        debug_assert!(i < self.len);
        Rect::from_corners(
            crate::Point::new(std::array::from_fn(|k| self.lo[k][i])),
            crate::Point::new(std::array::from_fn(|k| self.hi[k][i])),
        )
    }

    /// The low-coordinate slab of dimension `k` — plane-sweep consumers
    /// scan this directly to delimit candidate ranges.
    #[inline]
    pub fn lo_slab(&self, k: usize) -> &[f64] {
        &self.lo[k]
    }

    /// The high-coordinate slab of dimension `k`.
    #[inline]
    pub fn hi_slab(&self, k: usize) -> &[f64] {
        &self.hi[k]
    }

    /// One-vs-many closed-intersection kernel over candidates
    /// `start..end`: bit `i` of `mask` is set iff `q.intersects(&self[start + i])`.
    pub fn overlap_mask(&self, q: &Rect<N>, start: usize, end: usize, mask: &mut OverlapMask) {
        self.overlap_mask_from(q, 0, start, end, mask);
    }

    /// Like [`RectBatch::overlap_mask`] but testing dimensions `1..N`
    /// only — exact for plane-sweep consumers whose candidate range
    /// already implies dimension-0 overlap (see the module docs). For
    /// `N = 1` every candidate in the range qualifies.
    pub fn overlap_mask_tail(&self, q: &Rect<N>, start: usize, end: usize, mask: &mut OverlapMask) {
        self.overlap_mask_from(q, 1, start, end, mask);
    }

    /// The shared chunked kernel: tests dimensions `first_dim..N`.
    ///
    /// Each 64-candidate chunk evaluates one branch-free comparison
    /// loop per dimension over a byte-lane accumulator, then packs the
    /// lanes into the mask word — the shape LLVM turns into vector
    /// compares and ANDs.
    fn overlap_mask_from(
        &self,
        q: &Rect<N>,
        first_dim: usize,
        start: usize,
        end: usize,
        mask: &mut OverlapMask,
    ) {
        debug_assert!(start <= end && end <= self.len);
        mask.reset(end - start);
        let mut base = start;
        let mut word = 0usize;
        while base < end {
            let len = (end - base).min(CHUNK);
            let mut lanes = [1u8; CHUNK];
            for k in first_dim..N {
                let q_lo = q.lo_k(k);
                let q_hi = q.hi_k(k);
                let lo = &self.lo[k][base..base + len];
                let hi = &self.hi[k][base..base + len];
                for i in 0..len {
                    lanes[i] &= ((lo[i] <= q_hi) & (q_lo <= hi[i])) as u8;
                }
            }
            mask.words[word] = pack_lanes(&lanes, len);
            word += 1;
            base += len;
        }
    }

    /// One-vs-many Euclidean distance kernel: bit `i` is set iff
    /// `q.within_distance(&self[start + i], eps)`. The per-dimension gap
    /// is the branch-free `max(b.lo − q.hi, q.lo − b.hi, 0)` (at most
    /// one of the two differences is positive for a valid rectangle),
    /// so the accumulated squared distance is bit-identical to the
    /// branching scalar [`Rect::min_dist2`].
    pub fn within_mask(
        &self,
        q: &Rect<N>,
        eps: f64,
        start: usize,
        end: usize,
        mask: &mut OverlapMask,
    ) {
        debug_assert!(start <= end && end <= self.len);
        mask.reset(end - start);
        let eps2 = eps * eps;
        let mut base = start;
        let mut word = 0usize;
        while base < end {
            let len = (end - base).min(CHUNK);
            let mut d2 = [0.0f64; CHUNK];
            for k in 0..N {
                let q_lo = q.lo_k(k);
                let q_hi = q.hi_k(k);
                let lo = &self.lo[k][base..base + len];
                let hi = &self.hi[k][base..base + len];
                for i in 0..len {
                    let gap = (lo[i] - q_hi).max(q_lo - hi[i]).max(0.0);
                    d2[i] += gap * gap;
                }
            }
            let mut lanes = [0u8; CHUNK];
            for i in 0..len {
                lanes[i] = (d2[i] <= eps2) as u8;
            }
            mask.words[word] = pack_lanes(&lanes, len);
            word += 1;
            base += len;
        }
    }

    /// Fused intersect-and-reference-point kernel (PBSM duplicate
    /// suppression): in a single pass over candidates `start..end`,
    /// sets bit `i` of `mask` iff `q` intersects candidate `start + i`
    /// **and** the unit-grid cell (grid `grid × … × grid`, row-major)
    /// containing the low corner of their intersection is `cell`.
    ///
    /// Dimension 0 is *not* re-tested for overlap (sweep consumers —
    /// see the module docs) but its intersection-low coordinate is of
    /// course still part of the reference point. The cell of the
    /// reference point is computed exactly as [`unit_grid_cell`] does
    /// on the scalar path: `clamp(0,1) · grid`, truncated, clamped to
    /// `grid − 1`, accumulated row-major from the highest dimension
    /// down — but only for candidates that survive the vectorized
    /// overlap pass. The float→integer cell conversion does not
    /// vectorize, and on realistic sweeps only a few percent of the
    /// dimension-0 candidate run truly intersects, so hoisting the
    /// conversion out of the dense loop is what makes the fused kernel
    /// faster than the scalar intersect-then-`intersection()` pair
    /// rather than slower.
    pub fn ref_cell_mask(
        &self,
        q: &Rect<N>,
        start: usize,
        end: usize,
        grid: usize,
        cell: usize,
        mask: &mut OverlapMask,
    ) {
        debug_assert!(start <= end && end <= self.len);
        mask.reset(end - start);
        let g = grid as f64;
        let mut base = start;
        let mut word = 0usize;
        while base < end {
            let len = (end - base).min(CHUNK);
            let mut lanes = [1u8; CHUNK];
            for k in 1..N {
                let q_lo = q.lo_k(k);
                let q_hi = q.hi_k(k);
                let lo = &self.lo[k][base..base + len];
                let hi = &self.hi[k][base..base + len];
                for i in 0..len {
                    lanes[i] &= ((lo[i] <= q_hi) & (q_lo <= hi[i])) as u8;
                }
            }
            // Sparse pass: reference cells for the overlap survivors.
            let mut bits = pack_lanes(&lanes, len);
            let mut out = 0u64;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let mut idx = 0usize;
                for k in (0..N).rev() {
                    let ref_k = q.lo_k(k).max(self.lo[k][base + i]);
                    let slot = ((ref_k.clamp(0.0, 1.0) * g) as usize).min(grid - 1);
                    idx = idx * grid + slot;
                }
                out |= u64::from(idx == cell) << i;
            }
            mask.words[word] = out;
            word += 1;
            base += len;
        }
    }

    /// Sweep-fused variant of [`RectBatch::ref_cell_mask`] for plane
    /// sweeps over *long* candidate runs (PBSM cells): instead of
    /// scanning serially for the run end `lo₀ ≤ limit` and then masking
    /// the run, the bound is folded into the vectorized lanes and
    /// candidates are consumed chunk by chunk starting at `start`,
    /// stopping at the first chunk whose last candidate is past the
    /// bound (inputs are sorted by `lo₀`, so the run cannot resume).
    /// One pass over memory, no separate end scan.
    ///
    /// `emit` receives the *batch-absolute* index of every candidate
    /// that (a) starts within the run, (b) overlaps `q` in dimensions
    /// `1..N` (dimension 0 is implied — module docs), and (c) has its
    /// intersection reference point in `cell`, in ascending order —
    /// exactly the candidates, and exactly the order, of the scalar
    /// sweep loop.
    pub fn sweep_ref_cells<F: FnMut(usize)>(
        &self,
        q: &Rect<N>,
        start: usize,
        limit: f64,
        grid: usize,
        cell: usize,
        mut emit: F,
    ) {
        debug_assert!(start <= self.len);
        // Short-run fallback: when the run ends within the next few
        // candidates (high grid resolutions, sparse cells), a 64-lane
        // chunk does ~10× the necessary lane work. Probe the sorted
        // `lo₀` slab a few entries ahead and take a plain scalar loop
        // for runs the chunk machinery cannot amortize. Same
        // predicates, same order — output is identical either way.
        const SHORT_RUN: usize = 16;
        if start == self.len {
            return;
        }
        let probe = (start + SHORT_RUN - 1).min(self.len - 1);
        if self.lo[0][probe] > limit {
            let mut i = start;
            while i < self.len && self.lo[0][i] <= limit {
                let tail_overlap =
                    (1..N).all(|k| self.lo[k][i] <= q.hi_k(k) && q.lo_k(k) <= self.hi[k][i]);
                if tail_overlap && self.ref_cell_hit(q, i, grid, cell) {
                    emit(i);
                }
                i += 1;
            }
            return;
        }
        let mut base = start;
        while base < self.len {
            let len = (self.len - base).min(CHUNK);
            let mut lanes = [0u8; CHUNK];
            let lo0 = &self.lo[0][base..base + len];
            if N > 1 {
                // Fused first pass: run bound and dimension-1 overlap.
                let q_lo = q.lo_k(1);
                let q_hi = q.hi_k(1);
                let lo = &self.lo[1][base..base + len];
                let hi = &self.hi[1][base..base + len];
                for i in 0..len {
                    lanes[i] = ((lo0[i] <= limit) & (lo[i] <= q_hi) & (q_lo <= hi[i])) as u8;
                }
            } else {
                for i in 0..len {
                    lanes[i] = (lo0[i] <= limit) as u8;
                }
            }
            for k in 2..N {
                let q_lo = q.lo_k(k);
                let q_hi = q.hi_k(k);
                let lo = &self.lo[k][base..base + len];
                let hi = &self.hi[k][base..base + len];
                for i in 0..len {
                    lanes[i] &= ((lo[i] <= q_hi) & (q_lo <= hi[i])) as u8;
                }
            }
            // Sparse pass: reference cells for the overlap survivors,
            // skipping zero lanes eight at a time (unset lanes past
            // `len` were never written, so they stay zero).
            for (group, bytes) in lanes.chunks_exact(8).enumerate() {
                if u64::from_le_bytes(bytes.try_into().expect("8-byte group")) == 0 {
                    continue;
                }
                for (b, &lane) in bytes.iter().enumerate() {
                    let i = base + group * 8 + b;
                    if lane != 0 && self.ref_cell_hit(q, i, grid, cell) {
                        emit(i);
                    }
                }
            }
            if self.lo[0][base + len - 1] > limit {
                return;
            }
            base += len;
        }
    }

    /// Scalar reference-point check for one candidate: is the unit-grid
    /// cell of the low corner of the `q`∩candidate intersection `cell`?
    /// (Overlap is assumed — callers test it first.) Bit-for-bit the
    /// [`unit_grid_cell`] computation of the scalar PBSM path.
    #[inline]
    fn ref_cell_hit(&self, q: &Rect<N>, i: usize, grid: usize, cell: usize) -> bool {
        let g = grid as f64;
        let mut idx = 0usize;
        for k in (0..N).rev() {
            let ref_k = q.lo_k(k).max(self.lo[k][i]);
            let slot = ((ref_k.clamp(0.0, 1.0) * g) as usize).min(grid - 1);
            idx = idx * grid + slot;
        }
        idx == cell
    }
}

/// Builds a batch from a rectangle iterator.
impl<const N: usize> FromIterator<Rect<N>> for RectBatch<N> {
    fn from_iter<I: IntoIterator<Item = Rect<N>>>(iter: I) -> Self {
        let mut batch = Self::new();
        batch.extend(iter);
        batch
    }
}

/// Packs `len` byte lanes (0 or 1) into the low bits of one mask word.
#[inline]
fn pack_lanes(lanes: &[u8; CHUNK], len: usize) -> u64 {
    let mut word = 0u64;
    for (i, &lane) in lanes[..len].iter().enumerate() {
        word |= (lane as u64) << i;
    }
    word
}

/// Row-major index of the unit-grid cell containing point `p` (clamped
/// into `[0,1]^N`, `grid` cells per dimension) — the reference-point
/// rule's cell function, shared by the scalar PBSM path and the fused
/// [`RectBatch::ref_cell_mask`] kernel so the two agree bit-for-bit.
pub fn unit_grid_cell<const N: usize>(p: &[f64; N], grid: usize) -> usize {
    let mut idx = 0usize;
    for k in (0..N).rev() {
        let i = ((p[k].clamp(0.0, 1.0) * grid as f64) as usize).min(grid - 1);
        idx = idx * grid + i;
    }
    idx
}

/// Many-vs-many overlap kernel: for every rectangle of `queries`, tests
/// all of `candidates` and invokes `emit(query_index, &mask)` with the
/// query's candidate bitmask. Equivalent to the classic nested loop
/// with the inner loop vectorized; query order (outer) and mask-bit
/// order (inner, ascending) reproduce the nested loop's visit order
/// exactly.
pub fn overlap_many_vs_many<const N: usize>(
    queries: &RectBatch<N>,
    candidates: &RectBatch<N>,
    mask: &mut OverlapMask,
    mut emit: impl FnMut(usize, &OverlapMask),
) {
    for qi in 0..queries.len() {
        let q = queries.get(qi);
        candidates.overlap_mask(&q, 0, candidates.len(), mask);
        emit(qi, mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rects_2d() -> Vec<Rect<2>> {
        vec![
            Rect::new([0.0, 0.0], [0.25, 0.25]).unwrap(),
            Rect::new([0.25, 0.0], [0.5, 0.25]).unwrap(), // touches [0]
            Rect::new([0.6, 0.6], [0.9, 0.9]).unwrap(),
            Rect::new([0.2, 0.2], [0.2, 0.2]).unwrap(), // degenerate point
            Rect::new([0.0, 0.5], [1.0, 0.5]).unwrap(), // degenerate line
        ]
    }

    #[test]
    fn overlap_mask_agrees_with_scalar() {
        let rects = rects_2d();
        let batch: RectBatch<2> = rects.iter().copied().collect();
        let mut mask = OverlapMask::new();
        for q in &rects {
            batch.overlap_mask(q, 0, batch.len(), &mut mask);
            for (i, r) in rects.iter().enumerate() {
                assert_eq!(mask.get(i), q.intersects(r), "q={q:?} r={r:?}");
            }
        }
    }

    #[test]
    fn mask_iter_set_is_ascending_and_complete() {
        let rects = rects_2d();
        let batch: RectBatch<2> = rects.iter().copied().collect();
        let q = Rect::new([0.0, 0.0], [1.0, 1.0]).unwrap();
        let mut mask = OverlapMask::new();
        batch.overlap_mask(&q, 0, batch.len(), &mut mask);
        let set: Vec<usize> = mask.iter_set().collect();
        assert_eq!(set, vec![0, 1, 2, 3, 4]);
        assert_eq!(mask.count(), 5);
    }

    #[test]
    fn subrange_masks_are_range_relative() {
        let rects = rects_2d();
        let batch: RectBatch<2> = rects.iter().copied().collect();
        let q = Rect::new([0.0, 0.0], [0.3, 0.3]).unwrap();
        let mut mask = OverlapMask::new();
        batch.overlap_mask(&q, 1, 4, &mut mask);
        assert_eq!(mask.len(), 3);
        let set: Vec<usize> = mask.iter_set().collect();
        // Range-relative indices: rects[1] and rects[3] qualify.
        assert_eq!(set, vec![0, 2]);
    }

    #[test]
    fn chunk_boundaries_are_handled() {
        // > 64 candidates exercises the multi-word path; every third
        // rectangle intersects the query.
        let rects: Vec<Rect<1>> = (0..200)
            .map(|i| {
                let lo = if i % 3 == 0 { 0.4 } else { 0.8 };
                Rect::new([lo], [lo + 0.1]).unwrap()
            })
            .collect();
        let batch: RectBatch<1> = rects.iter().copied().collect();
        let q = Rect::new([0.0], [0.5]).unwrap();
        let mut mask = OverlapMask::new();
        batch.overlap_mask(&q, 0, batch.len(), &mut mask);
        for (i, r) in rects.iter().enumerate() {
            assert_eq!(mask.get(i), q.intersects(r), "i={i}");
        }
        assert_eq!(
            mask.count(),
            rects.iter().filter(|r| q.intersects(r)).count()
        );
    }

    #[test]
    fn within_mask_agrees_with_scalar() {
        let rects = rects_2d();
        let batch: RectBatch<2> = rects.iter().copied().collect();
        let q = Rect::new([0.3, 0.3], [0.4, 0.4]).unwrap();
        let mut mask = OverlapMask::new();
        for eps in [0.0, 0.1, 0.25, 1.0] {
            batch.within_mask(&q, eps, 0, batch.len(), &mut mask);
            for (i, r) in rects.iter().enumerate() {
                assert_eq!(mask.get(i), q.within_distance(r, eps), "eps={eps} r={r:?}");
            }
        }
    }

    #[test]
    fn tail_mask_ignores_dimension_zero() {
        let batch: RectBatch<2> = [Rect::new([0.9, 0.0], [1.0, 0.1]).unwrap()]
            .into_iter()
            .collect();
        let q = Rect::new([0.0, 0.0], [0.1, 0.1]).unwrap();
        let mut mask = OverlapMask::new();
        batch.overlap_mask(&q, 0, 1, &mut mask);
        assert!(!mask.get(0), "full kernel sees the dim-0 gap");
        batch.overlap_mask_tail(&q, 0, 1, &mut mask);
        assert!(mask.get(0), "tail kernel trusts the sweep's dim-0 range");
    }

    #[test]
    fn ref_cell_mask_matches_scalar_composition() {
        let rects = rects_2d();
        let batch: RectBatch<2> = rects.iter().copied().collect();
        let q = Rect::new([0.1, 0.1], [0.7, 0.7]).unwrap();
        let mut mask = OverlapMask::new();
        for grid in [1usize, 2, 4, 7] {
            for cell in 0..grid.pow(2) {
                batch.ref_cell_mask(&q, 0, batch.len(), grid, cell, &mut mask);
                for (i, r) in rects.iter().enumerate() {
                    let expect = match q.intersection(r) {
                        // The kernel does not re-test dimension 0; only
                        // feed it dim-0-overlapping candidates here.
                        Some(inter) => unit_grid_cell(&inter.lo().coords(), grid) == cell,
                        None => {
                            // Disjoint only in dims >= 1 must be masked out.
                            if q.lo_k(0) <= r.hi_k(0) && r.lo_k(0) <= q.hi_k(0) {
                                false
                            } else {
                                continue;
                            }
                        }
                    };
                    assert_eq!(mask.get(i), expect, "grid={grid} cell={cell} r={r:?}");
                }
            }
        }
    }

    #[test]
    fn sweep_ref_cells_matches_scalar_sweep_loop() {
        // 200 candidates sorted by lo₀ — runs cross the 64-candidate
        // chunk boundary; narrow limits take the short-run fallback,
        // wide ones the chunked path. Both must reproduce the scalar
        // sweep inner loop (run bound → intersection → reference cell)
        // exactly, emission order included.
        let mut rects: Vec<Rect<2>> = (0..200)
            .map(|i| {
                let lo = i as f64 / 210.0;
                let y = (i % 7) as f64 / 8.0;
                Rect::new([lo, y], [lo + 0.03, y + 0.2]).unwrap()
            })
            .collect();
        rects.sort_by(|a, b| a.lo_k(0).total_cmp(&b.lo_k(0)));
        let batch: RectBatch<2> = rects.iter().copied().collect();
        let q = Rect::new([0.1, 0.15], [0.4, 0.55]).unwrap();
        for grid in [1usize, 3, 5] {
            for start in [0usize, 10, 64, 199, 200] {
                // Narrow limit (run < 16 → fallback) and wide limits
                // (multi-chunk runs), including one past every lo₀.
                for limit in [0.12, 0.4, 0.75, 2.0] {
                    for cell in 0..grid.pow(2) {
                        let mut got = Vec::new();
                        batch.sweep_ref_cells(&q, start, limit, grid, cell, |i| got.push(i));
                        let mut expect = Vec::new();
                        let mut i = start;
                        while i < rects.len() && rects[i].lo_k(0) <= limit {
                            if let Some(inter) = q.intersection(&rects[i]) {
                                if unit_grid_cell(&inter.lo().coords(), grid) == cell {
                                    expect.push(i);
                                }
                            }
                            i += 1;
                        }
                        // Like the sweep consumers, only dim-0-overlap-
                        // implied candidates are meaningful; with this
                        // q and these limits the scalar filter above is
                        // the exact reference (q spans lo₀ 0.1..0.4 and
                        // every run starts inside it or emits nothing).
                        let expect: Vec<usize> = expect
                            .into_iter()
                            .filter(|&i| {
                                rects[i].lo_k(0) <= q.hi_k(0) && q.lo_k(0) <= rects[i].hi_k(0)
                            })
                            .collect();
                        let got: Vec<usize> = got
                            .into_iter()
                            .filter(|&i| {
                                rects[i].lo_k(0) <= q.hi_k(0) && q.lo_k(0) <= rects[i].hi_k(0)
                            })
                            .collect();
                        assert_eq!(
                            got, expect,
                            "grid={grid} cell={cell} start={start} limit={limit}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn many_vs_many_matches_nested_loop() {
        let left = rects_2d();
        let right: Vec<Rect<2>> = (0..10)
            .map(|i| {
                let lo = i as f64 / 10.0;
                Rect::new([lo, lo], [lo + 0.15, lo + 0.15]).unwrap()
            })
            .collect();
        let qb: RectBatch<2> = right.iter().copied().collect();
        let cb: RectBatch<2> = left.iter().copied().collect();
        let mut got = Vec::new();
        let mut mask = OverlapMask::new();
        overlap_many_vs_many(&qb, &cb, &mut mask, |qi, m| {
            for ci in m.iter_set() {
                got.push((qi, ci));
            }
        });
        let mut expect = Vec::new();
        for (qi, q) in right.iter().enumerate() {
            for (ci, c) in left.iter().enumerate() {
                if q.intersects(c) {
                    expect.push((qi, ci));
                }
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn clear_keeps_capacity_and_empties() {
        let mut batch: RectBatch<2> = rects_2d().into_iter().collect();
        assert_eq!(batch.len(), 5);
        batch.clear();
        assert!(batch.is_empty());
        batch.push(&Rect::new([0.0, 0.0], [1.0, 1.0]).unwrap());
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.get(0), Rect::new([0.0, 0.0], [1.0, 1.0]).unwrap());
    }

    #[test]
    fn unit_grid_cell_clamps_and_orders_row_major() {
        assert_eq!(unit_grid_cell(&[0.0, 0.0], 4), 0);
        assert_eq!(unit_grid_cell(&[0.99, 0.0], 4), 3);
        assert_eq!(unit_grid_cell(&[0.0, 0.99], 4), 12);
        assert_eq!(unit_grid_cell(&[1.0, 1.0], 4), 15); // clamped, not 16
        assert_eq!(unit_grid_cell(&[-3.0, 2.0], 4), 12);
    }
}
