//! The *density* statistic of a rectangle set and unit-workspace helpers.
//!
//! The paper's cost model is a function of exactly two primitive data
//! properties: the cardinality `N` of a data set and its **density** `D`.
//! Following \[TS96\], the density of a set of rectangles in a region is the
//! total measure of the rectangles divided by the measure of the region —
//! equivalently, the expected number of rectangles covering a random
//! point. For the unit workspace the denominator is 1, so `D` is simply
//! the sum of MBR measures.

use crate::Rect;

/// The unit workspace `WS = [0,1)^N` of the paper, bundling the
/// conventions the experiments use: density is measured over it and data
/// generators clamp into it.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitSpace<const N: usize>;

impl<const N: usize> UnitSpace<N> {
    /// The workspace as a rectangle (closed form `[0,1]^N`; the open
    /// upper boundary only concerns point placement).
    #[inline]
    pub fn rect(&self) -> Rect<N> {
        Rect::unit()
    }

    /// Measure of the workspace (always 1).
    #[inline]
    pub fn measure(&self) -> f64 {
        1.0
    }

    /// Density of a rectangle set over this workspace.
    pub fn density<'a>(&self, rects: impl IntoIterator<Item = &'a Rect<N>>) -> f64 {
        density(rects)
    }
}

/// Density of a rectangle set over the unit workspace: the sum of MBR
/// measures. For a data set of `N` rectangles of average measure `a`,
/// `D = N · a` — the paper's synthetic workloads fix `D ∈ [0.2, 0.8]`.
///
/// ```
/// use sjcm_geom::{density, Rect};
/// let rects = vec![
///     Rect::new([0.0, 0.0], [0.5, 0.5]).unwrap(),
///     Rect::new([0.2, 0.2], [0.7, 0.7]).unwrap(),
/// ];
/// assert!((density(rects.iter()) - 0.5).abs() < 1e-12);
/// ```
pub fn density<'a, const N: usize>(rects: impl IntoIterator<Item = &'a Rect<N>>) -> f64 {
    rects.into_iter().map(Rect::measure).sum()
}

/// Density of a rectangle set restricted to a sub-region: the summed
/// measure of the *clipped* rectangles divided by the region's measure.
/// This is the "local density" of the paper's §4.2 global→local
/// transformation for non-uniform data.
pub fn local_density<'a, const N: usize>(
    rects: impl IntoIterator<Item = &'a Rect<N>>,
    region: &Rect<N>,
) -> f64 {
    let region_measure = region.measure();
    if region_measure <= 0.0 {
        return 0.0;
    }
    let covered: f64 = rects
        .into_iter()
        .map(|r| r.intersection_measure(region))
        .sum();
    covered / region_measure
}

/// Average per-dimension extent of the rectangles in a set, i.e. the
/// measured counterpart of the model's `s_{j,k}` when applied to the node
/// rectangles of one R-tree level. Returns zeros for an empty set.
pub fn average_extents<'a, const N: usize>(
    rects: impl IntoIterator<Item = &'a Rect<N>>,
) -> [f64; N] {
    let mut sums = [0.0; N];
    let mut count = 0usize;
    for r in rects {
        for (k, s) in sums.iter_mut().enumerate() {
            *s += r.extent(k);
        }
        count += 1;
    }
    if count == 0 {
        return [0.0; N];
    }
    for s in sums.iter_mut() {
        *s /= count as f64;
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    #[test]
    fn density_is_sum_of_measures() {
        let rects = [
            Rect::new([0.0, 0.0], [0.1, 0.1]).unwrap(),  // 0.01
            Rect::new([0.5, 0.5], [0.9, 0.75]).unwrap(), // 0.1
        ];
        assert!((density(rects.iter()) - 0.11).abs() < 1e-12);
    }

    #[test]
    fn density_of_empty_set_is_zero() {
        assert_eq!(density(std::iter::empty::<&Rect<2>>()), 0.0);
    }

    #[test]
    fn overlapping_rects_double_count() {
        // Density counts coverage with multiplicity: two coincident unit
        // halves give D = 1.0, meaning a random point is covered twice on
        // average within their footprint.
        let r = Rect::new([0.0, 0.0], [1.0, 0.5]).unwrap();
        assert!((density([r, r].iter()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn local_density_uniform_patch() {
        // One rect exactly covering the region -> local density 1.
        let region = Rect::new([0.25, 0.25], [0.5, 0.5]).unwrap();
        let rects = [region];
        assert!((local_density(rects.iter(), &region) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn local_density_clips_to_region() {
        let region = Rect::new([0.0, 0.0], [0.5, 0.5]).unwrap();
        // Rect of measure 1 but only a quarter of it inside the region.
        let r = Rect::new([0.25, 0.25], [1.25, 1.25]).unwrap();
        let d = local_density([r].iter(), &region);
        // Clipped piece: [0.25,0.5]^2 = 0.0625; region measure 0.25.
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn local_density_degenerate_region_is_zero() {
        let region = Rect::from_point(Point::new([0.5, 0.5]));
        let r = Rect::unit();
        assert_eq!(local_density([r].iter(), &region), 0.0);
    }

    #[test]
    fn average_extents_mixed() {
        let rects = [
            Rect::new([0.0, 0.0], [0.2, 0.4]).unwrap(),
            Rect::new([0.5, 0.5], [0.9, 0.7]).unwrap(),
        ];
        let s = average_extents(rects.iter());
        assert!((s[0] - 0.3).abs() < 1e-12);
        assert!((s[1] - 0.3).abs() < 1e-12);
        assert_eq!(average_extents(std::iter::empty::<&Rect<2>>()), [0.0; 2]);
    }

    #[test]
    fn unit_space_helpers() {
        let ws = UnitSpace::<2>;
        assert_eq!(ws.measure(), 1.0);
        let rects = [Rect::new([0.0, 0.0], [0.5, 0.5]).unwrap()];
        assert!((ws.density(rects.iter()) - 0.25).abs() < 1e-12);
        assert!(ws.rect().contains_rect(&rects[0]));
    }
}
