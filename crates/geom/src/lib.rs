//! n-dimensional geometry kernel for the spatial-join cost-model workspace.
//!
//! This crate provides the primitives that every other layer of the
//! reproduction of *"Cost Models for Join Queries in Spatial Databases"*
//! (Theodoridis, Stefanakis & Sellis, ICDE 1998) is built on:
//!
//! * [`Point<N>`](Point) and [`Rect<N>`](Rect) — axis-aligned geometry in
//!   `N`-dimensional space with the full algebra the cost model needs
//!   (intersection, union, measure, margin, Minkowski enlargement, …).
//! * [`curve`] — space-filling curves (generic Morton/Z-order and a 2-D
//!   Hilbert curve) used by the bulk-loading algorithms of the R-tree
//!   crate, following Kamel & Faloutsos, *On Packing R-trees* (CIKM 1993).
//! * [`mod@density`] — the *density* statistic `D` of a rectangle set, the
//!   primitive data property (together with cardinality `N`) that the
//!   paper's analytical formulas are functions of.
//! * [`batch`] — structure-of-arrays rectangle batches
//!   ([`RectBatch`]) with chunked, autovectorization-friendly overlap /
//!   distance / reference-point kernels (bitmask output) for the join
//!   executors' entry-matching hot loops.
//!
//! The paper works in the unit workspace `WS = [0,1)^n`; helpers for that
//! convention live in [`density::UnitSpace`].
//!
//! Dimensionality is a const generic so that the rectangle loops in the
//! R-tree and the cost model monomorphize to allocation-free code for each
//! `n ∈ {1, 2, 3, 4, …}` exercised by the experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod curve;
pub mod density;
mod point;
mod rect;

pub use batch::{overlap_many_vs_many, unit_grid_cell, OverlapMask, RectBatch};
pub use density::{average_extents, density, local_density, UnitSpace};
pub use point::Point;
pub use rect::{mbr_of, GeomError, Rect};
