//! Space-filling curves.
//!
//! Bulk loading ("packing") of R-trees orders the data along a
//! space-filling curve before slicing it into full pages. The paper cites
//! Kamel & Faloutsos, *On Packing R-trees* (CIKM 1993), which found the
//! Hilbert curve to produce the best-clustered packings; the Morton
//! (Z-order) curve is the standard cheaper alternative and generalizes
//! trivially to any dimensionality.
//!
//! Both encoders quantize a point in the unit workspace `[0,1)^N` onto a
//! `2^bits`-cell-per-axis grid and map the cell to a one-dimensional key.
//! Equal keys for nearby points are fine — the bulk loader only needs a
//! total order, not an injection.

use crate::Point;

/// Quantizes a unit-space coordinate to a `bits`-bit grid cell index.
/// Coordinates outside `[0,1)` are clamped, so slightly-out-of-range data
/// (e.g. MBR centers of objects protruding past the workspace edge) still
/// sorts sensibly.
#[inline]
fn quantize(c: f64, bits: u32) -> u64 {
    let cells = 1u64 << bits;
    let scaled = (c.clamp(0.0, 1.0) * cells as f64) as u64;
    scaled.min(cells - 1)
}

/// Morton (Z-order) key of a point, interleaving `bits` bits per
/// dimension. Requires `bits * N <= 64`.
///
/// ```
/// use sjcm_geom::{curve::morton_key, Point};
/// let a = morton_key(&Point::new([0.1, 0.1]), 16);
/// let b = morton_key(&Point::new([0.9, 0.9]), 16);
/// assert!(a < b);
/// ```
pub fn morton_key<const N: usize>(p: &Point<N>, bits: u32) -> u64 {
    assert!(
        bits as usize * N <= 64,
        "morton key would overflow u64: {bits} bits x {N} dims"
    );
    let mut cells = [0u64; N];
    for k in 0..N {
        cells[k] = quantize(p[k], bits);
    }
    let mut key = 0u64;
    // Interleave from the most significant bit down so that the key orders
    // by the coarsest grid split first.
    for b in (0..bits).rev() {
        for cell in cells.iter().take(N) {
            key = (key << 1) | ((cell >> b) & 1);
        }
    }
    key
}

/// The largest per-dimension bit width usable for a Morton key in `N`
/// dimensions (`min(64 / N, 21)`; the cap keeps precision uniform across
/// small dimensionalities without overflow anywhere).
pub const fn morton_max_bits(n: usize) -> u32 {
    let b = 64 / n;
    if b > 21 {
        21
    } else {
        b as u32
    }
}

/// Hilbert-curve key of a 2-D point with `bits` bits per dimension
/// (`bits <= 31`). Uses the classic Lam–Shapiro rotation loop.
///
/// The Hilbert curve preserves locality better than Z-order — consecutive
/// keys are always adjacent cells — which is why Hilbert-packed R-trees
/// have the tightest leaf MBRs.
pub fn hilbert_key_2d(p: &Point<2>, bits: u32) -> u64 {
    assert!(bits <= 31, "hilbert key would overflow u64");
    let side = 1u64 << bits;
    let mut x = quantize(p[0], bits);
    let mut y = quantize(p[1], bits);
    let mut rx: u64;
    let mut ry: u64;
    let mut d: u64 = 0;
    let mut s = side / 2;
    while s > 0 {
        rx = u64::from(x & s > 0);
        ry = u64::from(y & s > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate the quadrant (reflection across the full grid side).
        if ry == 0 {
            if rx == 1 {
                x = side - 1 - x;
                y = side - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Inverse of [`hilbert_key_2d`] on the grid: maps a key to the cell
/// coordinates it encodes. Used by tests to verify the curve is a
/// bijection with unit steps.
pub fn hilbert_cell_2d(key: u64, bits: u32) -> (u64, u64) {
    let side = 1u64 << bits;
    let (mut x, mut y) = (0u64, 0u64);
    let mut t = key;
    let mut s = 1u64;
    while s < side {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x, y)
}

/// Curve choice for bulk loading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurveKind {
    /// Morton / Z-order, any dimensionality.
    Morton,
    /// Hilbert curve; only implemented for `N = 2`, falls back to Morton
    /// for other dimensionalities.
    Hilbert,
}

/// Computes the sort key of a point under the requested curve, using the
/// maximum safe precision for the dimensionality.
pub fn curve_key<const N: usize>(kind: CurveKind, p: &Point<N>) -> u64 {
    match kind {
        CurveKind::Hilbert if N == 2 => {
            let q = Point::new([p[0], p[1]]);
            hilbert_key_2d(&q, 16)
        }
        _ => morton_key(p, morton_max_bits(N)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_clamps_and_caps() {
        assert_eq!(quantize(-0.5, 4), 0);
        assert_eq!(quantize(0.0, 4), 0);
        assert_eq!(quantize(1.0, 4), 15);
        assert_eq!(quantize(2.0, 4), 15);
        assert_eq!(quantize(0.5, 4), 8);
    }

    #[test]
    fn morton_orders_quadrants_in_z() {
        // With 1 bit per dim in 2-D the four quadrants must appear in
        // Z order: (0,0) (0,1) (1,0) (1,1) by (x-bit, y-bit) interleave.
        let k00 = morton_key(&Point::new([0.25, 0.25]), 1);
        let k01 = morton_key(&Point::new([0.25, 0.75]), 1);
        let k10 = morton_key(&Point::new([0.75, 0.25]), 1);
        let k11 = morton_key(&Point::new([0.75, 0.75]), 1);
        assert_eq!(k00, 0);
        assert_eq!(k10, 2); // x interleaved first
        assert_eq!(k01, 1);
        assert_eq!(k11, 3);
    }

    #[test]
    fn morton_is_monotone_along_diagonal() {
        let mut prev = 0u64;
        for i in 0..100 {
            let c = i as f64 / 100.0;
            let k = morton_key(&Point::new([c, c]), 16);
            assert!(k >= prev, "diagonal must be monotone in z-order");
            prev = k;
        }
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn morton_rejects_overflowing_bits() {
        morton_key(&Point::new([0.5, 0.5, 0.5]), 22);
    }

    #[test]
    fn morton_max_bits_table() {
        assert_eq!(morton_max_bits(1), 21);
        assert_eq!(morton_max_bits(2), 21);
        assert_eq!(morton_max_bits(3), 21);
        assert_eq!(morton_max_bits(4), 16);
        assert_eq!(morton_max_bits(8), 8);
    }

    #[test]
    fn hilbert_visits_every_cell_exactly_once() {
        let bits = 4;
        let side = 1u64 << bits;
        let mut seen = vec![false; (side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                let p = Point::new([
                    (x as f64 + 0.5) / side as f64,
                    (y as f64 + 0.5) / side as f64,
                ]);
                let k = hilbert_key_2d(&p, bits) as usize;
                assert!(!seen[k], "key {k} assigned twice");
                seen[k] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hilbert_consecutive_keys_are_adjacent_cells() {
        let bits = 5;
        let side = 1u64 << bits;
        let mut prev = hilbert_cell_2d(0, bits);
        for k in 1..side * side {
            let cur = hilbert_cell_2d(k, bits);
            let dx = cur.0.abs_diff(prev.0);
            let dy = cur.1.abs_diff(prev.1);
            assert_eq!(dx + dy, 1, "step {k} jumps from {prev:?} to {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn hilbert_roundtrip() {
        let bits = 6;
        for k in 0..(1u64 << (2 * bits)) {
            let (x, y) = hilbert_cell_2d(k, bits);
            let p = Point::new([
                (x as f64 + 0.5) / (1u64 << bits) as f64,
                (y as f64 + 0.5) / (1u64 << bits) as f64,
            ]);
            assert_eq!(hilbert_key_2d(&p, bits), k);
        }
    }

    #[test]
    fn curve_key_dispatch() {
        let p2 = Point::new([0.3, 0.7]);
        assert_eq!(curve_key(CurveKind::Hilbert, &p2), hilbert_key_2d(&p2, 16));
        let p3 = Point::new([0.3, 0.7, 0.1]);
        assert_eq!(
            curve_key(CurveKind::Hilbert, &p3),
            morton_key(&p3, morton_max_bits(3)),
            "hilbert falls back to morton for N != 2"
        );
    }
}
