//! `N`-dimensional points.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A point in `N`-dimensional space, with `f64` coordinates.
///
/// Points are the corner representation used by [`crate::Rect`] and the
/// anchor representation used by the data generators (an object is placed
/// by drawing its center point and extending it by its half-extents).
///
/// ```
/// use sjcm_geom::Point;
/// let p = Point::new([0.25, 0.75]);
/// assert_eq!(p[0], 0.25);
/// assert_eq!(p.dim(), 2);
/// ```
#[derive(Clone, Copy, PartialEq)]
pub struct Point<const N: usize>(pub [f64; N]);

impl<const N: usize> Point<N> {
    /// Creates a point from its coordinate array.
    #[inline]
    pub const fn new(coords: [f64; N]) -> Self {
        Self(coords)
    }

    /// The origin, `(0, …, 0)`.
    #[inline]
    pub const fn origin() -> Self {
        Self([0.0; N])
    }

    /// The dimensionality `N`.
    #[inline]
    pub const fn dim(&self) -> usize {
        N
    }

    /// Coordinate array by value.
    #[inline]
    pub const fn coords(&self) -> [f64; N] {
        self.0
    }

    /// Squared Euclidean distance to another point.
    ///
    /// The squared form is what the distance-join predicate compares
    /// against `ε²`; taking the square root would only cost precision.
    #[inline]
    pub fn dist2(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for k in 0..N {
            let d = self.0[k] - other.0[k];
            acc += d * d;
        }
        acc
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(&self, other: &Self) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn component_min(&self, other: &Self) -> Self {
        let mut out = [0.0; N];
        for (k, o) in out.iter_mut().enumerate() {
            *o = self.0[k].min(other.0[k]);
        }
        Self(out)
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn component_max(&self, other: &Self) -> Self {
        let mut out = [0.0; N];
        for (k, o) in out.iter_mut().enumerate() {
            *o = self.0[k].max(other.0[k]);
        }
        Self(out)
    }

    /// `true` when every coordinate is finite (not NaN or ±∞).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|c| c.is_finite())
    }

    /// `true` when the point lies in the unit workspace `[0,1)^N` used by
    /// the paper's evaluation.
    #[inline]
    pub fn in_unit_space(&self) -> bool {
        self.0.iter().all(|&c| (0.0..1.0).contains(&c))
    }
}

impl<const N: usize> Index<usize> for Point<N> {
    type Output = f64;

    #[inline]
    fn index(&self, k: usize) -> &f64 {
        &self.0[k]
    }
}

impl<const N: usize> IndexMut<usize> for Point<N> {
    #[inline]
    fn index_mut(&mut self, k: usize) -> &mut f64 {
        &mut self.0[k]
    }
}

impl<const N: usize> From<[f64; N]> for Point<N> {
    #[inline]
    fn from(coords: [f64; N]) -> Self {
        Self(coords)
    }
}

impl<const N: usize> fmt::Debug for Point<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.0)
    }
}

impl<const N: usize> fmt::Display for Point<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (k, c) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_is_all_zero() {
        let o = Point::<3>::origin();
        assert_eq!(o.coords(), [0.0, 0.0, 0.0]);
    }

    #[test]
    fn dist2_matches_hand_computation() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([3.0, 4.0]);
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = Point::new([0.1, 0.9, 0.3]);
        let b = Point::new([0.7, 0.2, 0.8]);
        assert_eq!(a.dist2(&b), b.dist2(&a));
    }

    #[test]
    fn component_min_max() {
        let a = Point::new([0.1, 0.9]);
        let b = Point::new([0.7, 0.2]);
        assert_eq!(a.component_min(&b).coords(), [0.1, 0.2]);
        assert_eq!(a.component_max(&b).coords(), [0.7, 0.9]);
    }

    #[test]
    fn unit_space_membership_is_half_open() {
        assert!(Point::new([0.0, 0.999]).in_unit_space());
        assert!(!Point::new([1.0, 0.5]).in_unit_space());
        assert!(!Point::new([-0.001, 0.5]).in_unit_space());
    }

    #[test]
    fn nan_is_not_finite() {
        assert!(!Point::new([f64::NAN]).is_finite());
        assert!(!Point::new([f64::INFINITY, 0.0]).is_finite());
        assert!(Point::new([0.5, 0.5]).is_finite());
    }

    #[test]
    fn index_mut_updates_coordinate() {
        let mut p = Point::new([1.0, 2.0]);
        p[1] = 5.0;
        assert_eq!(p.coords(), [1.0, 5.0]);
    }

    #[test]
    fn display_formats_tuple() {
        assert_eq!(Point::new([1.0, 2.5]).to_string(), "(1, 2.5)");
    }
}
