//! Deadline- and budget-aware query governor.
//!
//! The paper's whole point is that Eqs 2–6 price a spatial join
//! *before* it runs — which means the system can also decide, before
//! and during execution, whether a query is allowed to run, how much it
//! may cost, and when to cut it short. The [`Governor`] is that layer:
//!
//! 1. **Admission** — [`Governor::admit`] prices the full join with
//!    Eq 6 ([`sjcm_core::join::join_cost_na`]) on the trees' measured
//!    parameters and compares it against a configurable NA budget.
//!    Over-budget queries are either rejected with a typed
//!    [`JoinError::Rejected`] or down-graded to a capped degraded run
//!    ([`AdmissionPolicy`]).
//! 2. **Cooperative cancellation** — a deadline (or an explicit
//!    cancel-after-`k`-units point, the deterministic test hook) is
//!    checked at every work-unit boundary. Governed runs route *all*
//!    schedulers through the same ordinal-tagged root work units, so on
//!    expiry every unvisited subtree is forfeited through the same
//!    pricing as fault containment ([`crate::DegradedJoinResult`]) and
//!    the forfeited-subtree inventory is identical across schedulers
//!    and thread counts for a fixed cancellation point.
//! 3. **Predictive load shedding** — the governor keeps its own Eq-6
//!    work ledger (the same windowed work-rate ETA the progress engine
//!    runs on its unit ledger) and, when the projected finish time
//!    exceeds the deadline even after the §4.1 ±15% trust band, it
//!    preemptively sheds the *cheapest-value* pending units (lowest
//!    predicted-pairs-per-NA) instead of truncating arbitrarily at
//!    expiry — so the time that remains is spent where the model says
//!    the pairs are.
//! 4. **Memory budget** — executor arenas (the parallel schedulers'
//!    unit arenas, PBSM's partition replicas) reserve bytes against a
//!    shared [`sjcm_storage::MemoryMeter`] before allocating; a denied
//!    reservation is a typed [`JoinError::BudgetExceeded`], never an
//!    abort.
//!
//! Every decision is logged as one event on a
//! [`sjcm_obs::governor::GovernorLog`] (admission, arming, shedding,
//! expiry, memory denials, completion) so `experiments` can stream
//! `governor_events.jsonl` and `validate-obs` can check it.
//!
//! [`Governor::unlimited`] follows the [`sjcm_storage::FaultInjector`]
//! pattern: a disabled governor is one `Option` discriminant check per
//! call site, and the ungoverned executor paths are taken unchanged —
//! results are byte-identical, with the bench guard holding the
//! overhead under 2%.

use crate::degraded::{subtree_objects, DegradedJoinResult, JoinError, RawSkip, SubtreeObjects};
use crate::executor::{JoinConfig, JoinResultSet, StealTally, WorkerTally};
use crate::parallel::{
    overlap_fraction, root_work_units, run_shard, subtree_params, ScheduleMode, WorkUnit,
};
use crate::session::{CorrDomain, ExecContext};
use sjcm_core::join::{join_cost_na, unit_cost_na};
use sjcm_core::TreeParams;
use sjcm_geom::Rect;
use sjcm_obs::governor::GovernorLog;
use sjcm_rtree::{NodeId, RTree};
use sjcm_storage::MemoryMeter;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// What [`Governor::admit`] does when the Eq-6 predicted cost exceeds
/// the NA budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Refuse to run the query: [`JoinError::Rejected`].
    #[default]
    Reject,
    /// Admit the query but cap its work at `budget / predicted` of the
    /// Eq-6-priced root units (an ordinal-prefix cap, so the forfeited
    /// inventory is deterministic); the result comes back degraded with
    /// the forfeited work priced.
    Degrade,
}

/// Configuration of a [`Governor`]. The default limits nothing — a
/// `Governor::new(GovernorConfig::default())` behaves like
/// [`Governor::unlimited`] except that it logs its lifecycle events.
#[derive(Debug, Clone, Default)]
pub struct GovernorConfig {
    /// Admission budget in Eq-6 node accesses. `None` admits anything.
    pub na_budget: Option<f64>,
    /// What to do when the prediction exceeds `na_budget`.
    pub admission: AdmissionPolicy,
    /// Wall-clock deadline, checked cooperatively at every work-unit
    /// boundary. On expiry all remaining units are forfeited (priced,
    /// not dropped silently).
    pub deadline: Option<Duration>,
    /// Enable ETA-guided load shedding (only meaningful with a
    /// deadline): when the projected finish time exceeds the deadline
    /// beyond the ±15% band, shed lowest-value pending units early
    /// instead of truncating arbitrarily at expiry.
    pub shed: bool,
    /// Memory budget in bytes for executor arenas. `None` is unmetered.
    pub mem_budget: Option<u64>,
    /// Deterministic cancellation point: refuse every unit with ordinal
    /// ≥ this value. The test hook behind the cancellation-determinism
    /// proptests; composes with (and is overridden by neither) the
    /// deadline.
    pub cancel_after_units: Option<u64>,
}

impl GovernorConfig {
    /// Sets the admission NA budget.
    pub fn with_na_budget(mut self, budget: f64) -> Self {
        self.na_budget = Some(budget);
        self
    }

    /// Sets the admission policy.
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Sets the cooperative deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Enables or disables ETA-guided shedding.
    pub fn with_shedding(mut self, shed: bool) -> Self {
        self.shed = shed;
        self
    }

    /// Sets the arena memory budget in bytes.
    pub fn with_mem_budget(mut self, bytes: u64) -> Self {
        self.mem_budget = Some(bytes);
        self
    }

    /// Sets the deterministic cancel-after-`k`-units point.
    pub fn with_cancel_after_units(mut self, units: u64) -> Self {
        self.cancel_after_units = Some(units);
        self
    }
}

/// The §4.1 relative-error band the ETA is trusted to: shedding fires
/// only when even `ETA / (1 + 0.15)` misses the deadline, and it sheds
/// down to what `deadline × (1 + 0.15)` can afford. Both edges lean the
/// same way — toward shedding *less*: a unit shed too eagerly is gone
/// for good, while a unit kept too optimistically is re-examined at the
/// very next boundary and, at worst, truncated at expiry like any
/// ungoverned overrun.
const SHED_BAND: f64 = 0.15;

/// Fraction of the total Eq-6 price that must be retired before the
/// observed seconds-per-price rate is trusted to shed anything. The
/// first boundary samples fold setup time and single-unit variance into
/// the rate; acting on them sheds work a calmer estimate would have
/// kept, and a shed decision is irreversible.
const SHED_WARMUP: f64 = 0.10;

/// Consecutive unit boundaries that must all predict an overrun before
/// any unit is shed. The rate is a ratio of wall time to *completed*
/// price, so an expensive unit still in flight inflates it (its seconds
/// count, its price doesn't yet); a real overrun keeps predicting
/// overrun at the next boundaries, a transient spike doesn't survive a
/// big unit completing.
const SHED_STREAK: u32 = 3;

/// At most this fraction of the pending price may be shed by one
/// decision. The predictor runs again at the very next boundary, so a
/// persistent overrun still converges geometrically while a single
/// noisy verdict forfeits a bounded slice instead of the whole tail.
const SHED_SLICE: f64 = 0.25;

#[derive(Debug, Default)]
struct GovState {
    started: Option<Instant>,
    /// First work-unit boundary: the seconds-per-price rate is measured
    /// from here, not from `started`, so admission pricing and shard
    /// setup don't inflate it (an inflated rate under-sizes the shed
    /// budget, and a shed unit cannot be won back).
    exec_started: Option<Instant>,
    /// Consecutive boundaries that predicted an overrun (see
    /// [`SHED_STREAK`]); reset by any boundary that projects on time.
    overrun_streak: u32,
    /// Price of units admitted but not yet completed, per ordinal.
    /// The ETA rate credits half of it as done: an expensive unit in
    /// flight contributes wall seconds but no completed price, and on
    /// price-skewed workloads ignoring it inflates the rate enough to
    /// shed work the deadline could easily have afforded.
    in_flight: Vec<bool>,
    in_flight_price: u64,
    predicted_na: f64,
    /// `budget / predicted` when a `Degrade` admission downgraded the
    /// run; [`Governor::arm`] turns it into an ordinal-prefix cap.
    degrade_ratio: Option<f64>,
    prices: Vec<u64>,
    values: Vec<f64>,
    /// Unit will never run again: executed, forfeited, or shed.
    retired: Vec<bool>,
    /// Unit was preemptively shed by the ETA predictor.
    shed: Vec<bool>,
    total_price: u64,
    done_price: u64,
    /// Price of forfeited + shed units (work that will never consume
    /// time; excluded from the ETA's remaining-work term).
    waived_price: u64,
    cancel_after: Option<u64>,
    executed: u64,
    forfeited: u64,
    shed_count: u64,
}

#[derive(Debug)]
struct GovernorInner {
    config: GovernorConfig,
    meter: MemoryMeter,
    log: GovernorLog,
    expired: AtomicBool,
    finished: AtomicBool,
    state: Mutex<GovState>,
}

impl GovernorInner {
    fn state(&self) -> MutexGuard<'_, GovState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Counters of one governed run, for metrics publication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorSummary {
    /// Eq-6 predicted NA computed at admission.
    pub predicted_na: f64,
    /// Root work units the governed plan held (0 when the run never
    /// needed unit routing).
    pub units_total: u64,
    /// Units executed to completion.
    pub units_executed: u64,
    /// Units forfeited (deadline expiry, cancellation point, or shed).
    pub units_forfeited: u64,
    /// Units preemptively shed by the ETA predictor (still counted in
    /// `units_forfeited` once an executor reaches and skips them).
    pub units_shed: u64,
    /// High-water mark of metered arena bytes.
    pub mem_peak_bytes: u64,
}

/// The query governor. Cloning shares all state (one governor per
/// query, however many executors it fans out to); the default value is
/// [`Governor::unlimited`].
#[derive(Debug, Clone, Default)]
pub struct Governor {
    inner: Option<Arc<GovernorInner>>,
}

impl Governor {
    /// A governor that limits nothing and logs nothing — one `Option`
    /// discriminant check per call site. The infallible executor entry
    /// points run with exactly this.
    pub fn unlimited() -> Self {
        Self { inner: None }
    }

    /// A governor enforcing `config`.
    pub fn new(config: GovernorConfig) -> Self {
        let meter = match config.mem_budget {
            Some(bytes) => MemoryMeter::with_limit(bytes),
            None => MemoryMeter::unlimited(),
        };
        Self {
            inner: Some(Arc::new(GovernorInner {
                config,
                meter,
                log: GovernorLog::new(),
                expired: AtomicBool::new(false),
                finished: AtomicBool::new(false),
                state: Mutex::new(GovState::default()),
            })),
        }
    }

    /// `true` when any limit (or the decision log) is armed.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The governor's decision log, when enabled.
    pub fn log(&self) -> Option<&GovernorLog> {
        self.inner.as_ref().map(|i| &i.log)
    }

    /// The decision log serialized as governor JSONL (`None` when the
    /// governor is unlimited).
    pub fn events_jsonl(&self) -> Option<String> {
        self.inner.as_ref().map(|i| i.log.to_jsonl())
    }

    /// Counters of the governed run so far (`None` when unlimited).
    pub fn summary(&self) -> Option<GovernorSummary> {
        self.inner.as_ref().map(|inner| {
            let st = inner.state();
            GovernorSummary {
                predicted_na: st.predicted_na,
                units_total: st.prices.len() as u64,
                units_executed: st.executed,
                units_forfeited: st.forfeited,
                units_shed: st.shed_count,
                mem_peak_bytes: inner.meter.peak(),
            }
        })
    }

    /// Starts the deadline clock if it is not already running. Called
    /// by [`Governor::admit`]; executors without a tree-based admission
    /// step (PBSM) call it directly.
    pub fn start_clock(&self) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state();
            if st.started.is_none() {
                st.started = Some(Instant::now());
            }
        }
    }

    /// Admission control: prices the full join with Eq 6 on the trees'
    /// measured parameters and compares it against the NA budget.
    /// Starts the deadline clock either way. An unlimited governor
    /// admits for free.
    pub fn admit<const N: usize>(&self, r1: &RTree<N>, r2: &RTree<N>) -> Result<(), JoinError> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let p1 = subtree_params(r1, r1.root_id());
        let p2 = subtree_params(r2, r2.root_id());
        let predicted = join_cost_na(&p1, &p2);
        let mut st = inner.state();
        if st.started.is_none() {
            st.started = Some(Instant::now());
        }
        st.predicted_na = predicted;
        match inner.config.na_budget {
            Some(budget) if predicted > budget => match inner.config.admission {
                AdmissionPolicy::Reject => {
                    drop(st);
                    inner.log.record(
                        "reject",
                        predicted,
                        format!("predicted NA {predicted:.1} > budget {budget:.1}"),
                    );
                    Err(JoinError::Rejected {
                        predicted_na: predicted,
                        budget,
                    })
                }
                AdmissionPolicy::Degrade => {
                    st.degrade_ratio = Some((budget / predicted).clamp(0.0, 1.0));
                    drop(st);
                    inner.log.record(
                        "admit",
                        predicted,
                        format!(
                            "degraded: predicted NA {predicted:.1} > budget {budget:.1}, \
                             capping work at the budget fraction"
                        ),
                    );
                    Ok(())
                }
            },
            Some(budget) => {
                drop(st);
                inner.log.record(
                    "admit",
                    predicted,
                    format!("predicted NA {predicted:.1} <= budget {budget:.1}"),
                );
                Ok(())
            }
            None => {
                drop(st);
                inner
                    .log
                    .record("admit", predicted, "no admission budget".to_string());
                Ok(())
            }
        }
    }

    /// `true` when execution must route through ordinal-tagged root
    /// units so the governor can gate each one: a deadline or an
    /// explicit cancellation point is armed, or admission downgraded
    /// the run to a capped prefix.
    pub fn is_unit_gated(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| {
            i.config.deadline.is_some()
                || i.config.cancel_after_units.is_some()
                || i.state().degrade_ratio.is_some()
        })
    }

    /// `true` when an arena memory budget is armed.
    pub fn has_mem_budget(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.meter.is_enabled())
    }

    /// Reserves `bytes` of arena memory against the budget, converting
    /// a denial into the typed join error (and logging it).
    pub fn reserve(&self, bytes: u64) -> Result<(), JoinError> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        inner.meter.try_reserve(bytes).map_err(|e| {
            inner.log.record("budget", bytes as f64, format!("{e}"));
            JoinError::from(e)
        })
    }

    /// Releases a previous arena reservation.
    pub fn release(&self, bytes: u64) {
        if let Some(inner) = &self.inner {
            inner.meter.release(bytes);
        }
    }

    /// Arms the per-unit ledger for a governed tree join: prices every
    /// root unit with the same Eq-6 × overlap-fraction formula the
    /// cost-guided scheduler uses, estimates each unit's value (pairs
    /// per NA, the shed ranking), and freezes the cancellation prefix.
    /// Returns the prices (the LPT deal key). Idempotent per governor.
    pub(crate) fn arm<const N: usize>(
        &self,
        r1: &RTree<N>,
        r2: &RTree<N>,
        units: &[(usize, WorkUnit)],
    ) -> Vec<u64> {
        let (prices, values) = unit_prices(r1, r2, units);
        self.arm_units(prices.clone(), values);
        prices
    }

    /// Arms the per-unit ledger directly from prices and values (the
    /// PBSM path, which has no R-tree priors, prices cells by entry
    /// count and gives them uniform value).
    pub(crate) fn arm_units(&self, prices: Vec<u64>, values: Vec<f64>) {
        let Some(inner) = &self.inner else {
            return;
        };
        let n = prices.len();
        let total: u64 = prices.iter().sum();
        let mut st = inner.state();
        if st.started.is_none() {
            st.started = Some(Instant::now());
        }
        let mut cancel_after = inner.config.cancel_after_units;
        if let Some(ratio) = st.degrade_ratio {
            // Largest ordinal prefix whose cumulative Eq-6 price stays
            // within the admitted fraction of the total.
            let afford = (total as f64 * ratio).floor() as u64;
            let mut acc = 0u64;
            let mut k = 0u64;
            for &p in &prices {
                if acc + p > afford {
                    break;
                }
                acc += p;
                k += 1;
            }
            cancel_after = Some(cancel_after.map_or(k, |c| c.min(k)));
        }
        st.total_price = total;
        st.done_price = 0;
        st.waived_price = 0;
        st.prices = prices;
        st.values = values;
        st.retired = vec![false; n];
        st.shed = vec![false; n];
        st.in_flight = vec![false; n];
        st.in_flight_price = 0;
        st.cancel_after = cancel_after;
        drop(st);
        inner.log.record(
            "arm",
            n as f64,
            format!(
                "{n} units, total price {total}{}{}",
                match cancel_after {
                    Some(k) => format!(", cancel after unit {k}"),
                    None => String::new(),
                },
                match inner.config.deadline {
                    Some(d) => format!(", deadline {} ms", d.as_millis()),
                    None => String::new(),
                },
            ),
        );
    }

    /// Gate at a work-unit boundary: may ordinal `ordinal` still run?
    /// `false` means the executor must forfeit the unit (it will be
    /// priced into the degraded result, not silently dropped). An
    /// unlimited governor always admits — one `Option` check.
    pub fn admit_unit(&self, ordinal: usize) -> bool {
        let Some(inner) = &self.inner else {
            return true;
        };
        if inner.expired.load(Ordering::Relaxed) {
            return false;
        }
        let mut st = inner.state();
        if st.exec_started.is_none() {
            st.exec_started = Some(Instant::now());
        }
        if let (Some(deadline), Some(start)) = (inner.config.deadline, st.started) {
            if start.elapsed() >= deadline {
                if !inner.expired.swap(true, Ordering::Relaxed) {
                    inner.log.record(
                        "expire",
                        ordinal as f64,
                        format!(
                            "deadline {} ms reached at unit {ordinal}",
                            deadline.as_millis()
                        ),
                    );
                }
                return false;
            }
        }
        if let Some(k) = st.cancel_after {
            if ordinal as u64 >= k {
                return false;
            }
        }
        if st.shed.get(ordinal).copied().unwrap_or(false) {
            return false;
        }
        if let Some(f) = st.in_flight.get_mut(ordinal) {
            if !*f {
                *f = true;
                st.in_flight_price += st.prices.get(ordinal).copied().unwrap_or(1);
            }
        }
        true
    }

    /// Records a completed unit, retires its price from the ledger, and
    /// runs the ETA overrun predictor (see the module docs).
    pub fn note_unit_done(&self, ordinal: usize) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut st = inner.state();
        if st.exec_started.is_none() {
            st.exec_started = Some(Instant::now());
        }
        let price = st.prices.get(ordinal).copied().unwrap_or(1);
        st.executed += 1;
        st.done_price += price;
        if let Some(f) = st.in_flight.get_mut(ordinal) {
            if *f {
                *f = false;
                st.in_flight_price = st.in_flight_price.saturating_sub(price);
            }
        }
        if st.retired.get(ordinal).copied().unwrap_or(true) {
            // The unit was marked shed while already in flight and
            // completed anyway: undo the waiver so the ledger balances.
            if st.shed.get(ordinal).copied().unwrap_or(false) {
                st.shed[ordinal] = false;
                st.shed_count -= 1;
                st.waived_price = st.waived_price.saturating_sub(price);
            }
        } else {
            st.retired[ordinal] = true;
        }
        if !inner.config.shed || inner.expired.load(Ordering::Relaxed) {
            return;
        }
        let Some(deadline) = inner.config.deadline else {
            return;
        };
        let Some(start) = st.started else {
            return;
        };
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed <= 0.0 || st.done_price == 0 {
            return;
        }
        let remaining = st
            .total_price
            .saturating_sub(st.done_price + st.waived_price);
        if remaining == 0 {
            return;
        }
        if (st.done_price as f64) < SHED_WARMUP * st.total_price as f64 {
            return;
        }
        // Seconds per price unit, measured over execution time only;
        // the projection still starts from the full wall-clock elapsed,
        // which is what the deadline is denominated in.
        let exec_elapsed = st
            .exec_started
            .map(|t| t.elapsed().as_secs_f64())
            .unwrap_or(elapsed);
        let half_flight = st.in_flight_price / 2;
        let rate = exec_elapsed.max(1e-9) / (st.done_price + half_flight) as f64;
        let projected = elapsed + rate * remaining.saturating_sub(half_flight) as f64;
        let deadline_s = deadline.as_secs_f64();
        if projected <= deadline_s * (1.0 + SHED_BAND) {
            st.overrun_streak = 0;
            return;
        }
        st.overrun_streak += 1;
        if st.overrun_streak < SHED_STREAK {
            return;
        }
        // Overrun predicted beyond the trust band, persistently: shed
        // down to the price the deadline can afford, keeping the
        // highest-value pending units, at most [`SHED_SLICE`] of the
        // pending price per decision.
        let afford_time = (deadline_s * (1.0 + SHED_BAND) - elapsed).max(0.0);
        let floor = remaining - (remaining as f64 * SHED_SLICE) as u64;
        let afford_price = ((afford_time / rate) as u64).max(floor);
        let to_shed = shed_candidates(&st.prices, &st.values, &st.retired, afford_price);
        if to_shed.is_empty() {
            return;
        }
        for &i in &to_shed {
            st.retired[i] = true;
            st.shed[i] = true;
            st.waived_price += st.prices[i];
        }
        st.shed_count += to_shed.len() as u64;
        let shed_n = to_shed.len();
        drop(st);
        inner.log.record(
            "shed",
            shed_n as f64,
            format!(
                "eta {projected:.3}s beyond deadline {deadline_s:.3}s (+{:.0}% band): \
                 shed {shed_n} lowest-value units, kept price {afford_price}",
                SHED_BAND * 100.0
            ),
        );
    }

    /// Records a unit the executor forfeited after [`Self::admit_unit`]
    /// refused it.
    pub fn note_forfeit(&self, ordinal: usize) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut st = inner.state();
        st.forfeited += 1;
        let price = st.prices.get(ordinal).copied().unwrap_or(1);
        if let Some(r) = st.retired.get_mut(ordinal) {
            if !*r {
                *r = true;
                st.waived_price += price;
            }
        }
    }

    /// Closes the decision log with a terminal `finish` event (once;
    /// later calls are no-ops). Entry points call this after assembling
    /// the degraded result.
    pub fn finish(&self) {
        let Some(inner) = &self.inner else {
            return;
        };
        if inner.finished.swap(true, Ordering::Relaxed) {
            return;
        }
        let st = inner.state();
        inner.log.record(
            "finish",
            st.executed as f64,
            format!(
                "{} executed, {} forfeited ({} shed), mem peak {} bytes",
                st.executed,
                st.forfeited,
                st.shed_count,
                inner.meter.peak()
            ),
        );
    }
}

/// Greedy value-density knapsack: keeps the highest-value pending units
/// whose prices fit `afford_price`, returns the ordinals to shed. Ties
/// broken by ordinal so the selection is deterministic.
fn shed_candidates(
    prices: &[u64],
    values: &[f64],
    retired: &[bool],
    afford_price: u64,
) -> Vec<usize> {
    let mut pending: Vec<usize> = (0..prices.len()).filter(|&i| !retired[i]).collect();
    pending.sort_by(|&a, &b| values[b].total_cmp(&values[a]).then(a.cmp(&b)));
    let mut kept = 0u64;
    let mut shed = Vec::new();
    for i in pending {
        if kept + prices[i] <= afford_price {
            kept += prices[i];
        } else {
            shed.push(i);
        }
    }
    shed.sort_unstable();
    shed
}

/// Eq-6 × overlap-fraction price and pairs-per-price value of every
/// root unit, with per-node caches (each subtree appears in many
/// units). Prices use the same ×16 integer scaling as the cost-guided
/// scheduler; values localize Eq 3 over the subtree MBRs, exactly the
/// estimate the degraded-result pricing uses for *forfeited* work.
fn unit_prices<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    units: &[(usize, WorkUnit)],
) -> (Vec<u64>, Vec<f64>) {
    struct Side<const N: usize> {
        params: TreeParams<N>,
        objects: SubtreeObjects<N>,
        mbr: Rect<N>,
    }
    fn side<const N: usize>(tree: &RTree<N>, id: NodeId) -> Side<N> {
        Side {
            params: subtree_params(tree, id),
            objects: subtree_objects(tree, id),
            mbr: tree.node(id).mbr().unwrap_or_else(Rect::unit),
        }
    }
    let mut cache1: HashMap<NodeId, Side<N>> = HashMap::new();
    let mut cache2: HashMap<NodeId, Side<N>> = HashMap::new();
    let mut prices = Vec::with_capacity(units.len());
    let mut values = Vec::with_capacity(units.len());
    for &(_, unit) in units {
        match unit {
            WorkUnit::Emit(..) => {
                // Leaf-root emissions carry no I/O: minimal price, and
                // one pair of value (they always execute anyway).
                prices.push(1);
                values.push(1.0);
            }
            WorkUnit::Pair(c1, c2) => {
                let (a, b) = (c1.node(), c2.node());
                let s1 = cache1.entry(a).or_insert_with(|| side(r1, a));
                let s2 = cache2.entry(b).or_insert_with(|| side(r2, b));
                let cost = unit_cost_na(&s1.params, &s2.params) * overlap_fraction(r1, r2, a, b);
                let price = ((cost * 16.0).round() as u64).max(1);
                let est_pairs = crate::degraded::localized_pairs(
                    &s1.objects,
                    &s1.mbr,
                    &s2.objects,
                    &s2.mbr,
                    0.0,
                );
                prices.push(price);
                values.push(est_pairs / price as f64);
            }
        }
    }
    (prices, values)
}

/// Governed sequential execution: the root units in natural (ordinal)
/// order through one shard executor (correlation domain 1), each gated
/// by the governor. NA-equivalent to the plain sequential descent — the
/// round-robin scheduler's tests pin that equivalence — while giving
/// the sequential path the same work-unit boundaries as the parallel
/// schedulers, so a fixed cancellation point forfeits the same
/// inventory everywhere.
pub(crate) fn run_governed_sequential<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    config: JoinConfig,
    ctx: &ExecContext<'_>,
) -> (JoinResultSet, Vec<RawSkip>) {
    let units: Vec<(usize, WorkUnit)> = root_work_units(r1, r2, &config)
        .into_iter()
        .enumerate()
        .collect();
    ctx.gov.arm(r1, r2, &units);
    if ctx.progress.is_enabled() {
        let n = units.len() as u64;
        ctx.progress.set_schedule(&[(n, n)]);
    }
    run_shard(r1, r2, config, &units, ctx, CorrDomain::Shard(0))
}

/// Governed parallel execution: the ordinal-tagged root units dealt to
/// `threads` static shards (round-robin deal or LPT by Eq-6 price,
/// matching the requested [`ScheduleMode`]), every unit gated by the
/// governor at its boundary. No stealing: gating is by global ordinal,
/// so the forfeited inventory for a fixed cancellation point is
/// identical to the sequential governed run and to any thread count.
pub(crate) fn governed_parallel_join<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    config: JoinConfig,
    threads: usize,
    mode: ScheduleMode,
    ctx: &ExecContext<'_>,
) -> Result<(JoinResultSet, Vec<RawSkip>), JoinError> {
    let gov = ctx.gov;
    let mut join_span = ctx.tracer.span("governed-join");
    join_span.set("threads", threads);
    let units: Vec<(usize, WorkUnit)> = root_work_units(r1, r2, &config)
        .into_iter()
        .enumerate()
        .collect();
    // The shard arenas replicate the unit list: charge them against the
    // memory budget before dealing.
    let arena_bytes = (units.len() * std::mem::size_of::<(usize, WorkUnit)>()) as u64;
    gov.reserve(arena_bytes)?;
    let prices = gov.arm(r1, r2, &units);
    let mut shards: Vec<Vec<(usize, WorkUnit)>> = vec![Vec::new(); threads];
    match mode {
        ScheduleMode::RoundRobin => {
            for &(i, u) in &units {
                shards[i % threads].push((i, u));
            }
        }
        ScheduleMode::CostGuided => {
            // LPT by Eq-6 price, ties by ordinal — the cost-guided
            // seeding without the steal layer (gating is by ordinal, so
            // stealing would only blur the tallies, not the inventory).
            let mut order: Vec<usize> = (0..units.len()).collect();
            order.sort_unstable_by(|&a, &b| prices[b].cmp(&prices[a]).then(a.cmp(&b)));
            let mut loads = vec![0u64; threads];
            for i in order {
                let w = (0..threads).min_by_key(|&w| (loads[w], w)).unwrap();
                shards[w].push(units[i]);
                loads[w] += prices[i];
            }
        }
    }
    let planned: Vec<(u64, u64)> = shards
        .iter()
        .map(|s| (s.len() as u64, s.len() as u64))
        .collect();
    ctx.progress.set_schedule(&planned);

    let join_id = join_span.id();
    let results: Vec<Result<(JoinResultSet, Vec<RawSkip>), JoinError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .enumerate()
                .map(|(w, shard)| {
                    let wctx = ctx.clone();
                    scope.spawn(move || {
                        let mut span = wctx.tracer.span_under(join_id, "worker");
                        span.set("worker", w);
                        span.set("units", shard.len());
                        run_shard(r1, r2, config, shard, &wctx, CorrDomain::Shard(w))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(JoinError::from_panic))
                .collect()
        });

    let mut pairs = Vec::new();
    let mut pair_count = 0;
    let mut stats1 = sjcm_storage::AccessStats::new();
    let mut stats2 = sjcm_storage::AccessStats::new();
    let mut workers = Vec::with_capacity(threads);
    let mut steals = Vec::with_capacity(threads);
    let mut buffers1 = sjcm_storage::BufferCounters::default();
    let mut buffers2 = sjcm_storage::BufferCounters::default();
    let mut raw = Vec::new();
    for (shard, result) in shards.iter().zip(results) {
        let (r, skips) = result?;
        workers.push(WorkerTally {
            units: shard.len() as u64,
            na: r.na_total(),
            da: r.da_total(),
            pair_count: r.pair_count,
        });
        steals.push(StealTally {
            units_executed: shard.len() as u64,
            ..StealTally::default()
        });
        buffers1.merge(&r.buffers1);
        buffers2.merge(&r.buffers2);
        pairs.extend(r.pairs);
        pair_count += r.pair_count;
        stats1.merge(&r.stats1);
        stats2.merge(&r.stats2);
        raw.extend(skips);
    }
    gov.release(arena_bytes);
    join_span.set("na", stats1.na_total() + stats2.na_total());
    join_span.set("da", stats1.da_total() + stats2.da_total());
    join_span.set("pairs", pair_count);
    Ok((
        JoinResultSet {
            pairs,
            pair_count,
            stats1,
            stats2,
            workers,
            buffers1,
            buffers2,
            steals,
        },
        raw,
    ))
}

/// Convenience: asserts a degraded governed result is *well-formed* —
/// every forfeited unit is priced and the estimated forfeited fraction
/// is a finite probability-like number. Used by tests and experiments.
pub fn assert_well_formed<const N: usize>(d: &DegradedJoinResult<N>) {
    for s in &d.skips {
        assert!(s.est_na.is_finite() && s.est_na >= 0.0, "skip NA {s:?}");
        assert!(
            s.est_pairs.is_finite() && s.est_pairs >= 0.0,
            "skip pairs {s:?}"
        );
    }
    let f = d.forfeited_fraction();
    assert!((0.0..=1.0).contains(&f), "forfeited fraction {f}");
}

#[cfg(test)]
mod tests {
    // The deprecated free-function entry points are exercised on purpose:
    // they are thin wrappers over `JoinSession` and these tests double as
    // wrapper coverage.
    #![allow(deprecated)]

    use super::*;
    use crate::executor::spatial_join;
    use crate::parallel::{
        parallel_spatial_join, try_parallel_spatial_join_observed, JoinObs, ScheduleMode,
    };
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sjcm_rtree::{ObjectId, RTreeConfig};
    use sjcm_storage::FaultInjector;

    fn build(n: usize, side: f64, seed: u64) -> RTree<2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = RTree::<2>::new(RTreeConfig::with_capacity(8));
        for i in 0..n {
            let cx: f64 = rng.gen_range(0.0..1.0);
            let cy: f64 = rng.gen_range(0.0..1.0);
            tree.insert(
                Rect::centered(sjcm_geom::Point::new([cx, cy]), [side, side]),
                ObjectId(i as u32),
            );
        }
        tree
    }

    fn governed(
        r1: &RTree<2>,
        r2: &RTree<2>,
        threads: usize,
        mode: ScheduleMode,
        gov: &Governor,
    ) -> Result<DegradedJoinResult<2>, JoinError> {
        try_parallel_spatial_join_observed(
            r1,
            r2,
            JoinConfig::default(),
            threads,
            mode,
            &JoinObs::default(),
            &FaultInjector::disabled(),
            gov,
        )
    }

    #[test]
    fn unlimited_governor_is_inert() {
        let gov = Governor::unlimited();
        assert!(!gov.is_enabled());
        assert!(!gov.is_unit_gated());
        assert!(gov.admit_unit(0) && gov.admit_unit(usize::MAX));
        gov.note_unit_done(3);
        gov.note_forfeit(4);
        gov.finish();
        assert!(gov.reserve(u64::MAX).is_ok());
        assert!(gov.summary().is_none());
        assert!(gov.events_jsonl().is_none());
    }

    #[test]
    fn rejection_is_typed_and_logged() {
        let a = build(600, 0.02, 1);
        let b = build(600, 0.02, 2);
        let gov = Governor::new(GovernorConfig::default().with_na_budget(1.0));
        let err = governed(&a, &b, 2, ScheduleMode::CostGuided, &gov).unwrap_err();
        match err {
            JoinError::Rejected {
                predicted_na,
                budget,
            } => {
                assert!(predicted_na > 1.0);
                assert_eq!(budget, 1.0);
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
        let text = gov.events_jsonl().unwrap();
        assert!(sjcm_obs::validate_governor_jsonl(&text).is_ok(), "{text}");
    }

    #[test]
    fn degrade_policy_caps_an_ordinal_prefix() {
        let gov = Governor::new(
            GovernorConfig::default()
                .with_na_budget(10.0)
                .with_admission(AdmissionPolicy::Degrade),
        );
        // Simulate an over-budget admission at ratio 0.5.
        gov.inner.as_ref().unwrap().state().degrade_ratio = Some(0.5);
        gov.arm_units(vec![1; 10], vec![1.0; 10]);
        for i in 0..5 {
            assert!(gov.admit_unit(i), "unit {i} is inside the cap");
        }
        for i in 5..10 {
            assert!(!gov.admit_unit(i), "unit {i} is beyond the cap");
        }
    }

    #[test]
    fn cancellation_inventory_is_identical_across_schedulers() {
        let a = build(1_500, 0.012, 3);
        let b = build(1_500, 0.012, 4);
        let full = spatial_join(&a, &b);
        let mut runs = Vec::new();
        for threads in [1usize, 2, 4] {
            for mode in [ScheduleMode::RoundRobin, ScheduleMode::CostGuided] {
                let gov = Governor::new(GovernorConfig::default().with_cancel_after_units(3));
                let d = governed(&a, &b, threads, mode, &gov).unwrap();
                assert_well_formed(&d);
                assert!(!d.is_exact(), "{threads} threads {mode:?} must forfeit");
                assert!(d.result.pair_count < full.pair_count);
                let summary = gov.summary().unwrap();
                assert!(summary.units_forfeited > 0);
                runs.push((threads, mode, d));
            }
        }
        let (_, _, first) = &runs[0];
        for (threads, mode, d) in &runs[1..] {
            assert_eq!(
                d.skips, first.skips,
                "inventory diverged at {threads} threads {mode:?}"
            );
            assert_eq!(
                {
                    let mut p = d.result.pairs.clone();
                    p.sort_unstable();
                    p
                },
                {
                    let mut p = first.result.pairs.clone();
                    p.sort_unstable();
                    p
                },
                "retained pairs diverged at {threads} threads {mode:?}"
            );
        }
    }

    #[test]
    fn zero_deadline_forfeits_everything_but_stays_well_formed() {
        let a = build(1_200, 0.012, 5);
        let b = build(1_200, 0.012, 6);
        for mode in [ScheduleMode::RoundRobin, ScheduleMode::CostGuided] {
            let gov = Governor::new(GovernorConfig::default().with_deadline(Duration::ZERO));
            let d = governed(&a, &b, 2, mode, &gov).unwrap();
            assert_well_formed(&d);
            assert!(!d.is_exact());
            assert_eq!(d.result.pair_count, 0, "{mode:?}");
            assert!(d.forfeited_pairs() > 0.0, "{mode:?}");
            let text = gov.events_jsonl().unwrap();
            assert!(sjcm_obs::validate_governor_jsonl(&text).is_ok(), "{text}");
            assert!(text.contains("\"expire\""));
        }
    }

    #[test]
    fn generous_deadline_changes_nothing_but_the_boundaries() {
        let a = build(1_000, 0.012, 7);
        let b = build(1_000, 0.012, 8);
        let plain = parallel_spatial_join(&a, &b, JoinConfig::default(), 3);
        let gov = Governor::new(GovernorConfig::default().with_deadline(Duration::from_secs(3600)));
        let d = governed(&a, &b, 3, ScheduleMode::CostGuided, &gov).unwrap();
        assert!(d.is_exact());
        assert_eq!(d.result.pairs, plain.pairs);
        assert_eq!(d.result.na_total(), plain.na_total());
        let summary = gov.summary().unwrap();
        assert_eq!(summary.units_forfeited, 0);
        assert!(summary.units_executed > 0);
    }

    #[test]
    fn memory_budget_denial_is_typed() {
        let a = build(1_000, 0.012, 9);
        let b = build(1_000, 0.012, 10);
        let gov = Governor::new(GovernorConfig::default().with_mem_budget(8));
        let err = governed(&a, &b, 2, ScheduleMode::CostGuided, &gov).unwrap_err();
        match err {
            JoinError::BudgetExceeded { limit, .. } => assert_eq!(limit, 8),
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        let text = gov.events_jsonl().unwrap();
        assert!(sjcm_obs::validate_governor_jsonl(&text).is_ok(), "{text}");
    }

    #[test]
    fn ample_memory_budget_admits_and_tracks_peak() {
        let a = build(1_000, 0.012, 11);
        let b = build(1_000, 0.012, 12);
        let gov = Governor::new(GovernorConfig::default().with_mem_budget(64 << 20));
        let d = governed(&a, &b, 2, ScheduleMode::CostGuided, &gov).unwrap();
        assert!(d.is_exact());
        assert!(gov.summary().unwrap().mem_peak_bytes > 0);
    }

    #[test]
    fn shed_candidates_keep_the_highest_value_units() {
        let prices = vec![10, 10, 10, 10];
        let values = vec![0.1, 5.0, 0.2, 4.0];
        let retired = vec![false, false, false, false];
        // Budget for two units: keep the two highest-value (1 and 3).
        assert_eq!(shed_candidates(&prices, &values, &retired, 20), vec![0, 2]);
        // Retired units are never shed again.
        let retired = vec![true, false, false, false];
        assert_eq!(shed_candidates(&prices, &values, &retired, 20), vec![2]);
        // No budget: shed every pending unit.
        assert_eq!(
            shed_candidates(&prices, &values, &[false; 4], 0),
            vec![0, 1, 2, 3]
        );
        // Ample budget: shed nothing.
        assert!(shed_candidates(&prices, &values, &[false; 4], 100).is_empty());
    }

    #[test]
    fn unlimited_twin_is_byte_identical_to_the_plain_executors() {
        let a = build(1_500, 0.012, 13);
        let b = build(1_500, 0.012, 14);
        for threads in [1usize, 4] {
            for mode in [ScheduleMode::RoundRobin, ScheduleMode::CostGuided] {
                let plain = crate::parallel::parallel_spatial_join_with(
                    &a,
                    &b,
                    JoinConfig::default(),
                    threads,
                    mode,
                );
                let d = governed(&a, &b, threads, mode, &Governor::unlimited()).unwrap();
                assert!(d.is_exact());
                assert_eq!(d.result.pairs, plain.pairs, "{threads} {mode:?}");
                assert_eq!(d.result.na_total(), plain.na_total(), "{threads} {mode:?}");
                assert_eq!(d.result.da_total(), plain.da_total(), "{threads} {mode:?}");
                assert_eq!(d.result.workers, plain.workers, "{threads} {mode:?}");
            }
        }
    }
}
