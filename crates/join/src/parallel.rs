//! Parallel spatial join — the §5 future-work item, after Brinkhoff et
//! al., *Parallel Processing of Spatial Joins Using R-trees* (ICDE 1996)
//! — scheduled by the paper's **own cost model**.
//!
//! # Scheduling
//!
//! Two schedulers are provided (see [`ScheduleMode`]):
//!
//! * [`ScheduleMode::RoundRobin`] — the legacy static scheme: the
//!   root-level overlapping entry pairs are dealt round-robin over the
//!   workers, no redistribution. Kept as the baseline the cost-guided
//!   scheduler is measured against.
//! * [`ScheduleMode::CostGuided`] (the default) — a coordinator descends
//!   the synchronized traversal level by level until it holds at least
//!   `threads × 4` overlapping node pairs (*work units*), prices each
//!   unit with the Eq-6 `NA` formula on the unit's **measured** subtree
//!   parameters ([`sjcm_core::join::unit_cost_na`] over
//!   [`sjcm_rtree::RTree::subtree_stats`]) scaled by the subtree MBRs'
//!   overlap fraction (see `unit_costs` below), seeds one deque per
//!   worker in LPT (longest-processing-time-first) order, and lets idle
//!   workers steal from the deque with the most estimated work left.
//!
//! # Invariants the tests pin down
//!
//! For **both** schedulers and any thread count:
//!
//! * the result pair multiset is identical to the sequential join (and
//!   `pairs` is additionally sorted — see below);
//! * NA is identical (the same node pairs are visited, and each access
//!   is charged exactly once, by the coordinator above the frontier and
//!   by exactly one worker below it).
//!
//! For the **cost-guided** scheduler additionally DA ≥ the sequential
//! DA — splitting the traversal breaks some of the path-buffer
//! locality, exactly the kind of effect the paper says a parallel cost
//! model must account for. (The legacy round-robin scheduler carries
//! buffers across a shard's units, and two units adjacent in a shard
//! can recreate locality that an intervening unit destroyed in the
//! sequential order, so round-robin DA can — rarely — dip *below*
//! sequential. The property tests check the bound only for the
//! cost-guided scheduler.)
//!
//! The cost-guided scheduler's DA is furthermore **deterministic**, even
//! though stealing makes the unit→worker assignment timing-dependent:
//! workers reset their buffers at every unit boundary, so each unit's
//! miss count is independent of which worker runs it and of what ran
//! before. (The coordinator expands the frontier in the sequential
//! traversal's own per-level order, so under a path buffer the accesses
//! *above* the frontier miss exactly as often as in the sequential
//! join; the per-unit cold starts below the frontier are the only
//! source of extra misses.)
//!
//! Per-worker tallies ([`crate::executor::WorkerTally`]) are attributed
//! to the worker each unit was **scheduled on** — the LPT seeding for
//! the cost-guided mode, the static deal for round-robin — not to
//! whichever thread happened to execute it after stealing. Per-unit
//! NA/DA/pair counts are deterministic (previous paragraph), so the
//! tallies and the derived imbalance ratio
//! ([`JoinResultSet::na_imbalance`]) are bit-for-bit reproducible on
//! any machine and measure exactly what the scheduler controls: how
//! well Eq-6 pricing split the work. Which thread *executes* a stolen
//! unit is a wall-clock concern the tallies deliberately ignore — on a
//! machine with fewer cores than workers, the realized split is OS
//! time-slice noise.
//!
//! `pairs` is sorted by `(R1 object, R2 object)` before returning, so
//! parallel output is deterministic and reproducible regardless of
//! scheduling — the sequential executor's emission order is a traversal
//! order no parallel schedule can reproduce cheaply.

use crate::degraded::{DegradedJoinResult, JoinError, RawSkip};
use crate::engine::Engine;
use crate::executor::{
    matched_entries, pinned_children, JoinConfig, JoinResultSet, MatchScratch, StealTally,
    WorkerTally,
};
use crate::governor::Governor;
use crate::session::{CorrDomain, ExecContext, JoinSession, Scheduler};
use sjcm_core::join::unit_cost_na;
use sjcm_core::{LevelParams, TreeParams};
use sjcm_obs::perfetto::{DRIFT_BREACH_SPAN as BREACH_SPAN, PROGRESS_SPAN};
use sjcm_obs::progress::ProgressTracker;
use sjcm_obs::{DriftMonitor, Tracer, DA_TOTAL, NA_TOTAL};
use sjcm_rtree::{Child, NodeId, ObjectId, RTree};
use sjcm_storage::{AccessStats, FaultInjector, FlightRecorder};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// Observability hooks threaded through a parallel join run. The
/// default value (disabled tracer, no drift monitor) makes every hook a
/// no-op — [`parallel_spatial_join`] runs with exactly that, so the
/// instrumented code path *is* the production code path.
#[derive(Debug, Default)]
pub struct JoinObs<'a> {
    /// Span collector. Disabled tracers cost one `Option` check per
    /// span site (see `sjcm-obs`).
    pub tracer: Tracer,
    /// Drift monitor for in-flight envelope checks: workers maintain
    /// shared running NA/DA totals and test them against the
    /// caller-registered `na.total` / `da.total` predictions after
    /// every completed work unit. The first breach of each total is
    /// additionally marked with a zero-duration `drift-breach` child
    /// span under the breaching unit, so the Perfetto export shows
    /// *when* and *on whose lane* the model lost the run.
    pub drift: Option<&'a DriftMonitor>,
    /// Page-access flight recorder. Disabled (the default) costs one
    /// `Option` check per access; enabled, every buffered access of
    /// every executor emits one event, with the correlation id set to
    /// the buffer-residency domain (0 = coordinator/sequential, unit
    /// index + 1 for cost-guided units, shard index + 1 for
    /// round-robin shards — see `sjcm_storage::recorder`).
    pub recorder: FlightRecorder,
    /// Live progress hub (see `sjcm_obs::progress`). Disabled (the
    /// default) costs one `Option` check per access; enabled, every
    /// executor feeds per-level NA/DA/pair deltas in batches, the
    /// schedulers register their per-worker cost ledgers, and the
    /// entry point marks completion — a `ProgressEngine` sampling the
    /// same tracker then turns the feed into fractions and ETAs.
    /// Results are byte-identical either way.
    pub progress: ProgressTracker,
}

/// How parallel work units are assigned to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleMode {
    /// Static: root-level pairs dealt `i mod threads`, no
    /// redistribution. The pre-cost-model baseline.
    RoundRobin,
    /// Cost-guided: frontier work units priced with Eq 6 on measured
    /// subtree parameters (overlap-scaled), LPT-seeded deques, idle
    /// workers steal from the busiest deque.
    #[default]
    CostGuided,
}

/// Target number of work units per worker for the cost-guided
/// scheduler. More units mean finer-grained stealing but more frontier
/// expansion done serially by the coordinator.
const UNITS_PER_WORKER: usize = 4;

/// The session-builder [`Scheduler`] for a legacy `(mode, threads)`
/// pair — the translation the deprecated wrappers route through.
fn scheduler_for(mode: ScheduleMode, threads: usize) -> Scheduler {
    match mode {
        ScheduleMode::RoundRobin => Scheduler::RoundRobin { threads },
        ScheduleMode::CostGuided => Scheduler::CostGuided { threads },
    }
}

/// Runs the spatial join with `threads` workers under the default
/// cost-guided scheduler. `threads = 1` falls back to the sequential
/// executor (its `pairs` are still sorted — see the module docs).
#[deprecated(
    note = "use `session::JoinSession` with `.scheduler(Scheduler::CostGuided { threads })`"
)]
pub fn parallel_spatial_join<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    config: JoinConfig,
    threads: usize,
) -> JoinResultSet {
    JoinSession::new(r1, r2)
        .config(config)
        .scheduler(Scheduler::CostGuided {
            threads: threads.max(1),
        })
        .run()
        .unwrap_or_else(|e| panic!("{e}"))
        .result
}

/// Runs the spatial join with `threads` workers and an explicit
/// [`ScheduleMode`].
#[deprecated(note = "use `session::JoinSession` with `.scheduler(..)`")]
pub fn parallel_spatial_join_with<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    config: JoinConfig,
    threads: usize,
    mode: ScheduleMode,
) -> JoinResultSet {
    JoinSession::new(r1, r2)
        .config(config)
        .scheduler(scheduler_for(mode, threads.max(1)))
        .run()
        .unwrap_or_else(|e| panic!("{e}"))
        .result
}

/// A join's worth of work-unit metadata held per worker arena: the
/// bytes the parallel schedulers charge against the governor's memory
/// budget per unit they materialize.
const UNIT_ARENA_BYTES: usize = std::mem::size_of::<(usize, WorkUnit)>();

/// Runs the spatial join with observability hooks: spans for the
/// frontier descent, the schedule, and every executed work unit, plus
/// in-flight drift checks against the monitor's `na.total` /
/// `da.total` predictions. With a default [`JoinObs`] this is exactly
/// [`parallel_spatial_join_with`] — pair output, NA and DA are
/// identical whether or not observation is enabled.
///
/// The infallible entry points clamp `threads = 0` to one worker (the
/// sequential fallback) instead of panicking; the `try_*` twins report
/// it as [`JoinError::InvalidThreads`].
#[deprecated(note = "use `session::JoinSession` with `.scheduler(..)` and `.observe(obs)`")]
pub fn parallel_spatial_join_observed<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    config: JoinConfig,
    threads: usize,
    mode: ScheduleMode,
    obs: &JoinObs,
) -> JoinResultSet {
    JoinSession::new(r1, r2)
        .config(config)
        .scheduler(scheduler_for(mode, threads.max(1)))
        .observe(obs)
        .run()
        .unwrap_or_else(|e| panic!("{e}"))
        .result
}

/// Fallible twin of [`parallel_spatial_join_with`]: runs the parallel
/// join under a [`FaultInjector`]. A work unit whose subtree hits a
/// permanent read failure is contained — only the affected node pair
/// is forfeited, and the other work-stealing lanes keep running. The
/// forfeited sub-joins come back priced on
/// [`DegradedJoinResult::skips`], identical (same set, same order) for
/// both schedulers, any thread count, and the sequential twin under the
/// same fault plan.
///
/// `Err` is reserved for failures that make the run unusable — a
/// worker thread panicking (the infallible twins propagate such a
/// panic instead), or an invalid `threads = 0` (which the infallible
/// twins clamp to one worker).
#[deprecated(
    note = "use `session::JoinSession` with `.scheduler(..)`, `.faults(..)`, `.govern(..)`"
)]
pub fn try_parallel_spatial_join_with<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    config: JoinConfig,
    threads: usize,
    mode: ScheduleMode,
    faults: &FaultInjector,
    gov: &Governor,
) -> Result<DegradedJoinResult<N>, JoinError> {
    JoinSession::new(r1, r2)
        .config(config)
        .scheduler(scheduler_for(mode, threads))
        .faults(faults)
        .govern(gov)
        .run()
}

/// Fallible twin of [`parallel_spatial_join_observed`] — see
/// [`try_parallel_spatial_join_with`]. The governor gates the run:
/// admission happens before any traversal, and when a deadline,
/// cancellation point, or degrade cap is armed, execution routes
/// through ordinal-tagged root units so every scheduler forfeits the
/// identical inventory at a fixed cancellation point. An unlimited
/// governor leaves the ungoverned paths untouched (byte-identical —
/// asserted in the governor tests).
#[deprecated(
    note = "use `session::JoinSession` with `.scheduler(..)`, `.observe(..)`, `.faults(..)`, `.govern(..)`"
)]
#[allow(clippy::too_many_arguments)]
pub fn try_parallel_spatial_join_observed<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    config: JoinConfig,
    threads: usize,
    mode: ScheduleMode,
    obs: &JoinObs,
    faults: &FaultInjector,
    gov: &Governor,
) -> Result<DegradedJoinResult<N>, JoinError> {
    JoinSession::new(r1, r2)
        .config(config)
        .scheduler(scheduler_for(mode, threads))
        .observe(obs)
        .faults(faults)
        .govern(gov)
        .run()
}

// ---------------------------------------------------------------------
// Cost-guided scheduler.
// ---------------------------------------------------------------------

pub(crate) fn cost_guided_join<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    config: JoinConfig,
    threads: usize,
    ctx: &ExecContext<'_>,
) -> Result<(JoinResultSet, Vec<RawSkip>), JoinError> {
    let gov = ctx.gov;
    let mut join_span = ctx.tracer.span("cost-guided-join");
    join_span.set("threads", threads);

    // 1. The coordinator descends until it holds enough units, charging
    //    the intermediate accesses itself (in sequential per-level
    //    order). Its recorder lanes stay on correlation domain 0.
    let mut coord = Engine::new(r1, r2, config, ctx, CorrDomain::Coordinator);
    let units = {
        let mut span = join_span.child("frontier-descent");
        let units = coord.collect_frontier(threads * UNITS_PER_WORKER, threads);
        span.set("units", units.len());
        span.set("na", coord.stats1.na_total() + coord.stats2.na_total());
        units
    };
    // The coordinator charges nothing below the frontier; publish its
    // tallies now so they cannot be double-counted when worker stats
    // are merged back into `coord` after the scope.
    coord.flush_progress();

    // The frontier units and the per-worker deques are the scheduler's
    // arena: charge them against the governor's memory budget before
    // committing to the parallel phase.
    let arena_bytes = (units.len() * UNIT_ARENA_BYTES) as u64;
    gov.reserve(arena_bytes)?;

    // 2. Price each unit with Eq 6 on its measured subtree parameters,
    //    then LPT-seed: hand units out in descending cost order, each to
    //    the currently least-loaded deque. Ties broken by unit index so
    //    the seeding is deterministic. `plan[i]` remembers the worker
    //    unit `i` was seeded to — per-worker tallies are attributed by
    //    this plan (see the module docs).
    let mut schedule_span = join_span.child("schedule");
    let costs = unit_costs(r1, r2, &units);
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_unstable_by(|&i, &j| costs[j].cmp(&costs[i]).then(i.cmp(&j)));
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); threads];
    let mut loads = vec![0u64; threads];
    let mut plan = vec![0usize; units.len()];
    for i in order {
        let w = (0..threads).min_by_key(|&w| (loads[w], w)).unwrap();
        plan[i] = w;
        queues[w].push_back(i);
        loads[w] += costs[i];
    }
    // Register the planned per-worker ledger with the progress hub:
    // LPT unit counts and Eq-6 cost per deque, before any worker runs.
    let planned: Vec<(u64, u64)> = queues
        .iter()
        .zip(&loads)
        .map(|(q, &load)| (q.len() as u64, load))
        .collect();
    ctx.progress.set_schedule(&planned);
    let deques: Vec<Deque> = queues
        .into_iter()
        .zip(loads)
        .map(|(queue, load)| Deque {
            queue: Mutex::new(queue),
            remaining: AtomicU64::new(load),
        })
        .collect();
    schedule_span.set("units", units.len());
    schedule_span.set("cost_total", costs.iter().sum::<u64>());
    schedule_span.finish();

    // Running NA/DA totals for the in-flight drift checks, seeded with
    // what the coordinator already charged above the frontier.
    let na_live = AtomicU64::new(coord.stats1.na_total() + coord.stats2.na_total());
    let da_live = AtomicU64::new(coord.stats1.da_total() + coord.stats2.da_total());

    // 3. Workers drain their own deque front-first (largest unit first,
    //    thanks to LPT order) and steal from the deque with the most
    //    estimated work left once idle. Each worker records a per-unit
    //    tally so the coordinator can attribute units to their *planned*
    //    worker afterwards.
    // Workers start together: without the barrier, on small inputs the
    // first-spawned worker can steal every deque dry before the others
    // even begin, serializing the execution.
    let start = Barrier::new(threads);
    let join_id = join_span.id();
    type WorkerOutput = (
        Vec<(usize, WorkerTally)>,
        StealTally,
        JoinResultSet,
        Vec<RawSkip>,
    );
    let worker_outputs: Vec<Result<WorkerOutput, JoinError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let deques = &deques;
                let units = &units;
                let costs = &costs;
                let plan = &plan;
                let start = &start;
                // One context clone per worker (cheap `Arc` handles):
                // the same per-worker hook cloning as before, behind
                // the one seam.
                let wctx = ctx.clone();
                let na_live = &na_live;
                let da_live = &da_live;
                scope.spawn(move || {
                    let mut worker_span = wctx.tracer.span_under(join_id, "worker");
                    worker_span.set("worker", w);
                    let mut exec = Engine::new(r1, r2, config, &wctx, CorrDomain::Coordinator);
                    let mut per_unit: Vec<(usize, WorkerTally)> = Vec::new();
                    let mut steal = StealTally::default();
                    // First-breach markers, per worker (the monitor's
                    // overrun is sticky, so one marker per lane is the
                    // signal; repeating it every unit would be noise).
                    let mut na_breach_marked = false;
                    let mut da_breach_marked = false;
                    start.wait();
                    while let Some((i, stolen)) = next_unit(deques, costs, w, &mut steal) {
                        steal.units_executed += 1;
                        let mut unit_span = worker_span.child("unit");
                        let (a, b) = units[i];
                        // Fresh buffers per unit: see the module docs.
                        // The unit is its own buffer-residency domain,
                        // so its accesses get their own correlation id.
                        exec.buf1.clear();
                        exec.buf2.clear();
                        exec.set_domain(CorrDomain::Unit(i));
                        let corr = CorrDomain::Unit(i).corr();
                        let na0 = exec.stats1.na_total() + exec.stats2.na_total();
                        let da0 = exec.stats1.da_total() + exec.stats2.da_total();
                        let pc0 = exec.pair_count;
                        exec.visit(a, b);
                        let na = exec.stats1.na_total() + exec.stats2.na_total() - na0;
                        let da = exec.stats1.da_total() + exec.stats2.da_total() - da0;
                        let pair_count = exec.pair_count - pc0;
                        per_unit.push((
                            i,
                            WorkerTally {
                                units: 1,
                                na,
                                da,
                                pair_count,
                            },
                        ));
                        unit_span.set("unit", i);
                        unit_span.set("corr", corr as u64);
                        unit_span.set("stolen", stolen);
                        unit_span.set("na", na);
                        unit_span.set("da", da);
                        unit_span.set("pairs", pair_count);
                        if wctx.progress.is_enabled() {
                            // Retire the unit's Eq-6 cost from its
                            // *planned* worker's ledger (steal-aware —
                            // the same attribution `WorkerTally` uses)
                            // and publish the tallies so samplers see
                            // the unit boundary immediately.
                            wctx.progress.unit_done(plan[i], costs[i]);
                            exec.flush_progress();
                            // Zero-duration progress instant on this
                            // worker's Perfetto lane.
                            let mut p = unit_span.child(PROGRESS_SPAN);
                            p.set("unit", i);
                            p.set("cost", costs[i]);
                        }
                        if let Some(drift) = wctx.drift {
                            let na_now = na_live.fetch_add(na, Ordering::Relaxed) + na;
                            let da_now = da_live.fetch_add(da, Ordering::Relaxed) + da;
                            let na_breach = drift.observe_in_flight(NA_TOTAL, na_now as f64);
                            let da_breach = drift.observe_in_flight(DA_TOTAL, da_now as f64);
                            if na_breach && !na_breach_marked {
                                na_breach_marked = true;
                                let mut b = unit_span.child(BREACH_SPAN);
                                b.set("target", NA_TOTAL);
                                b.set("at", na_now);
                            }
                            if da_breach && !da_breach_marked {
                                da_breach_marked = true;
                                let mut b = unit_span.child(BREACH_SPAN);
                                b.set("target", DA_TOTAL);
                                b.set("at", da_now);
                            }
                        }
                    }
                    worker_span.set("units", steal.units_executed);
                    worker_span.set("stolen", steal.units_stolen);
                    (
                        per_unit,
                        steal,
                        JoinResultSet {
                            pairs: exec.pairs,
                            pair_count: exec.pair_count,
                            stats1: exec.stats1,
                            stats2: exec.stats2,
                            buffers1: exec.buf1.counters(),
                            buffers2: exec.buf2.counters(),
                            ..JoinResultSet::default()
                        },
                        exec.skips,
                    )
                })
            })
            .collect();
        // Join every handle before propagating a failure, so one dead
        // worker cannot leave others unjoined (a panic payload consumed
        // via `join` also will not re-raise at scope exit).
        handles
            .into_iter()
            .map(|h| h.join().map_err(JoinError::from_panic))
            .collect()
    });

    let mut workers = vec![WorkerTally::default(); threads];
    let mut steals = Vec::with_capacity(threads);
    let mut buffers1 = coord.buf1.counters();
    let mut buffers2 = coord.buf2.counters();
    let mut raw = std::mem::take(&mut coord.skips);
    for output in worker_outputs {
        let (per_unit, steal, r, skips) = output?;
        for (i, t) in per_unit {
            let tally = &mut workers[plan[i]];
            tally.units += t.units;
            tally.na += t.na;
            tally.da += t.da;
            tally.pair_count += t.pair_count;
        }
        steals.push(steal);
        buffers1.merge(&r.buffers1);
        buffers2.merge(&r.buffers2);
        coord.pairs.extend(r.pairs);
        coord.pair_count += r.pair_count;
        coord.stats1.merge(&r.stats1);
        coord.stats2.merge(&r.stats2);
        raw.extend(skips);
    }
    gov.release(arena_bytes);
    join_span.set("na", coord.stats1.na_total() + coord.stats2.na_total());
    join_span.set("da", coord.stats1.da_total() + coord.stats2.da_total());
    join_span.set("pairs", coord.pair_count);
    Ok((
        JoinResultSet {
            pairs: coord.pairs,
            pair_count: coord.pair_count,
            stats1: coord.stats1,
            stats2: coord.stats2,
            workers,
            buffers1,
            buffers2,
            steals,
        },
        raw,
    ))
}

/// One worker's deque plus the estimated cost of what is still queued
/// (the steal-victim selection key).
struct Deque {
    queue: Mutex<VecDeque<usize>>,
    remaining: AtomicU64,
}

/// Pops the front unit, returning it together with the queue depth left
/// behind (the steal-time depth recorded in [`StealTally`]).
fn pop_front(deque: &Deque, costs: &[u64]) -> Option<(usize, u64)> {
    // A poisoned lock means another worker panicked while popping; the
    // queue itself is still consistent (pop_front is atomic on the
    // VecDeque), and the panic is reported as `JoinError::WorkerPanicked`
    // at join time — so keep draining rather than panicking here too.
    let mut q = deque
        .queue
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let i = q.pop_front()?;
    deque.remaining.fetch_sub(costs[i], Ordering::Relaxed);
    Some((i, q.len() as u64))
}

/// Next unit for worker `own`: its own deque first, then a steal from
/// the deque with the most estimated work remaining. Returns the unit
/// and whether it was stolen; `None` only when every deque is empty
/// (units are never re-queued, so that means the join is drained).
/// Steal attempts, successful steals and victim queue depths are
/// recorded into `steal`.
fn next_unit(
    deques: &[Deque],
    costs: &[u64],
    own: usize,
    steal: &mut StealTally,
) -> Option<(usize, bool)> {
    if let Some((i, _)) = pop_front(&deques[own], costs) {
        return Some((i, false));
    }
    loop {
        let victim = deques
            .iter()
            .enumerate()
            .filter(|(_, d)| d.remaining.load(Ordering::Relaxed) > 0)
            .max_by_key(|(_, d)| d.remaining.load(Ordering::Relaxed))
            .map(|(w, _)| w)?;
        steal.steal_attempts += 1;
        if let Some((i, depth)) = pop_front(&deques[victim], costs) {
            steal.units_stolen += 1;
            steal.steal_queue_depths.push(depth);
            return Some((i, true));
        }
        // Lost the race for that deque; rescan.
    }
}

/// Eq-6 price of every unit, on measured subtree parameters. Subtree
/// statistics are cached per node id — at a given frontier depth each
/// subtree appears in many units. Costs are scaled to integers for the
/// atomic bookkeeping; only relative magnitudes matter.
///
/// Eq 6 assumes both node populations spread over the *whole*
/// workspace, but a unit joins two localized subtrees whose MBRs may
/// overlap anywhere from a sliver to fully — the dominant factor in the
/// unit's actual NA. In the spirit of the paper's §4.2 global→local
/// transformation, the Eq-6 price is therefore scaled per dimension by
/// the fraction of the smaller subtree's extent that lies in the MBR
/// intersection.
fn unit_costs<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    units: &[(NodeId, NodeId)],
) -> Vec<u64> {
    let mut cache1: HashMap<NodeId, TreeParams<N>> = HashMap::new();
    let mut cache2: HashMap<NodeId, TreeParams<N>> = HashMap::new();
    units
        .iter()
        .map(|&(a, b)| {
            let p1 = cache1.entry(a).or_insert_with(|| subtree_params(r1, a));
            let p2 = cache2.entry(b).or_insert_with(|| subtree_params(r2, b));
            let cost = unit_cost_na(p1, p2) * overlap_fraction(r1, r2, a, b);
            ((cost * 16.0).round() as u64).max(1)
        })
        .collect()
}

/// Per-dimension fraction of the smaller of the two subtree MBR extents
/// covered by their intersection, multiplied over dimensions. 1.0 for
/// nested/co-located subtrees, → 0 for sliver overlaps. Shared with the
/// degraded-result pricing, which uses the same factor to price
/// *forfeited* sub-joins.
pub(crate) fn overlap_fraction<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    a: NodeId,
    b: NodeId,
) -> f64 {
    let (m1, m2) = match (r1.node(a).mbr(), r2.node(b).mbr()) {
        (Some(m1), Some(m2)) => (m1, m2),
        _ => return 1.0,
    };
    let mut factor = 1.0;
    for k in 0..N {
        let inter = (m1.hi_k(k).min(m2.hi_k(k)) - m1.lo_k(k).max(m2.lo_k(k))).max(0.0);
        let narrow = m1.extent(k).min(m2.extent(k));
        if narrow > 0.0 {
            factor *= (inter / narrow).min(1.0);
        }
    }
    factor
}

pub(crate) fn subtree_params<const N: usize>(tree: &RTree<N>, id: NodeId) -> TreeParams<N> {
    let stats = tree.subtree_stats(id);
    TreeParams::from_levels(
        stats
            .levels
            .iter()
            .map(|l| LevelParams {
                nodes: l.node_count as f64,
                extents: std::array::from_fn(|k| l.avg_extents[k]),
                density: l.density,
            })
            .collect(),
    )
}

// ---------------------------------------------------------------------
// Legacy round-robin scheduler.
// ---------------------------------------------------------------------

pub(crate) fn round_robin_join<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    config: JoinConfig,
    threads: usize,
    ctx: &ExecContext<'_>,
) -> Result<(JoinResultSet, Vec<RawSkip>), JoinError> {
    let gov = ctx.gov;
    let mut join_span = ctx.tracer.span("round-robin-join");
    join_span.set("threads", threads);
    // Root-level work units: overlapping (child1, child2) pairs, or
    // pinned pairs when heights differ at the root. Units keep their
    // global ordinal so governed runs can gate them deterministically.
    let units = root_work_units(r1, r2, &config);
    let arena_bytes = (units.len() * UNIT_ARENA_BYTES) as u64;
    gov.reserve(arena_bytes)?;
    let mut shards: Vec<Vec<(usize, WorkUnit)>> = vec![Vec::new(); threads];
    for (i, u) in units.into_iter().enumerate() {
        shards[i % threads].push((i, u));
    }
    // Round-robin has no cost model: the ledger prices every root unit
    // at one, so per-worker progress is units retired over units dealt.
    let planned: Vec<(u64, u64)> = shards
        .iter()
        .map(|s| (s.len() as u64, s.len() as u64))
        .collect();
    ctx.progress.set_schedule(&planned);

    let join_id = join_span.id();
    let results: Vec<Result<(JoinResultSet, Vec<RawSkip>), JoinError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .enumerate()
                .map(|(w, shard)| {
                    let wctx = ctx.clone();
                    scope.spawn(move || {
                        let mut span = wctx.tracer.span_under(join_id, "worker");
                        span.set("worker", w);
                        span.set("units", shard.len());
                        // One correlation domain per shard: its buffers
                        // persist across all of the shard's units.
                        run_shard(r1, r2, config, shard, &wctx, CorrDomain::Shard(w))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(JoinError::from_panic))
                .collect()
        });

    let mut pairs = Vec::new();
    let mut pair_count = 0;
    let mut stats1 = AccessStats::new();
    let mut stats2 = AccessStats::new();
    let mut workers = Vec::with_capacity(threads);
    let mut steals = Vec::with_capacity(threads);
    let mut buffers1 = sjcm_storage::BufferCounters::default();
    let mut buffers2 = sjcm_storage::BufferCounters::default();
    let mut raw = Vec::new();
    for (shard, result) in shards.iter().zip(results) {
        let (r, skips) = result?;
        workers.push(WorkerTally {
            units: shard.len() as u64,
            na: r.na_total(),
            da: r.da_total(),
            pair_count: r.pair_count,
        });
        // No stealing in this mode: every shard executes exactly what
        // it was dealt.
        steals.push(StealTally {
            units_executed: shard.len() as u64,
            ..StealTally::default()
        });
        buffers1.merge(&r.buffers1);
        buffers2.merge(&r.buffers2);
        pairs.extend(r.pairs);
        pair_count += r.pair_count;
        stats1.merge(&r.stats1);
        stats2.merge(&r.stats2);
        raw.extend(skips);
    }
    gov.release(arena_bytes);
    join_span.set("na", stats1.na_total() + stats2.na_total());
    join_span.set("da", stats1.da_total() + stats2.da_total());
    join_span.set("pairs", pair_count);
    Ok((
        JoinResultSet {
            pairs,
            pair_count,
            stats1,
            stats2,
            workers,
            buffers1,
            buffers2,
            steals,
        },
        raw,
    ))
}

/// One root-level work unit of the static schedulers (round-robin and
/// the governed deal). Units carry a global ordinal when dealt, so the
/// governor can gate them deterministically across schedulers.
#[derive(Debug, Clone, Copy)]
pub(crate) enum WorkUnit {
    /// Both root children descend.
    Pair(Child, Child),
    /// Both roots are leaves: object-pair output at the roots (no work
    /// to parallelize — emitted by whichever shard holds this unit).
    Emit(ObjectId, ObjectId),
}

pub(crate) fn root_work_units<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    config: &JoinConfig,
) -> Vec<WorkUnit> {
    let n1 = r1.node(r1.root_id());
    let n2 = r2.node(r2.root_id());
    let pred = config.predicate;
    // The root deal always matches in nested-loop order — shard
    // composition must not depend on the per-node match order — but
    // honours the configured kernel.
    let root_config = JoinConfig {
        order: crate::executor::MatchOrder::NestedLoop,
        ..*config
    };
    let mut scratch = MatchScratch::new();
    let mut units = Vec::new();
    match (n1.is_leaf(), n2.is_leaf()) {
        (true, true) => {
            for (c1, c2) in matched_entries(n1, n2, &root_config, &mut scratch) {
                units.push(WorkUnit::Emit(c1.object(), c2.object()));
            }
        }
        (false, false) => {
            for (c1, c2) in matched_entries(n1, n2, &root_config, &mut scratch) {
                units.push(WorkUnit::Pair(c1, c2));
            }
        }
        (false, true) => {
            if let Some(m2) = n2.mbr() {
                for c1 in pinned_children(&n1.entries, &m2, pred, config.kernel, &mut scratch) {
                    units.push(WorkUnit::Pair(Child::Node(c1), Child::Node(r2.root_id())));
                }
            }
        }
        (true, false) => {
            if let Some(m1) = n1.mbr() {
                for c2 in pinned_children(&n2.entries, &m1, pred, config.kernel, &mut scratch) {
                    units.push(WorkUnit::Pair(Child::Node(r1.root_id()), Child::Node(c2)));
                }
            }
        }
    }
    units
}

/// Runs one static shard: the assigned ordinal-tagged root-level pairs
/// through a worker executor whose buffers persist across units (the
/// legacy behaviour, kept bit-for-bit so `RoundRobin` stays an honest
/// baseline). The context's governor gates every `Pair` unit at its
/// `ctx.checkpoint` boundary; a refused unit is forfeited exactly like
/// a fault-forfeited pair — recorded as a skip, priced later, never
/// silently dropped. An unlimited governor is one `Option` check per
/// unit.
pub(crate) fn run_shard<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    config: JoinConfig,
    units: &[(usize, WorkUnit)],
    ctx: &ExecContext<'_>,
    domain: CorrDomain,
) -> (JoinResultSet, Vec<RawSkip>) {
    // The shard is one buffer-residency domain: its correlation id and
    // the progress-ledger worker index both come from `domain`.
    let mut shard = Engine::new(r1, r2, config, ctx, domain);
    let worker = domain.worker_index();
    for &(ordinal, unit) in units {
        match unit {
            WorkUnit::Emit(a, b) => {
                // Emissions carry no I/O; they always execute.
                shard.pair_count += 1;
                if config.collect_pairs {
                    shard.pairs.push((a, b));
                }
                ctx.unit_done(ordinal);
            }
            WorkUnit::Pair(c1, c2) => {
                let (id1, id2) = (c1.node(), c2.node());
                // Work-unit boundary: the governor's cancellation
                // point. A refusal forfeits the whole subtree pair,
                // priced like a fault forfeit.
                if !ctx.checkpoint(ordinal) {
                    shard.skips.push(RawSkip {
                        tree: 1,
                        n1: id1,
                        n2: id2,
                    });
                    shard.progress.forfeit(r1.node(id1).level);
                    ctx.forfeit_unit(ordinal);
                    continue;
                }
                // The same probe the sequential executor makes before
                // charging this pair (roots are exempt inside `probe`).
                if shard.faults.is_enabled() && !shard.probe(id1, id2) {
                    continue;
                }
                // Root-child reads are charged like in the sequential
                // executor (unless the unit pins a root itself).
                if id1 != r1.root_id() {
                    shard.access1(id1);
                }
                if id2 != r2.root_id() {
                    shard.access2(id2);
                }
                shard.visit(id1, id2);
                ctx.unit_done(ordinal);
            }
        }
        if ctx.progress.is_enabled() {
            ctx.progress.unit_done(worker, 1);
            shard.flush_progress();
        }
    }
    shard.into_parts()
}

#[cfg(test)]
mod tests {
    // The deprecated free-function entry points are exercised on purpose:
    // they are thin wrappers over `JoinSession` and these tests double as
    // wrapper coverage.
    #![allow(deprecated)]

    use super::*;
    use crate::executor::spatial_join;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sjcm_geom::Rect;
    use sjcm_rtree::RTreeConfig;

    fn build(n: usize, side: f64, seed: u64) -> RTree<2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = RTree::<2>::new(RTreeConfig::with_capacity(8));
        for i in 0..n {
            let cx: f64 = rng.gen_range(0.0..1.0);
            let cy: f64 = rng.gen_range(0.0..1.0);
            tree.insert(
                Rect::centered(sjcm_geom::Point::new([cx, cy]), [side, side]),
                ObjectId(i as u32),
            );
        }
        tree
    }

    fn sorted(mut pairs: Vec<(ObjectId, ObjectId)>) -> Vec<(ObjectId, ObjectId)> {
        pairs.sort_unstable();
        pairs
    }

    #[test]
    fn parallel_matches_sequential_pairs() {
        let a = build(2_000, 0.01, 1);
        let b = build(2_000, 0.01, 2);
        let seq = sorted(spatial_join(&a, &b).pairs);
        for mode in [ScheduleMode::RoundRobin, ScheduleMode::CostGuided] {
            for threads in [2, 4, 7] {
                let par = parallel_spatial_join_with(&a, &b, JoinConfig::default(), threads, mode);
                assert_eq!(par.pairs, seq, "{mode:?} with {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_na_equals_sequential_na() {
        let a = build(2_000, 0.01, 3);
        let b = build(2_000, 0.01, 4);
        let seq = spatial_join(&a, &b);
        for mode in [ScheduleMode::RoundRobin, ScheduleMode::CostGuided] {
            let par = parallel_spatial_join_with(&a, &b, JoinConfig::default(), 4, mode);
            assert_eq!(seq.na_total(), par.na_total(), "{mode:?}");
            assert_eq!(seq.pair_count, par.pair_count, "{mode:?}");
        }
    }

    #[test]
    fn parallel_da_at_least_sequential_da() {
        // Cost-guided only: the bound is a design property of the
        // per-unit buffer resets (see the module docs); the legacy
        // round-robin scheduler does not guarantee it.
        let a = build(3_000, 0.008, 5);
        let b = build(3_000, 0.008, 6);
        let seq = spatial_join(&a, &b);
        let par =
            parallel_spatial_join_with(&a, &b, JoinConfig::default(), 4, ScheduleMode::CostGuided);
        assert!(
            par.da_total() >= seq.da_total(),
            "parallel {} vs sequential {}",
            par.da_total(),
            seq.da_total()
        );
    }

    #[test]
    fn cost_guided_da_is_deterministic() {
        // Stealing redistributes units at runtime, but per-unit buffer
        // resets make the global DA independent of the assignment.
        let a = build(2_500, 0.01, 13);
        let b = build(2_500, 0.01, 14);
        let first = parallel_spatial_join(&a, &b, JoinConfig::default(), 4);
        for _ in 0..3 {
            let again = parallel_spatial_join(&a, &b, JoinConfig::default(), 4);
            assert_eq!(first.da_total(), again.da_total());
            assert_eq!(first.na_total(), again.na_total());
            assert_eq!(first.pairs, again.pairs);
            // Tallies attribute units to their planned worker, so they
            // are deterministic too, stealing notwithstanding.
            assert_eq!(first.workers, again.workers);
        }
    }

    #[test]
    fn worker_tallies_cover_the_work() {
        let a = build(2_000, 0.01, 15);
        let b = build(2_000, 0.01, 16);
        let seq = spatial_join(&a, &b);
        let par = parallel_spatial_join(&a, &b, JoinConfig::default(), 3);
        assert_eq!(par.workers.len(), 3);
        let worker_pairs: u64 = par.workers.iter().map(|w| w.pair_count).sum();
        assert_eq!(worker_pairs, seq.pair_count);
        let worker_na: u64 = par.workers.iter().map(|w| w.na).sum();
        // Workers charge everything below the frontier; the coordinator
        // charges the rest.
        assert!(worker_na <= par.na_total());
        assert!(par.workers.iter().map(|w| w.units).sum::<u64>() >= 3 * 4 / 2);
        assert!(par.na_imbalance() >= 1.0);
    }

    #[test]
    fn single_thread_is_sequential() {
        let a = build(500, 0.02, 7);
        let b = build(500, 0.02, 8);
        let seq = spatial_join(&a, &b);
        let par = parallel_spatial_join(&a, &b, JoinConfig::default(), 1);
        assert_eq!(sorted(seq.pairs.clone()), par.pairs);
        assert_eq!(seq.da_total(), par.da_total());
        assert!(par.workers.is_empty());
        assert_eq!(par.na_imbalance(), 1.0);
    }

    #[test]
    fn parallel_handles_different_heights() {
        let a = build(3_000, 0.01, 9);
        let b = build(40, 0.05, 10);
        assert!(a.height() > b.height());
        let seq = spatial_join(&a, &b);
        for mode in [ScheduleMode::RoundRobin, ScheduleMode::CostGuided] {
            let par = parallel_spatial_join_with(&a, &b, JoinConfig::default(), 3, mode);
            assert_eq!(par.pairs, sorted(seq.pairs.clone()), "{mode:?}");
            assert_eq!(par.na_total(), seq.na_total(), "{mode:?}");
            // Role-swapped as well (pinned tree on the other side).
            let swapped = parallel_spatial_join_with(&b, &a, JoinConfig::default(), 3, mode);
            let seq_swapped = spatial_join(&b, &a);
            assert_eq!(swapped.pairs, sorted(seq_swapped.pairs.clone()), "{mode:?}");
            assert_eq!(swapped.na_total(), seq_swapped.na_total(), "{mode:?}");
        }
    }

    #[test]
    fn parallel_handles_leaf_roots() {
        let a = build(5, 0.2, 11);
        let b = build(5, 0.2, 12);
        assert_eq!(a.height(), 1);
        let seq = spatial_join(&a, &b);
        for mode in [ScheduleMode::RoundRobin, ScheduleMode::CostGuided] {
            let par = parallel_spatial_join_with(&a, &b, JoinConfig::default(), 2, mode);
            assert_eq!(par.pairs, sorted(seq.pairs.clone()), "{mode:?}");
        }
    }

    #[test]
    fn observed_join_is_identical_to_unobserved() {
        let a = build(2_000, 0.01, 19);
        let b = build(2_000, 0.01, 20);
        let plain = parallel_spatial_join(&a, &b, JoinConfig::default(), 4);
        let tracer = Tracer::enabled();
        let drift = DriftMonitor::default();
        drift.predict(NA_TOTAL, plain.na_total() as f64);
        drift.predict(DA_TOTAL, plain.da_total() as f64);
        let obs = JoinObs {
            tracer: tracer.clone(),
            drift: Some(&drift),
            recorder: FlightRecorder::disabled(),
            progress: ProgressTracker::disabled(),
        };
        let traced = parallel_spatial_join_observed(
            &a,
            &b,
            JoinConfig::default(),
            4,
            ScheduleMode::CostGuided,
            &obs,
        );
        // Observation must not perturb the join.
        assert_eq!(plain.pairs, traced.pairs);
        assert_eq!(plain.na_total(), traced.na_total());
        assert_eq!(plain.da_total(), traced.da_total());
        assert_eq!(plain.workers, traced.workers);
        // Exact predictions ⇒ no in-flight overrun.
        assert!(drift.all_within());
        // The span tree covers the schedule and every unit.
        let records = tracer.records();
        assert!(records.iter().any(|r| r.name == "cost-guided-join"));
        assert!(records.iter().any(|r| r.name == "frontier-descent"));
        assert!(records.iter().any(|r| r.name == "schedule"));
        let planned: u64 = traced.workers.iter().map(|w| w.units).sum();
        assert_eq!(
            records.iter().filter(|r| r.name == "unit").count() as u64,
            planned
        );
        // Steal tallies cover every unit exactly once, whoever ran it.
        let executed: u64 = traced.steals.iter().map(|s| s.units_executed).sum();
        assert_eq!(executed, planned);
        assert_eq!(traced.steals.len(), 4);
        for s in &traced.steals {
            assert_eq!(s.steal_queue_depths.len() as u64, s.units_stolen);
            assert!(s.units_stolen <= s.steal_attempts);
        }
        // Buffer counters agree with the access tallies: every miss is
        // a DA, every hit an absorbed NA.
        assert_eq!(traced.buffers1.misses, traced.stats1.da_total());
        assert_eq!(
            traced.buffers1.hits,
            traced.stats1.na_total() - traced.stats1.da_total()
        );
        assert_eq!(traced.buffers2.misses, traced.stats2.da_total());
    }

    #[test]
    fn recorded_join_is_identical_and_replay_is_exact() {
        use sjcm_storage::recorder::RecordedPolicy;
        let a = build(2_000, 0.01, 25);
        let b = build(2_000, 0.01, 26);
        let plain = parallel_spatial_join(&a, &b, JoinConfig::default(), 4);
        let recorder = FlightRecorder::enabled();
        let obs = JoinObs {
            tracer: Tracer::disabled(),
            drift: None,
            recorder: recorder.clone(),
            progress: ProgressTracker::disabled(),
        };
        let recorded = parallel_spatial_join_observed(
            &a,
            &b,
            JoinConfig::default(),
            4,
            ScheduleMode::CostGuided,
            &obs,
        );
        // Recording must not perturb the join.
        assert_eq!(plain.pairs, recorded.pairs);
        assert_eq!(plain.na_total(), recorded.na_total());
        assert_eq!(plain.da_total(), recorded.da_total());
        // Every access produced exactly one event, none dropped.
        let (events, dropped) = recorder.drain();
        assert_eq!(dropped, 0);
        assert_eq!(events.len() as u64, recorded.na_total());
        // Replaying the recorded policy (the default is Path)
        // reproduces the live counters exactly — totals and per-level.
        let out = sjcm_storage::replay(&events, RecordedPolicy::Path);
        assert_eq!(out.kind_mismatches, 0);
        assert_eq!(out.stats1, recorded.stats1);
        assert_eq!(out.stats2, recorded.stats2);
    }

    #[test]
    fn round_robin_trace_replays_exactly_too() {
        use sjcm_storage::recorder::RecordedPolicy;
        let a = build(1_500, 0.012, 27);
        let b = build(1_500, 0.012, 28);
        let recorder = FlightRecorder::enabled();
        let obs = JoinObs {
            tracer: Tracer::disabled(),
            drift: None,
            recorder: recorder.clone(),
            progress: ProgressTracker::disabled(),
        };
        let recorded = parallel_spatial_join_observed(
            &a,
            &b,
            JoinConfig::default(),
            3,
            ScheduleMode::RoundRobin,
            &obs,
        );
        let (events, dropped) = recorder.drain();
        assert_eq!(dropped, 0);
        // Shard buffers persist across units, so per-shard correlation
        // domains are what makes this replay exact.
        let out = sjcm_storage::replay(&events, RecordedPolicy::Path);
        assert_eq!(out.kind_mismatches, 0);
        assert_eq!(out.stats1, recorded.stats1);
        assert_eq!(out.stats2, recorded.stats2);
    }

    #[test]
    fn sequential_fallback_records_too() {
        use sjcm_storage::recorder::RecordedPolicy;
        let a = build(800, 0.02, 29);
        let b = build(800, 0.02, 30);
        let recorder = FlightRecorder::enabled();
        let obs = JoinObs {
            tracer: Tracer::disabled(),
            drift: None,
            recorder: recorder.clone(),
            progress: ProgressTracker::disabled(),
        };
        let recorded = parallel_spatial_join_observed(
            &a,
            &b,
            JoinConfig::default(),
            1,
            ScheduleMode::CostGuided,
            &obs,
        );
        let (events, _) = recorder.drain();
        assert_eq!(events.len() as u64, recorded.na_total());
        assert!(events.iter().all(|e| e.corr == 0), "one residency domain");
        let out = sjcm_storage::replay(&events, RecordedPolicy::Path);
        assert_eq!(out.kind_mismatches, 0);
        assert_eq!(out.stats1, recorded.stats1);
        assert_eq!(out.stats2, recorded.stats2);
    }

    #[test]
    fn in_flight_drift_flags_absurd_predictions() {
        let a = build(2_000, 0.01, 21);
        let b = build(2_000, 0.01, 22);
        let drift = DriftMonitor::default();
        drift.predict(NA_TOTAL, 1.0); // the join does far more work
        let obs = JoinObs {
            tracer: Tracer::disabled(),
            drift: Some(&drift),
            recorder: FlightRecorder::disabled(),
            progress: ProgressTracker::disabled(),
        };
        parallel_spatial_join_observed(
            &a,
            &b,
            JoinConfig::default(),
            4,
            ScheduleMode::CostGuided,
            &obs,
        );
        assert!(!drift.all_within());
        assert!(drift.breaches().iter().any(|s| s.overrun));
    }

    #[test]
    fn drift_observations_match_target_names() {
        let a = build(2_000, 0.01, 23);
        let b = build(2_000, 0.01, 24);
        let r = parallel_spatial_join(&a, &b, JoinConfig::default(), 2);
        let names: Vec<String> = r.drift_observations().into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"na.total".to_string()));
        assert!(names.contains(&"da.total".to_string()));
        assert!(names.contains(&sjcm_core::join::na_target(1, 1)));
        assert!(names.contains(&sjcm_core::join::da_target(2, 1)));
    }

    #[test]
    fn frontier_descends_past_the_root() {
        // With 8 threads the unit target (32) exceeds the root fan-out
        // squared of these small trees, so the coordinator must descend
        // at least one extra level and still preserve all invariants.
        let a = build(4_000, 0.008, 17);
        let b = build(4_000, 0.008, 18);
        let seq = spatial_join(&a, &b);
        let par = parallel_spatial_join(&a, &b, JoinConfig::default(), 8);
        assert_eq!(par.pairs, sorted(seq.pairs.clone()));
        assert_eq!(par.na_total(), seq.na_total());
        assert!(par.da_total() >= seq.da_total());
    }
}
