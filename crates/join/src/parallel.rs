//! Parallel spatial join — the §5 future-work item, after Brinkhoff et
//! al., *Parallel Processing of Spatial Joins Using R-trees* (ICDE 1996).
//!
//! The root-level overlapping entry pairs are distributed round-robin
//! over worker threads; each worker runs the sequential SJ recursion on
//! its share with **its own** buffers and counters (a shared buffer
//! would serialize the workers), and the tallies are merged at the end.
//!
//! Consequences the tests pin down:
//!
//! * the result pair multiset is identical to the sequential join;
//! * NA is identical (the same node pairs are visited);
//! * DA is ≥ the sequential DA — splitting the traversal breaks some of
//!   the path-buffer locality, exactly the kind of effect the paper says
//!   a parallel cost model must account for.

use crate::executor::{spatial_join_with, JoinConfig, JoinResultSet};
use sjcm_geom::Rect;
use sjcm_rtree::{Child, Entry, Node, NodeId, ObjectId, RTree};
use sjcm_storage::{AccessStats, BufferManager, PageId};

/// Runs the spatial join with `threads` workers. `threads = 1` falls
/// back to the sequential executor.
pub fn parallel_spatial_join<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    config: JoinConfig,
    threads: usize,
) -> JoinResultSet {
    assert!(threads >= 1, "need at least one worker");
    if threads == 1 {
        return spatial_join_with(r1, r2, config);
    }
    // Collect the root-level work units: overlapping (child1, child2)
    // pairs, or pinned pairs when heights differ at the root.
    let units = root_work_units(r1, r2, &config);
    let mut shards: Vec<Vec<WorkUnit>> = vec![Vec::new(); threads];
    for (i, u) in units.into_iter().enumerate() {
        shards[i % threads].push(u);
    }

    let results: Vec<JoinResultSet> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| scope.spawn(move |_| run_shard(r1, r2, config, shard)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("thread scope failed");

    let mut pairs = Vec::new();
    let mut pair_count = 0;
    let mut stats1 = AccessStats::new();
    let mut stats2 = AccessStats::new();
    for r in results {
        pairs.extend(r.pairs);
        pair_count += r.pair_count;
        stats1.merge(&r.stats1);
        stats2.merge(&r.stats2);
    }
    JoinResultSet {
        pairs,
        pair_count,
        stats1,
        stats2,
    }
}

#[derive(Debug, Clone, Copy)]
enum WorkUnit {
    /// Both root children descend.
    Pair(Child, Child),
    /// R2's root is a leaf: object-pair output at the roots (no work to
    /// parallelize — handled inline by shard 0 via this unit).
    Emit(ObjectId, ObjectId),
}

fn root_work_units<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    config: &JoinConfig,
) -> Vec<WorkUnit> {
    let n1 = r1.node(r1.root_id());
    let n2 = r2.node(r2.root_id());
    let pred = config.predicate;
    let mut units = Vec::new();
    match (n1.is_leaf(), n2.is_leaf()) {
        (true, true) => {
            for e2 in &n2.entries {
                for e1 in &n1.entries {
                    if predicate_holds(pred, &e1.rect, &e2.rect) {
                        units.push(WorkUnit::Emit(e1.child.object(), e2.child.object()));
                    }
                }
            }
        }
        (false, false) => {
            for e2 in &n2.entries {
                for e1 in &n1.entries {
                    if predicate_holds(pred, &e1.rect, &e2.rect) {
                        units.push(WorkUnit::Pair(e1.child, e2.child));
                    }
                }
            }
        }
        (false, true) => {
            if let Some(m2) = n2.mbr() {
                for e1 in &n1.entries {
                    if predicate_holds(pred, &e1.rect, &m2) {
                        units.push(WorkUnit::Pair(e1.child, Child::Node(r2.root_id())));
                    }
                }
            }
        }
        (true, false) => {
            if let Some(m1) = n1.mbr() {
                for e2 in &n2.entries {
                    if predicate_holds(pred, &m1, &e2.rect) {
                        units.push(WorkUnit::Pair(Child::Node(r1.root_id()), e2.child));
                    }
                }
            }
        }
    }
    units
}

fn predicate_holds<const N: usize>(
    pred: crate::executor::JoinPredicate,
    a: &Rect<N>,
    b: &Rect<N>,
) -> bool {
    match pred {
        crate::executor::JoinPredicate::Overlap => a.intersects(b),
        crate::executor::JoinPredicate::WithinDistance(eps) => a.within_distance(b, eps),
    }
}

/// Runs one worker's share: a mini-executor seeded with the assigned
/// root-level pairs. Re-uses the sequential executor by synthesizing a
/// "virtual root" pair per unit.
fn run_shard<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    config: JoinConfig,
    units: &[WorkUnit],
) -> JoinResultSet {
    let mut shard = ShardExecutor {
        r1,
        r2,
        buf1: buffer_of(config),
        buf2: buffer_of(config),
        stats1: AccessStats::new(),
        stats2: AccessStats::new(),
        pairs: Vec::new(),
        pair_count: 0,
        config,
    };
    for unit in units {
        match *unit {
            WorkUnit::Emit(a, b) => {
                shard.pair_count += 1;
                if config.collect_pairs {
                    shard.pairs.push((a, b));
                }
            }
            WorkUnit::Pair(c1, c2) => {
                let (id1, id2) = (c1.node(), c2.node());
                // Root-child reads are charged like in the sequential
                // executor (unless the unit pins a root itself).
                if id1 != r1.root_id() {
                    shard.access1(id1);
                }
                if id2 != r2.root_id() {
                    shard.access2(id2);
                }
                shard.visit(id1, id2);
            }
        }
    }
    JoinResultSet {
        pairs: shard.pairs,
        pair_count: shard.pair_count,
        stats1: shard.stats1,
        stats2: shard.stats2,
    }
}

fn buffer_of(config: JoinConfig) -> Box<dyn BufferManager> {
    use crate::executor::BufferPolicy;
    use sjcm_storage::{LruBuffer, NoBuffer, PathBuffer};
    match config.buffer {
        BufferPolicy::None => Box::new(NoBuffer),
        BufferPolicy::Path => Box::new(PathBuffer::new()),
        BufferPolicy::Lru(cap) => Box::new(LruBuffer::new(cap)),
    }
}

/// A reduced copy of the sequential executor's recursion for worker
/// shards (the sequential `Executor` is private to `executor.rs` and
/// entangled with its entry point; the traversal logic is small enough
/// that sharing it through a trait would cost more than it saves).
struct ShardExecutor<'a, const N: usize> {
    r1: &'a RTree<N>,
    r2: &'a RTree<N>,
    buf1: Box<dyn BufferManager>,
    buf2: Box<dyn BufferManager>,
    stats1: AccessStats,
    stats2: AccessStats,
    pairs: Vec<(ObjectId, ObjectId)>,
    pair_count: u64,
    config: JoinConfig,
}

impl<const N: usize> ShardExecutor<'_, N> {
    fn access1(&mut self, id: NodeId) {
        let level = self.r1.node(id).level;
        let kind = self.buf1.access(PageId(id.0), level);
        self.stats1.record(level, kind);
    }

    fn access2(&mut self, id: NodeId) {
        let level = self.r2.node(id).level;
        let kind = self.buf2.access(PageId(id.0), level);
        self.stats2.record(level, kind);
    }

    fn visit(&mut self, n1_id: NodeId, n2_id: NodeId) {
        let n1: &Node<N> = self.r1.node(n1_id);
        let n2: &Node<N> = self.r2.node(n2_id);
        let pred = self.config.predicate;
        match (n1.is_leaf(), n2.is_leaf()) {
            (true, true) => {
                for e2 in &n2.entries {
                    for e1 in &n1.entries {
                        if predicate_holds(pred, &e1.rect, &e2.rect) {
                            self.pair_count += 1;
                            if self.config.collect_pairs {
                                self.pairs.push((e1.child.object(), e2.child.object()));
                            }
                        }
                    }
                }
            }
            (false, false) => {
                let matched: Vec<(Entry<N>, Entry<N>)> = n2
                    .entries
                    .iter()
                    .flat_map(|e2| {
                        n1.entries
                            .iter()
                            .filter(|e1| predicate_holds(pred, &e1.rect, &e2.rect))
                            .map(|e1| (*e1, *e2))
                    })
                    .collect();
                for (e1, e2) in matched {
                    let (c1, c2) = (e1.child.node(), e2.child.node());
                    self.access1(c1);
                    self.access2(c2);
                    self.visit(c1, c2);
                }
            }
            (false, true) => {
                let m2 = match n2.mbr() {
                    Some(m) => m,
                    None => return,
                };
                let children: Vec<NodeId> = n1
                    .entries
                    .iter()
                    .filter(|e| predicate_holds(pred, &e.rect, &m2))
                    .map(|e| e.child.node())
                    .collect();
                for c1 in children {
                    self.access1(c1);
                    self.access2(n2_id);
                    self.visit(c1, n2_id);
                }
            }
            (true, false) => {
                let m1 = match n1.mbr() {
                    Some(m) => m,
                    None => return,
                };
                let children: Vec<NodeId> = n2
                    .entries
                    .iter()
                    .filter(|e| predicate_holds(pred, &m1, &e.rect))
                    .map(|e| e.child.node())
                    .collect();
                for c2 in children {
                    self.access1(n1_id);
                    self.access2(c2);
                    self.visit(n1_id, c2);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::spatial_join;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sjcm_rtree::RTreeConfig;

    fn build(n: usize, side: f64, seed: u64) -> RTree<2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = RTree::<2>::new(RTreeConfig::with_capacity(8));
        for i in 0..n {
            let cx: f64 = rng.gen_range(0.0..1.0);
            let cy: f64 = rng.gen_range(0.0..1.0);
            tree.insert(
                Rect::centered(sjcm_geom::Point::new([cx, cy]), [side, side]),
                ObjectId(i as u32),
            );
        }
        tree
    }

    #[test]
    fn parallel_matches_sequential_pairs() {
        let a = build(2_000, 0.01, 1);
        let b = build(2_000, 0.01, 2);
        let seq = spatial_join(&a, &b);
        for threads in [2, 4, 7] {
            let par = parallel_spatial_join(&a, &b, JoinConfig::default(), threads);
            let mut ps = par.pairs.clone();
            let mut ss = seq.pairs.clone();
            ps.sort();
            ss.sort();
            assert_eq!(ps, ss, "{threads} threads");
        }
    }

    #[test]
    fn parallel_na_equals_sequential_na() {
        let a = build(2_000, 0.01, 3);
        let b = build(2_000, 0.01, 4);
        let seq = spatial_join(&a, &b);
        let par = parallel_spatial_join(&a, &b, JoinConfig::default(), 4);
        assert_eq!(seq.na_total(), par.na_total());
    }

    #[test]
    fn parallel_da_at_least_sequential_da() {
        let a = build(3_000, 0.008, 5);
        let b = build(3_000, 0.008, 6);
        let seq = spatial_join(&a, &b);
        let par = parallel_spatial_join(&a, &b, JoinConfig::default(), 4);
        assert!(
            par.da_total() >= seq.da_total(),
            "parallel {} vs sequential {}",
            par.da_total(),
            seq.da_total()
        );
    }

    #[test]
    fn single_thread_is_sequential() {
        let a = build(500, 0.02, 7);
        let b = build(500, 0.02, 8);
        let seq = spatial_join(&a, &b);
        let par = parallel_spatial_join(&a, &b, JoinConfig::default(), 1);
        assert_eq!(seq.pairs, par.pairs);
        assert_eq!(seq.da_total(), par.da_total());
    }

    #[test]
    fn parallel_handles_different_heights() {
        let a = build(3_000, 0.01, 9);
        let b = build(40, 0.05, 10);
        assert!(a.height() > b.height());
        let seq = spatial_join(&a, &b);
        let par = parallel_spatial_join(&a, &b, JoinConfig::default(), 3);
        let mut ps = par.pairs.clone();
        let mut ss = seq.pairs.clone();
        ps.sort();
        ss.sort();
        assert_eq!(ps, ss);
    }

    #[test]
    fn parallel_handles_leaf_roots() {
        let a = build(5, 0.2, 11);
        let b = build(5, 0.2, 12);
        assert_eq!(a.height(), 1);
        let seq = spatial_join(&a, &b);
        let par = parallel_spatial_join(&a, &b, JoinConfig::default(), 2);
        let mut ps = par.pairs.clone();
        let mut ss = seq.pairs.clone();
        ps.sort();
        ss.sort();
        assert_eq!(ps, ss);
    }
}
