//! Partition Based Spatial-Merge join (PBSM) — Patel & DeWitt,
//! SIGMOD 1996 (the paper's reference \[PD96\]).
//!
//! §2.1 of the paper splits spatial-join processing into two camps:
//! joins over *pre-built indexes* (the SJ algorithm this repository
//! centers on) and joins that *build partitions on the fly* when at
//! least one input is unindexed. PBSM is the canonical representative
//! of the second camp, implemented here so the optimizer's NL slot and
//! the benchmarks have a literature-faithful no-index competitor:
//!
//! 1. Overlay the workspace with a uniform grid of `P` partitions.
//! 2. Replicate each object into every partition its MBR overlaps.
//! 3. Join each partition pair-wise with a plane sweep.
//! 4. Suppress duplicate output (an overlapping pair co-occurs in every
//!    partition both MBRs overlap) with the **reference-point method**:
//!    a pair is reported only by the partition containing the top-left
//!    corner of the MBR intersection, so no dedup table is needed.
//!
//! The simulated I/O cost of PBSM is the classic two-pass accounting:
//! both inputs are written into partitions once and read back once.

use crate::degraded::JoinError;
use crate::executor::MatchKernel;
use crate::governor::Governor;
use crate::session::{ExecContext, PbsmSession};
use sjcm_geom::{unit_grid_cell, Rect, RectBatch};
use sjcm_obs::progress::ProgressTracker;
use sjcm_rtree::ObjectId;

/// Result of a PBSM join.
#[derive(Debug, Clone)]
pub struct PbsmResult {
    /// Qualifying `(left, right)` pairs (exact, duplicate-free).
    pub pairs: Vec<(ObjectId, ObjectId)>,
    /// Simulated page I/O: write + read of both partitioned inputs at
    /// the given page capacity (entries per page).
    pub io_pages: u64,
    /// Average number of partitions each object was replicated into —
    /// PBSM's overhead knob (grows with object size relative to cells).
    pub replication_factor: f64,
}

/// Result of a governed PBSM join: the (possibly partial) result plus
/// the forfeited-cell inventory. PBSM has no R-tree priors, so unlike
/// [`crate::DegradedJoinResult`] the forfeited work is counted in
/// cells and entries, not priced in Eq-6 NA.
#[derive(Debug, Clone)]
pub struct DegradedPbsmResult {
    /// What the sweeps that ran produced.
    pub result: PbsmResult,
    /// Active cells the governor refused (deadline or cancellation).
    pub forfeited_cells: u64,
    /// Partition entries those forfeited cells held (both sides).
    pub forfeited_entries: u64,
}

impl DegradedPbsmResult {
    /// `true` when nothing was forfeited — `result` is exact.
    pub fn is_exact(&self) -> bool {
        self.forfeited_cells == 0
    }
}

/// Runs a PBSM join over two object lists with a `grid × grid × …`
/// partitioning (in `N` dimensions) and the given page capacity for the
/// I/O accounting.
///
/// Pure main-memory simulation of the algorithm's structure: partitions
/// are vectors rather than spill files, but the partitioning, the
/// plane-sweep per partition and the duplicate-avoidance logic are the
/// real thing.
#[deprecated(note = "use `session::PbsmSession::new(left, right, grid, page_capacity).run()`")]
pub fn pbsm_join<const N: usize>(
    left: &[(Rect<N>, ObjectId)],
    right: &[(Rect<N>, ObjectId)],
    grid: usize,
    page_capacity: usize,
) -> PbsmResult {
    PbsmSession::new(left, right, grid, page_capacity)
        .run()
        .expect("ungoverned PBSM cannot fail")
        .result
}

/// [`pbsm_join`] with an explicit [`MatchKernel`]. The scalar and
/// batched kernels produce identical pairs in identical order — the
/// batched path evaluates each sweep anchor's candidate range with the
/// fused [`RectBatch::ref_cell_mask`] kernel (intersection test and
/// reference-point cell in one pass) instead of per-candidate
/// `intersects` + `intersection` double scans.
#[deprecated(note = "use `session::PbsmSession::new(..).kernel(kernel).run()`")]
pub fn pbsm_join_with<const N: usize>(
    left: &[(Rect<N>, ObjectId)],
    right: &[(Rect<N>, ObjectId)],
    grid: usize,
    page_capacity: usize,
    kernel: MatchKernel,
) -> PbsmResult {
    PbsmSession::new(left, right, grid, page_capacity)
        .kernel(kernel)
        .run()
        .expect("ungoverned PBSM cannot fail")
        .result
}

/// [`pbsm_join_with`] with a live progress feed. PBSM has no R-tree
/// priors, so progress runs on the unit ledger: each active cell
/// (both partitions non-empty) is one work unit priced by its entry
/// count — the per-cell sweep estimate — registered up front, retired
/// as its sweep completes, with emitted pairs published alongside.
/// The tracker is marked finished on return. Results are byte-identical
/// to an untracked run.
#[deprecated(note = "use `session::PbsmSession::new(..).progress(progress).run()`")]
pub fn pbsm_join_observed<const N: usize>(
    left: &[(Rect<N>, ObjectId)],
    right: &[(Rect<N>, ObjectId)],
    grid: usize,
    page_capacity: usize,
    kernel: MatchKernel,
    progress: &ProgressTracker,
) -> PbsmResult {
    PbsmSession::new(left, right, grid, page_capacity)
        .kernel(kernel)
        .progress(progress)
        .run()
        .expect("ungoverned PBSM cannot fail")
        .result
}

/// Fallible, governed twin of [`pbsm_join_observed`]. The governor's
/// memory budget meters the partition replica arena (a denied
/// reservation is a typed [`JoinError::BudgetExceeded`] *before* the
/// arena is built); its deadline / cancellation point gates each active
/// cell's sweep at the cell boundary — refused cells are tallied on
/// [`DegradedPbsmResult`], never silently dropped. With an unlimited
/// governor this is exactly [`pbsm_join_observed`].
#[allow(clippy::too_many_arguments)]
#[deprecated(note = "use `session::PbsmSession::new(..).progress(progress).govern(gov).run()`")]
pub fn try_pbsm_join<const N: usize>(
    left: &[(Rect<N>, ObjectId)],
    right: &[(Rect<N>, ObjectId)],
    grid: usize,
    page_capacity: usize,
    kernel: MatchKernel,
    progress: &ProgressTracker,
    gov: &Governor,
) -> Result<DegradedPbsmResult, JoinError> {
    PbsmSession::new(left, right, grid, page_capacity)
        .kernel(kernel)
        .progress(progress)
        .govern(gov)
        .run()
}

/// The PBSM executor body, cross-cutting concerns supplied through the
/// one [`ExecContext`] seam (PBSM uses the progress hub and the
/// governor: [`ExecContext::checkpoint`] gates each active cell,
/// [`ExecContext::unit_done`] / [`ExecContext::forfeit_unit`] keep the
/// shed ledger honest, and the memory budget meters the replica arena).
pub(crate) fn run_pbsm<const N: usize>(
    left: &[(Rect<N>, ObjectId)],
    right: &[(Rect<N>, ObjectId)],
    grid: usize,
    page_capacity: usize,
    kernel: MatchKernel,
    ctx: &ExecContext<'_>,
) -> Result<DegradedPbsmResult, JoinError> {
    let progress = &ctx.progress;
    let gov = ctx.gov;
    assert!(grid >= 1, "need at least one partition per dimension");
    assert!(page_capacity >= 1, "page capacity must be positive");
    gov.start_clock();
    let cells = grid.pow(N as u32);
    // Memory budget: the replica arena is the dominant allocation, and
    // its size is known before building it — count replicas in a dry
    // pass and reserve the bytes up front. Only paid when a budget is
    // actually armed.
    let entry_bytes = std::mem::size_of::<(Rect<N>, ObjectId)>() as u64;
    let mut reserved = 0u64;
    if gov.has_mem_budget() {
        let dry: usize = left
            .iter()
            .chain(right)
            .map(|(r, _)| overlapped_cells(r, grid).len())
            .sum();
        reserved = dry as u64 * entry_bytes;
        gov.reserve(reserved)?;
    }
    let mut parts_left: Vec<Vec<(Rect<N>, ObjectId)>> = vec![Vec::new(); cells];
    let mut parts_right: Vec<Vec<(Rect<N>, ObjectId)>> = vec![Vec::new(); cells];
    let mut replicas = 0usize;
    // Sort each input once, globally, before partitioning: replication
    // preserves order, so every partition receives its entries already
    // sorted by sweep dimension — the per-cell sorts the sweep used to
    // repeat for every cell vanish. (The sort is stable, so equal-lo₀
    // ties keep input order, exactly as the former per-cell stable
    // sorts left them.)
    let mut left = left.to_vec();
    let mut right = right.to_vec();
    left.sort_by(|a, b| a.0.lo_k(0).total_cmp(&b.0.lo_k(0)));
    right.sort_by(|a, b| a.0.lo_k(0).total_cmp(&b.0.lo_k(0)));
    for &(r, id) in &left {
        for cell in overlapped_cells(&r, grid) {
            parts_left[cell].push((r, id));
            replicas += 1;
        }
    }
    for &(r, id) in &right {
        for cell in overlapped_cells(&r, grid) {
            parts_right[cell].push((r, id));
            replicas += 1;
        }
    }
    let total_objects = left.len() + right.len();
    let replication_factor = if total_objects == 0 {
        0.0
    } else {
        replicas as f64 / total_objects as f64
    };

    // Unit ledger: one unit per active cell, priced by its entry count
    // (the sweep is linear in candidates, so a cell's cost share
    // approximates its share of the remaining work). Shared between the
    // progress tracker and the governor — PBSM has no R-tree priors, so
    // cells get uniform value (no pairs-per-NA shed ranking).
    let active: Vec<usize> = (0..cells)
        .filter(|&c| !parts_left[c].is_empty() && !parts_right[c].is_empty())
        .collect();
    let cell_price = |c: usize| (parts_left[c].len() + parts_right[c].len()) as u64;
    if progress.is_enabled() {
        let cost: u64 = active.iter().map(|&c| cell_price(c)).sum();
        progress.set_schedule(&[(active.len() as u64, cost)]);
    }
    if gov.is_enabled() {
        let prices: Vec<u64> = active.iter().map(|&c| cell_price(c)).collect();
        let values = vec![1.0; prices.len()];
        gov.arm_units(prices, values);
    }

    let mut pairs = Vec::new();
    let mut scratch = SweepScratch::default();
    let mut forfeited_cells = 0u64;
    let mut forfeited_entries = 0u64;
    for (ordinal, &cell) in active.iter().enumerate() {
        // Work-unit boundary: the governor's cancellation point.
        if !ctx.checkpoint(ordinal) {
            forfeited_cells += 1;
            forfeited_entries += cell_price(cell);
            ctx.forfeit_unit(ordinal);
            continue;
        }
        let before = pairs.len();
        sweep_cell(
            &parts_left[cell],
            &parts_right[cell],
            cell,
            grid,
            kernel,
            &mut scratch,
            &mut pairs,
        );
        ctx.unit_done(ordinal);
        if progress.is_enabled() {
            progress.unit_done(0, cell_price(cell));
            progress.add_pairs((pairs.len() - before) as u64);
        }
    }
    progress.finish();

    // Two-pass I/O: write all replicas out, read them back.
    let pages = |entries: usize| entries.div_ceil(page_capacity) as u64;
    let replica_entries: usize = parts_left.iter().chain(&parts_right).map(Vec::len).sum();
    let io_pages = 2 * pages(replica_entries);

    gov.release(reserved);
    gov.finish();
    Ok(DegradedPbsmResult {
        result: PbsmResult {
            pairs,
            io_pages,
            replication_factor,
        },
        forfeited_cells,
        forfeited_entries,
    })
}

/// Row-major indices of all cells a rectangle overlaps (closed
/// intersection: a rectangle whose edge lies exactly on a partition
/// boundary is replicated into both neighbours, so the reference point
/// of a boundary-touching pair always lands in a cell holding both
/// operands).
fn overlapped_cells<const N: usize>(r: &Rect<N>, grid: usize) -> Vec<usize> {
    let g = grid as f64;
    let mut lo = [0usize; N];
    let mut hi = [0usize; N];
    for k in 0..N {
        lo[k] = ((r.lo_k(k).clamp(0.0, 1.0) * g) as usize).min(grid - 1);
        hi[k] = ((r.hi_k(k).clamp(0.0, 1.0) * g).floor() as usize).clamp(lo[k], grid - 1);
    }
    let mut out = Vec::new();
    let mut cursor = lo;
    loop {
        let mut idx = 0usize;
        for k in (0..N).rev() {
            idx = idx * grid + cursor[k];
        }
        out.push(idx);
        let mut k = 0;
        loop {
            if k == N {
                return out;
            }
            if cursor[k] < hi[k] {
                cursor[k] += 1;
                break;
            }
            cursor[k] = lo[k];
            k += 1;
        }
    }
}

/// Reusable SoA batches for the batched per-cell sweeps.
#[derive(Debug, Default)]
struct SweepScratch<const N: usize> {
    left: RectBatch<N>,
    right: RectBatch<N>,
}

/// Plane-sweep join of one partition, with reference-point duplicate
/// suppression. Both inputs must arrive sorted by `lo₀` (the global
/// pre-partitioning sort guarantees it — partitions inherit the order).
///
/// The scalar kernel evaluates each candidate with a single
/// `intersection` pass (`None` ⇒ disjoint — no pre-check, no
/// `expect`); the batched kernel consumes each anchor's candidate run
/// with the sweep-fused [`RectBatch::sweep_ref_cells`] kernel, which
/// folds the run bound into its vectorized lanes and emits exactly
/// "intersects **and** reference point in this cell" (dimension 0
/// overlap is implied by the run bound — see the `sjcm_geom::batch`
/// module docs).
#[allow(clippy::too_many_arguments)]
fn sweep_cell<const N: usize>(
    left: &[(Rect<N>, ObjectId)],
    right: &[(Rect<N>, ObjectId)],
    cell: usize,
    grid: usize,
    kernel: MatchKernel,
    scratch: &mut SweepScratch<N>,
    out: &mut Vec<(ObjectId, ObjectId)>,
) {
    debug_assert!(
        left.windows(2).all(|w| w[0].0.lo_k(0) <= w[1].0.lo_k(0))
            && right.windows(2).all(|w| w[0].0.lo_k(0) <= w[1].0.lo_k(0)),
        "sweep_cell inputs must be sorted by lo_k(0)"
    );
    // Small-cell gate: the batched path pays an O(cell) SoA fill before
    // the first anchor, which only amortizes when the cell is big
    // enough to produce kernel-length candidate runs. High-resolution
    // grids (the 0.91× `pbsm_sweep/16` regression this gate fixes)
    // shred the inputs into hundreds of small cells whose sweeps are
    // over before the fill pays for itself — those cells take the
    // scalar sweep outright and never touch the batches. Identical
    // pairs in identical order either way, so the gate is invisible in
    // the output.
    const CELL_BATCH_MIN: usize = 512;
    let kernel = if kernel == MatchKernel::Batched && left.len().min(right.len()) < CELL_BATCH_MIN {
        MatchKernel::Scalar
    } else {
        kernel
    };
    if kernel == MatchKernel::Batched {
        scratch.left.clear();
        scratch.right.clear();
        scratch.left.extend(left.iter().map(|e| e.0));
        scratch.right.extend(right.iter().map(|e| e.0));
    }
    // Scalar reference point: the low corner of the MBR intersection.
    // Only the partition containing it reports the pair.
    fn emit<const N: usize>(
        a: &(Rect<N>, ObjectId),
        b: &(Rect<N>, ObjectId),
        grid: usize,
        cell: usize,
        out: &mut Vec<(ObjectId, ObjectId)>,
    ) {
        if let Some(inter) = a.0.intersection(&b.0) {
            if unit_grid_cell(&inter.lo().coords(), grid) == cell {
                out.push((a.1, b.1));
            }
        }
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        if left[i].0.lo_k(0) <= right[j].0.lo_k(0) {
            let anchor = left[i];
            let limit = anchor.0.hi_k(0);
            match kernel {
                MatchKernel::Scalar => {
                    let mut k = j;
                    while k < right.len() && right[k].0.lo_k(0) <= limit {
                        emit(&anchor, &right[k], grid, cell, out);
                        k += 1;
                    }
                }
                MatchKernel::Batched => {
                    scratch
                        .right
                        .sweep_ref_cells(&anchor.0, j, limit, grid, cell, |k| {
                            out.push((anchor.1, right[k].1));
                        });
                }
            }
            i += 1;
        } else {
            let anchor = right[j];
            let limit = anchor.0.hi_k(0);
            match kernel {
                MatchKernel::Scalar => {
                    let mut k = i;
                    while k < left.len() && left[k].0.lo_k(0) <= limit {
                        emit(&left[k], &anchor, grid, cell, out);
                        k += 1;
                    }
                }
                MatchKernel::Batched => {
                    scratch
                        .left
                        .sweep_ref_cells(&anchor.0, i, limit, grid, cell, |k| {
                            out.push((left[k].1, anchor.1));
                        });
                }
            }
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    // The deprecated free-function entry points are exercised on purpose:
    // they are thin wrappers over `PbsmSession` and these tests double as
    // wrapper coverage.
    #![allow(deprecated)]

    use super::*;
    use crate::baselines::nested_loop_join;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sjcm_geom::Point;

    fn random_items(n: usize, side: f64, seed: u64) -> Vec<(Rect<2>, ObjectId)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let cx: f64 = rng.gen_range(0.0..1.0);
                let cy: f64 = rng.gen_range(0.0..1.0);
                (
                    Rect::centered(Point::new([cx, cy]), [side, side])
                        .clamp_to_unit()
                        .unwrap(),
                    ObjectId(i as u32),
                )
            })
            .collect()
    }

    #[test]
    fn pbsm_matches_brute_force() {
        let a = random_items(600, 0.03, 1);
        let b = random_items(500, 0.04, 2);
        let mut expected = nested_loop_join(&a, &b);
        expected.sort();
        for grid in [1, 2, 4, 9] {
            let mut got = pbsm_join(&a, &b, grid, 50).pairs;
            got.sort();
            assert_eq!(got, expected, "grid = {grid}");
        }
    }

    #[test]
    fn no_duplicates_despite_replication() {
        // Large objects replicate into many cells; the reference-point
        // rule must still emit each pair exactly once.
        let a = random_items(150, 0.3, 3);
        let b = random_items(150, 0.3, 4);
        let result = pbsm_join(&a, &b, 8, 50);
        assert!(
            result.replication_factor > 2.0,
            "test wants heavy replication, got {}",
            result.replication_factor
        );
        let mut seen = std::collections::HashSet::new();
        for &p in &result.pairs {
            assert!(seen.insert(p), "duplicate pair {p:?}");
        }
        let mut expected = nested_loop_join(&a, &b);
        expected.sort();
        let mut got = result.pairs;
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn boundary_touching_pairs_are_reported_once() {
        // Two rects meeting exactly on a partition boundary.
        let a = vec![(Rect::new([0.0, 0.0], [0.5, 0.5]).unwrap(), ObjectId(1))];
        let b = vec![(Rect::new([0.5, 0.0], [1.0, 0.5]).unwrap(), ObjectId(2))];
        for grid in [1, 2, 4] {
            let got = pbsm_join(&a, &b, grid, 10).pairs;
            assert_eq!(got, vec![(ObjectId(1), ObjectId(2))], "grid = {grid}");
        }
    }

    #[test]
    fn replication_grows_with_grid() {
        let a = random_items(400, 0.05, 5);
        let b = random_items(400, 0.05, 6);
        let coarse = pbsm_join(&a, &b, 2, 50).replication_factor;
        let fine = pbsm_join(&a, &b, 16, 50).replication_factor;
        assert!(fine > coarse, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn io_accounting_scales_with_replicas() {
        let a = random_items(500, 0.01, 7);
        let b = random_items(500, 0.01, 8);
        let r = pbsm_join(&a, &b, 4, 50);
        // 1000 near-unreplicated entries at 50/page → ≥ 2·20 pages.
        assert!(r.io_pages >= 40, "io {}", r.io_pages);
        let single = pbsm_join(&a, &b, 1, 50);
        assert_eq!(single.io_pages, 2 * 20);
    }

    #[test]
    fn empty_inputs() {
        let a = random_items(10, 0.02, 9);
        let r = pbsm_join::<2>(&a, &[], 4, 10);
        assert!(r.pairs.is_empty());
        let r = pbsm_join::<2>(&[], &[], 4, 10);
        assert!(r.pairs.is_empty());
        assert_eq!(r.replication_factor, 0.0);
    }

    #[test]
    fn one_dimensional_pbsm() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut gen = |seed_off: u32| -> Vec<(Rect<1>, ObjectId)> {
            (0..300)
                .map(|i| {
                    let lo: f64 = rng.gen_range(0.0..0.99);
                    (
                        Rect::new([lo], [(lo + 0.01).min(1.0)]).unwrap(),
                        ObjectId(i + seed_off),
                    )
                })
                .collect()
        };
        let a = gen(0);
        let b = gen(1000);
        let mut expected = nested_loop_join(&a, &b);
        expected.sort();
        let mut got = pbsm_join(&a, &b, 8, 84).pairs;
        got.sort();
        assert_eq!(got, expected);
    }
}
