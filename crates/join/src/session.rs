//! The one front door for every join execution: a [`JoinSession`]
//! builder that owns a single [`ExecContext`] bundling *all*
//! cross-cutting concerns — span tracer, drift monitor, page-access
//! flight recorder (with its correlation-id allocator), live progress
//! hub, fault injector, and governor (admission, deadline/cancellation,
//! memory budget, shedding).
//!
//! Historically each of the four executors (sequential, cost-guided,
//! round-robin, PBSM) hand-threaded those five concerns through its own
//! combinatorial entry points (`spatial_join` / `_with` / `_recorded` /
//! `try_*` / `_observed` …). Those entry points still exist as thin
//! deprecated wrappers — byte-identical, asserted by
//! `tests/session_equivalence.rs` — but every one of them now routes
//! through the session, so a new cross-cutting capability lands in
//! exactly one seam: [`ExecContext`].
//!
//! ```
//! use sjcm_join::session::{JoinSession, Scheduler};
//! use sjcm_join::JoinConfig;
//! use sjcm_rtree::{ObjectId, RTree, RTreeConfig};
//! use sjcm_geom::Rect;
//!
//! let mut a = RTree::<2>::new(RTreeConfig::with_capacity(8));
//! let mut b = RTree::<2>::new(RTreeConfig::with_capacity(8));
//! a.insert(Rect::new([0.1, 0.1], [0.3, 0.3]).unwrap(), ObjectId(1));
//! b.insert(Rect::new([0.2, 0.2], [0.4, 0.4]).unwrap(), ObjectId(2));
//! let out = JoinSession::new(&a, &b)
//!     .config(JoinConfig::default())
//!     .scheduler(Scheduler::CostGuided { threads: 2 })
//!     .run()
//!     .unwrap();
//! assert!(out.is_exact());
//! assert_eq!(out.result.pairs, vec![(ObjectId(1), ObjectId(2))]);
//! ```

use crate::degraded::{DegradedJoinResult, JoinError};
use crate::executor::{JoinConfig, MatchKernel};
use crate::governor::Governor;
use crate::parallel::{JoinObs, ScheduleMode};
use crate::pbsm::DegradedPbsmResult;
use sjcm_geom::Rect;
use sjcm_obs::progress::ProgressTracker;
use sjcm_obs::{DriftMonitor, Tracer};
use sjcm_rtree::{ObjectId, RTree};
use sjcm_storage::{FaultInjector, FlightRecorder, RecorderLane};

/// The recorder correlation-id allocator: one buffer-residency domain →
/// one correlation id, with the scheme documented (and unit-tested)
/// here instead of re-derived in each executor.
///
/// | domain | correlation id |
/// |---|---|
/// | [`CorrDomain::Coordinator`] (also the sequential join) | `0` |
/// | [`CorrDomain::Unit`]`(i)` — cost-guided work unit `i` | `i + 1` |
/// | [`CorrDomain::Shard`]`(w)` — static shard of worker `w` | `w + 1` |
///
/// A domain is a buffer-residency scope: trace replay simulates one
/// buffer per `(tree, corr)` lane, so every scope whose buffers start
/// cold must get its own id. The sequential join and the cost-guided
/// coordinator share id 0 because both run one warm buffer from the
/// root down. Unit and shard ids may collide with each other numerically
/// — they never coexist in one run (a run is either unit-scheduled or
/// shard-scheduled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrDomain {
    /// The sequential executor, or the parallel coordinator above the
    /// frontier: one warm buffer from the root down.
    Coordinator,
    /// One cost-guided work unit (buffers reset at every unit
    /// boundary, so each unit is its own residency domain).
    Unit(usize),
    /// One static shard (round-robin or governed deal): buffers persist
    /// across the shard's units.
    Shard(usize),
}

impl CorrDomain {
    /// The correlation id recorded on every page-access event charged
    /// inside this domain.
    pub fn corr(self) -> u32 {
        match self {
            CorrDomain::Coordinator => 0,
            CorrDomain::Unit(i) => (i + 1) as u32,
            CorrDomain::Shard(w) => (w + 1) as u32,
        }
    }

    /// The worker index progress ledgers attribute this domain's
    /// retired units to (the coordinator feeds worker 0's ledger — it
    /// only ever retires units in single-domain runs).
    pub(crate) fn worker_index(self) -> usize {
        match self {
            CorrDomain::Coordinator => 0,
            CorrDomain::Unit(i) => i,
            CorrDomain::Shard(w) => w,
        }
    }
}

/// Which traversal/scheduling strategy a [`JoinSession`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// The depth-first synchronized traversal of \[BKS93\], one thread,
    /// pairs in traversal (emission) order.
    #[default]
    Sequential,
    /// The cost-guided parallel scheduler: Eq-6-priced frontier units,
    /// LPT deques, work stealing. Pairs sorted. `threads = 1` falls
    /// back to the sequential traversal (pairs still sorted).
    CostGuided {
        /// Worker count; must be ≥ 1 ([`JoinError::InvalidThreads`]).
        threads: usize,
    },
    /// The static round-robin baseline: root-level units dealt
    /// `i mod threads`, no redistribution. Pairs sorted; same
    /// `threads = 1` fallback.
    RoundRobin {
        /// Worker count; must be ≥ 1 ([`JoinError::InvalidThreads`]).
        threads: usize,
    },
}

/// Every cross-cutting concern of a join execution, bundled behind one
/// seam. Executors receive `&ExecContext` and call its methods at their
/// descent sites — `ctx.checkpoint(..)` at work-unit boundaries,
/// `ctx.lanes(..)` for recorder correlation domains, `ctx.unit_done(..)`
/// / `ctx.forfeit_unit(..)` for governor bookkeeping — instead of
/// receiving five separately-plumbed parameters.
///
/// Cloning is cheap (`Arc` handles all the way down): parallel
/// schedulers clone one context per worker thread, which is exactly the
/// per-worker hook cloning the executors did by hand before.
#[derive(Debug, Clone)]
pub struct ExecContext<'a> {
    /// Span collector (disabled = one `Option` check per span site).
    pub tracer: Tracer,
    /// In-flight drift monitor, if the caller registered predictions.
    pub drift: Option<&'a DriftMonitor>,
    /// Page-access flight recorder; correlation ids are allocated
    /// through [`ExecContext::lanes`] — see [`CorrDomain`].
    pub recorder: FlightRecorder,
    /// Live progress hub (schedule ledgers, per-level NA/DA feed, ETA).
    pub progress: ProgressTracker,
    /// Fault-injection oracle for chaos runs (disabled = one `Option`
    /// check per node pair).
    pub faults: FaultInjector,
    /// Admission control, deadline/cancellation token, memory budget,
    /// and load shedding.
    pub gov: &'a Governor,
}

impl<'a> ExecContext<'a> {
    /// A context with every concern disabled except the governor given.
    pub(crate) fn bare(gov: &'a Governor) -> Self {
        ExecContext {
            tracer: Tracer::disabled(),
            drift: None,
            recorder: FlightRecorder::disabled(),
            progress: ProgressTracker::disabled(),
            faults: FaultInjector::disabled(),
            gov,
        }
    }

    /// Allocates the pair of recorder lanes (tree 1, tree 2) for a
    /// buffer-residency domain, with the correlation ids of the
    /// documented [`CorrDomain`] scheme.
    pub fn lanes(&self, domain: CorrDomain) -> (RecorderLane, RecorderLane) {
        let corr = domain.corr();
        let mut lane1 = self.recorder.lane(1);
        let mut lane2 = self.recorder.lane(2);
        lane1.set_corr(corr);
        lane2.set_corr(corr);
        (lane1, lane2)
    }

    /// The governor's cancellation point at a work-unit boundary:
    /// `true` admits the unit, `false` means it must be forfeited (the
    /// caller records the skip and then calls
    /// [`ExecContext::forfeit_unit`]).
    pub fn checkpoint(&self, ordinal: usize) -> bool {
        self.gov.admit_unit(ordinal)
    }

    /// Retires an admitted work unit from the governor's ledger.
    pub fn unit_done(&self, ordinal: usize) {
        self.gov.note_unit_done(ordinal);
    }

    /// Records a unit refused at a [`ExecContext::checkpoint`] as
    /// forfeited, for the governor's degraded-result accounting.
    pub fn forfeit_unit(&self, ordinal: usize) {
        self.gov.note_forfeit(ordinal);
    }
}

/// Builder for one join execution over two R-trees. See the module
/// docs; [`JoinSession::run`] executes under the configured
/// [`Scheduler`] with every cross-cutting concern routed through one
/// [`ExecContext`].
#[derive(Debug)]
pub struct JoinSession<'a, const N: usize> {
    r1: &'a RTree<N>,
    r2: &'a RTree<N>,
    config: JoinConfig,
    scheduler: Scheduler,
    tracer: Tracer,
    drift: Option<&'a DriftMonitor>,
    recorder: FlightRecorder,
    progress: ProgressTracker,
    faults: FaultInjector,
    gov: Governor,
}

impl<'a, const N: usize> JoinSession<'a, N> {
    /// A session joining `r1 × r2` with default configuration: the
    /// sequential scheduler, default [`JoinConfig`], every
    /// observability hook disabled, no faults, unlimited governor.
    pub fn new(r1: &'a RTree<N>, r2: &'a RTree<N>) -> Self {
        JoinSession {
            r1,
            r2,
            config: JoinConfig::default(),
            scheduler: Scheduler::default(),
            tracer: Tracer::disabled(),
            drift: None,
            recorder: FlightRecorder::disabled(),
            progress: ProgressTracker::disabled(),
            faults: FaultInjector::disabled(),
            gov: Governor::unlimited(),
        }
    }

    /// Sets the join configuration (buffer policy, predicate, match
    /// order, kernel, pair collection).
    pub fn config(mut self, config: JoinConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the scheduling strategy.
    pub fn scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Adopts a [`JoinObs`] observability bundle: tracer, drift
    /// monitor, flight recorder, progress hub. Handles are shared
    /// (`Arc` clones), so the caller keeps draining the same recorder
    /// and sampling the same progress tracker.
    pub fn observe(mut self, obs: &JoinObs<'a>) -> Self {
        self.tracer = obs.tracer.clone();
        self.drift = obs.drift;
        self.recorder = obs.recorder.clone();
        self.progress = obs.progress.clone();
        self
    }

    /// Arms the page-access flight recorder (shared handle — drain it
    /// after the run).
    pub fn record(mut self, recorder: &FlightRecorder) -> Self {
        self.recorder = recorder.clone();
        self
    }

    /// Arms the fault-injection oracle (chaos runs).
    pub fn faults(mut self, faults: &FaultInjector) -> Self {
        self.faults = faults.clone();
        self
    }

    /// Puts the run under a governor: admission control before any
    /// traversal, unit-boundary cancellation checkpoints, memory-budget
    /// reservations, shedding.
    pub fn govern(mut self, gov: &Governor) -> Self {
        self.gov = gov.clone();
        self
    }

    /// Executes the join.
    ///
    /// Result shape per scheduler (byte-compatible with the legacy
    /// entry points — asserted in `tests/session_equivalence.rs`):
    ///
    /// * [`Scheduler::Sequential`]: pairs in traversal (emission)
    ///   order, unsorted.
    /// * [`Scheduler::CostGuided`] / [`Scheduler::RoundRobin`]: pairs
    ///   sorted by `(R1 object, R2 object)`; `threads = 1` falls back
    ///   to the sequential traversal under a `sequential-join` span
    ///   (pairs still sorted); `threads = 0` is
    ///   [`JoinError::InvalidThreads`].
    ///
    /// `Err` is reserved for failures that make the run unusable
    /// (admission rejection, budget exhaustion, a worker panic,
    /// invalid thread count); forfeited work under faults or deadlines
    /// comes back priced on the [`DegradedJoinResult`] instead.
    pub fn run(self) -> Result<DegradedJoinResult<N>, JoinError> {
        let JoinSession {
            r1,
            r2,
            config,
            scheduler,
            tracer,
            drift,
            recorder,
            progress,
            faults,
            gov,
        } = self;
        let ctx = ExecContext {
            tracer,
            drift,
            recorder,
            progress,
            faults,
            gov: &gov,
        };
        match scheduler {
            Scheduler::Sequential => {
                ctx.gov.admit(r1, r2)?;
                let (result, raw) = if ctx.gov.is_unit_gated() {
                    crate::governor::run_governed_sequential(r1, r2, config, &ctx)
                } else {
                    crate::executor::run_sequential(r1, r2, config, &ctx)
                };
                // The run is over: later progress samples report 1.0.
                ctx.progress.finish();
                let degraded = crate::degraded::finish_degraded(
                    r1,
                    r2,
                    config.predicate,
                    result,
                    raw,
                    &ctx.faults,
                );
                ctx.gov.finish();
                Ok(degraded)
            }
            Scheduler::CostGuided { threads } | Scheduler::RoundRobin { threads } => {
                let mode = match scheduler {
                    Scheduler::RoundRobin { .. } => ScheduleMode::RoundRobin,
                    _ => ScheduleMode::CostGuided,
                };
                if threads == 0 {
                    return Err(JoinError::InvalidThreads);
                }
                ctx.gov.admit(r1, r2)?;
                let (mut result, raw) = if threads == 1 {
                    let mut span = ctx.tracer.span("sequential-join");
                    let (mut result, raw) = if ctx.gov.is_unit_gated() {
                        crate::governor::run_governed_sequential(r1, r2, config, &ctx)
                    } else {
                        crate::executor::run_sequential(r1, r2, config, &ctx)
                    };
                    result.pairs.sort_unstable();
                    span.set("na", result.na_total());
                    span.set("da", result.da_total());
                    span.set("pairs", result.pair_count);
                    (result, raw)
                } else if ctx.gov.is_unit_gated() {
                    crate::governor::governed_parallel_join(r1, r2, config, threads, mode, &ctx)?
                } else {
                    match mode {
                        ScheduleMode::RoundRobin => {
                            crate::parallel::round_robin_join(r1, r2, config, threads, &ctx)?
                        }
                        ScheduleMode::CostGuided => {
                            crate::parallel::cost_guided_join(r1, r2, config, threads, &ctx)?
                        }
                    }
                };
                if threads > 1 {
                    result.pairs.sort_unstable();
                }
                // The run is over: later progress samples report 1.0.
                ctx.progress.finish();
                let degraded = crate::degraded::finish_degraded(
                    r1,
                    r2,
                    config.predicate,
                    result,
                    raw,
                    &ctx.faults,
                );
                ctx.gov.finish();
                Ok(degraded)
            }
        }
    }
}

/// Builder for one PBSM (Partition Based Spatial-Merge) join over two
/// unindexed rectangle sets — the session-API front door for the fourth
/// executor. PBSM takes raw entry slices rather than R-trees, so it
/// gets its own builder; the cross-cutting concerns still flow through
/// the same [`ExecContext`] seam (PBSM uses the progress hub and the
/// governor; it has no tree pages to record or fault).
#[derive(Debug)]
pub struct PbsmSession<'a, const N: usize> {
    left: &'a [(Rect<N>, ObjectId)],
    right: &'a [(Rect<N>, ObjectId)],
    grid: usize,
    page_capacity: usize,
    kernel: MatchKernel,
    progress: ProgressTracker,
    gov: Governor,
}

impl<'a, const N: usize> PbsmSession<'a, N> {
    /// A session joining `left × right` on a `grid^N` partition with
    /// `page_capacity` entries per simulated page. Defaults: batched
    /// kernel, progress disabled, unlimited governor.
    pub fn new(
        left: &'a [(Rect<N>, ObjectId)],
        right: &'a [(Rect<N>, ObjectId)],
        grid: usize,
        page_capacity: usize,
    ) -> Self {
        PbsmSession {
            left,
            right,
            grid,
            page_capacity,
            kernel: MatchKernel::default(),
            progress: ProgressTracker::disabled(),
            gov: Governor::unlimited(),
        }
    }

    /// Sets the intersection-test kernel for the plane sweep.
    pub fn kernel(mut self, kernel: MatchKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Arms the live progress hub (per-cell unit ledger).
    pub fn progress(mut self, progress: &ProgressTracker) -> Self {
        self.progress = progress.clone();
        self
    }

    /// Puts the run under a governor — see [`JoinSession::govern`].
    pub fn govern(mut self, gov: &Governor) -> Self {
        self.gov = gov.clone();
        self
    }

    /// Executes the partition join. Forfeited cells under a deadline
    /// come back counted on the [`DegradedPbsmResult`]; `Err` is
    /// admission rejection or memory-budget exhaustion.
    pub fn run(self) -> Result<DegradedPbsmResult, JoinError> {
        let PbsmSession {
            left,
            right,
            grid,
            page_capacity,
            kernel,
            progress,
            gov,
        } = self;
        let ctx = ExecContext {
            progress,
            ..ExecContext::bare(&gov)
        };
        crate::pbsm::run_pbsm(left, right, grid, page_capacity, kernel, &ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the documented correlation-id scheme: sequential /
    /// coordinator 0, unit `i` → `i + 1`, shard `w` → `w + 1`.
    #[test]
    fn corr_domain_mapping_is_pinned() {
        assert_eq!(CorrDomain::Coordinator.corr(), 0);
        assert_eq!(CorrDomain::Unit(0).corr(), 1);
        assert_eq!(CorrDomain::Unit(7).corr(), 8);
        assert_eq!(CorrDomain::Shard(0).corr(), 1);
        assert_eq!(CorrDomain::Shard(3).corr(), 4);
        // The shard worker index round-trips through the id the static
        // deal assigns (`worker = corr - 1`).
        for w in 0..8 {
            let d = CorrDomain::Shard(w);
            assert_eq!(d.worker_index(), (d.corr() - 1) as usize);
        }
    }

    #[test]
    fn lanes_carry_the_domain_corr() {
        let gov = Governor::unlimited();
        let ctx = ExecContext {
            recorder: sjcm_storage::FlightRecorder::enabled(),
            ..ExecContext::bare(&gov)
        };
        let (mut lane1, mut lane2) = ctx.lanes(CorrDomain::Unit(4));
        lane1.record(sjcm_storage::PageId(1), 0, sjcm_storage::AccessKind::Miss);
        lane2.record(sjcm_storage::PageId(2), 0, sjcm_storage::AccessKind::Miss);
        drop((lane1, lane2));
        let (events, dropped) = ctx.recorder.drain();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.corr == 5));
    }
}
