//! Spatial join executors over two R-trees, instrumented for the cost
//! model's two measures.
//!
//! The centerpiece is the **SJ algorithm** of Brinkhoff, Kriegel & Seeger
//! (SIGMOD 1993), Figure 2 of the paper: a synchronized depth-first
//! traversal of both trees, with the entries of the current R2 node as
//! the outer loop and R1's as the inner loop. Every node fetch is routed
//! through a per-tree [`sjcm_storage::BufferManager`] and tallied in
//! per-level [`sjcm_storage::AccessStats`], yielding exactly the
//! quantities the analytical model predicts:
//!
//! * **NA** — every logical node access (`BufferPolicy::None`);
//! * **DA** — buffer misses under per-tree path buffers
//!   (`BufferPolicy::Path`, the paper's §3.1 setting) or an LRU buffer
//!   (`BufferPolicy::Lru`, the §5 future-work extension).
//!
//! Trees of different heights are handled by pinning the shorter tree's
//! node once it reaches a leaf while the taller tree keeps descending —
//! re-accessing the pinned node each step, which is what Eq 11 counts
//! (under a path buffer those re-accesses hit, which is what Eq 12
//! exploits).
//!
//! [`baselines`] provides the comparison algorithms (index nested loop
//! as in \[AS94\]'s view of a join as repeated range queries, and the
//! brute-force nested loop used as the correctness oracle), [`pbsm`]
//! the Partition Based Spatial-Merge join of \[PD96\] (the paper's
//! §2.1 "no index" camp), and [`parallel`] a multi-threaded SJ per the
//! paper's §5 outlook.
//!
//! **Entry point:** every executor runs through the
//! [`session::JoinSession`] builder (PBSM through
//! [`session::PbsmSession`]), which owns a single
//! [`session::ExecContext`] bundling all cross-cutting concerns —
//! tracing, drift monitoring, flight recording (with the
//! [`session::CorrDomain`] correlation-id allocator), live progress,
//! fault injection, and the governor. The historical free-function
//! entry points (`spatial_join*`, `parallel_spatial_join*`,
//! `pbsm_join*` and their `try_*` twins) remain as thin deprecated
//! wrappers over the session builder, byte-identical to the builder
//! calls they forward to.
//!
//! Fault containment: permanent page-read failures under a
//! [`sjcm_storage::FaultInjector`] are *contained* — the affected node
//! pair is forfeited and priced with the paper's own formulas instead
//! of aborting the join. See [`degraded`].
//!
//! The [`governor::Governor`] is a deadline- and budget-aware
//! admission/cancellation layer that prices queries with Eq 6 before
//! running them, cancels cooperatively at work-unit boundaries, sheds
//! low-value work when the ETA predicts an overrun, and meters executor
//! arenas against a memory budget. [`Governor::unlimited`] is inert
//! (one `Option` check per call site).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod degraded;
mod engine;
pub mod executor;
pub mod governor;
pub mod parallel;
pub mod pbsm;
pub mod session;

pub use degraded::{DegradedJoinResult, JoinError, SkippedSubtree};
pub use executor::{
    matched_entries, BufferPolicy, JoinConfig, JoinPredicate, JoinResultSet, MatchKernel,
    MatchOrder, MatchScratch, StealTally, WorkerTally,
};
#[allow(deprecated)]
pub use executor::{
    spatial_join, spatial_join_recorded, spatial_join_with, try_spatial_join_recorded,
    try_spatial_join_with,
};
pub use governor::{
    assert_well_formed, AdmissionPolicy, Governor, GovernorConfig, GovernorSummary,
};
#[allow(deprecated)]
pub use parallel::{
    parallel_spatial_join, parallel_spatial_join_observed, parallel_spatial_join_with,
    try_parallel_spatial_join_observed, try_parallel_spatial_join_with,
};
pub use parallel::{JoinObs, ScheduleMode};
#[allow(deprecated)]
pub use pbsm::try_pbsm_join;
pub use pbsm::DegradedPbsmResult;
pub use session::{CorrDomain, ExecContext, JoinSession, PbsmSession, Scheduler};
