//! Graceful degradation: typed join errors, forfeited-subtree records,
//! and the model-priced degraded result.
//!
//! When a [`sjcm_storage::FaultInjector`] is armed, a page read that
//! fails permanently (retry budget exhausted, or the page is lost) does
//! **not** abort the join. The node *pair* whose read failed is
//! forfeited — that one subtree-vs-subtree sub-join is skipped — and
//! the rest of the traversal continues, including the other
//! work-stealing lanes of the parallel schedulers. The result comes
//! back as a [`DegradedJoinResult`] carrying one [`SkippedSubtree`] per
//! forfeited pair, each priced with the paper's own machinery so the
//! caller can decide whether the degraded answer still sits inside the
//! paper's ~15% accuracy envelope (§4.1):
//!
//! * **`est_na`** — the node accesses the forfeited sub-join would have
//!   cost: Eq 6 on the two subtrees' *measured* parameters, scaled by
//!   their MBR overlap fraction. This is exactly the pricing the
//!   cost-guided scheduler uses for work units, reused here to price
//!   the work that was *lost* instead of the work to be scheduled.
//! * **`est_pairs`** — the result pairs forfeited: a localized Eq-3
//!   selectivity estimate. Eq 3 gives the expected number of
//!   qualifying pairs for objects spread uniformly over the *whole*
//!   workspace; here the same product-of-per-dimension-overlap
//!   probabilities is evaluated over the two subtrees' MBRs, with the
//!   object centers taken uniform over each MBR shrunk by the
//!   subtree's average object extent (so objects stay inside their
//!   MBR, as they must). The per-dimension overlap probability
//!   `P(|X − Y| ≤ (s₁ + s₂)/2)` for independent uniform centers has a
//!   closed form — a clamped-linear band integral — evaluated exactly
//!   by the private `overlap_probability` helper.
//!
//! Faults ≤ the retry budget never forfeit anything: the injector
//! recovers them and the result is bit-identical to a fault-free run
//! (`skips` empty, [`DegradedJoinResult::is_exact`] true) — the chaos
//! experiment gates on exactly that.

use crate::executor::{JoinPredicate, JoinResultSet};
use crate::parallel::{overlap_fraction, subtree_params};
use sjcm_core::join::unit_cost_na;
use sjcm_core::TreeParams;
use sjcm_geom::Rect;
use sjcm_rtree::{NodeId, RTree};
use sjcm_storage::{FaultCounters, FaultInjector, MemoryBudgetExceeded, PageId, StorageError};
use std::collections::HashMap;
use std::fmt;

/// Why a fallible join could not produce a result at all.
///
/// Forfeited subtrees do *not* raise this — containment turns them into
/// [`SkippedSubtree`] records on an `Ok` result. An `Err` means the run
/// itself is unusable.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinError {
    /// A storage-layer failure outside the containment protocol (e.g. a
    /// malformed node surfacing mid-traversal).
    Storage(StorageError),
    /// A worker thread of the parallel join panicked; the payload
    /// message is preserved.
    WorkerPanicked(String),
    /// A parallel join was requested with `threads = 0`. The infallible
    /// entry points clamp this to one worker instead.
    InvalidThreads,
    /// The governor refused to admit the query: its Eq-6-predicted node
    /// accesses exceed the configured budget and the admission policy
    /// is [`crate::governor::AdmissionPolicy::Reject`].
    Rejected {
        /// Eq-6-predicted node accesses for the full join.
        predicted_na: f64,
        /// The configured admission budget.
        budget: f64,
    },
    /// An executor arena reservation exceeded the governor's memory
    /// budget. The query stops with a typed error instead of aborting
    /// the process.
    BudgetExceeded {
        /// Bytes the denied reservation asked for.
        requested: u64,
        /// Bytes already reserved when the request was denied.
        used: u64,
        /// The configured memory budget in bytes.
        limit: u64,
    },
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::Storage(e) => write!(f, "storage failure during join: {e}"),
            JoinError::WorkerPanicked(msg) => write!(f, "worker panicked: {msg}"),
            JoinError::InvalidThreads => {
                write!(f, "parallel join needs at least one worker (threads = 0)")
            }
            JoinError::Rejected {
                predicted_na,
                budget,
            } => write!(
                f,
                "query rejected at admission: predicted {predicted_na:.1} node accesses \
                 exceeds the budget of {budget:.1}"
            ),
            JoinError::BudgetExceeded {
                requested,
                used,
                limit,
            } => write!(
                f,
                "memory budget exceeded: executor requested {requested} bytes with \
                 {used} of {limit} already reserved"
            ),
        }
    }
}

impl std::error::Error for JoinError {}

impl From<StorageError> for JoinError {
    fn from(e: StorageError) -> Self {
        JoinError::Storage(e)
    }
}

impl From<MemoryBudgetExceeded> for JoinError {
    fn from(e: MemoryBudgetExceeded) -> Self {
        JoinError::BudgetExceeded {
            requested: e.requested,
            used: e.used,
            limit: e.limit,
        }
    }
}

impl JoinError {
    /// Converts a worker thread's panic payload into a typed error.
    pub(crate) fn from_panic(payload: Box<dyn std::any::Any + Send>) -> Self {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        JoinError::WorkerPanicked(msg)
    }
}

/// A forfeited node pair as recorded in the hot path: which side's page
/// read failed and the two subtree roots. Pricing happens once, after
/// the traversal, in [`finish_degraded`] — the traversal only pays for
/// this push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RawSkip {
    /// Which tree's page read failed (1 or 2).
    pub tree: u8,
    /// R1-side subtree root of the forfeited pair.
    pub n1: NodeId,
    /// R2-side subtree root of the forfeited pair.
    pub n2: NodeId,
}

/// One forfeited sub-join: the node pair that was skipped because a
/// page read failed permanently, with model-priced estimates of what
/// the skip cost the answer.
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedSubtree<const N: usize> {
    /// Which tree's page read failed (1 or 2).
    pub tree: u8,
    /// Page of the failed subtree root (pages mirror node ids).
    pub page: PageId,
    /// Page of the partner subtree root on the other tree.
    pub partner: PageId,
    /// Level of the failed node (0 = leaf).
    pub level: u8,
    /// MBR of the R1-side subtree of the forfeited pair.
    pub mbr1: Rect<N>,
    /// MBR of the R2-side subtree of the forfeited pair.
    pub mbr2: Rect<N>,
    /// Eq-6-priced node accesses the forfeited sub-join would have
    /// cost, scaled by the subtree MBRs' overlap fraction.
    pub est_na: f64,
    /// Localized Eq-3 estimate of the result pairs forfeited.
    pub est_pairs: f64,
}

/// Result of a fallible join: the (possibly degraded) answer plus the
/// priced inventory of everything that was forfeited.
#[derive(Debug, Clone)]
pub struct DegradedJoinResult<const N: usize> {
    /// The join result actually computed. With no permanent faults this
    /// is bit-identical to the infallible executor's output.
    pub result: JoinResultSet,
    /// Forfeited sub-joins, sorted by `(tree, page, partner)` so the
    /// inventory is deterministic across schedulers and thread counts.
    pub skips: Vec<SkippedSubtree<N>>,
    /// Snapshot of the injector's fault counters after the run.
    pub faults: FaultCounters,
}

impl<const N: usize> DegradedJoinResult<N> {
    /// `true` when nothing was forfeited: `result` is the exact answer.
    pub fn is_exact(&self) -> bool {
        self.skips.is_empty()
    }

    /// Total Eq-6-priced node accesses forfeited across all skips.
    pub fn forfeited_na(&self) -> f64 {
        self.skips.iter().map(|s| s.est_na).sum()
    }

    /// Total estimated result pairs forfeited across all skips.
    ///
    /// Distinct skips forfeit disjoint pair sets (each subtree pair
    /// covers different objects), so the per-skip estimates sum.
    pub fn forfeited_pairs(&self) -> f64 {
        self.skips.iter().map(|s| s.est_pairs).sum()
    }

    /// Estimated fraction of the *full* answer that was forfeited:
    /// `forfeited / (returned + forfeited)`. 0.0 for an exact result.
    pub fn forfeited_fraction(&self) -> f64 {
        let est = self.forfeited_pairs();
        let total = self.result.pair_count as f64 + est;
        if total == 0.0 {
            0.0
        } else {
            est / total
        }
    }

    /// Decision support for graceful degradation: is the estimated
    /// forfeited fraction within `envelope` (e.g. the paper's 0.15)?
    pub fn within_envelope(&self, envelope: f64) -> bool {
        self.forfeited_fraction() <= envelope
    }
}

/// Sorts and prices the raw skips, snapshots the fault counters, and
/// assembles the [`DegradedJoinResult`]. Called once per join, outside
/// the traversal hot path; with no skips it is a handful of moves.
pub(crate) fn finish_degraded<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    predicate: JoinPredicate,
    result: JoinResultSet,
    mut raw: Vec<RawSkip>,
    faults: &FaultInjector,
) -> DegradedJoinResult<N> {
    raw.sort_unstable_by_key(|s| (s.tree, s.n1.0, s.n2.0));
    raw.dedup();
    let skips = price_skips(r1, r2, predicate, &raw);
    DegradedJoinResult {
        result,
        skips,
        faults: faults.counters(),
    }
}

/// Prices every raw skip. Subtree parameters and object statistics are
/// cached per node id — a lost page typically appears in many skips
/// (once per partner subtree it would have joined with).
fn price_skips<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    predicate: JoinPredicate,
    raw: &[RawSkip],
) -> Vec<SkippedSubtree<N>> {
    // For the distance predicate every per-dimension band widens by ε —
    // the L∞ over-approximation of the Euclidean ε-ball, so the
    // estimate leans high rather than low.
    let slack = match predicate {
        JoinPredicate::Overlap => 0.0,
        JoinPredicate::WithinDistance(eps) => eps,
    };
    let mut params1: HashMap<NodeId, TreeParams<N>> = HashMap::new();
    let mut params2: HashMap<NodeId, TreeParams<N>> = HashMap::new();
    let mut objs1: HashMap<NodeId, SubtreeObjects<N>> = HashMap::new();
    let mut objs2: HashMap<NodeId, SubtreeObjects<N>> = HashMap::new();
    raw.iter()
        .map(|s| {
            let p1 = params1
                .entry(s.n1)
                .or_insert_with(|| subtree_params(r1, s.n1));
            let p2 = params2
                .entry(s.n2)
                .or_insert_with(|| subtree_params(r2, s.n2));
            let est_na = unit_cost_na(p1, p2) * overlap_fraction(r1, r2, s.n1, s.n2);
            let o1 = objs1
                .entry(s.n1)
                .or_insert_with(|| subtree_objects(r1, s.n1));
            let o2 = objs2
                .entry(s.n2)
                .or_insert_with(|| subtree_objects(r2, s.n2));
            // Empty subtrees only arise for an empty tree's root, which
            // is never probed; the unit square is a harmless default.
            let mbr1 = r1.node(s.n1).mbr().unwrap_or_else(Rect::unit);
            let mbr2 = r2.node(s.n2).mbr().unwrap_or_else(Rect::unit);
            let est_pairs = localized_pairs(o1, &mbr1, o2, &mbr2, slack);
            let (page, partner, level) = if s.tree == 1 {
                (PageId(s.n1.0), PageId(s.n2.0), r1.node(s.n1).level)
            } else {
                (PageId(s.n2.0), PageId(s.n1.0), r2.node(s.n2).level)
            };
            SkippedSubtree {
                tree: s.tree,
                page,
                partner,
                level,
                mbr1,
                mbr2,
                est_na,
                est_pairs,
            }
        })
        .collect()
}

/// Object-level statistics of one subtree: how many objects it holds
/// and their average extent per dimension. [`sjcm_rtree::TreeStats`]
/// exposes *node*-rectangle extents per level; the pair estimator needs
/// the *object* rectangles, so this walks the subtree's leaves.
pub(crate) struct SubtreeObjects<const N: usize> {
    pub(crate) count: f64,
    pub(crate) extent: [f64; N],
}

pub(crate) fn subtree_objects<const N: usize>(tree: &RTree<N>, root: NodeId) -> SubtreeObjects<N> {
    let mut count = 0f64;
    let mut sums = [0f64; N];
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        let node = tree.node(id);
        if node.is_leaf() {
            for e in &node.entries {
                count += 1.0;
                for (k, sum) in sums.iter_mut().enumerate() {
                    *sum += e.rect.extent(k);
                }
            }
        } else {
            stack.extend(node.entries.iter().map(|e| e.child.node()));
        }
    }
    let extent = std::array::from_fn(|k| if count > 0.0 { sums[k] / count } else { 0.0 });
    SubtreeObjects { count, extent }
}

/// Localized Eq 3: expected qualifying pairs between two object
/// populations confined to their subtree MBRs. `n₁·n₂·Π_k P(|X_k − Y_k|
/// ≤ t_k)` with `t_k = (s₁ₖ + s₂ₖ)/2 + slack` (average object
/// half-extents meet exactly when the centers are `t_k` apart) and the
/// centers uniform over each MBR shrunk by the average object extent.
pub(crate) fn localized_pairs<const N: usize>(
    o1: &SubtreeObjects<N>,
    m1: &Rect<N>,
    o2: &SubtreeObjects<N>,
    m2: &Rect<N>,
    slack: f64,
) -> f64 {
    if o1.count == 0.0 || o2.count == 0.0 {
        return 0.0;
    }
    let mut pairs = o1.count * o2.count;
    for k in 0..N {
        let t = 0.5 * (o1.extent[k] + o2.extent[k]) + slack;
        let (a1, b1) = center_range(m1.lo_k(k), m1.hi_k(k), o1.extent[k]);
        let (a2, b2) = center_range(m2.lo_k(k), m2.hi_k(k), o2.extent[k]);
        pairs *= overlap_probability(a1, b1, a2, b2, t);
    }
    pairs
}

/// Range the object *centers* can occupy inside an MBR `[lo, hi]` given
/// the average object extent `e`. Collapses to the midpoint when the
/// objects are as wide as the MBR itself.
fn center_range(lo: f64, hi: f64, e: f64) -> (f64, f64) {
    let a = lo + 0.5 * e;
    let b = hi - 0.5 * e;
    if b < a {
        let mid = 0.5 * (lo + hi);
        (mid, mid)
    } else {
        (a, b)
    }
}

/// `P(|X − Y| ≤ t)` for independent `X ~ U[a1, b1]`, `Y ~ U[a2, b2]`,
/// exactly. Degenerate (zero-width) intervals are point masses. The
/// non-degenerate case is the area of the band `{|x − y| ≤ t}` inside
/// the rectangle `[a1, b1] × [a2, b2]`, normalized — computed as the
/// difference of two half-plane areas, each a clamped-linear integral.
fn overlap_probability(a1: f64, b1: f64, a2: f64, b2: f64, t: f64) -> f64 {
    const EPS: f64 = 1e-12;
    let w1 = (b1 - a1).max(0.0);
    let w2 = (b2 - a2).max(0.0);
    if w1 <= EPS && w2 <= EPS {
        return if (a1 - a2).abs() <= t { 1.0 } else { 0.0 };
    }
    if w1 <= EPS {
        // X is a point: the fraction of [a2, b2] within t of it.
        let span = (a1 + t).min(b2) - (a1 - t).max(a2);
        return (span.max(0.0) / w2).min(1.0);
    }
    if w2 <= EPS {
        let span = (a2 + t).min(b1) - (a2 - t).max(a1);
        return (span.max(0.0) / w1).min(1.0);
    }
    // Area({y − x ≤ t}) − Area({y − x ≤ −t}) = Area({|x − y| ≤ t}).
    let area = halfplane_area(a1, b1, a2, b2, t) - halfplane_area(a1, b1, a2, b2, -t);
    (area / (w1 * w2)).clamp(0.0, 1.0)
}

/// Area of `{(x, y) ∈ [a1, b1] × [a2, b2] : y − x ≤ c}`, i.e.
/// `∫ clamp(c + x − a2, 0, b2 − a2) dx` over `[a1, b1]` — the integrand
/// is linear in `x` with slope 1, so the integral splits into a zero
/// piece, a trapezoid, and a saturated piece at the two crossings.
fn halfplane_area(a1: f64, b1: f64, a2: f64, b2: f64, c: f64) -> f64 {
    let h = b2 - a2;
    let u0 = c + a1 - a2; // integrand value at x = a1
    let xa = (a1 - u0).clamp(a1, b1); // where the integrand crosses 0
    let xb = (a1 + (h - u0)).clamp(a1, b1); // where it saturates at h
    let ua = (u0 + (xa - a1)).clamp(0.0, h);
    let ub = (u0 + (xb - a1)).clamp(0.0, h);
    0.5 * (ua + ub) * (xb - xa) + h * (b1 - xb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_probability_handles_the_closed_forms() {
        // Identical unit intervals: P(|X − Y| ≤ t) = 2t − t² for t ≤ 1.
        for t in [0.0, 0.1, 0.25, 0.5, 0.9, 1.0] {
            let p = overlap_probability(0.0, 1.0, 0.0, 1.0, t);
            assert!((p - (2.0 * t - t * t)).abs() < 1e-12, "t={t}: p={p}");
        }
        // Beyond the interval span the event is certain.
        assert_eq!(overlap_probability(0.0, 1.0, 0.0, 1.0, 1.5), 1.0);
        // Disjoint far-apart intervals: impossible.
        assert_eq!(overlap_probability(0.0, 1.0, 5.0, 6.0, 1.0), 0.0);
        // Point vs point.
        assert_eq!(overlap_probability(2.0, 2.0, 2.5, 2.5, 0.4), 0.0);
        assert_eq!(overlap_probability(2.0, 2.0, 2.5, 2.5, 0.6), 1.0);
        // Point vs interval: plain length fraction.
        let p = overlap_probability(0.5, 0.5, 0.0, 2.0, 0.25);
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn overlap_probability_matches_grid_enumeration() {
        // Exhaustive midpoint-grid approximation of the band area, as an
        // independent check of the closed form on asymmetric intervals.
        let cases = [
            (0.0, 1.0, 0.5, 3.0, 0.4),
            (-1.0, 2.0, 0.0, 0.5, 0.7),
            (0.0, 4.0, 1.0, 2.0, 0.3),
            (0.2, 0.9, 0.1, 1.1, 0.05),
        ];
        for (a1, b1, a2, b2, t) in cases {
            let exact = overlap_probability(a1, b1, a2, b2, t);
            let steps = 800;
            let mut hits = 0u64;
            for i in 0..steps {
                let x = a1 + (b1 - a1) * (i as f64 + 0.5) / steps as f64;
                for j in 0..steps {
                    let y = a2 + (b2 - a2) * (j as f64 + 0.5) / steps as f64;
                    if (x - y).abs() <= t {
                        hits += 1;
                    }
                }
            }
            let approx = hits as f64 / (steps * steps) as f64;
            assert!(
                (exact - approx).abs() < 5e-3,
                "({a1},{b1})×({a2},{b2}) t={t}: exact {exact} vs grid {approx}"
            );
        }
    }

    #[test]
    fn overlap_probability_is_monotone_in_t() {
        let mut last = 0.0;
        for i in 0..50 {
            let t = i as f64 * 0.05;
            let p = overlap_probability(0.0, 2.0, 1.0, 4.0, t);
            assert!(p >= last - 1e-12);
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn localized_pairs_is_bounded_and_symmetric_in_sides() {
        let o1 = SubtreeObjects::<2> {
            count: 30.0,
            extent: [0.01, 0.02],
        };
        let o2 = SubtreeObjects::<2> {
            count: 50.0,
            extent: [0.015, 0.01],
        };
        let m1 = Rect::new([0.0, 0.0], [0.5, 0.5]).unwrap();
        let m2 = Rect::new([0.25, 0.25], [0.75, 0.75]).unwrap();
        let est = localized_pairs(&o1, &m1, &o2, &m2, 0.0);
        assert!(est > 0.0, "overlapping clouds must expect some pairs");
        assert!(est <= 30.0 * 50.0, "cannot exceed the cross product");
        let flipped = localized_pairs(&o2, &m2, &o1, &m1, 0.0);
        assert!((est - flipped).abs() < 1e-9, "estimator must be symmetric");
        // Empty population ⇒ nothing to forfeit.
        let none = SubtreeObjects::<2> {
            count: 0.0,
            extent: [0.0, 0.0],
        };
        assert_eq!(localized_pairs(&none, &m1, &o2, &m2, 0.0), 0.0);
    }

    #[test]
    fn degraded_result_accounting() {
        let mk = |est_pairs| SkippedSubtree::<2> {
            tree: 1,
            page: PageId(3),
            partner: PageId(4),
            level: 1,
            mbr1: Rect::unit(),
            mbr2: Rect::unit(),
            est_na: 10.0,
            est_pairs,
        };
        let mut d = DegradedJoinResult::<2> {
            result: JoinResultSet {
                pair_count: 90,
                ..JoinResultSet::default()
            },
            skips: vec![mk(6.0), mk(4.0)],
            faults: FaultCounters::default(),
        };
        assert!(!d.is_exact());
        assert_eq!(d.forfeited_na(), 20.0);
        assert_eq!(d.forfeited_pairs(), 10.0);
        assert!((d.forfeited_fraction() - 0.1).abs() < 1e-12);
        assert!(d.within_envelope(0.15));
        assert!(!d.within_envelope(0.05));
        d.skips.clear();
        assert!(d.is_exact());
        assert_eq!(d.forfeited_fraction(), 0.0);
        assert!(d.within_envelope(0.0));
    }
}
