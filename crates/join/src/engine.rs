//! The one synchronized-traversal engine behind every tree-join
//! scheduler.
//!
//! Historically the sequential executor (`executor.rs`) and the
//! parallel coordinator/workers (`parallel.rs`) each carried a private
//! near-identical copy of this recursion. The copies have been unified
//! here: one [`Engine`], constructed from the session's
//! [`crate::session::ExecContext`], owns the per-executor state (buffers,
//! access tallies, recorder lanes, match scratch, fault containment,
//! progress feed) and implements the SJ descent of \[BKS93\] Figure 2.
//! Entry matching goes through [`matched_entries`], so the match order —
//! and therefore the access order the buffers see — is identical for
//! every scheduler that instantiates an engine.

use crate::degraded::RawSkip;
use crate::executor::{matched_entries, pinned_children, JoinConfig, JoinResultSet, MatchScratch};
use crate::session::{CorrDomain, ExecContext};
use sjcm_obs::progress::ProgressSink;
use sjcm_rtree::{Child, NodeId, ObjectId, RTree};
use sjcm_storage::{AccessStats, BufferManager, FaultInjector, PageId, RecorderLane};

/// Per-executor traversal state: one engine per buffer-residency domain
/// (the sequential join, the parallel coordinator, one per worker or
/// shard). Fields are crate-visible because the schedulers merge them
/// back into one [`JoinResultSet`] after the fan-out.
pub(crate) struct Engine<'a, const N: usize> {
    pub(crate) r1: &'a RTree<N>,
    pub(crate) r2: &'a RTree<N>,
    pub(crate) buf1: Box<dyn BufferManager>,
    pub(crate) buf2: Box<dyn BufferManager>,
    pub(crate) stats1: AccessStats,
    pub(crate) stats2: AccessStats,
    pub(crate) lane1: RecorderLane,
    pub(crate) lane2: RecorderLane,
    pub(crate) pairs: Vec<(ObjectId, ObjectId)>,
    pub(crate) pair_count: u64,
    pub(crate) config: JoinConfig,
    // Reused matching buffers (sweep sort vectors, SoA batches, bitmask).
    pub(crate) scratch: MatchScratch<N>,
    // Fault-injection oracle (disabled = one `Option` check per pair)
    // and the node pairs forfeited to permanent read failures.
    pub(crate) faults: FaultInjector,
    pub(crate) skips: Vec<RawSkip>,
    // Live progress feed — disabled is one `Option` check per access;
    // enabled adds a counter increment, with the per-level tallies
    // published in batches (see `sjcm_obs::progress`).
    pub(crate) progress: ProgressSink,
}

impl<'a, const N: usize> Engine<'a, N> {
    /// An engine wired to the context's cross-cutting concerns, with its
    /// recorder lanes on the given correlation domain.
    pub(crate) fn new(
        r1: &'a RTree<N>,
        r2: &'a RTree<N>,
        config: JoinConfig,
        ctx: &ExecContext<'_>,
        domain: CorrDomain,
    ) -> Self {
        let (lane1, lane2) = ctx.lanes(domain);
        Self {
            r1,
            r2,
            buf1: config.buffer.build(),
            buf2: config.buffer.build(),
            stats1: AccessStats::new(),
            stats2: AccessStats::new(),
            lane1,
            lane2,
            pairs: Vec::new(),
            pair_count: 0,
            config,
            scratch: MatchScratch::new(),
            faults: ctx.faults.clone(),
            skips: Vec::new(),
            progress: ctx.progress.sink(),
        }
    }

    /// Re-homes the recorder lanes onto another correlation domain (the
    /// cost-guided workers switch domains at every unit boundary — each
    /// unit is its own buffer-residency domain).
    pub(crate) fn set_domain(&mut self, domain: CorrDomain) {
        let corr = domain.corr();
        self.lane1.set_corr(corr);
        self.lane2.set_corr(corr);
    }

    /// The engine's accumulated result plus the raw (unpriced) skips.
    pub(crate) fn into_parts(self) -> (JoinResultSet, Vec<RawSkip>) {
        (
            JoinResultSet {
                pairs: self.pairs,
                pair_count: self.pair_count,
                stats1: self.stats1,
                stats2: self.stats2,
                buffers1: self.buf1.counters(),
                buffers2: self.buf2.counters(),
                ..JoinResultSet::default()
            },
            self.skips,
        )
    }

    /// Publishes the engine's cumulative per-level tallies into the
    /// progress hub (no-op when progress is disabled).
    pub(crate) fn flush_progress(&mut self) {
        if self.progress.is_enabled() {
            self.progress.flush(
                self.stats1.per_level(),
                self.stats2.per_level(),
                self.pair_count,
            );
        }
    }

    /// Probes the injector for the pair's two page reads before they
    /// are charged (root pages are memory-resident per §3.1 and never
    /// probed). Returns `false` — recording the forfeited pair — if
    /// either read fails permanently; a skipped pair charges nothing.
    /// The protocol is shared by every scheduler, so they all forfeit
    /// exactly the same pairs under the same fault plan.
    pub(crate) fn probe(&mut self, n1: NodeId, n2: NodeId) -> bool {
        if n1 != self.r1.root_id() {
            let level = self.r1.node(n1).level;
            if self.faults.access(1, PageId(n1.0), level).is_err() {
                self.skips.push(RawSkip { tree: 1, n1, n2 });
                self.progress.forfeit(level);
                return false;
            }
        }
        if n2 != self.r2.root_id() {
            let level = self.r2.node(n2).level;
            if self.faults.access(2, PageId(n2.0), level).is_err() {
                self.skips.push(RawSkip { tree: 2, n1, n2 });
                self.progress.forfeit(level);
                return false;
            }
        }
        true
    }

    pub(crate) fn access1(&mut self, id: NodeId) {
        let level = self.r1.node(id).level;
        let kind = self.buf1.access(PageId(id.0), level);
        self.stats1.record(level, kind);
        self.lane1.record(PageId(id.0), level, kind);
        if self.progress.tick() {
            self.flush_progress();
        }
    }

    pub(crate) fn access2(&mut self, id: NodeId) {
        let level = self.r2.node(id).level;
        let kind = self.buf2.access(PageId(id.0), level);
        self.stats2.record(level, kind);
        self.lane2.record(PageId(id.0), level, kind);
        if self.progress.tick() {
            self.flush_progress();
        }
    }

    fn matched(&mut self, n1_id: NodeId, n2_id: NodeId) -> Vec<(Child, Child)> {
        matched_entries(
            self.r1.node(n1_id),
            self.r2.node(n2_id),
            &self.config,
            &mut self.scratch,
        )
    }

    /// Expands the synchronized traversal breadth-first, one level per
    /// round, until the frontier holds at least `target` node pairs or
    /// nothing is expandable (every pair is leaf–leaf). Every access a
    /// sequential join would charge *above* the returned frontier is
    /// charged here, against this engine's buffers; every pair in the
    /// returned frontier has already been charged (or is the uncounted
    /// root pair), so workers must not charge unit entries again.
    ///
    /// One more round always expands *every* expandable pair, so on a
    /// shallow tree a single round can overshoot `target` straight into
    /// leaf–leaf pairs — units with no node accesses left in them, the
    /// coordinator having absorbed the whole traversal. To keep the
    /// units worth scheduling, expansion also stops early when the next
    /// round would produce only leaf–leaf pairs, provided at least
    /// `min_units` pairs are already on hand.
    ///
    /// Within a round, pairs expand in frontier order and children
    /// append in match order, so the per-level access sequence is the
    /// sequential DFS's per-level access sequence — under a path buffer
    /// (one frame per level) the intermediate-level DA is therefore
    /// *exactly* sequential.
    pub(crate) fn collect_frontier(
        &mut self,
        target: usize,
        min_units: usize,
    ) -> Vec<(NodeId, NodeId)> {
        let mut frontier = vec![(self.r1.root_id(), self.r2.root_id())];
        loop {
            if frontier.len() >= target {
                return frontier;
            }
            // All pairs in a round sit at the same level pair, so one
            // probe decides whether another round would only produce
            // I/O-free leaf–leaf units.
            if frontier.len() >= min_units
                && frontier
                    .iter()
                    .all(|&(a, b)| self.r1.node(a).level <= 1 && self.r2.node(b).level <= 1)
            {
                return frontier;
            }
            let mut next = Vec::new();
            let mut expanded = false;
            for &(a, b) in &frontier {
                let leaf1 = self.r1.node(a).is_leaf();
                let leaf2 = self.r2.node(b).is_leaf();
                match (leaf1, leaf2) {
                    (true, true) => next.push((a, b)),
                    (false, false) => {
                        expanded = true;
                        for (c1, c2) in self.matched(a, b) {
                            let (c1, c2) = (c1.node(), c2.node());
                            if self.faults.is_enabled() && !self.probe(c1, c2) {
                                continue;
                            }
                            self.access1(c1);
                            self.access2(c2);
                            next.push((c1, c2));
                        }
                    }
                    (false, true) => {
                        expanded = true;
                        let m2 = match self.r2.node(b).mbr() {
                            Some(m) => m,
                            None => continue,
                        };
                        let children = pinned_children(
                            &self.r1.node(a).entries,
                            &m2,
                            self.config.predicate,
                            self.config.kernel,
                            &mut self.scratch,
                        );
                        for c1 in children {
                            if self.faults.is_enabled() && !self.probe(c1, b) {
                                continue;
                            }
                            self.access1(c1);
                            self.access2(b);
                            next.push((c1, b));
                        }
                    }
                    (true, false) => {
                        expanded = true;
                        let m1 = match self.r1.node(a).mbr() {
                            Some(m) => m,
                            None => continue,
                        };
                        let children = pinned_children(
                            &self.r2.node(b).entries,
                            &m1,
                            self.config.predicate,
                            self.config.kernel,
                            &mut self.scratch,
                        );
                        for c2 in children {
                            if self.faults.is_enabled() && !self.probe(a, c2) {
                                continue;
                            }
                            self.access1(a);
                            self.access2(c2);
                            next.push((a, c2));
                        }
                    }
                }
            }
            frontier = next;
            if !expanded {
                return frontier;
            }
        }
    }

    /// The SJ recursion of \[BKS93\] Figure 2: four arms over the
    /// leaf-ness of the node pair. Trees of different heights pin the
    /// leaf side and keep descending the other tree, re-accessing the
    /// pinned node each step — what Eq 11 counts (and Eq 12 exploits
    /// under a path buffer).
    pub(crate) fn visit(&mut self, n1_id: NodeId, n2_id: NodeId) {
        let leaf1 = self.r1.node(n1_id).is_leaf();
        let leaf2 = self.r2.node(n2_id).is_leaf();
        let pred = self.config.predicate;
        match (leaf1, leaf2) {
            (true, true) => {
                for (c1, c2) in self.matched(n1_id, n2_id) {
                    self.pair_count += 1;
                    if self.config.collect_pairs {
                        self.pairs.push((c1.object(), c2.object()));
                    }
                }
            }
            (false, false) => {
                for (c1, c2) in self.matched(n1_id, n2_id) {
                    let (c1, c2) = (c1.node(), c2.node());
                    if self.faults.is_enabled() && !self.probe(c1, c2) {
                        continue;
                    }
                    self.access1(c1);
                    self.access2(c2);
                    self.visit(c1, c2);
                }
            }
            (false, true) => {
                let m2 = match self.r2.node(n2_id).mbr() {
                    Some(m) => m,
                    None => return,
                };
                let children = pinned_children(
                    &self.r1.node(n1_id).entries,
                    &m2,
                    pred,
                    self.config.kernel,
                    &mut self.scratch,
                );
                for c1 in children {
                    if self.faults.is_enabled() && !self.probe(c1, n2_id) {
                        continue;
                    }
                    self.access1(c1);
                    self.access2(n2_id);
                    self.visit(c1, n2_id);
                }
            }
            (true, false) => {
                let m1 = match self.r1.node(n1_id).mbr() {
                    Some(m) => m,
                    None => return,
                };
                let children = pinned_children(
                    &self.r2.node(n2_id).entries,
                    &m1,
                    pred,
                    self.config.kernel,
                    &mut self.scratch,
                );
                for c2 in children {
                    if self.faults.is_enabled() && !self.probe(n1_id, c2) {
                        continue;
                    }
                    self.access1(n1_id);
                    self.access2(c2);
                    self.visit(n1_id, c2);
                }
            }
        }
    }
}
