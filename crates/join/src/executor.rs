//! The SJ join configuration, result types, and entry matching — plus
//! the legacy sequential entry points, kept as thin deprecated wrappers
//! over [`crate::session::JoinSession`]. The traversal itself lives in
//! the shared `engine` module; the session module is the front door.

use crate::degraded::{DegradedJoinResult, JoinError, RawSkip};
use crate::session::{CorrDomain, ExecContext, JoinSession};
use sjcm_geom::{OverlapMask, Rect, RectBatch};
use sjcm_rtree::{Child, Entry, Node, NodeId, ObjectId, RTree};
use sjcm_storage::recorder::RecordedPolicy;
use sjcm_storage::{
    AccessStats, BufferCounters, BufferManager, FaultInjector, FlightRecorder, LruBuffer, NoBuffer,
    PathBuffer,
};

/// Join predicate between two object MBRs (and, during traversal,
/// between node rectangles — both predicates below are "downward
/// closed": if two node rectangles fail it, no contained pair can
/// satisfy it, so pruning is exact).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JoinPredicate {
    /// MBR intersection — the paper's `overlap`.
    Overlap,
    /// Euclidean distance between MBRs at most ε (distance join).
    WithinDistance(
        /// Distance threshold ε ≥ 0.
        f64,
    ),
}

impl JoinPredicate {
    #[inline]
    pub(crate) fn holds<const N: usize>(&self, a: &Rect<N>, b: &Rect<N>) -> bool {
        match *self {
            JoinPredicate::Overlap => a.intersects(b),
            JoinPredicate::WithinDistance(eps) => a.within_distance(b, eps),
        }
    }
}

/// Buffer scheme for both trees (each tree gets its own instance — the
/// paper's path buffer is explicitly per-tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferPolicy {
    /// No buffering: DA = NA.
    None,
    /// Per-tree most-recently-visited-path buffer (§3.1).
    Path,
    /// Per-tree LRU buffer of the given page capacity (§5 extension).
    Lru(usize),
}

impl BufferPolicy {
    pub(crate) fn build(self) -> Box<dyn BufferManager> {
        match self {
            BufferPolicy::None => Box::new(NoBuffer::new()),
            BufferPolicy::Path => Box::new(PathBuffer::new()),
            BufferPolicy::Lru(cap) => Box::new(LruBuffer::new(cap)),
        }
    }

    /// The storage-layer mirror of this policy, as stamped into a
    /// recorded [`sjcm_storage::AccessTrace`] header so offline replay
    /// knows which configuration reproduces the recorded hit/miss
    /// stream.
    pub fn recorded(self) -> RecordedPolicy {
        match self {
            BufferPolicy::None => RecordedPolicy::None,
            BufferPolicy::Path => RecordedPolicy::Path,
            BufferPolicy::Lru(cap) => RecordedPolicy::Lru(cap as u32),
        }
    }
}

/// Order in which entry pairs of a node pair are matched.
///
/// The analytical DA model assumes the SJ nested-loop order (R2 outer,
/// R1 inner); the plane sweep of \[BKS93\] reduces CPU cost but visits
/// pairs in sweep order, which perturbs path-buffer hit patterns — an
/// effect the buffer-ablation experiment quantifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchOrder {
    /// Figure 2's loops: `for Er2 in R2 { for Er1 in R1 { … } }`.
    #[default]
    NestedLoop,
    /// Sort both entry lists by low corner in dimension 0 and sweep.
    PlaneSweep,
}

/// How entry-pair predicates are evaluated — the CPU side of matching,
/// orthogonal to [`MatchOrder`] (which pairs are *considered*, and in
/// what order).
///
/// Both kernels produce byte-identical results: the same pairs in the
/// same order, and identical NA/DA tallies (the kernel only replaces
/// predicate evaluation, never which nodes are visited). The scalar
/// kernel is kept as the reference the batched one is asserted against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchKernel {
    /// One `Rect::intersects`/`within_distance` call per candidate pair
    /// — the pre-kernel reference path.
    Scalar,
    /// Batched structure-of-arrays kernels ([`sjcm_geom::RectBatch`]):
    /// node entries are transposed into per-dimension coordinate slabs
    /// once per node visit and candidates are tested 64 at a time,
    /// branch-free, so the comparison loops autovectorize.
    #[default]
    Batched,
}

/// Executor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinConfig {
    /// Buffer scheme (applied to both trees independently).
    pub buffer: BufferPolicy,
    /// Join predicate.
    pub predicate: JoinPredicate,
    /// Entry-matching order.
    pub order: MatchOrder,
    /// Entry-matching kernel (scalar reference vs batched SoA).
    pub kernel: MatchKernel,
    /// When `false`, result pairs are not materialized (the experiments
    /// only need access counts; 80K×80K joins produce millions of pairs).
    pub collect_pairs: bool,
}

impl Default for JoinConfig {
    fn default() -> Self {
        Self {
            buffer: BufferPolicy::Path,
            predicate: JoinPredicate::Overlap,
            order: MatchOrder::NestedLoop,
            kernel: MatchKernel::default(),
            collect_pairs: true,
        }
    }
}

/// Reusable scratch buffers for entry matching: the sort buffers of the
/// plane sweep plus the SoA batches and bitmask of the batched kernel.
/// One instance lives in each executor; matching refills it per node
/// pair, so steady-state matching allocates nothing but the output.
#[derive(Debug, Default)]
pub struct MatchScratch<const N: usize> {
    entries1: Vec<(Rect<N>, Child)>,
    entries2: Vec<(Rect<N>, Child)>,
    batch1: RectBatch<N>,
    batch2: RectBatch<N>,
    mask: OverlapMask,
}

impl<const N: usize> MatchScratch<N> {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-worker tallies of a parallel join execution (empty for the
/// sequential executor). Units are attributed to the worker they were
/// *scheduled on* (LPT seeding or round-robin deal), not to whichever
/// thread executed them after stealing, so the tallies are
/// deterministic and measure schedule quality — see the
/// `parallel` module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerTally {
    /// Work units scheduled onto this worker.
    pub units: u64,
    /// Node accesses charged by this worker's units (both trees).
    pub na: u64,
    /// Disk accesses charged by this worker's units (both trees).
    pub da: u64,
    /// Result pairs emitted by this worker's units.
    pub pair_count: u64,
}

/// Steal statistics of one *executing* thread of the cost-guided
/// parallel scheduler. Unlike [`WorkerTally`] (attributed to the
/// *planned* worker, deterministic), these describe what actually
/// happened at runtime and are **timing-dependent**: which thread
/// steals which unit is decided by the OS scheduler, so two runs of the
/// same join can report different steal tallies (their sums over all
/// threads still cover the same units).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StealTally {
    /// Units this thread executed (own deque plus stolen).
    pub units_executed: u64,
    /// Units this thread obtained by stealing from another deque.
    pub units_stolen: u64,
    /// Steal attempts (victim scans), including ones lost to races.
    pub steal_attempts: u64,
    /// Queue depth of the victim deque observed at each successful
    /// steal (after removing the stolen unit).
    pub steal_queue_depths: Vec<u64>,
}

/// Result of one join execution.
#[derive(Debug, Clone, Default)]
pub struct JoinResultSet {
    /// Qualifying `(R1 object, R2 object)` pairs (empty when
    /// `collect_pairs` was off).
    pub pairs: Vec<(ObjectId, ObjectId)>,
    /// Number of qualifying pairs (tracked even when not materialized).
    pub pair_count: u64,
    /// Access tallies of tree R1 (levels use the paper convention via
    /// [`JoinResultSet::na_at_paper_level`]; raw indices are 0-based).
    pub stats1: AccessStats,
    /// Access tallies of tree R2.
    pub stats2: AccessStats,
    /// Per-worker tallies when the join ran in parallel; empty for the
    /// sequential executor (and the `threads = 1` parallel fallback).
    pub workers: Vec<WorkerTally>,
    /// Buffer hit/miss/eviction counters of tree R1's buffer(s), merged
    /// over all executors that touched the tree.
    pub buffers1: BufferCounters,
    /// Buffer counters of tree R2's buffer(s).
    pub buffers2: BufferCounters,
    /// Per-executing-thread steal statistics of a cost-guided parallel
    /// run; empty otherwise. Timing-dependent — see [`StealTally`].
    pub steals: Vec<StealTally>,
}

impl JoinResultSet {
    /// Total node accesses over both trees — the experimental `NA_total`.
    pub fn na_total(&self) -> u64 {
        self.stats1.na_total() + self.stats2.na_total()
    }

    /// Load-balance quality of a parallel run: `max_worker_na /
    /// mean_worker_na`. A perfectly balanced schedule scores 1.0; a
    /// schedule that starves all but one worker of `k` scores `k`.
    /// Returns 1.0 when no per-worker tallies were recorded.
    pub fn na_imbalance(&self) -> f64 {
        if self.workers.is_empty() {
            return 1.0;
        }
        let max = self.workers.iter().map(|w| w.na).max().unwrap_or(0) as f64;
        let mean =
            self.workers.iter().map(|w| w.na).sum::<u64>() as f64 / self.workers.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Total disk accesses over both trees — the experimental `DA_total`.
    pub fn da_total(&self) -> u64 {
        self.stats1.da_total() + self.stats2.da_total()
    }

    /// Node accesses of tree `i ∈ {1, 2}` at paper level `j` (1 = leaf).
    pub fn na_at_paper_level(&self, tree: usize, j: usize) -> u64 {
        let stats = if tree == 1 {
            &self.stats1
        } else {
            &self.stats2
        };
        stats.na_at((j - 1) as u8)
    }

    /// Disk accesses of tree `i ∈ {1, 2}` at paper level `j` (1 = leaf).
    pub fn da_at_paper_level(&self, tree: usize, j: usize) -> u64 {
        let stats = if tree == 1 {
            &self.stats1
        } else {
            &self.stats2
        };
        stats.da_at((j - 1) as u8)
    }

    /// The measured counterparts of
    /// [`sjcm_core::join::join_prediction_targets`], under the same
    /// names: per tree and accessed paper level the NA and DA tallies,
    /// plus the `na.total` / `da.total` grand totals. Feed these to a
    /// `DriftMonitor` to evaluate the paper's ~15% accuracy claim on
    /// this very run.
    pub fn drift_observations(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for (tree, stats) in [(1, &self.stats1), (2, &self.stats2)] {
            if let Some(top) = stats.max_level() {
                for idx in 0..=top {
                    let j = idx as usize + 1;
                    out.push((sjcm_core::join::na_target(tree, j), stats.na_at(idx) as f64));
                    out.push((sjcm_core::join::da_target(tree, j), stats.da_at(idx) as f64));
                }
            }
        }
        out.push(("na.total".to_string(), self.na_total() as f64));
        out.push(("da.total".to_string(), self.da_total() as f64));
        out
    }
}

/// Runs the SJ spatial join with the default configuration (path buffer,
/// overlap predicate, nested-loop order, pairs collected).
///
/// ```
/// use sjcm_rtree::{RTree, RTreeConfig, ObjectId};
/// use sjcm_geom::Rect;
/// # #[allow(deprecated)]
/// use sjcm_join::spatial_join;
///
/// let mut a = RTree::<2>::new(RTreeConfig::with_capacity(8));
/// let mut b = RTree::<2>::new(RTreeConfig::with_capacity(8));
/// a.insert(Rect::new([0.1, 0.1], [0.3, 0.3]).unwrap(), ObjectId(1));
/// b.insert(Rect::new([0.2, 0.2], [0.4, 0.4]).unwrap(), ObjectId(2));
/// # #[allow(deprecated)]
/// let result = spatial_join(&a, &b);
/// assert_eq!(result.pairs, vec![(ObjectId(1), ObjectId(2))]);
/// ```
#[deprecated(note = "use `session::JoinSession::new(r1, r2).run()`")]
pub fn spatial_join<const N: usize>(r1: &RTree<N>, r2: &RTree<N>) -> JoinResultSet {
    JoinSession::new(r1, r2)
        .run()
        .expect("sequential join without fault injection or governor cannot fail")
        .result
}

/// Runs the SJ spatial join with an explicit configuration.
#[deprecated(note = "use `session::JoinSession::new(r1, r2).config(config).run()`")]
pub fn spatial_join_with<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    config: JoinConfig,
) -> JoinResultSet {
    JoinSession::new(r1, r2)
        .config(config)
        .run()
        .expect("sequential join without fault injection or governor cannot fail")
        .result
}

/// Runs the SJ spatial join with a page-access flight recorder: every
/// buffered access additionally emits one event into `recorder`
/// (correlation domain 0 — the sequential executor is a single
/// buffer-residency domain). With a disabled recorder this is exactly
/// [`spatial_join_with`] — one `Option` check per access.
#[deprecated(note = "use `session::JoinSession` with `.record(recorder)`")]
pub fn spatial_join_recorded<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    config: JoinConfig,
    recorder: &FlightRecorder,
) -> JoinResultSet {
    JoinSession::new(r1, r2)
        .config(config)
        .record(recorder)
        .run()
        .expect("sequential join without fault injection or governor cannot fail")
        .result
}

/// Fallible twin of [`spatial_join_with`]: runs the SJ join under a
/// [`FaultInjector`]. Transient page-read faults within the injector's
/// retry budget are recovered invisibly (the result is bit-identical to
/// a fault-free run); a *permanent* failure — retry budget exhausted,
/// or the page lost — forfeits only the node pair whose read failed,
/// and the traversal continues. The forfeited sub-joins come back
/// priced on [`DegradedJoinResult::skips`].
///
/// With a disabled injector this is [`spatial_join_with`] plus a
/// `Result` wrapper: one `Option` discriminant check per node pair, and
/// `skips` is empty.
#[deprecated(note = "use `session::JoinSession` with `.faults(..)` / `.govern(..)`")]
pub fn try_spatial_join_with<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    config: JoinConfig,
    faults: &FaultInjector,
    gov: &crate::governor::Governor,
) -> Result<DegradedJoinResult<N>, JoinError> {
    JoinSession::new(r1, r2)
        .config(config)
        .faults(faults)
        .govern(gov)
        .run()
}

/// Fallible twin of [`spatial_join_recorded`] — see
/// [`try_spatial_join_with`]. The sequential executor contains every
/// injected failure, so with an unlimited governor this always returns
/// `Ok`; a governing [`crate::governor::Governor`] can reject the query
/// at admission ([`JoinError::Rejected`]) and cancels cooperatively at
/// work-unit boundaries, forfeiting unvisited subtrees onto
/// [`DegradedJoinResult::skips`].
#[deprecated(note = "use `session::JoinSession` with `.record(..)`, `.faults(..)`, `.govern(..)`")]
pub fn try_spatial_join_recorded<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    config: JoinConfig,
    recorder: &FlightRecorder,
    faults: &FaultInjector,
    gov: &crate::governor::Governor,
) -> Result<DegradedJoinResult<N>, JoinError> {
    JoinSession::new(r1, r2)
        .config(config)
        .record(recorder)
        .faults(faults)
        .govern(gov)
        .run()
}

/// The sequential traversal shared by the session's `Sequential`
/// scheduler and the parallel `threads = 1` fallback. Returns the
/// result set plus the raw (unpriced) skip records.
pub(crate) fn run_sequential<const N: usize>(
    r1: &RTree<N>,
    r2: &RTree<N>,
    config: JoinConfig,
    ctx: &ExecContext<'_>,
) -> (JoinResultSet, Vec<RawSkip>) {
    let mut exec = crate::engine::Engine::new(r1, r2, config, ctx, CorrDomain::Coordinator);
    // The roots are assumed memory-resident (§3.1) and are not counted.
    exec.visit(r1.root_id(), r2.root_id());
    exec.flush_progress();
    exec.into_parts()
}

/// Children of `entries` whose rectangles satisfy `predicate` against a
/// single pinned rectangle (the height-mismatch arms of the traversal),
/// in entry order. The batched kernel and the scalar filter agree
/// exactly — both predicates are symmetric, so one-vs-many masking is
/// just the scalar loop with the comparisons vectorized.
pub(crate) fn pinned_children<const N: usize>(
    entries: &[Entry<N>],
    mbr: &Rect<N>,
    predicate: JoinPredicate,
    kernel: MatchKernel,
    scratch: &mut MatchScratch<N>,
) -> Vec<NodeId> {
    match kernel {
        MatchKernel::Scalar => entries
            .iter()
            .filter(|e| predicate.holds(&e.rect, mbr))
            .map(|e| e.child.node())
            .collect(),
        MatchKernel::Batched => {
            let MatchScratch { batch1, mask, .. } = scratch;
            batch1.clear();
            batch1.extend(entries.iter().map(|e| e.rect));
            match predicate {
                JoinPredicate::Overlap => batch1.overlap_mask(mbr, 0, batch1.len(), mask),
                JoinPredicate::WithinDistance(eps) => {
                    batch1.within_mask(mbr, eps, 0, batch1.len(), mask)
                }
            }
            mask.iter_set().map(|i| entries[i].child.node()).collect()
        }
    }
}

/// Entry pairs of two nodes satisfying the configured predicate, in the
/// configured match order, evaluated by the configured kernel. Shared
/// between the sequential executor and the parallel
/// coordinator/workers so both traversals match entries in exactly the
/// same order (which the DA comparisons rely on); the kernel choice
/// never changes which pairs come back or their order, only how the
/// rectangle comparisons are evaluated.
pub fn matched_entries<const N: usize>(
    n1: &Node<N>,
    n2: &Node<N>,
    config: &JoinConfig,
    scratch: &mut MatchScratch<N>,
) -> Vec<(Child, Child)> {
    match (config.order, config.kernel) {
        (MatchOrder::NestedLoop, MatchKernel::Scalar) => {
            let mut out = Vec::new();
            // Figure 2: R2's entries drive the outer loop.
            for e2 in &n2.entries {
                for e1 in &n1.entries {
                    if config.predicate.holds(&e1.rect, &e2.rect) {
                        out.push((e1.child, e2.child));
                    }
                }
            }
            out
        }
        (MatchOrder::NestedLoop, MatchKernel::Batched) => {
            // Same loops, inner loop vectorized: batch R1's entries
            // once, test each R2 entry against all of them. Ascending
            // mask bits reproduce the inner loop's entry order.
            let MatchScratch { batch1, mask, .. } = scratch;
            batch1.clear();
            batch1.extend(n1.entries.iter().map(|e| e.rect));
            let mut out = Vec::new();
            for e2 in &n2.entries {
                match config.predicate {
                    JoinPredicate::Overlap => batch1.overlap_mask(&e2.rect, 0, batch1.len(), mask),
                    JoinPredicate::WithinDistance(eps) => {
                        batch1.within_mask(&e2.rect, eps, 0, batch1.len(), mask)
                    }
                }
                for i in mask.iter_set() {
                    out.push((n1.entries[i].child, e2.child));
                }
            }
            out
        }
        (MatchOrder::PlaneSweep, kernel) => sweep_pairs(n1, n2, config.predicate, kernel, scratch),
    }
}

/// Plane-sweep entry matching along dimension 0 (BKS93's CPU
/// optimization). For the distance predicate the sweep widens the active
/// window by ε so no qualifying pair is skipped.
///
/// The batched kernel delimits each anchor's candidate range by
/// scanning the sorted `lo₀` slab (the same comparisons the scalar
/// inner loop makes) and then evaluates the whole range at once:
/// [`RectBatch::overlap_mask_tail`] for overlap — dimension 0 is
/// implied by the range, see the `sjcm_geom::batch` module docs — or
/// the full [`RectBatch::within_mask`] for the distance predicate
/// (the ε-widened range does *not* imply dimension-0 proximity).
fn sweep_pairs<const N: usize>(
    n1: &Node<N>,
    n2: &Node<N>,
    predicate: JoinPredicate,
    kernel: MatchKernel,
    scratch: &mut MatchScratch<N>,
) -> Vec<(Child, Child)> {
    let slack = match predicate {
        JoinPredicate::Overlap => 0.0,
        JoinPredicate::WithinDistance(eps) => eps,
    };
    let MatchScratch {
        entries1,
        entries2,
        batch1,
        batch2,
        mask,
    } = scratch;
    entries1.clear();
    entries2.clear();
    entries1.extend(n1.entries.iter().map(|e| (e.rect, e.child)));
    entries2.extend(n2.entries.iter().map(|e| (e.rect, e.child)));
    entries1.sort_by(|a, b| a.0.lo_k(0).total_cmp(&b.0.lo_k(0)));
    entries2.sort_by(|a, b| a.0.lo_k(0).total_cmp(&b.0.lo_k(0)));
    if kernel == MatchKernel::Batched {
        batch1.clear();
        batch2.clear();
        batch1.extend(entries1.iter().map(|e| e.0));
        batch2.extend(entries2.iter().map(|e| e.0));
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < entries1.len() && j < entries2.len() {
        if entries1[i].0.lo_k(0) <= entries2[j].0.lo_k(0) {
            let anchor = entries1[i];
            let limit = anchor.0.hi_k(0) + slack;
            match kernel {
                MatchKernel::Scalar => {
                    let mut k = j;
                    while k < entries2.len() && entries2[k].0.lo_k(0) <= limit {
                        if predicate.holds::<N>(&anchor.0, &entries2[k].0) {
                            out.push((anchor.1, entries2[k].1));
                        }
                        k += 1;
                    }
                }
                MatchKernel::Batched => {
                    let lo = batch2.lo_slab(0);
                    let mut end = j;
                    while end < lo.len() && lo[end] <= limit {
                        end += 1;
                    }
                    match predicate {
                        JoinPredicate::Overlap => batch2.overlap_mask_tail(&anchor.0, j, end, mask),
                        JoinPredicate::WithinDistance(eps) => {
                            batch2.within_mask(&anchor.0, eps, j, end, mask)
                        }
                    }
                    for b in mask.iter_set() {
                        out.push((anchor.1, entries2[j + b].1));
                    }
                }
            }
            i += 1;
        } else {
            let anchor = entries2[j];
            let limit = anchor.0.hi_k(0) + slack;
            match kernel {
                MatchKernel::Scalar => {
                    let mut k = i;
                    while k < entries1.len() && entries1[k].0.lo_k(0) <= limit {
                        if predicate.holds::<N>(&entries1[k].0, &anchor.0) {
                            out.push((entries1[k].1, anchor.1));
                        }
                        k += 1;
                    }
                }
                MatchKernel::Batched => {
                    let lo = batch1.lo_slab(0);
                    let mut end = i;
                    while end < lo.len() && lo[end] <= limit {
                        end += 1;
                    }
                    match predicate {
                        JoinPredicate::Overlap => batch1.overlap_mask_tail(&anchor.0, i, end, mask),
                        JoinPredicate::WithinDistance(eps) => {
                            batch1.within_mask(&anchor.0, eps, i, end, mask)
                        }
                    }
                    for b in mask.iter_set() {
                        out.push((entries1[i + b].1, anchor.1));
                    }
                }
            }
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    // The legacy entry points exercised here are deprecated wrappers
    // over the session builder; keeping the tests on them doubles as
    // wrapper coverage.
    #![allow(deprecated)]

    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sjcm_rtree::RTreeConfig;

    fn random_items(n: usize, side: f64, seed: u64) -> Vec<(Rect<2>, ObjectId)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let cx: f64 = rng.gen_range(0.0..1.0);
                let cy: f64 = rng.gen_range(0.0..1.0);
                (
                    Rect::centered(sjcm_geom::Point::new([cx, cy]), [side, side]),
                    ObjectId(i as u32),
                )
            })
            .collect()
    }

    fn build(items: &[(Rect<2>, ObjectId)], cap: usize) -> RTree<2> {
        let mut tree = RTree::new(RTreeConfig::with_capacity(cap));
        for &(r, id) in items {
            tree.insert(r, id);
        }
        tree
    }

    fn brute_force(
        a: &[(Rect<2>, ObjectId)],
        b: &[(Rect<2>, ObjectId)],
        pred: JoinPredicate,
    ) -> Vec<(ObjectId, ObjectId)> {
        let mut out = Vec::new();
        for &(r1, id1) in a {
            for &(r2, id2) in b {
                if pred.holds(&r1, &r2) {
                    out.push((id1, id2));
                }
            }
        }
        out.sort();
        out
    }

    #[test]
    fn join_matches_brute_force() {
        let a = random_items(400, 0.02, 1);
        let b = random_items(300, 0.03, 2);
        let ta = build(&a, 8);
        let tb = build(&b, 8);
        let mut got = spatial_join(&ta, &tb).pairs;
        got.sort();
        assert_eq!(got, brute_force(&a, &b, JoinPredicate::Overlap));
    }

    #[test]
    fn join_matches_brute_force_different_heights() {
        let a = random_items(2_000, 0.01, 3); // deep tree with cap 8
        let b = random_items(60, 0.05, 4); // shallow tree
        let ta = build(&a, 8);
        let tb = build(&b, 8);
        assert!(ta.height() > tb.height());
        let mut got = spatial_join(&ta, &tb).pairs;
        got.sort();
        assert_eq!(got, brute_force(&a, &b, JoinPredicate::Overlap));
        // And with roles swapped (shorter data tree).
        let mut got = spatial_join(&tb, &ta).pairs;
        got.sort();
        assert_eq!(got, brute_force(&b, &a, JoinPredicate::Overlap));
    }

    #[test]
    fn plane_sweep_finds_same_pairs() {
        let a = random_items(500, 0.02, 5);
        let b = random_items(500, 0.02, 6);
        let ta = build(&a, 12);
        let tb = build(&b, 12);
        let nested = spatial_join_with(
            &ta,
            &tb,
            JoinConfig {
                order: MatchOrder::NestedLoop,
                ..JoinConfig::default()
            },
        );
        let sweep = spatial_join_with(
            &ta,
            &tb,
            JoinConfig {
                order: MatchOrder::PlaneSweep,
                ..JoinConfig::default()
            },
        );
        // NA is order-independent (same pair visits).
        assert_eq!(nested.na_total(), sweep.na_total());
        let mut p1 = nested.pairs;
        let mut p2 = sweep.pairs;
        p1.sort();
        p2.sort();
        assert_eq!(p1, p2);
    }

    #[test]
    fn distance_join_matches_brute_force() {
        let a = random_items(200, 0.01, 7);
        let b = random_items(200, 0.01, 8);
        let ta = build(&a, 8);
        let tb = build(&b, 8);
        let pred = JoinPredicate::WithinDistance(0.05);
        let mut got = spatial_join_with(
            &ta,
            &tb,
            JoinConfig {
                predicate: pred,
                ..JoinConfig::default()
            },
        )
        .pairs;
        got.sort();
        assert_eq!(got, brute_force(&a, &b, pred));
    }

    #[test]
    fn distance_join_plane_sweep_agrees() {
        let a = random_items(300, 0.01, 17);
        let b = random_items(300, 0.01, 18);
        let ta = build(&a, 8);
        let tb = build(&b, 8);
        let pred = JoinPredicate::WithinDistance(0.04);
        let mut nested = spatial_join_with(
            &ta,
            &tb,
            JoinConfig {
                predicate: pred,
                ..JoinConfig::default()
            },
        )
        .pairs;
        let mut sweep = spatial_join_with(
            &ta,
            &tb,
            JoinConfig {
                predicate: pred,
                order: MatchOrder::PlaneSweep,
                ..JoinConfig::default()
            },
        )
        .pairs;
        nested.sort();
        sweep.sort();
        assert_eq!(nested, sweep);
    }

    #[test]
    fn da_bounded_by_na_under_every_policy() {
        let a = random_items(1_000, 0.015, 9);
        let b = random_items(1_000, 0.015, 10);
        let ta = build(&a, 8);
        let tb = build(&b, 8);
        let mut last_pairs: Option<u64> = None;
        for policy in [
            BufferPolicy::None,
            BufferPolicy::Path,
            BufferPolicy::Lru(64),
        ] {
            let r = spatial_join_with(
                &ta,
                &tb,
                JoinConfig {
                    buffer: policy,
                    collect_pairs: false,
                    ..JoinConfig::default()
                },
            );
            assert!(r.da_total() <= r.na_total(), "{policy:?}");
            assert!(r.stats1.da_bounded_by_na());
            assert!(r.stats2.da_bounded_by_na());
            // Results are independent of buffering.
            if let Some(p) = last_pairs {
                assert_eq!(p, r.pair_count);
            }
            last_pairs = Some(r.pair_count);
        }
    }

    #[test]
    fn no_buffer_means_da_equals_na() {
        let a = random_items(500, 0.02, 11);
        let b = random_items(500, 0.02, 12);
        let ta = build(&a, 8);
        let tb = build(&b, 8);
        let r = spatial_join_with(
            &ta,
            &tb,
            JoinConfig {
                buffer: BufferPolicy::None,
                ..JoinConfig::default()
            },
        );
        assert_eq!(r.na_total(), r.da_total());
    }

    #[test]
    fn na_symmetric_between_trees() {
        // Each pair visit accesses one node of each tree, so the two
        // trees' NA tallies are identical (the paper's Eq 6 remark).
        let a = random_items(800, 0.02, 13);
        let b = random_items(400, 0.02, 14);
        let ta = build(&a, 8);
        let tb = build(&b, 8);
        if ta.height() == tb.height() {
            let r = spatial_join(&ta, &tb);
            assert_eq!(r.stats1.na_total(), r.stats2.na_total());
        }
    }

    #[test]
    fn lru_beats_path_beats_none() {
        let a = random_items(1_500, 0.01, 15);
        let b = random_items(1_500, 0.01, 16);
        let ta = build(&a, 8);
        let tb = build(&b, 8);
        let run = |policy| {
            spatial_join_with(
                &ta,
                &tb,
                JoinConfig {
                    buffer: policy,
                    collect_pairs: false,
                    ..JoinConfig::default()
                },
            )
            .da_total()
        };
        let none = run(BufferPolicy::None);
        let path = run(BufferPolicy::Path);
        let lru = run(BufferPolicy::Lru(512));
        assert!(path < none, "path {path} vs none {none}");
        assert!(lru <= path, "lru {lru} vs path {path}");
    }

    #[test]
    fn roots_are_not_counted() {
        // Two small trees of height 1: the join touches only the
        // (memory-resident) roots, so NA = DA = 0.
        let a = random_items(5, 0.8, 19);
        let b = random_items(5, 0.8, 20);
        let ta = build(&a, 8);
        let tb = build(&b, 8);
        assert_eq!(ta.height(), 1);
        let r = spatial_join(&ta, &tb);
        assert_eq!(r.na_total(), 0);
        assert_eq!(r.da_total(), 0);
        assert!(!r.pairs.is_empty(), "objects do overlap");
    }

    #[test]
    fn empty_tree_join_is_empty() {
        let empty = RTree::<2>::new(RTreeConfig::with_capacity(8));
        let b = build(&random_items(100, 0.05, 21), 8);
        let r = spatial_join(&empty, &b);
        assert_eq!(r.pair_count, 0);
        assert_eq!(r.na_total(), 0);
        let r = spatial_join(&b, &empty);
        assert_eq!(r.pair_count, 0);
    }

    #[test]
    fn pair_count_tracked_without_materialization() {
        let a = random_items(300, 0.03, 22);
        let b = random_items(300, 0.03, 23);
        let ta = build(&a, 8);
        let tb = build(&b, 8);
        let with = spatial_join(&ta, &tb);
        let without = spatial_join_with(
            &ta,
            &tb,
            JoinConfig {
                collect_pairs: false,
                ..JoinConfig::default()
            },
        );
        assert_eq!(with.pair_count, with.pairs.len() as u64);
        assert_eq!(with.pair_count, without.pair_count);
        assert!(without.pairs.is_empty());
    }

    #[test]
    fn paper_level_accessors() {
        let a = random_items(2_000, 0.01, 24);
        let b = random_items(2_000, 0.01, 25);
        let ta = build(&a, 8);
        let tb = build(&b, 8);
        let r = spatial_join(&ta, &tb);
        let h = ta.height();
        // Roots (paper level h) are never accessed.
        assert_eq!(r.na_at_paper_level(1, h), 0);
        // Leaf level (paper level 1) accessed plenty.
        assert!(r.na_at_paper_level(1, 1) > 0);
        assert!(r.da_at_paper_level(2, 1) <= r.na_at_paper_level(2, 1));
    }
}
