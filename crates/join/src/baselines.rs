//! Baseline join algorithms.
//!
//! * [`nested_loop_join`] — brute force over the object lists; the
//!   correctness oracle for every other algorithm and the "no index"
//!   baseline of the benchmarks.
//! * [`index_nested_loop_join`] — one window query per outer object, the
//!   way Aref & Samet \[AS94\] modeled a join as a set of range queries.
//!   Counting its node accesses shows why the synchronized traversal
//!   wins: the inner tree's upper levels are re-read once per outer
//!   object.

use sjcm_geom::Rect;
use sjcm_rtree::{ObjectId, RTree};

/// Brute-force nested loop over two object lists. O(|a|·|b|); use for
/// correctness checks and small baselines only.
pub fn nested_loop_join<const N: usize>(
    a: &[(Rect<N>, ObjectId)],
    b: &[(Rect<N>, ObjectId)],
) -> Vec<(ObjectId, ObjectId)> {
    let mut out = Vec::new();
    for &(r1, id1) in a {
        for &(r2, id2) in b {
            if r1.intersects(&r2) {
                out.push((id1, id2));
            }
        }
    }
    out
}

/// Result of an index-nested-loop join.
#[derive(Debug, Clone)]
pub struct IndexNestedLoopResult {
    /// Qualifying `(indexed object, probe object)` pairs.
    pub pairs: Vec<(ObjectId, ObjectId)>,
    /// Total node accesses over all probe queries, **including** the root
    /// access of each probe (each probe is an independent range query;
    /// its root read hits the buffer in practice, but NA counts logical
    /// accesses).
    pub node_accesses: u64,
}

/// Joins an indexed data set against a probe list by running one window
/// query per probe object.
pub fn index_nested_loop_join<const N: usize>(
    indexed: &RTree<N>,
    probes: &[(Rect<N>, ObjectId)],
) -> IndexNestedLoopResult {
    let mut pairs = Vec::new();
    let mut node_accesses = 0u64;
    for &(rect, probe_id) in probes {
        let (hits, visits) = indexed.query_window_counting(&rect);
        node_accesses += visits.iter().sum::<u64>();
        for hit in hits {
            pairs.push((hit, probe_id));
        }
    }
    IndexNestedLoopResult {
        pairs,
        node_accesses,
    }
}

#[cfg(test)]
mod tests {
    // `spatial_join` is the deprecated wrapper over `JoinSession`;
    // exercising it here doubles as wrapper coverage.
    #![allow(deprecated)]

    use super::*;
    use crate::executor::spatial_join;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sjcm_rtree::RTreeConfig;

    fn random_items(n: usize, side: f64, seed: u64) -> Vec<(Rect<2>, ObjectId)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let cx: f64 = rng.gen_range(0.0..1.0);
                let cy: f64 = rng.gen_range(0.0..1.0);
                (
                    Rect::centered(sjcm_geom::Point::new([cx, cy]), [side, side]),
                    ObjectId(i as u32),
                )
            })
            .collect()
    }

    #[test]
    fn all_three_algorithms_agree() {
        let a = random_items(400, 0.02, 1);
        let b = random_items(300, 0.02, 2);
        let mut ta = RTree::<2>::new(RTreeConfig::with_capacity(8));
        for &(r, id) in &a {
            ta.insert(r, id);
        }
        let mut tb = RTree::<2>::new(RTreeConfig::with_capacity(8));
        for &(r, id) in &b {
            tb.insert(r, id);
        }
        let mut brute = nested_loop_join(&a, &b);
        let mut inl = index_nested_loop_join(&ta, &b).pairs;
        let mut sj = spatial_join(&ta, &tb).pairs;
        brute.sort();
        inl.sort();
        sj.sort();
        assert_eq!(brute, inl);
        assert_eq!(brute, sj);
    }

    #[test]
    fn synchronized_traversal_beats_index_nested_loop_on_io() {
        let a = random_items(3_000, 0.01, 3);
        let b = random_items(3_000, 0.01, 4);
        let mut ta = RTree::<2>::new(RTreeConfig::with_capacity(16));
        for &(r, id) in &a {
            ta.insert(r, id);
        }
        let mut tb = RTree::<2>::new(RTreeConfig::with_capacity(16));
        for &(r, id) in &b {
            tb.insert(r, id);
        }
        let inl = index_nested_loop_join(&ta, &b);
        let sj = spatial_join(&ta, &tb);
        assert!(
            sj.na_total() < inl.node_accesses,
            "SJ {} vs INL {}",
            sj.na_total(),
            inl.node_accesses
        );
    }

    #[test]
    fn empty_inputs() {
        let a = random_items(10, 0.05, 5);
        assert!(nested_loop_join::<2>(&a, &[]).is_empty());
        assert!(nested_loop_join::<2>(&[], &a).is_empty());
        let tree = RTree::<2>::new(RTreeConfig::with_capacity(8));
        let r = index_nested_loop_join(&tree, &a);
        assert!(r.pairs.is_empty());
        // Each probe still reads the (empty) root once.
        assert_eq!(r.node_accesses, a.len() as u64);
    }
}
