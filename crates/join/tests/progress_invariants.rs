//! Progress-engine invariants across the whole executor surface: the
//! reported fraction is monotone non-decreasing, lands at exactly 1.0
//! when the join finishes (including under permanent leaf loss, where
//! the forfeited Eq-6 work is retired from the denominator instead of
//! stranding the bar below 1), and enabling progress never changes the
//! join's answer — pairs, NA and DA are byte-identical with the
//! tracker on or off. The fixed-seed paper-scale run additionally
//! checks the ETA acceptance gate: at a quarter of the run, the
//! engine's blended total-work estimate sits within 20% of the true
//! final work for both the sequential and the cost-guided executor.

use proptest::prelude::*;
use sjcm_core::{join, LevelParams, TreeParams};
use sjcm_join::{JoinConfig, JoinObs, JoinSession, MatchOrder, Scheduler};
use sjcm_obs::{LevelPrior, ProgressEngine, ProgressSnapshot, ProgressTracker};
use sjcm_rtree::{BulkLoad, ObjectId, RTree, RTreeConfig};
use sjcm_storage::{FaultInjector, FaultPlan, RetryPolicy};

fn build_uniform(n: usize, density: f64, seed: u64) -> RTree<2> {
    let rects = sjcm_datagen::uniform::generate::<2>(sjcm_datagen::uniform::UniformConfig::new(
        n, density, seed,
    ));
    let items: Vec<_> = rects
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, ObjectId(i as u32)))
        .collect();
    RTree::bulk_load(RTreeConfig::paper(2), items, BulkLoad::Str, 0.67)
}

/// Measured tree parameters, the same way the experiment harness feeds
/// the drift monitor — the progress prior should see what the model
/// sees, not what the generator intended.
fn measured(tree: &RTree<2>) -> TreeParams<2> {
    let stats = tree.stats();
    let levels = stats
        .levels
        .iter()
        .map(|l| {
            let mut extents = [0.0; 2];
            extents.copy_from_slice(&l.avg_extents);
            LevelParams {
                nodes: l.node_count as f64,
                extents,
                density: l.density,
            }
        })
        .collect();
    TreeParams::from_levels(levels)
}

fn priors(t1: &RTree<2>, t2: &RTree<2>) -> Vec<LevelPrior> {
    join::join_na_priors(&measured(t1), &measured(t2))
        .into_iter()
        .map(|(tree, level, na)| LevelPrior { tree, level, na })
        .collect()
}

/// Runs `run` against an enabled tracker while this thread samples the
/// engine as fast as it can; returns the run's result plus the sampled
/// stream, whose last snapshot is taken after the join returned (so
/// `finish()` has been observed).
fn watch<R: Send>(
    priors: &[LevelPrior],
    run: impl FnOnce(&ProgressTracker) -> R + Send,
) -> (R, Vec<ProgressSnapshot>) {
    let tracker = ProgressTracker::enabled();
    let mut engine = ProgressEngine::new(&tracker, priors);
    let mut snaps = Vec::new();
    let result = std::thread::scope(|s| {
        let t = &tracker;
        let worker = s.spawn(move || run(t));
        while !worker.is_finished() {
            snaps.push(engine.sample());
            std::thread::sleep(std::time::Duration::from_micros(500));
        }
        worker.join().expect("join worker panicked")
    });
    snaps.push(engine.sample());
    (result, snaps)
}

/// The stream contract `validate_progress_jsonl` enforces on disk,
/// asserted in-process: monotone time and fraction, bounded fractions,
/// and a final snapshot that is finished at exactly 1.0.
fn assert_stream(snaps: &[ProgressSnapshot], tag: &str) {
    for w in snaps.windows(2) {
        assert!(w[1].t_us >= w[0].t_us, "{tag}: time went backwards");
        assert!(
            w[1].fraction >= w[0].fraction,
            "{tag}: fraction regressed {} -> {}",
            w[0].fraction,
            w[1].fraction
        );
    }
    for s in snaps {
        assert!(
            (0.0..=1.0).contains(&s.fraction),
            "{tag}: fraction {} out of bounds",
            s.fraction
        );
    }
    let last = snaps.last().expect("at least the post-join sample");
    assert!(last.finished, "{tag}: stream must end finished");
    assert_eq!(
        last.fraction, 1.0,
        "{tag}: final fraction must be exactly 1"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // Every scheduler × matching order × thread count: the stream
    // contract holds and the answer is byte-identical to the
    // progress-off run.
    #[test]
    fn progress_is_monotone_terminal_and_invisible(
        seed in 0u64..200,
        threads in 1usize..5,
        cost_guided in any::<bool>(),
        sweep in any::<bool>(),
    ) {
        let t1 = build_uniform(1500, 0.5, seed.wrapping_mul(2).wrapping_add(11));
        let t2 = build_uniform(1500, 0.5, seed.wrapping_mul(2).wrapping_add(12));
        let config = JoinConfig {
            order: if sweep { MatchOrder::PlaneSweep } else { MatchOrder::NestedLoop },
            ..JoinConfig::default()
        };
        let sched = if cost_guided {
            Scheduler::CostGuided { threads }
        } else {
            Scheduler::RoundRobin { threads }
        };

        let off = JoinSession::new(&t1, &t2)
            .config(config)
            .scheduler(sched)
            .run()
            .expect("ungoverned join cannot fail")
            .result;
        let pr = priors(&t1, &t2);
        let (on, snaps) = watch(&pr, |tracker| {
            JoinSession::new(&t1, &t2)
                .config(config)
                .scheduler(sched)
                .observe(&JoinObs {
                    progress: tracker.clone(),
                    ..JoinObs::default()
                })
                .run()
                .expect("ungoverned join cannot fail")
                .result
        });

        assert_stream(&snaps, &format!("{sched:?}"));
        prop_assert_eq!(&on.pairs, &off.pairs, "progress changed the pairs");
        prop_assert_eq!(on.pair_count, off.pair_count);
        prop_assert_eq!(on.stats1, off.stats1, "progress changed tree-1 NA/DA");
        prop_assert_eq!(on.stats2, off.stats2, "progress changed tree-2 NA/DA");
        // The counters the stream saw are the executor's own.
        let last = snaps.last().unwrap();
        prop_assert_eq!(last.na_done, off.na_total());
        prop_assert_eq!(last.pairs, off.pair_count);
    }

    // Permanent leaf loss: the forfeit path retires the skipped
    // subtrees' Eq-6 work from the denominator, so the bar still ends
    // at exactly 1.0 instead of stalling at the surviving fraction.
    #[test]
    fn progress_finishes_at_one_under_leaf_loss(
        seed in 0u64..200,
        threads in 1usize..4,
        loss in 0.01f64..0.08,
    ) {
        let t1 = build_uniform(1500, 0.5, seed.wrapping_mul(2).wrapping_add(21));
        let t2 = build_uniform(1500, 0.5, seed.wrapping_mul(2).wrapping_add(22));
        let config = JoinConfig::default();
        let pr = priors(&t1, &t2);
        let (degraded, snaps) = watch(&pr, |tracker| {
            JoinSession::new(&t1, &t2)
                .config(config)
                .scheduler(Scheduler::CostGuided { threads })
                .observe(&JoinObs { progress: tracker.clone(), ..JoinObs::default() })
                .faults(&FaultInjector::enabled(
                    FaultPlan::none(seed).with_loss_at_level(loss, 0),
                    RetryPolicy::default(),
                ))
                .run()
                .expect("no worker may die")
        });
        assert_stream(&snaps, "leaf-loss");
        let last = snaps.last().unwrap();
        if !degraded.skips.is_empty() {
            prop_assert!(last.forfeited_work > 0.0, "skips must retire work");
        }
    }
}

/// The paper-scale acceptance gate (fixed seeds, 60K × 60K, D = 0.5):
/// the stream contract holds for the sequential and the cost-guided
/// executor, and at the first sample past a quarter of the run the
/// blended total-work estimate — still prior-leaning there — is within
/// 20% of the true final work.
#[test]
fn paper_scale_eta_lands_within_twenty_percent_at_a_quarter() {
    let t1 = build_uniform(60_000, 0.5, 9600);
    let t2 = build_uniform(60_000, 0.5, 9601);
    let config = JoinConfig {
        collect_pairs: false,
        ..JoinConfig::default()
    };
    let pr = priors(&t1, &t2);
    for (tag, threads) in [("sequential", 1usize), ("cost-guided", 4)] {
        let (result, snaps) = watch(&pr, |tracker| {
            JoinSession::new(&t1, &t2)
                .config(config)
                .scheduler(Scheduler::CostGuided { threads })
                .observe(&JoinObs {
                    progress: tracker.clone(),
                    ..JoinObs::default()
                })
                .run()
                .expect("ungoverned join cannot fail")
                .result
        });
        assert_stream(&snaps, tag);
        let true_work = snaps.last().unwrap().done_work;
        assert_eq!(true_work as u64, result.na_total(), "{tag}");
        let quarter = snaps
            .iter()
            .find(|s| s.fraction >= 0.25)
            .unwrap_or_else(|| panic!("{tag}: no sample at a quarter ({} samples)", snaps.len()));
        let rel = (quarter.est_total_work - true_work).abs() / true_work;
        eprintln!(
            "{tag}: {} samples, est at fraction {:.3} = {:.0} vs true {:.0} (rel err {:.3})",
            snaps.len(),
            quarter.fraction,
            quarter.est_total_work,
            true_work,
            rel
        );
        assert!(
            rel < 0.20,
            "{tag}: quarter-run estimate {:.0} vs true {:.0} (rel err {rel:.3})",
            quarter.est_total_work,
            true_work
        );
    }
}
