//! Fault containment across the join pipeline: the fallible `try_*`
//! twins must (a) be bit-identical to the infallible executors when no
//! injector is armed, (b) absorb transient faults within the retry
//! budget invisibly, and (c) contain permanent page loss — forfeiting
//! only the affected subtree pairs, identically for the sequential
//! executor and both parallel schedulers at any thread count.

use proptest::prelude::*;
use sjcm_join::{
    DegradedJoinResult, Governor, GovernorConfig, JoinConfig, JoinResultSet, JoinSession, Scheduler,
};
use sjcm_rtree::{BulkLoad, ObjectId, RTree, RTreeConfig};
use sjcm_storage::{FaultInjector, FaultPlan, RetryPolicy};

/// Session-API shorthand: an ungoverned, unfaulted join.
fn join(t1: &RTree<2>, t2: &RTree<2>, config: JoinConfig, sched: Scheduler) -> JoinResultSet {
    JoinSession::new(t1, t2)
        .config(config)
        .scheduler(sched)
        .run()
        .expect("ungoverned join cannot fail")
        .result
}

/// Session-API shorthand: a faulted and/or governed join (completes
/// degraded rather than failing).
fn try_join(
    t1: &RTree<2>,
    t2: &RTree<2>,
    config: JoinConfig,
    sched: Scheduler,
    faults: &FaultInjector,
    gov: &Governor,
) -> DegradedJoinResult<2> {
    JoinSession::new(t1, t2)
        .config(config)
        .scheduler(sched)
        .faults(faults)
        .govern(gov)
        .run()
        .expect("faulted/governed runs complete degraded, they do not fail")
}

fn build_uniform(n: usize, density: f64, seed: u64) -> RTree<2> {
    let rects = sjcm_datagen::uniform::generate::<2>(sjcm_datagen::uniform::UniformConfig::new(
        n, density, seed,
    ));
    let items: Vec<_> = rects
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, ObjectId(i as u32)))
        .collect();
    RTree::bulk_load(RTreeConfig::paper(2), items, BulkLoad::Str, 0.67)
}

fn sorted_pairs(r: &sjcm_join::JoinResultSet) -> Vec<(ObjectId, ObjectId)> {
    let mut p = r.pairs.clone();
    p.sort_unstable();
    p
}

/// Runs all three execution strategies under fresh injectors armed with
/// the same plan, so their fault state starts identically.
fn run_all(
    t1: &RTree<2>,
    t2: &RTree<2>,
    config: JoinConfig,
    plan: FaultPlan,
) -> [DegradedJoinResult<2>; 3] {
    let seq = try_join(
        t1,
        t2,
        config,
        Scheduler::Sequential,
        &FaultInjector::enabled(plan, RetryPolicy::default()),
        &Governor::unlimited(),
    );
    let cg = try_join(
        t1,
        t2,
        config,
        Scheduler::CostGuided { threads: 4 },
        &FaultInjector::enabled(plan, RetryPolicy::default()),
        &Governor::unlimited(),
    );
    let rr = try_join(
        t1,
        t2,
        config,
        Scheduler::RoundRobin { threads: 3 },
        &FaultInjector::enabled(plan, RetryPolicy::default()),
        &Governor::unlimited(),
    );
    [seq, cg, rr]
}

#[test]
fn disabled_injector_matches_infallible_twins_exactly() {
    let t1 = build_uniform(4000, 0.5, 71);
    let t2 = build_uniform(4000, 0.5, 72);
    let config = JoinConfig::default();

    let seq = join(&t1, &t2, config, Scheduler::Sequential);
    let try_seq = try_join(
        &t1,
        &t2,
        config,
        Scheduler::Sequential,
        &FaultInjector::disabled(),
        &Governor::unlimited(),
    );
    assert!(try_seq.is_exact());
    assert_eq!(try_seq.faults.injected(), 0);
    assert_eq!(try_seq.result.pairs, seq.pairs, "same emission order too");
    assert_eq!(try_seq.result.pair_count, seq.pair_count);
    assert_eq!(try_seq.result.stats1, seq.stats1);
    assert_eq!(try_seq.result.stats2, seq.stats2);

    for sched in [
        Scheduler::CostGuided { threads: 3 },
        Scheduler::RoundRobin { threads: 3 },
    ] {
        let plain = join(&t1, &t2, config, sched);
        let twin = try_join(
            &t1,
            &t2,
            config,
            sched,
            &FaultInjector::disabled(),
            &Governor::unlimited(),
        );
        assert!(twin.is_exact());
        assert_eq!(twin.result.pairs, plain.pairs, "{sched:?}");
        assert_eq!(twin.result.na_total(), plain.na_total(), "{sched:?}");
        assert_eq!(twin.result.da_total(), plain.da_total(), "{sched:?}");
        assert_eq!(twin.result.workers.len(), plain.workers.len());
    }
}

#[test]
fn transient_faults_within_budget_are_invisible() {
    let t1 = build_uniform(5000, 0.5, 81);
    let t2 = build_uniform(5000, 0.5, 82);
    let config = JoinConfig::default();
    // Budget 2 ≤ the default 3 retries: every fault heals under retry.
    let plan = FaultPlan::none(4242).with_transient(0.35, 2);

    let clean = join(&t1, &t2, config, Scheduler::Sequential);
    let clean_pairs = sorted_pairs(&clean);
    let [seq, cg, rr] = run_all(&t1, &t2, config, plan);

    for (name, d) in [("seq", &seq), ("cost-guided", &cg), ("round-robin", &rr)] {
        assert!(d.is_exact(), "{name}: no pair may be forfeited");
        assert_eq!(sorted_pairs(&d.result), clean_pairs, "{name}");
        assert_eq!(d.result.na_total(), clean.na_total(), "{name}");
        assert!(d.faults.injected() > 0, "{name}: the plan must bite");
        assert_eq!(d.faults.quarantined, 0, "{name}");
        assert_eq!(d.faults.recovery_rate(), Some(1.0), "{name}");
    }
    // The injector's totals are thread-order independent: all three
    // strategies probe the same multiset of page reads.
    assert_eq!(seq.faults, cg.faults);
    assert_eq!(seq.faults, rr.faults);
    // DA under the path buffer is exactly the fault-free sequential DA.
    assert_eq!(seq.result.da_total(), clean.da_total());
}

#[test]
fn permanent_loss_is_contained_and_identical_across_schedulers() {
    let t1 = build_uniform(8000, 0.5, 91);
    let t2 = build_uniform(8000, 0.5, 92);
    let config = JoinConfig::default();
    // Lose ~3% of leaf pages (level 0 only), permanently.
    let plan = FaultPlan::none(777).with_loss_at_level(0.03, 0);

    let clean = join(&t1, &t2, config, Scheduler::Sequential);
    let clean_pairs = sorted_pairs(&clean);
    let [seq, cg, rr] = run_all(&t1, &t2, config, plan);

    assert!(!seq.is_exact(), "the plan must lose at least one page");
    // Containment determinism: the forfeited inventory and the degraded
    // answer are identical for every strategy.
    assert_eq!(seq.skips, cg.skips);
    assert_eq!(seq.skips, rr.skips);
    assert_eq!(sorted_pairs(&seq.result), sorted_pairs(&cg.result));
    assert_eq!(sorted_pairs(&seq.result), sorted_pairs(&rr.result));
    assert_eq!(seq.result.na_total(), cg.result.na_total());
    assert_eq!(seq.result.na_total(), rr.result.na_total());
    assert_eq!(seq.faults.injected_loss, cg.faults.injected_loss);
    assert_eq!(seq.faults.quarantined, cg.faults.quarantined);
    assert_eq!(seq.faults.quarantine_hits, rr.faults.quarantine_hits);

    // The degraded answer is a subset of the exact one, and every skip
    // is priced.
    let degraded = sorted_pairs(&seq.result);
    assert!(degraded.len() < clean_pairs.len());
    let mut i = 0;
    for p in &degraded {
        while i < clean_pairs.len() && clean_pairs[i] < *p {
            i += 1;
        }
        assert!(
            i < clean_pairs.len() && clean_pairs[i] == *p,
            "degraded result may not invent pairs: {p:?}"
        );
    }
    for s in &seq.skips {
        assert!(s.tree == 1 || s.tree == 2);
        assert_eq!(s.level, 0, "loss was restricted to the leaf level");
        assert!(s.est_na > 0.0, "a forfeited pair always forfeits accesses");
        assert!(s.est_pairs >= 0.0);
    }

    // Forfeit-estimate quality at this modest scale: the Eq-3-style
    // estimate of lost pairs should land in the right ballpark of the
    // true delta (the tight 15% gate runs at paper scale in the chaos
    // experiment).
    let true_delta = (clean.pair_count - seq.result.pair_count) as f64;
    let est = seq.forfeited_pairs();
    eprintln!(
        "lost pairs: true {true_delta}, estimated {est:.1}, \
         skips {}, forfeited NA {:.1}",
        seq.skips.len(),
        seq.forfeited_na()
    );
    assert!(true_delta > 0.0);
    let rel = (est - true_delta).abs() / true_delta;
    assert!(
        rel < 0.5,
        "estimate {est:.1} vs true {true_delta} (rel err {rel:.3})"
    );
    // And the decision-support helper is coherent with the numbers.
    let frac = seq.forfeited_fraction();
    assert!(frac > 0.0 && frac < 1.0);
    assert!(seq.within_envelope(frac + 1e-9));
    assert!(!seq.within_envelope(frac - 1e-9));
}

#[test]
fn exhausted_transient_budget_quarantines_and_degrades() {
    let t1 = build_uniform(3000, 0.5, 101);
    let t2 = build_uniform(3000, 0.5, 102);
    let config = JoinConfig::default();
    // Budget 9 > 3 retries: an affected page fails its first probe
    // (4 attempts), is quarantined, and every later probe fails fast.
    let plan = FaultPlan::none(31).with_transient(0.02, 9);
    let [seq, cg, rr] = run_all(&t1, &t2, config, plan);

    assert!(!seq.is_exact());
    assert!(seq.faults.quarantined > 0);
    assert!(seq.faults.recovery_rate().unwrap_or(1.0) < 1.0);
    assert_eq!(seq.skips, cg.skips);
    assert_eq!(seq.skips, rr.skips);
    assert_eq!(seq.result.pair_count, cg.result.pair_count);
    assert_eq!(seq.result.pair_count, rr.result.pair_count);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Satellite: a trace recorded under injected transient faults (all
    // within the retry budget) still satisfies the replay exactness
    // gate — retries are invisible to the access stream, so offline
    // re-simulation reproduces the live DA verdicts bit-for-bit.
    #[test]
    fn recorded_trace_under_transient_faults_replays_exactly(
        seed in 0u64..500,
        rate in 0.05f64..0.9,
        budget in 1u32..3,
        threads in 1usize..4,
    ) {
        let t1 = build_uniform(1200, 0.5, seed.wrapping_mul(2).wrapping_add(1));
        let t2 = build_uniform(1200, 0.5, seed.wrapping_mul(2).wrapping_add(2));
        let config = JoinConfig::default();
        let recorder = sjcm_storage::FlightRecorder::enabled();
        let obs = sjcm_join::JoinObs {
            recorder: recorder.clone(),
            ..sjcm_join::JoinObs::default()
        };
        let faults = FaultInjector::enabled(
            FaultPlan::none(seed).with_transient(rate, budget),
            RetryPolicy::default(),
        );
        let live = JoinSession::new(&t1, &t2)
            .config(config)
            .scheduler(Scheduler::CostGuided { threads })
            .observe(&obs)
            .faults(&faults)
            .run()
            .expect("no worker may die");
        prop_assert!(live.is_exact());
        prop_assert_eq!(live.faults.recovery_rate().unwrap_or(1.0), 1.0);

        let trace = recorder.into_trace(sjcm_storage::RecordedPolicy::Path, 0.0, 0.0);
        prop_assert_eq!(trace.dropped, 0);
        prop_assert_eq!(trace.events.len() as u64, live.result.na_total());
        let out = sjcm_storage::replay(&trace.events, sjcm_storage::RecordedPolicy::Path);
        prop_assert_eq!(out.kind_mismatches, 0);
        prop_assert_eq!(out.da_total(), live.result.da_total());
    }

    // Governor satellite: cancellation determinism. A run cancelled at
    // unit k forfeits the same subtree inventory — and retains the same
    // pair set — on the sequential executor and on both parallel
    // schedulers at any thread count, because governed runs gate by
    // global unit ordinal, not by whichever thread got there first.
    #[test]
    fn cancellation_at_unit_k_is_scheduler_and_thread_invariant(
        seed in 0u64..200,
        k in 0u64..12,
        threads in 2usize..5,
    ) {
        let t1 = build_uniform(1500, 0.5, seed.wrapping_mul(2).wrapping_add(11));
        let t2 = build_uniform(1500, 0.5, seed.wrapping_mul(2).wrapping_add(12));
        let config = JoinConfig::default();
        let cancel_at = |k| GovernorConfig::default().with_cancel_after_units(k);
        let baseline = try_join(
            &t1, &t2, config, Scheduler::Sequential,
            &FaultInjector::disabled(),
            &Governor::new(cancel_at(k)),
        );
        for sched in [
            Scheduler::RoundRobin { threads },
            Scheduler::CostGuided { threads },
        ] {
            let gov = Governor::new(cancel_at(k));
            let d = try_join(
                &t1, &t2, config, sched, &FaultInjector::disabled(), &gov,
            );
            prop_assert_eq!(
                &d.skips, &baseline.skips,
                "inventory diverged: {} threads {:?}", threads, sched
            );
            prop_assert_eq!(sorted_pairs(&d.result), sorted_pairs(&baseline.result));
            prop_assert_eq!(d.result.pair_count, baseline.result.pair_count);
        }
    }
}
