//! The cost-guided scheduler's acceptance test: on a 60K × 60K uniform
//! 2-D join with 4 workers, pricing work units with the paper's Eq-6
//! formula (plus LPT seeding and work stealing) must yield a measurably
//! better-balanced execution than the legacy static round-robin
//! sharding — while remaining indistinguishable from the sequential
//! join in its pair output and NA tally.

use sjcm_join::{JoinConfig, JoinResultSet, JoinSession, Scheduler};
use sjcm_rtree::{BulkLoad, ObjectId, RTree, RTreeConfig};

fn join(t1: &RTree<2>, t2: &RTree<2>, config: JoinConfig, sched: Scheduler) -> JoinResultSet {
    JoinSession::new(t1, t2)
        .config(config)
        .scheduler(sched)
        .run()
        .expect("ungoverned join cannot fail")
        .result
}

fn build_uniform(n: usize, density: f64, seed: u64) -> RTree<2> {
    let rects = sjcm_datagen::uniform::generate::<2>(sjcm_datagen::uniform::UniformConfig::new(
        n, density, seed,
    ));
    let items: Vec<_> = rects
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, ObjectId(i as u32)))
        .collect();
    RTree::bulk_load(RTreeConfig::paper(2), items, BulkLoad::Str, 0.67)
}

#[test]
fn cost_guided_beats_round_robin_at_60k() {
    let t1 = build_uniform(60_000, 0.5, 4242);
    let t2 = build_uniform(60_000, 0.5, 2424);
    let config = JoinConfig {
        collect_pairs: false,
        ..JoinConfig::default()
    };
    let threads = 4;

    let seq = join(&t1, &t2, config, Scheduler::Sequential);
    let rr = join(&t1, &t2, config, Scheduler::RoundRobin { threads });
    let cg = join(&t1, &t2, config, Scheduler::CostGuided { threads });

    // Fidelity: both schedules visit exactly the sequential node pairs
    // and produce exactly the sequential result.
    assert_eq!(rr.na_total(), seq.na_total());
    assert_eq!(cg.na_total(), seq.na_total());
    assert_eq!(rr.pair_count, seq.pair_count);
    assert_eq!(cg.pair_count, seq.pair_count);
    assert!(rr.da_total() >= seq.da_total());
    assert!(cg.da_total() >= seq.da_total());

    // Balance: the whole point of pricing units with Eq 6.
    let rr_imb = cg_check(&rr, threads);
    let cg_imb = cg_check(&cg, threads);
    eprintln!("imbalance: round-robin {rr_imb:.3}, cost-guided {cg_imb:.3}");
    assert!(
        cg_imb < rr_imb - 0.05,
        "cost-guided imbalance {cg_imb:.3} should be measurably below \
         round-robin {rr_imb:.3}"
    );
    // And not merely relatively better: an LPT schedule over a couple
    // hundred units should land close to perfect balance. The residual
    // (measured: 1.154) is pricing error — the planned split is
    // deterministic, so this bound is tight, not a noise margin.
    assert!(
        cg_imb < 1.2,
        "cost-guided imbalance {cg_imb:.3} should be near 1.0"
    );
}

/// Sanity-checks the tally shape and returns the NA imbalance.
fn cg_check(result: &sjcm_join::JoinResultSet, threads: usize) -> f64 {
    assert_eq!(result.workers.len(), threads);
    let worker_na: u64 = result.workers.iter().map(|w| w.na).sum();
    assert!(worker_na > 0);
    assert!(worker_na <= result.na_total());
    let imb = result.na_imbalance();
    assert!(imb >= 1.0);
    imb
}
