//! The flight recorder's acceptance test on the paper's workload: a
//! fixed-seed 60K × 60K uniform 2-D join, recorded page-by-page, then
//! replayed offline.
//!
//! Pinned guarantees:
//!
//! * recording is free of observable side effects — the recorded run's
//!   pairs and counters equal the unobserved run's;
//! * replaying the trace through the policy it was recorded under
//!   (the paper's path buffer) reproduces the live DA counters
//!   *exactly* — identical totals and identical per-level splits, with
//!   zero hit/miss verdict mismatches;
//! * the Mattson stack-distance LRU sweep is monotone non-increasing
//!   in buffer capacity (the inclusion property), agrees with
//!   brute-force LRU re-simulation at spot capacities, and bottoms out
//!   at the compulsory cold-miss floor;
//! * the binary serialization round-trips the full 60K trace.

use sjcm_join::{JoinConfig, JoinObs, JoinSession, Scheduler};
use sjcm_rtree::{BulkLoad, ObjectId, RTree, RTreeConfig};
use sjcm_storage::{AccessTrace, FlightRecorder, RecordedPolicy, StackDistance};

fn build_uniform(n: usize, density: f64, seed: u64) -> RTree<2> {
    let rects = sjcm_datagen::uniform::generate::<2>(sjcm_datagen::uniform::UniformConfig::new(
        n, density, seed,
    ));
    let items: Vec<_> = rects
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, ObjectId(i as u32)))
        .collect();
    RTree::bulk_load(RTreeConfig::paper(2), items, BulkLoad::Str, 0.67)
}

#[test]
fn recorded_60k_trace_replays_exactly_and_lru_sweep_is_monotone() {
    let t1 = build_uniform(60_000, 0.5, 4242);
    let t2 = build_uniform(60_000, 0.5, 2424);
    let config = JoinConfig {
        collect_pairs: false,
        ..JoinConfig::default()
    };
    let threads = 4;

    let plain = JoinSession::new(&t1, &t2)
        .config(config)
        .scheduler(Scheduler::CostGuided { threads })
        .run()
        .expect("ungoverned join cannot fail")
        .result;
    let recorder = FlightRecorder::enabled();
    let obs = JoinObs {
        recorder: recorder.clone(),
        ..JoinObs::default()
    };
    let live = JoinSession::new(&t1, &t2)
        .config(config)
        .scheduler(Scheduler::CostGuided { threads })
        .observe(&obs)
        .run()
        .expect("ungoverned join cannot fail")
        .result;

    // Recording must not perturb the join.
    assert_eq!(live.pair_count, plain.pair_count);
    assert_eq!(live.na_total(), plain.na_total());
    assert_eq!(live.da_total(), plain.da_total());

    let trace = recorder.into_trace(RecordedPolicy::Path, 0.0, 0.0);
    assert_eq!(trace.dropped, 0, "60K workload must fit the ring");
    assert_eq!(trace.events.len() as u64, live.na_total());

    // Exact reproduction of the live DA counters: totals AND the
    // per-level splits, via the per-domain path-buffer re-simulation.
    let out = sjcm_storage::replay(&trace.events, RecordedPolicy::Path);
    assert_eq!(out.kind_mismatches, 0, "no hit/miss verdict may diverge");
    assert_eq!(out.stats1, live.stats1, "tree 1 per-level NA/DA splits");
    assert_eq!(out.stats2, live.stats2, "tree 2 per-level NA/DA splits");
    assert_eq!(out.da_total(), live.da_total());

    // The LRU what-if curve from one Mattson scan: monotone
    // non-increasing in capacity, floored at the cold misses.
    let sd = StackDistance::analyze(&trace.events);
    assert_eq!(sd.total(), live.na_total());
    let sat = sd.saturating_capacity();
    assert!(sat >= 1);
    let mut prev = sd.misses_at(0);
    assert_eq!(prev, live.na_total(), "capacity 0 caches nothing");
    for cap in 1..=sat + 1 {
        let cur = sd.misses_at(cap);
        assert!(
            cur <= prev,
            "DA must not grow with buffer size: {cur} > {prev} at capacity {cap}"
        );
        prev = cur;
    }
    assert_eq!(sd.misses_at(sat), sd.cold_misses());
    assert_eq!(sd.misses_at(sat + 100), sd.cold_misses());

    // Mattson vs brute-force LRU at spot capacities.
    for cap in [1u32, 16, 256] {
        let brute = sjcm_storage::replay(&trace.events, RecordedPolicy::Lru(cap));
        assert_eq!(
            brute.da_total(),
            sd.misses_at(cap as usize),
            "Mattson and brute-force LRU({cap}) disagree"
        );
    }

    // Binary round-trip of the full trace.
    let decoded = AccessTrace::from_bytes(&trace.to_bytes()).expect("round-trip");
    assert_eq!(decoded, trace);
}
