//! The batched-kernel fidelity suite: the SoA kernels of `sjcm-geom`
//! must be **byte-identical** to the scalar predicates they replace —
//! same qualifying pairs, same order, same NA/DA tallies — on
//! adversarial coordinates (touching boundaries, ±0.0, degenerate
//! rectangles, f32-outward-rounded values straight from the page
//! format) and on the 60K fixed-seed workload under every scheduler.

use proptest::prelude::*;
use sjcm_geom::{unit_grid_cell, OverlapMask, Point, Rect, RectBatch};
use sjcm_join::pbsm::PbsmResult;
use sjcm_join::{
    JoinConfig, JoinError, JoinPredicate, JoinResultSet, JoinSession, MatchKernel, MatchOrder,
    PbsmSession, Scheduler,
};
use sjcm_rtree::{BulkLoad, ObjectId, RTree, RTreeConfig};
use sjcm_storage::{DiskEntry, DiskNode, DEFAULT_PAGE_SIZE};

/// Session-API shorthand: an ungoverned, unfaulted join.
fn join(r1: &RTree<2>, r2: &RTree<2>, config: JoinConfig, scheduler: Scheduler) -> JoinResultSet {
    JoinSession::new(r1, r2)
        .config(config)
        .scheduler(scheduler)
        .run()
        .expect("ungoverned join cannot fail")
        .result
}

/// Session-API shorthand: an ungoverned PBSM join.
fn pbsm(
    left: &[(Rect<2>, ObjectId)],
    right: &[(Rect<2>, ObjectId)],
    grid: usize,
    page_capacity: usize,
    kernel: MatchKernel,
) -> PbsmResult {
    PbsmSession::new(left, right, grid, page_capacity)
        .kernel(kernel)
        .run()
        .expect("ungoverned PBSM cannot fail")
        .result
}

// ---------------------------------------------------------------------
// Adversarial-coordinate strategies.
// ---------------------------------------------------------------------

/// One coordinate, biased toward the values that break naive overlap
/// code: exact boundary/touching values, signed zero, and coordinates
/// that went through the page format's f32 outward rounding.
fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        3 => 0.0f64..1.0,
        1 => Just(0.0f64),
        1 => Just(-0.0f64),
        1 => Just(0.25f64),
        1 => Just(0.5f64),
        1 => Just(1.0f64),
        // f32-truncated: the same value class the page decoder returns.
        2 => (0.0f64..1.0).prop_map(|x| f64::from(x as f32).clamp(0.0, 1.0)),
    ]
}

/// A rectangle from adversarial corners; ~1 in 5 is degenerate (zero
/// extent in at least one dimension).
fn rect2() -> impl Strategy<Value = Rect<2>> {
    (coord(), coord(), coord(), coord(), 0u32..5).prop_map(|(ax, ay, bx, by, degen)| {
        let (bx, by) = if degen == 0 { (ax, ay) } else { (bx, by) };
        Rect::from_corners(Point::new([ax, ay]), Point::new([bx, by]))
    })
}

/// Round-trips a rectangle through the disk page format, returning the
/// f32-outward-rounded rectangle a reader would see.
fn page_roundtrip(r: Rect<2>) -> Rect<2> {
    let node = DiskNode::<2> {
        level: 0,
        entries: vec![DiskEntry { rect: r, child: 0 }],
    };
    let bytes = node.encode(DEFAULT_PAGE_SIZE).expect("one entry fits");
    DiskNode::<2>::decode(&bytes)
        .expect("own encoding decodes")
        .entries[0]
        .rect
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn overlap_mask_agrees_with_scalar_intersects(
        q in rect2(),
        rects in prop::collection::vec(rect2(), 1..150),
    ) {
        let batch: RectBatch<2> = rects.iter().copied().collect();
        let mut mask = OverlapMask::new();
        batch.overlap_mask(&q, 0, batch.len(), &mut mask);
        for (i, r) in rects.iter().enumerate() {
            prop_assert_eq!(mask.get(i), q.intersects(r), "i={} q={:?} r={:?}", i, q, r);
        }
    }

    #[test]
    fn overlap_mask_agrees_on_page_rounded_coords(
        q in rect2(),
        rects in prop::collection::vec(rect2(), 1..80),
    ) {
        // The exact coordinate class the join sees after reading pages:
        // f32 lows rounded down, f32 highs rounded up.
        let q = page_roundtrip(q);
        let rects: Vec<Rect<2>> = rects.into_iter().map(page_roundtrip).collect();
        let batch: RectBatch<2> = rects.iter().copied().collect();
        let mut mask = OverlapMask::new();
        batch.overlap_mask(&q, 0, batch.len(), &mut mask);
        for (i, r) in rects.iter().enumerate() {
            prop_assert_eq!(mask.get(i), q.intersects(r), "i={} q={:?} r={:?}", i, q, r);
        }
    }

    #[test]
    fn within_mask_agrees_with_scalar_within_distance(
        q in rect2(),
        rects in prop::collection::vec(rect2(), 1..100),
        eps in prop_oneof![Just(0.0f64), 0.0f64..0.5],
    ) {
        let batch: RectBatch<2> = rects.iter().copied().collect();
        let mut mask = OverlapMask::new();
        batch.within_mask(&q, eps, 0, batch.len(), &mut mask);
        for (i, r) in rects.iter().enumerate() {
            prop_assert_eq!(
                mask.get(i),
                q.within_distance(r, eps),
                "i={} eps={} q={:?} r={:?}", i, eps, q, r
            );
        }
    }

    #[test]
    fn ref_cell_mask_agrees_with_intersection_cell(
        q in rect2(),
        rects in prop::collection::vec(rect2(), 1..100),
        grid in 1usize..9,
    ) {
        let batch: RectBatch<2> = rects.iter().copied().collect();
        let mut mask = OverlapMask::new();
        for cell in 0..grid.pow(2) {
            batch.ref_cell_mask(&q, 0, batch.len(), grid, cell, &mut mask);
            for (i, r) in rects.iter().enumerate() {
                // The fused kernel trusts its sweep caller for dimension
                // 0, so compare only candidates that overlap q there.
                if !(q.lo_k(0) <= r.hi_k(0) && r.lo_k(0) <= q.hi_k(0)) {
                    continue;
                }
                let expect = match q.intersection(r) {
                    Some(inter) => unit_grid_cell(&inter.lo().coords(), grid) == cell,
                    None => false,
                };
                prop_assert_eq!(
                    mask.get(i), expect,
                    "grid={} cell={} q={:?} r={:?}", grid, cell, q, r
                );
            }
        }
    }

    #[test]
    fn pbsm_kernels_agree_on_adversarial_inputs(
        left in prop::collection::vec(rect2(), 0..60),
        right in prop::collection::vec(rect2(), 0..60),
        grid in 1usize..6,
    ) {
        let tag = |rects: Vec<Rect<2>>, off: u32| -> Vec<(Rect<2>, ObjectId)> {
            rects
                .into_iter()
                .enumerate()
                .map(|(i, r)| (r, ObjectId(off + i as u32)))
                .collect()
        };
        let left = tag(left, 0);
        let right = tag(right, 10_000);
        let scalar = pbsm(&left, &right, grid, 50, MatchKernel::Scalar);
        let batched = pbsm(&left, &right, grid, 50, MatchKernel::Batched);
        // Identical pairs in identical order, not merely as multisets.
        prop_assert_eq!(&scalar.pairs, &batched.pairs);
        prop_assert_eq!(scalar.io_pages, batched.io_pages);
    }
}

// ---------------------------------------------------------------------
// Executor equivalence on deterministic workloads.
// ---------------------------------------------------------------------

fn build_uniform(n: usize, density: f64, seed: u64) -> RTree<2> {
    let rects = sjcm_datagen::uniform::generate::<2>(sjcm_datagen::uniform::UniformConfig::new(
        n, density, seed,
    ));
    let items: Vec<_> = rects
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, ObjectId(i as u32)))
        .collect();
    RTree::bulk_load(RTreeConfig::paper(2), items, BulkLoad::Str, 0.67)
}

fn with_kernel(config: JoinConfig, kernel: MatchKernel) -> JoinConfig {
    JoinConfig { kernel, ..config }
}

/// The acceptance invariant: on the 60K fixed-seed workload the batched
/// join is byte-identical to the scalar join — pair multiset, NA and DA
/// — under all three schedulers (sequential, cost-guided, round-robin)
/// and both match orders.
#[test]
fn batched_join_is_byte_identical_on_60k_workload() {
    let t1 = build_uniform(60_000, 0.5, 4242);
    let t2 = build_uniform(60_000, 0.5, 2424);
    for order in [MatchOrder::NestedLoop, MatchOrder::PlaneSweep] {
        let config = JoinConfig {
            order,
            ..JoinConfig::default()
        };
        // Sequential: identical pairs in identical emission order.
        let seq_s = join(
            &t1,
            &t2,
            with_kernel(config, MatchKernel::Scalar),
            Scheduler::Sequential,
        );
        let seq_b = join(
            &t1,
            &t2,
            with_kernel(config, MatchKernel::Batched),
            Scheduler::Sequential,
        );
        assert_eq!(seq_s.pairs, seq_b.pairs, "{order:?} sequential pairs");
        assert_eq!(seq_s.na_total(), seq_b.na_total(), "{order:?} NA");
        assert_eq!(seq_s.da_total(), seq_b.da_total(), "{order:?} DA");
        assert_eq!(seq_s.stats1, seq_b.stats1, "{order:?} per-level stats R1");
        assert_eq!(seq_s.stats2, seq_b.stats2, "{order:?} per-level stats R2");

        // Both parallel schedulers (pairs come back sorted there).
        for sched in [
            Scheduler::CostGuided { threads: 4 },
            Scheduler::RoundRobin { threads: 4 },
        ] {
            let par_s = join(&t1, &t2, with_kernel(config, MatchKernel::Scalar), sched);
            let par_b = join(&t1, &t2, with_kernel(config, MatchKernel::Batched), sched);
            assert_eq!(par_s.pairs, par_b.pairs, "{order:?} {sched:?} pairs");
            assert_eq!(par_s.na_total(), par_b.na_total(), "{order:?} {sched:?} NA");
            assert_eq!(par_s.da_total(), par_b.da_total(), "{order:?} {sched:?} DA");
        }
    }
}

/// Same invariant for the distance join (the sweep widens its window by
/// ε and must use the full distance kernel, not the tail overlap one).
#[test]
fn batched_distance_join_is_byte_identical() {
    let t1 = build_uniform(8_000, 0.3, 77);
    let t2 = build_uniform(8_000, 0.3, 78);
    for order in [MatchOrder::NestedLoop, MatchOrder::PlaneSweep] {
        let config = JoinConfig {
            predicate: JoinPredicate::WithinDistance(0.002),
            order,
            ..JoinConfig::default()
        };
        let scalar = join(
            &t1,
            &t2,
            with_kernel(config, MatchKernel::Scalar),
            Scheduler::Sequential,
        );
        let batched = join(
            &t1,
            &t2,
            with_kernel(config, MatchKernel::Batched),
            Scheduler::Sequential,
        );
        assert_eq!(scalar.pairs, batched.pairs, "{order:?}");
        assert_eq!(scalar.na_total(), batched.na_total(), "{order:?}");
        assert_eq!(scalar.da_total(), batched.da_total(), "{order:?}");
    }
}

/// Pinned-node traversal (trees of different heights) goes through the
/// one-vs-many kernel; it must match the scalar filter exactly.
#[test]
fn batched_join_identical_with_height_mismatch() {
    let tall = build_uniform(20_000, 0.4, 91);
    let short = build_uniform(120, 0.4, 92);
    assert!(tall.height() > short.height());
    for (a, b) in [(&tall, &short), (&short, &tall)] {
        let scalar = join(
            a,
            b,
            with_kernel(JoinConfig::default(), MatchKernel::Scalar),
            Scheduler::Sequential,
        );
        let batched = join(
            a,
            b,
            with_kernel(JoinConfig::default(), MatchKernel::Batched),
            Scheduler::Sequential,
        );
        assert_eq!(scalar.pairs, batched.pairs);
        assert_eq!(scalar.na_total(), batched.na_total());
        assert_eq!(scalar.da_total(), batched.da_total());
    }
}

// ---------------------------------------------------------------------
// threads = 0 handling (the former `min_by_key(..).unwrap()` panic).
// ---------------------------------------------------------------------

#[test]
fn zero_threads_is_a_typed_error_on_the_fallible_path() {
    let t1 = build_uniform(500, 0.3, 11);
    let t2 = build_uniform(500, 0.3, 12);
    for sched in [
        Scheduler::CostGuided { threads: 0 },
        Scheduler::RoundRobin { threads: 0 },
    ] {
        let err = JoinSession::new(&t1, &t2)
            .scheduler(sched)
            .run()
            .expect_err("threads = 0 must not silently run");
        assert_eq!(err, JoinError::InvalidThreads, "{sched:?}");
        assert!(err.to_string().contains("at least one worker"));
    }
}

/// The legacy infallible wrappers clamp `threads = 0` to 1 instead of
/// erroring — pinned here as wrapper behavior (the session API itself
/// surfaces [`JoinError::InvalidThreads`], see the test above).
#[test]
#[allow(deprecated)]
fn zero_threads_clamps_to_sequential_on_the_infallible_path() {
    use sjcm_join::{parallel_spatial_join, parallel_spatial_join_with, ScheduleMode};
    let t1 = build_uniform(500, 0.3, 11);
    let t2 = build_uniform(500, 0.3, 12);
    let one = parallel_spatial_join(&t1, &t2, JoinConfig::default(), 1);
    let zero = parallel_spatial_join(&t1, &t2, JoinConfig::default(), 0);
    assert_eq!(zero.pairs, one.pairs);
    assert_eq!(zero.na_total(), one.na_total());
    assert_eq!(zero.da_total(), one.da_total());
    for mode in [ScheduleMode::CostGuided, ScheduleMode::RoundRobin] {
        let zero = parallel_spatial_join_with(&t1, &t2, JoinConfig::default(), 0, mode);
        assert_eq!(zero.pairs, one.pairs, "{mode:?}");
    }
}

// ---------------------------------------------------------------------
// PBSM regressions: boundary-touching pairs and the kernel gate.
// ---------------------------------------------------------------------

#[test]
fn pbsm_boundary_touching_pairs_identical_across_kernels() {
    // Pairs meeting exactly on a partition boundary exercise both the
    // reference-point tie-breaking and the fused kernel's cell
    // computation on boundary coordinates.
    let a = vec![
        (Rect::new([0.0, 0.0], [0.5, 0.5]).unwrap(), ObjectId(1)),
        (Rect::new([0.5, 0.5], [1.0, 1.0]).unwrap(), ObjectId(2)),
        (Rect::new([0.25, 0.25], [0.25, 0.75]).unwrap(), ObjectId(3)),
    ];
    let b = vec![
        (Rect::new([0.5, 0.0], [1.0, 0.5]).unwrap(), ObjectId(7)),
        (Rect::new([0.0, 0.5], [0.5, 1.0]).unwrap(), ObjectId(8)),
        (Rect::new([0.25, 0.5], [0.75, 0.5]).unwrap(), ObjectId(9)),
    ];
    for grid in [1, 2, 3, 4, 8] {
        let scalar = pbsm(&a, &b, grid, 10, MatchKernel::Scalar);
        let batched = pbsm(&a, &b, grid, 10, MatchKernel::Batched);
        assert_eq!(scalar.pairs, batched.pairs, "grid = {grid}");
        // The default session kernel is the batched one.
        let default_run = PbsmSession::new(&a, &b, grid, 10)
            .run()
            .expect("ungoverned PBSM cannot fail")
            .result;
        assert_eq!(default_run.pairs, batched.pairs);
        // And no pair is reported twice despite boundary replication.
        let mut seen = std::collections::HashSet::new();
        for &p in &batched.pairs {
            assert!(seen.insert(p), "duplicate {p:?} at grid {grid}");
        }
    }
}
