//! The session-unification acceptance suite: the [`JoinSession`] /
//! [`PbsmSession`] builders must be **byte-identical** to the legacy
//! free-function entry points they replace, across the full context
//! matrix of cross-cutting concerns — every scheduler × observability
//! {on, off} × flight recorder {on, off} × governor {unlimited,
//! budgeted-but-unhit} × both match kernels. "Byte-identical" means the
//! pair list in its exact order, the NA/DA per-level splits, and the
//! recorder's event stream (count and correlation ids), not merely the
//! same multisets.
//!
//! The fixed-seed 60K gates at the bottom re-run the paper-scale
//! workload through both doors and diff the results exactly.

#![allow(deprecated)] // the whole point: legacy wrappers vs. the session

use proptest::prelude::*;
use sjcm_join::{
    parallel_spatial_join_with, pbsm::pbsm_join_with, spatial_join_with,
    try_parallel_spatial_join_observed, try_spatial_join_recorded, Governor, GovernorConfig,
    JoinConfig, JoinObs, JoinResultSet, JoinSession, MatchKernel, PbsmSession, ScheduleMode,
    Scheduler,
};
use sjcm_obs::ProgressTracker;
use sjcm_rtree::{BulkLoad, ObjectId, RTree, RTreeConfig};
use sjcm_storage::{FaultInjector, FlightRecorder};

fn build_uniform(n: usize, density: f64, seed: u64) -> RTree<2> {
    let rects = sjcm_datagen::uniform::generate::<2>(sjcm_datagen::uniform::UniformConfig::new(
        n, density, seed,
    ));
    let items: Vec<_> = rects
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, ObjectId(i as u32)))
        .collect();
    RTree::bulk_load(RTreeConfig::paper(2), items, BulkLoad::Str, 0.67)
}

/// A governor that is armed (budgeted) but generous enough that no
/// admission rejection, cancellation, or shed ever fires — results must
/// still be byte-identical to the unlimited run.
fn generous_governor() -> Governor {
    Governor::new(
        GovernorConfig::default()
            .with_na_budget(f64::MAX)
            .with_mem_budget(u64::MAX),
    )
}

/// Asserts the two results are byte-identical: same pairs in the same
/// order, same counters, same per-level NA/DA splits.
fn assert_identical(a: &JoinResultSet, b: &JoinResultSet, tag: &str) {
    assert_eq!(a.pairs, b.pairs, "{tag}: pairs (order included)");
    assert_eq!(a.pair_count, b.pair_count, "{tag}: pair_count");
    assert_eq!(a.stats1, b.stats1, "{tag}: tree-1 per-level NA/DA");
    assert_eq!(a.stats2, b.stats2, "{tag}: tree-2 per-level NA/DA");
    assert_eq!(a.buffers1, b.buffers1, "{tag}: tree-1 buffer counters");
    assert_eq!(a.buffers2, b.buffers2, "{tag}: tree-2 buffer counters");
}

/// Drains a recorder into a comparable event summary.
fn drain(recorder: &FlightRecorder) -> Vec<(u8, u32, u32)> {
    let (events, dropped) = recorder.drain();
    assert_eq!(dropped, 0);
    events.iter().map(|e| (e.tree, e.page.0, e.corr)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The context matrix: every scheduler × {obs on, off} × {recorder
    // on, off} × {governor unlimited, budgeted-but-unhit} × both
    // kernels, session vs. legacy, byte-identical.
    #[test]
    fn session_matches_legacy_across_context_matrix(
        seed in 0u64..200,
        threads in 1usize..4,
        sched_pick in 0u8..3,
        obs_on in any::<bool>(),
        rec_on in any::<bool>(),
        governed in any::<bool>(),
        batched in any::<bool>(),
    ) {
        let t1 = build_uniform(900, 0.5, seed.wrapping_mul(2).wrapping_add(31));
        let t2 = build_uniform(900, 0.5, seed.wrapping_mul(2).wrapping_add(32));
        let config = JoinConfig {
            kernel: if batched { MatchKernel::Batched } else { MatchKernel::Scalar },
            ..JoinConfig::default()
        };
        let sched = match sched_pick {
            0 => Scheduler::Sequential,
            1 => Scheduler::CostGuided { threads },
            _ => Scheduler::RoundRobin { threads },
        };

        // Legacy door: pick the historical entry point this context
        // combination would have used.
        let legacy_rec = FlightRecorder::enabled();
        let legacy_gov = if governed { generous_governor() } else { Governor::unlimited() };
        let legacy = match sched {
            Scheduler::Sequential => {
                if rec_on || governed {
                    let rec = if rec_on { legacy_rec.clone() } else { FlightRecorder::disabled() };
                    try_spatial_join_recorded(
                        &t1, &t2, config, &rec,
                        &FaultInjector::disabled(),
                        &legacy_gov,
                    ).expect("generous governor admits").result
                } else {
                    spatial_join_with(&t1, &t2, config)
                }
            }
            Scheduler::CostGuided { .. } | Scheduler::RoundRobin { .. } => {
                let mode = match sched {
                    Scheduler::RoundRobin { .. } => ScheduleMode::RoundRobin,
                    _ => ScheduleMode::CostGuided,
                };
                if obs_on || rec_on || governed {
                    let obs = JoinObs {
                        recorder: if rec_on { legacy_rec.clone() } else { FlightRecorder::disabled() },
                        progress: if obs_on { ProgressTracker::enabled() } else { ProgressTracker::disabled() },
                        ..JoinObs::default()
                    };
                    try_parallel_spatial_join_observed(
                        &t1, &t2, config, threads, mode, &obs,
                        &FaultInjector::disabled(), &legacy_gov,
                    ).expect("generous governor admits").result
                } else {
                    parallel_spatial_join_with(&t1, &t2, config, threads, mode)
                }
            }
        };
        let legacy_events = drain(&legacy_rec);

        // Session door: the same context, through the one builder.
        let session_rec = FlightRecorder::enabled();
        let session_gov = if governed { generous_governor() } else { Governor::unlimited() };
        let mut session = JoinSession::new(&t1, &t2)
            .config(config)
            .scheduler(sched)
            .govern(&session_gov);
        if obs_on {
            session = session.observe(&JoinObs {
                progress: ProgressTracker::enabled(),
                ..JoinObs::default()
            });
        }
        if rec_on {
            session = session.record(&session_rec);
        }
        let out = session.run().expect("generous governor admits");
        prop_assert!(out.is_exact());
        assert_identical(&out.result, &legacy, &format!("{sched:?}"));
        prop_assert_eq!(
            drain(&session_rec), legacy_events,
            "recorder event streams diverged"
        );
    }

    // PBSM through both doors, both kernels, with and without an armed
    // (but generous) governor.
    #[test]
    fn pbsm_session_matches_legacy(
        seed in 0u64..200,
        grid in 1usize..6,
        batched in any::<bool>(),
        governed in any::<bool>(),
    ) {
        let kernel = if batched { MatchKernel::Batched } else { MatchKernel::Scalar };
        let items = |s: u64, off: u32| -> Vec<(Rect2, ObjectId)> {
            sjcm_datagen::uniform::generate::<2>(
                sjcm_datagen::uniform::UniformConfig::new(400, 0.5, s),
            )
            .into_iter()
            .enumerate()
            .map(|(i, r)| (r, ObjectId(off + i as u32)))
            .collect()
        };
        let left = items(seed.wrapping_add(1), 0);
        let right = items(seed.wrapping_add(2), 10_000);

        let legacy = pbsm_join_with(&left, &right, grid, 50, kernel);
        let gov = if governed { generous_governor() } else { Governor::unlimited() };
        let out = PbsmSession::new(&left, &right, grid, 50)
            .kernel(kernel)
            .govern(&gov)
            .run()
            .expect("generous governor admits");
        prop_assert!(out.is_exact());
        prop_assert_eq!(&out.result.pairs, &legacy.pairs, "pairs (order included)");
        prop_assert_eq!(out.result.io_pages, legacy.io_pages);
        prop_assert_eq!(out.result.replication_factor, legacy.replication_factor);
    }
}

type Rect2 = sjcm_geom::Rect<2>;

/// The fixed-seed paper-scale gate: on the 60K × 60K workload the
/// session door reproduces each legacy entry point exactly, for all
/// three tree schedulers.
#[test]
fn session_matches_legacy_on_60k_workload() {
    let t1 = build_uniform(60_000, 0.5, 4242);
    let t2 = build_uniform(60_000, 0.5, 2424);
    let config = JoinConfig {
        collect_pairs: false,
        ..JoinConfig::default()
    };

    let legacy_seq = spatial_join_with(&t1, &t2, config);
    let session_seq = JoinSession::new(&t1, &t2)
        .config(config)
        .run()
        .expect("ungoverned join cannot fail")
        .result;
    assert_identical(&session_seq, &legacy_seq, "sequential");

    for (mode, sched) in [
        (
            ScheduleMode::CostGuided,
            Scheduler::CostGuided { threads: 4 },
        ),
        (
            ScheduleMode::RoundRobin,
            Scheduler::RoundRobin { threads: 4 },
        ),
    ] {
        let legacy = parallel_spatial_join_with(&t1, &t2, config, 4, mode);
        let session = JoinSession::new(&t1, &t2)
            .config(config)
            .scheduler(sched)
            .run()
            .expect("ungoverned join cannot fail")
            .result;
        assert_identical(&session, &legacy, &format!("{mode:?}"));
    }
}
