//! R-tree parameter prediction (Eqs 2–5 of the paper, from \[TS96\]).
//!
//! Given only `(N, D)` and the index constants `(M, c)`, these formulas
//! predict everything the cost model needs about the tree that *would*
//! be built over the data:
//!
//! * **Eq 2** — height: `h = 1 + ⌈log_{cM}(N / cM)⌉`
//! * **Eq 3** — nodes per level: `N_j = ⌈N / (cM)^j⌉`
//! * **Eq 5** — node-rectangle density per level:
//!   `D_j = (1 + (D_{j-1}^{1/n} − 1) / (cM)^{1/n})^n`, with `D_0 = D`
//! * **Eq 4** — average node extent (square-node assumption):
//!   `s_{j,k} = (D_j / N_j)^{1/n}`
//!
//! Levels use the **paper's numbering**: leaves are level `j = 1`, the
//! root is level `j = h`.

use crate::config::{DataProfile, ModelConfig};

/// Predicted (or measured) parameters of one tree level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelParams<const N: usize> {
    /// Number of nodes at this level, `N_j`. Kept as `f64`: the measured
    /// variant is integral, but intermediate analytic values are not.
    pub nodes: f64,
    /// Average node extent per dimension, `s_{j,k}`.
    pub extents: [f64; N],
    /// Density of node rectangles at this level, `D_j`.
    pub density: f64,
}

/// Predicted or measured per-level parameters of an R-tree, the common
/// input format of the range- and join-cost formulas.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams<const N: usize> {
    levels: Vec<LevelParams<N>>,
}

impl<const N: usize> TreeParams<N> {
    /// Predicts the parameters from primitive data properties (Eqs 2–5).
    /// This is the paper's headline mode: no index inspection.
    pub fn from_data(profile: DataProfile, config: &ModelConfig) -> Self {
        let f = config.fanout();
        assert!(f > 1.0, "effective fanout must exceed 1");
        let n_objects = profile.cardinality as f64;
        let h = predict_height(profile.cardinality, config);
        let n_inv = 1.0 / N as f64;
        let mut levels = Vec::with_capacity(h);
        let mut density = profile.density; // D_0
        for j in 1..=h {
            // Eq 5: density propagates from the level below.
            density = (1.0 + (density.powf(n_inv) - 1.0) / f.powf(n_inv)).powi(N as i32);
            // Eq 3.
            let nodes = (n_objects / f.powi(j as i32)).ceil().max(1.0);
            // Eq 4.
            let s = (density / nodes).powf(n_inv);
            levels.push(LevelParams {
                nodes,
                extents: [s; N],
                density,
            });
        }
        Self { levels }
    }

    /// Builds parameters from explicit per-level values — the "measured
    /// parameters" mode used by the ablation experiments (fed from
    /// `sjcm_rtree`'s `TreeStats`) and by the non-uniform model's
    /// per-cell evaluation. `levels[0]` is the leaf level `j = 1`.
    pub fn from_levels(levels: Vec<LevelParams<N>>) -> Self {
        assert!(!levels.is_empty(), "a tree has at least one level");
        Self { levels }
    }

    /// Height `h` (number of levels, root included).
    #[inline]
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Parameters of paper level `j ∈ [1, h]`.
    #[inline]
    pub fn level(&self, j: usize) -> &LevelParams<N> {
        assert!(j >= 1 && j <= self.levels.len(), "level {j} out of range");
        &self.levels[j - 1]
    }

    /// All levels, leaf first.
    pub fn levels(&self) -> &[LevelParams<N>] {
        &self.levels
    }
}

/// Eq 2: `h = 1 + ⌈log_{cM}(N / cM)⌉`, clamped to at least 1.
///
/// A small relative epsilon absorbs floating-point fuzz at exact powers
/// of the fanout (e.g. `N = f²` must give `h = 2`, not 3).
pub fn height_eq2(cardinality: u64, fanout: f64) -> usize {
    if cardinality == 0 {
        return 1;
    }
    let n = cardinality as f64;
    if n <= fanout {
        return 1;
    }
    let raw = (n / fanout).ln() / fanout.ln();
    1 + (raw - 1e-9).ceil().max(1.0) as usize
}

/// Root-aware height: the smallest `h` with `N ≤ M · (cM)^{h−1}` — like
/// Eq 2 but letting the root fill to its hard capacity `M` instead of
/// the average `c·M`. See [`crate::config::HeightFormula::RootAware`].
pub fn height_root_aware(cardinality: u64, fanout: f64, max_entries: usize) -> usize {
    if cardinality == 0 {
        return 1;
    }
    let n = cardinality as f64;
    if n <= max_entries as f64 {
        return 1;
    }
    let raw = (n / max_entries as f64).ln() / fanout.ln();
    1 + (raw - 1e-9).ceil().max(1.0) as usize
}

/// Predicted height under the configured formula.
pub fn predict_height(cardinality: u64, config: &ModelConfig) -> usize {
    match config.height_formula {
        crate::config::HeightFormula::Eq2 => height_eq2(cardinality, config.fanout()),
        crate::config::HeightFormula::RootAware => {
            height_root_aware(cardinality, config.fanout(), config.max_entries)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper2() -> ModelConfig {
        ModelConfig::paper(2)
    }

    #[test]
    fn height_small_sets_fit_in_root() {
        assert_eq!(height_eq2(0, 33.5), 1);
        assert_eq!(height_eq2(1, 33.5), 1);
        assert_eq!(height_eq2(33, 33.5), 1);
        assert_eq!(height_eq2(34, 33.5), 2);
    }

    #[test]
    fn height_exact_powers() {
        // N = f² packs into h = 2 exactly (f leaves under one root); the
        // epsilon guard must keep ceil from jumping to 3 on fp fuzz. One
        // more object than f² forces h = 3.
        let f = 32.0;
        assert_eq!(height_eq2(1024, f), 2);
        assert_eq!(height_eq2(1025, f), 3);
        assert_eq!(height_eq2(32 * 1024, f), 3);
        assert_eq!(height_eq2(32 * 1024 + 1, f), 4);
    }

    #[test]
    fn paper_heights_one_dimensional() {
        // §4: all 1-D indexes of 20K ≤ N ≤ 80K have h = 3 (f = 56.28).
        let f = ModelConfig::paper(1).fanout();
        for n in [20_000u64, 40_000, 60_000, 80_000] {
            assert_eq!(height_eq2(n, f), 3, "N = {n}");
        }
    }

    #[test]
    fn paper_heights_two_dimensional() {
        // §4 / Figure 6b: h = 3 for small N, h = 4 for 60K–80K. With the
        // paper's c = 0.67 the analytic boundary falls at
        // f³ = 33.5³ ≈ 37.6K, so 20K gives 3 and 60K/80K give 4. (40K is
        // a documented boundary case: the built R*-trees have h = 3, the
        // analytic height is 4 — see EXPERIMENTS.md.)
        let f = paper2().fanout();
        assert_eq!(height_eq2(20_000, f), 3);
        assert_eq!(height_eq2(60_000, f), 4);
        assert_eq!(height_eq2(80_000, f), 4);
    }

    #[test]
    fn eq3_node_counts_decay_by_fanout() {
        let p = TreeParams::<2>::from_data(DataProfile::new(60_000, 0.4), &paper2());
        assert_eq!(p.height(), 4);
        let f = paper2().fanout();
        assert_eq!(p.level(1).nodes, (60_000.0 / f).ceil());
        assert_eq!(p.level(2).nodes, (60_000.0 / f / f).ceil());
        assert_eq!(p.level(p.height()).nodes, 1.0, "root is a single node");
        // Monotone decreasing.
        for j in 1..p.height() {
            assert!(p.level(j).nodes >= p.level(j + 1).nodes);
        }
    }

    #[test]
    fn eq5_density_grows_toward_one_from_below() {
        // For D < 1, node density increases with level but stays < 1.
        let p = TreeParams::<2>::from_data(DataProfile::new(60_000, 0.5), &paper2());
        let mut prev = 0.5;
        for j in 1..=p.height() {
            let d = p.level(j).density;
            assert!(d > prev, "D_{j} = {d} should exceed {prev}");
            assert!(d < 1.0);
            prev = d;
        }
    }

    #[test]
    fn eq5_density_shrinks_toward_one_from_above() {
        // For D > 1 the same recurrence decreases toward 1.
        let p = TreeParams::<2>::from_data(DataProfile::new(60_000, 3.0), &paper2());
        let mut prev = 3.0;
        for j in 1..=p.height() {
            let d = p.level(j).density;
            assert!(d < prev);
            assert!(d > 1.0);
            prev = d;
        }
    }

    #[test]
    fn eq5_zero_density_points() {
        // Point data (D = 0) still yields positive node densities: nodes
        // must cover their entries' spread.
        let p = TreeParams::<2>::from_data(DataProfile::new(60_000, 0.0), &paper2());
        for j in 1..=p.height() {
            assert!(p.level(j).density > 0.0);
            assert!(p.level(j).extents[0] > 0.0);
        }
    }

    #[test]
    fn eq4_extents_are_square_and_consistent() {
        let p = TreeParams::<2>::from_data(DataProfile::new(40_000, 0.5), &paper2());
        for j in 1..=p.height() {
            let l = p.level(j);
            assert_eq!(l.extents[0], l.extents[1], "square-node assumption");
            let s = (l.density / l.nodes).sqrt();
            assert!((l.extents[0] - s).abs() < 1e-12);
        }
    }

    #[test]
    fn extents_grow_with_level() {
        let p = TreeParams::<2>::from_data(DataProfile::new(80_000, 0.5), &paper2());
        for j in 1..p.height() {
            assert!(
                p.level(j + 1).extents[0] > p.level(j).extents[0],
                "node extents must grow toward the root"
            );
        }
    }

    #[test]
    fn one_dimensional_params() {
        let cfg = ModelConfig::paper(1);
        let p = TreeParams::<1>::from_data(DataProfile::new(20_000, 0.5), &cfg);
        assert_eq!(p.height(), 3);
        // In 1-D, Eq 4 degenerates to s = D_j / N_j.
        let l = p.level(1);
        assert!((l.extents[0] - l.density / l.nodes).abs() < 1e-15);
    }

    #[test]
    fn from_levels_roundtrip() {
        let levels = vec![
            LevelParams::<2> {
                nodes: 100.0,
                extents: [0.01, 0.02],
                density: 0.3,
            },
            LevelParams::<2> {
                nodes: 1.0,
                extents: [0.9, 0.8],
                density: 0.72,
            },
        ];
        let p = TreeParams::from_levels(levels.clone());
        assert_eq!(p.height(), 2);
        assert_eq!(p.level(1), &levels[0]);
        assert_eq!(p.level(2), &levels[1]);
        assert_eq!(p.levels(), &levels[..]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn level_zero_is_invalid() {
        let p = TreeParams::<2>::from_data(DataProfile::new(1000, 0.1), &paper2());
        p.level(0);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn from_levels_rejects_empty() {
        TreeParams::<2>::from_levels(vec![]);
    }
}
