//! The spatial-join cost model (Eqs 6–12) — the paper's contribution.
//!
//! The SJ algorithm performs a synchronized traversal of both trees; its
//! I/O cost decomposes per *paired level*. For equal heights the pairing
//! is the identity (Eqs 7, 10); for different heights the shorter tree is
//! pinned at its leaf level while the taller one keeps descending
//! (Eqs 11, 12). [`level_schedule`] materializes that pairing, making the
//! paper's remark that the equal-height formulas are special cases a
//! mechanical fact (tested below).
//!
//! Per paired level `(j₁, j₂)`:
//!
//! * **Eq 6** (no buffer): both trees pay one access per overlapping node
//!   pair, `NA(Rᵢ) = N_{R1,j₁} · N_{R2,j₂} · Π_k min{1, s_{R1,j₁,k} +
//!   s_{R2,j₂,k}}`.
//! * **Eq 8** (path buffer, query tree R2): an R2 node is *fetched* once
//!   per intersected R1 node of the **parent** level,
//!   `DA(R2) = N_{R2,j₂} · intsect(N_{R1,j₁+1}, s_{R1,j₁+1}, s_{R2,j₂})`.
//! * **Eq 9** (path buffer, data tree R1): the inner-loop tree barely
//!   benefits from the buffer, `DA(R1) ≈ NA(R1)` (the rarely-firing
//!   consecutive-pair exception is deliberately unmodeled; the join
//!   executor counts it so the experiments can report how rare it is).

use crate::params::TreeParams;

/// One step of the synchronized traversal: the paired paper levels
/// `(j₁, j₂)` of trees R1 and R2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelPair {
    /// Level of R1 (1 = leaf).
    pub j1: usize,
    /// Level of R2 (1 = leaf).
    pub j2: usize,
}

/// The level pairing of the SJ traversal for trees of heights `h1`, `h2`
/// (the `j′` mapping of Eqs 11–12): the taller tree runs through its
/// levels `1 … h−1` while the shorter is pinned at its leaf level once
/// reached. Returned leaf-level first. Empty when either height is 1 at
/// equal heights (roots are memory-resident).
pub fn level_schedule(h1: usize, h2: usize) -> Vec<LevelPair> {
    assert!(h1 >= 1 && h2 >= 1, "heights must be at least 1");
    let taller = h1.max(h2);
    let delta = h1.abs_diff(h2);
    let mut out = Vec::with_capacity(taller.saturating_sub(1));
    for j in 1..taller {
        let (j1, j2) = if h1 >= h2 {
            (j, j.saturating_sub(delta).max(1))
        } else {
            (j.saturating_sub(delta).max(1), j)
        };
        out.push(LevelPair { j1, j2 });
    }
    out
}

/// Eq 6 generalized to a level pair: the expected number of overlapping
/// (R1-node, R2-node) pairs at levels `(j₁, j₂)` — the per-tree node
/// access count of that traversal step.
pub fn na_level<const N: usize>(
    r1: &TreeParams<N>,
    j1: usize,
    r2: &TreeParams<N>,
    j2: usize,
) -> f64 {
    let l1 = r1.level(j1);
    let l2 = r2.level(j2);
    let mut v = l1.nodes * l2.nodes;
    for k in 0..N {
        v *= (l1.extents[k] + l2.extents[k]).min(1.0);
    }
    v
}

/// Eq 8 generalized: disk accesses of the query tree R2 at level `j₂`
/// when paired with R1 at `j₁` — one fetch per R2 node per intersected R1
/// node of the parent level `j₁ + 1` (clamped to R1's root).
pub fn da_level_query_tree<const N: usize>(
    r1: &TreeParams<N>,
    j1: usize,
    r2: &TreeParams<N>,
    j2: usize,
) -> f64 {
    let parent = (j1 + 1).min(r1.height());
    let lp = r1.level(parent);
    let l2 = r2.level(j2);
    let mut v = l2.nodes * lp.nodes;
    for k in 0..N {
        v *= (lp.extents[k] + l2.extents[k]).min(1.0);
    }
    v
}

/// Eq 9: disk accesses of the data tree R1 — the path buffer does not
/// help the inner loop, so `DA(R1) ≈ NA(R1)`.
pub fn da_level_data_tree<const N: usize>(
    r1: &TreeParams<N>,
    j1: usize,
    r2: &TreeParams<N>,
    j2: usize,
) -> f64 {
    na_level(r1, j1, r2, j2)
}

/// Total node accesses of the join — Eq 7 for equal heights, Eq 11 in
/// general. Symmetric in its arguments.
pub fn join_cost_na<const N: usize>(r1: &TreeParams<N>, r2: &TreeParams<N>) -> f64 {
    level_schedule(r1.height(), r2.height())
        .iter()
        .map(|p| 2.0 * na_level(r1, p.j1, r2, p.j2))
        .sum()
}

/// Eq-6 cost of one parallel-join work unit: a pair of (sub)trees whose
/// roots the scheduler has already matched. The unit's cost is the two
/// root accesses themselves plus the expected traversal below them
/// ([`join_cost_na`] over the subtrees' parameters — typically
/// `TreeParams::from_levels` of *measured* subtree statistics, so the
/// estimate reflects the actual shape of each unit rather than a global
/// average).
///
/// This is how the execution layer consumes the paper's model: not to
/// predict a query's total I/O, but to rank work units for LPT seeding
/// and steal-order decisions. Only relative magnitudes matter there, so
/// the formula's small-scale bias (see EXPERIMENTS.md) is harmless.
pub fn unit_cost_na<const N: usize>(r1: &TreeParams<N>, r2: &TreeParams<N>) -> f64 {
    2.0 + join_cost_na(r1, r2)
}

/// Per-level breakdown of [`join_cost_na`]: for each schedule step, the
/// pair and the NA contribution *of each tree* (they are equal — Eq 6).
pub fn join_cost_na_by_level<const N: usize>(
    r1: &TreeParams<N>,
    r2: &TreeParams<N>,
) -> Vec<(LevelPair, f64)> {
    level_schedule(r1.height(), r2.height())
        .into_iter()
        .map(|p| (p, na_level(r1, p.j1, r2, p.j2)))
        .collect()
}

/// Total disk accesses of the join under per-tree path buffers — Eq 10
/// for equal heights, Eq 12 in general. **Not** symmetric: R1 plays the
/// data (inner-loop) role and R2 the query (outer-loop) role.
pub fn join_cost_da<const N: usize>(r1: &TreeParams<N>, r2: &TreeParams<N>) -> f64 {
    join_cost_da_by_level(r1, r2).iter().map(|&(_, c)| c).sum()
}

/// The Eq-12 branch logic in one place: for each schedule step, the level
/// pair and the per-tree shares `(DA(R1), DA(R2))` of its disk-access
/// contribution. Every other DA entry point ([`join_cost_da`],
/// [`join_cost_da_by_level`], [`join_cost_da_split`]) is a fold over this
/// breakdown, so the three branches of Eq 12 exist exactly once.
///
/// Branches, following §3.2:
/// * lockstep (`j > Δ`, or equal heights): the data tree R1 pays Eq 9 and
///   the query tree R2 pays Eq 8;
/// * `h1 > h2` pinned phase: R2 sits at its leaf level and its
///   re-accesses hit the path buffer — only R1 pays (Eq 9);
/// * `h1 < h2` pinned phase: R1 sits at its leaf level while R2 still
///   descends; "each propagation of the query tree … adds equal cost to
///   the data tree", so R2's Eq-8 cost is charged to both trees — that is
///   how the factor 2 of Eq 12 splits.
pub fn join_cost_da_shares_by_level<const N: usize>(
    r1: &TreeParams<N>,
    r2: &TreeParams<N>,
) -> Vec<(LevelPair, (f64, f64))> {
    let h1 = r1.height();
    let h2 = r2.height();
    let delta = h1.abs_diff(h2);
    level_schedule(h1, h2)
        .into_iter()
        .enumerate()
        .map(|(step, pair)| {
            // Schedule index in the taller tree's levels; the pinned
            // phase is the first Δ steps.
            let lockstep = step + 1 > delta;
            let shares = if lockstep {
                (
                    da_level_data_tree(r1, pair.j1, r2, pair.j2),
                    da_level_query_tree(r1, pair.j1, r2, pair.j2),
                )
            } else if h1 > h2 {
                (da_level_data_tree(r1, pair.j1, r2, pair.j2), 0.0)
            } else {
                let q = da_level_query_tree(r1, pair.j1, r2, pair.j2);
                (q, q)
            };
            (pair, shares)
        })
        .collect()
}

/// Per-level breakdown of [`join_cost_da`]: for each schedule step, the
/// pair and the combined `DA(R1) + DA(R2)` contribution, following the
/// two branches of Eq 12.
pub fn join_cost_da_by_level<const N: usize>(
    r1: &TreeParams<N>,
    r2: &TreeParams<N>,
) -> Vec<(LevelPair, f64)> {
    join_cost_da_shares_by_level(r1, r2)
        .into_iter()
        .map(|(pair, (da1, da2))| (pair, da1 + da2))
        .collect()
}

/// [`join_cost_da`] split into the two trees' shares
/// `(DA(R1) total, DA(R2) total)` — what §4.1's per-tree accuracy claims
/// (ii) are stated about. See [`join_cost_da_shares_by_level`] for how
/// the `h1 < h2` pinned phase splits.
pub fn join_cost_da_split<const N: usize>(r1: &TreeParams<N>, r2: &TreeParams<N>) -> (f64, f64) {
    join_cost_da_shares_by_level(r1, r2)
        .into_iter()
        .fold((0.0, 0.0), |(a1, a2), (_, (da1, da2))| (a1 + da1, a2 + da2))
}

/// Drift-monitor target name for tree `tree ∈ {1, 2}`'s node accesses
/// at paper level `j` (1 = leaf): `na.r<tree>.l<j>`.
pub fn na_target(tree: usize, j: usize) -> String {
    format!("na.r{tree}.l{j}")
}

/// Drift-monitor target name for tree `tree ∈ {1, 2}`'s disk accesses
/// at paper level `j` (1 = leaf): `da.r<tree>.l<j>`.
pub fn da_target(tree: usize, j: usize) -> String {
    format!("da.r{tree}.l{j}")
}

/// The full set of named predictions a drift monitor should register
/// before a join of trees with these parameters runs: per tree and
/// paper level the Eq-6 NA and the Eq-8/9/12 DA share (steps of the
/// pinned phase that revisit a level are summed into it, matching how
/// the executor tallies accesses *per level*, not per schedule step),
/// plus the `na.total` / `da.total` grand totals of Eqs 10–12.
///
/// The names follow [`na_target`] / [`da_target`]; the execution layer
/// produces observations under the same names (see
/// `JoinResultSet::drift_observations` in `sjcm-join`), so prediction
/// and measurement meet in the monitor without either layer depending
/// on the other.
pub fn join_prediction_targets<const N: usize>(
    r1: &TreeParams<N>,
    r2: &TreeParams<N>,
) -> Vec<(String, f64)> {
    use std::collections::BTreeMap;
    let mut na1: BTreeMap<usize, f64> = BTreeMap::new();
    let mut na2: BTreeMap<usize, f64> = BTreeMap::new();
    for (pair, na) in join_cost_na_by_level(r1, r2) {
        *na1.entry(pair.j1).or_insert(0.0) += na;
        *na2.entry(pair.j2).or_insert(0.0) += na;
    }
    let mut da1: BTreeMap<usize, f64> = BTreeMap::new();
    let mut da2: BTreeMap<usize, f64> = BTreeMap::new();
    for (pair, (d1, d2)) in join_cost_da_shares_by_level(r1, r2) {
        *da1.entry(pair.j1).or_insert(0.0) += d1;
        *da2.entry(pair.j2).or_insert(0.0) += d2;
    }
    let mut out = Vec::new();
    for (&j, &v) in &na1 {
        out.push((na_target(1, j), v));
    }
    for (&j, &v) in &na2 {
        out.push((na_target(2, j), v));
    }
    for (&j, &v) in &da1 {
        out.push((da_target(1, j), v));
    }
    for (&j, &v) in &da2 {
        out.push((da_target(2, j), v));
    }
    out.push(("na.total".to_string(), join_cost_na(r1, r2)));
    out.push(("da.total".to_string(), join_cost_da(r1, r2)));
    out
}

/// Structured per-level NA priors for a live progress estimator: for
/// each tree and accessed paper level `j` (1 = leaf; roots are excluded
/// by construction — the schedule never emits them), the Eq-6 NA
/// prediction, as `(tree ∈ {1, 2}, j, NA)` triples sorted by tree then
/// level. This is the NA half of [`join_prediction_targets`] without
/// the name strings: the progress engine seeds its per-level work
/// denominators from these values and needs the coordinates as data,
/// not as parseable names. The triples of one tree sum to
/// [`join_cost_na`] / 2 (each tree pays half of every pair visit).
pub fn join_na_priors<const N: usize>(
    r1: &TreeParams<N>,
    r2: &TreeParams<N>,
) -> Vec<(usize, usize, f64)> {
    use std::collections::BTreeMap;
    let mut na1: BTreeMap<usize, f64> = BTreeMap::new();
    let mut na2: BTreeMap<usize, f64> = BTreeMap::new();
    for (pair, na) in join_cost_na_by_level(r1, r2) {
        *na1.entry(pair.j1).or_insert(0.0) += na;
        *na2.entry(pair.j2).or_insert(0.0) += na;
    }
    let mut out = Vec::new();
    for (&j, &v) in &na1 {
        out.push((1, j, v));
    }
    for (&j, &v) in &na2 {
        out.push((2, j, v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DataProfile, ModelConfig};

    fn p2(n: u64, d: f64) -> TreeParams<2> {
        TreeParams::from_data(DataProfile::new(n, d), &ModelConfig::paper(2))
    }

    fn p1d(n: u64, d: f64) -> TreeParams<1> {
        TreeParams::from_data(DataProfile::new(n, d), &ModelConfig::paper(1))
    }

    #[test]
    fn schedule_equal_heights_is_identity() {
        let s = level_schedule(3, 3);
        assert_eq!(
            s,
            vec![LevelPair { j1: 1, j2: 1 }, LevelPair { j1: 2, j2: 2 }]
        );
    }

    #[test]
    fn schedule_taller_r1_pins_r2_leaf() {
        // h1 = 5, h2 = 3, Δ = 2: Eq 11's j' = 1 for j ≤ 2, j − 2 after.
        let s = level_schedule(5, 3);
        assert_eq!(
            s,
            vec![
                LevelPair { j1: 1, j2: 1 },
                LevelPair { j1: 2, j2: 1 },
                LevelPair { j1: 3, j2: 1 },
                LevelPair { j1: 4, j2: 2 },
            ]
        );
    }

    #[test]
    fn schedule_taller_r2_pins_r1_leaf() {
        let s = level_schedule(3, 5);
        assert_eq!(
            s,
            vec![
                LevelPair { j1: 1, j2: 1 },
                LevelPair { j1: 1, j2: 2 },
                LevelPair { j1: 1, j2: 3 },
                LevelPair { j1: 2, j2: 4 },
            ]
        );
    }

    #[test]
    fn schedule_degenerate_heights() {
        assert!(level_schedule(1, 1).is_empty());
        assert_eq!(level_schedule(2, 1), vec![LevelPair { j1: 1, j2: 1 }]);
        assert_eq!(level_schedule(1, 2), vec![LevelPair { j1: 1, j2: 1 }]);
    }

    #[test]
    fn na_level_hand_computed() {
        use crate::params::LevelParams;
        let r1 = TreeParams::from_levels(vec![LevelParams::<2> {
            nodes: 100.0,
            extents: [0.05, 0.05],
            density: 0.25,
        }]);
        let r2 = TreeParams::from_levels(vec![LevelParams::<2> {
            nodes: 50.0,
            extents: [0.1, 0.15],
            density: 0.75,
        }]);
        // 100 · 50 · (0.15) · (0.20) = 150.
        let v = na_level(&r1, 1, &r2, 1);
        assert!((v - 150.0).abs() < 1e-9);
    }

    #[test]
    fn na_is_symmetric_eq7_remark() {
        let a = p2(60_000, 0.5);
        let b = p2(20_000, 0.3);
        let ab = join_cost_na(&a, &b);
        let ba = join_cost_na(&b, &a);
        assert!(
            (ab - ba).abs() < 1e-6 * ab,
            "Eq 7/11 must be symmetric: {ab} vs {ba}"
        );
    }

    #[test]
    fn da_is_asymmetric_eq10_remark() {
        // §3.1: "in contrast to Eq. 7, Eq. 10 is sensitive to the two
        // indexes" — with different cardinalities the two orderings
        // differ.
        let a = p2(20_000, 0.5);
        let b = p2(80_000, 0.5);
        let ab = join_cost_da(&a, &b);
        let ba = join_cost_da(&b, &a);
        assert!(
            (ab - ba).abs() > 1e-3 * ab.max(ba),
            "Eq 10/12 should be role-sensitive: {ab} vs {ba}"
        );
    }

    #[test]
    fn da_below_na_for_paper_parameters() {
        // DA ≤ NA holds for every paper workload combination.
        for &n1 in &[20_000u64, 40_000, 60_000, 80_000] {
            for &n2 in &[20_000u64, 40_000, 60_000, 80_000] {
                for &d in &[0.2, 0.5, 0.8] {
                    let a = p2(n1, d);
                    let b = p2(n2, d);
                    let na = join_cost_na(&a, &b);
                    let da = join_cost_da(&a, &b);
                    assert!(
                        da <= na * (1.0 + 1e-9),
                        "DA {da} > NA {na} for {n1}/{n2}, D = {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn query_tree_role_prefers_smaller_index_equal_heights() {
        // §4.1(iii): for equal heights, the less populated index should
        // play the query role (R2). DA(data=big, query=small) must beat
        // DA(data=small, query=big). 20K and 36K both give h = 3 under
        // the paper's 2-D fanout (boundary at 33.5³ ≈ 37.6K).
        let big = p2(36_000, 0.5);
        let small = p2(20_000, 0.5);
        assert_eq!(big.height(), small.height());
        let good = join_cost_da(&big, &small);
        let bad = join_cost_da(&small, &big);
        assert!(good < bad, "role rule violated: {good} vs {bad}");
    }

    #[test]
    fn equal_height_special_case_matches_direct_eq7_eq10() {
        // Computing Eqs 7/10 directly (no schedule) must agree with the
        // schedule-based general formulas.
        let a = p2(60_000, 0.4);
        let b = p2(80_000, 0.6);
        assert_eq!(a.height(), b.height());
        let h = a.height();
        let mut na_direct = 0.0;
        let mut da_direct = 0.0;
        for j in 1..h {
            na_direct += 2.0 * na_level(&a, j, &b, j);
            da_direct += na_level(&a, j, &b, j) + da_level_query_tree(&a, j, &b, j);
        }
        assert!((join_cost_na(&a, &b) - na_direct).abs() < 1e-9);
        assert!((join_cost_da(&a, &b) - da_direct).abs() < 1e-9);
    }

    #[test]
    fn na_monotone_in_cardinality_and_density() {
        let base = join_cost_na(&p2(40_000, 0.5), &p2(40_000, 0.5));
        assert!(join_cost_na(&p2(80_000, 0.5), &p2(40_000, 0.5)) > base);
        assert!(join_cost_na(&p2(40_000, 0.8), &p2(40_000, 0.5)) > base);
    }

    #[test]
    fn one_dimensional_join_costs() {
        // All paper 1-D trees have h = 3, so the plots in Fig 5a are
        // linear in N; sanity-check the costs are positive and ordered.
        let c2020 = join_cost_na(&p1d(20_000, 0.5), &p1d(20_000, 0.5));
        let c8080 = join_cost_na(&p1d(80_000, 0.5), &p1d(80_000, 0.5));
        assert!(c2020 > 0.0);
        assert!(c8080 > c2020);
        let da = join_cost_da(&p1d(80_000, 0.5), &p1d(20_000, 0.5));
        assert!(da > 0.0);
    }

    #[test]
    fn different_height_join_is_finite_and_positive() {
        let tall = p2(80_000, 0.5); // h = 4
        let short = p2(20_000, 0.5); // h = 3
        assert_ne!(tall.height(), short.height());
        for (a, b) in [(&tall, &short), (&short, &tall)] {
            let na = join_cost_na(a, b);
            let da = join_cost_da(a, b);
            assert!(na.is_finite() && na > 0.0);
            assert!(da.is_finite() && da > 0.0);
            assert!(da <= na * (1.0 + 1e-9));
        }
    }

    #[test]
    fn by_level_breakdowns_sum_to_totals() {
        let a = p2(60_000, 0.5);
        let b = p2(20_000, 0.5);
        let na_sum: f64 = join_cost_na_by_level(&a, &b)
            .iter()
            .map(|&(_, c)| 2.0 * c)
            .sum();
        assert!((na_sum - join_cost_na(&a, &b)).abs() < 1e-9);
        let da_sum: f64 = join_cost_da_by_level(&a, &b).iter().map(|&(_, c)| c).sum();
        assert!((da_sum - join_cost_da(&a, &b)).abs() < 1e-9);
    }

    #[test]
    fn da_split_sums_to_total() {
        for (n1, n2) in [(60_000u64, 60_000u64), (80_000, 20_000), (20_000, 80_000)] {
            let a = p2(n1, 0.5);
            let b = p2(n2, 0.5);
            let (d1, d2) = join_cost_da_split(&a, &b);
            assert!((d1 + d2 - join_cost_da(&a, &b)).abs() < 1e-9, "{n1}/{n2}");
        }
    }

    #[test]
    fn prediction_targets_cover_levels_and_sum_to_totals() {
        let a = p2(80_000, 0.5); // h = 4
        let b = p2(20_000, 0.5); // h = 3 — exercises the pinned phase
        let targets = join_prediction_targets(&a, &b);
        let get = |name: &str| {
            targets
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("missing target {name}"))
        };
        // Per-level NA sums (×2, both trees pay) to the total.
        let na_levels: f64 = targets
            .iter()
            .filter(|(n, _)| n.starts_with("na.r"))
            .map(|&(_, v)| v)
            .sum();
        assert!((na_levels - get("na.total")).abs() < 1e-9);
        let da_levels: f64 = targets
            .iter()
            .filter(|(n, _)| n.starts_with("da.r"))
            .map(|&(_, v)| v)
            .sum();
        assert!((da_levels - get("da.total")).abs() < 1e-9);
        // The pinned phase folds its repeated leaf-level visits into one
        // target: R2 (h = 3) exposes levels 1..=2 only.
        assert!(targets.iter().any(|(n, _)| n == "na.r2.l2"));
        assert!(!targets.iter().any(|(n, _)| n == "na.r2.l3"));
        assert_eq!(na_target(1, 2), "na.r1.l2");
        assert_eq!(da_target(2, 1), "da.r2.l1");
    }

    #[test]
    fn na_priors_mirror_the_named_targets() {
        let a = p2(80_000, 0.5); // h = 4
        let b = p2(20_000, 0.5); // h = 3 — exercises the pinned phase
        let priors = join_na_priors(&a, &b);
        let targets = join_prediction_targets(&a, &b);
        // Same coordinates, same values as the named NA targets.
        for &(tree, j, na) in &priors {
            let name = na_target(tree, j);
            let named = targets
                .iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("missing named twin {name}"));
            assert!((na - named).abs() < 1e-9, "{name}");
        }
        let total: f64 = priors.iter().map(|&(_, _, v)| v).sum();
        assert!((total - join_cost_na(&a, &b)).abs() < 1e-9);
        // Roots never appear (paper level h is memory-resident).
        assert!(priors
            .iter()
            .all(|&(t, j, _)| j < if t == 1 { 4 } else { 3 }));
    }

    #[test]
    fn joins_with_height_one_trees() {
        let tiny = p2(10, 0.001); // h = 1
        let big = p2(60_000, 0.5);
        assert_eq!(join_cost_na(&tiny, &tiny), 0.0);
        // Joining a height-1 tree against a real tree still costs the
        // taller tree's descents.
        assert!(join_cost_na(&tiny, &big) > 0.0);
        assert!(join_cost_da(&big, &tiny) > 0.0);
    }
}
