//! Range-query cost (Eq 1) and the shared `intsect` primitive.

use crate::params::TreeParams;

/// The `intsect` function of the paper:
/// `intsect(N, s, q) = N · Π_k min{1, (s_k + q_k)}` — the expected number
/// of rectangles (average extents `s`) out of `N` uniformly placed in the
/// unit workspace that intersect a query window of extents `q`.
///
/// The `min{1, ·}` clamp keeps each per-dimension intersection
/// probability a probability; Eq 1 as printed omits it, `intsect` has it,
/// and \[TS96\] clamps — this crate clamps everywhere.
pub fn intsect<const N: usize>(count: f64, s: &[f64; N], q: &[f64; N]) -> f64 {
    let mut p = count;
    for k in 0..N {
        p *= (s[k] + q[k]).min(1.0);
    }
    p
}

/// Eq 1: expected node accesses of a range query with window extents `q`
/// over a tree with parameters `params`:
/// `NA(q) = Σ_{j=1}^{h−1} N_j · Π_k min{1, (s_{j,k} + q_k)}`.
///
/// The sum stops below the root (level `h`) because the root is assumed
/// memory-resident; a height-1 tree therefore costs 0.
pub fn range_query_cost<const N: usize>(params: &TreeParams<N>, q: &[f64; N]) -> f64 {
    let h = params.height();
    let mut total = 0.0;
    for j in 1..h {
        let l = params.level(j);
        total += intsect(l.nodes, &l.extents, q);
    }
    total
}

/// Expected number of *objects* a range query retrieves (the range-query
/// selectivity of \[TS96\]): `N · Π_k min{1, (s_k + q_k)}` with `s` the
/// average object extent `(D/N)^{1/n}`.
pub fn range_selectivity<const N: usize>(cardinality: u64, density: f64, q: &[f64; N]) -> f64 {
    if cardinality == 0 {
        return 0.0;
    }
    let s = (density / cardinality as f64).powf(1.0 / N as f64);
    intsect(cardinality as f64, &[s; N], q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DataProfile, ModelConfig};

    fn params(n_obj: u64, d: f64) -> TreeParams<2> {
        TreeParams::from_data(DataProfile::new(n_obj, d), &ModelConfig::paper(2))
    }

    #[test]
    fn intsect_hand_computed() {
        // 100 nodes of extent 0.1 × 0.1, window 0.2 × 0.3:
        // 100 · 0.3 · 0.4 = 12.
        let v = intsect(100.0, &[0.1, 0.1], &[0.2, 0.3]);
        assert!((v - 12.0).abs() < 1e-12);
    }

    #[test]
    fn intsect_clamps_each_dimension() {
        // s + q > 1 in dim 0 clamps to probability 1.
        let v = intsect(10.0, &[0.8, 0.1], &[0.5, 0.1]);
        assert!((v - 10.0 * 1.0 * 0.2).abs() < 1e-12);
        // Whole-space window touches everything.
        let all = intsect(10.0, &[0.01, 0.01], &[1.0, 1.0]);
        assert!((all - 10.0).abs() < 1e-12);
    }

    #[test]
    fn point_query_cost_positive() {
        // A point query (q = 0) still pays s_j per level.
        let p = params(60_000, 0.5);
        let cost = range_query_cost(&p, &[0.0, 0.0]);
        assert!(cost > 0.0);
        // And it is the minimum over window sizes.
        assert!(cost < range_query_cost(&p, &[0.1, 0.1]));
    }

    #[test]
    fn whole_space_query_touches_every_nonroot_node() {
        let p = params(60_000, 0.5);
        let cost = range_query_cost(&p, &[1.0, 1.0]);
        let expected: f64 = (1..p.height()).map(|j| p.level(j).nodes).sum();
        assert!((cost - expected).abs() < 1e-9);
    }

    #[test]
    fn cost_monotone_in_window() {
        let p = params(40_000, 0.3);
        let mut prev = 0.0;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let c = range_query_cost(&p, &[q, q]);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn cost_monotone_in_cardinality() {
        let q = [0.05, 0.05];
        let c20 = range_query_cost(&params(20_000, 0.5), &q);
        let c80 = range_query_cost(&params(80_000, 0.5), &q);
        assert!(c80 > c20);
    }

    #[test]
    fn height_one_tree_costs_nothing() {
        let p = TreeParams::<2>::from_data(DataProfile::new(20, 0.01), &ModelConfig::paper(2));
        assert_eq!(p.height(), 1);
        assert_eq!(range_query_cost(&p, &[0.5, 0.5]), 0.0);
    }

    #[test]
    fn selectivity_bounds() {
        let q = [0.1, 0.1];
        let sel = range_selectivity::<2>(10_000, 0.5, &q);
        assert!(sel > 0.0);
        assert!(sel <= 10_000.0);
        assert_eq!(range_selectivity::<2>(0, 0.0, &q), 0.0);
        // Whole-space query returns everything.
        let all = range_selectivity::<2>(10_000, 0.5, &[1.0, 1.0]);
        assert!((all - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn one_dimensional_range_cost() {
        let p = TreeParams::<1>::from_data(DataProfile::new(20_000, 0.5), &ModelConfig::paper(1));
        let c = range_query_cost(&p, &[0.01]);
        assert!(c > 0.0);
        // h = 3 → two levels contribute.
        let manual: f64 = (1..3)
            .map(|j| p.level(j).nodes * (p.level(j).extents[0] + 0.01).min(1.0))
            .sum();
        assert!((c - manual).abs() < 1e-9);
    }
}
