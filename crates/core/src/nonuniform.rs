//! Non-uniform data support: the §4.2 global→local transformation.
//!
//! The uniform model assumes objects are spread evenly over the
//! workspace. For skewed data, \[TS96\] (and §4.2 of the join paper)
//! proposes reducing the uniformity assumption from *global* to *local*:
//! partition the workspace into a grid, measure a local cardinality and
//! density per cell (in a real system, by sampling), and evaluate the
//! cost formula per cell with local parameters.
//!
//! Consistency requirement (tested): on uniform data the per-cell sum
//! reproduces the global formula, because local node counts scale with
//! the cell volume while local extents stay put.

use crate::config::{DataProfile, ModelConfig};
use crate::join::level_schedule;
use crate::params::predict_height;
use sjcm_geom::Rect;

/// Local statistics of one grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellStats {
    /// Objects assigned to the cell (fractional: each object contributes
    /// to a cell proportionally to its overlap with it).
    pub count: f64,
    /// Local density: covered measure within the cell / cell measure.
    pub density: f64,
}

/// A grid histogram of local cardinality and density — the "density
/// surface" of \[TS96\] §4.2.
#[derive(Debug, Clone, PartialEq)]
pub struct DensitySurface<const N: usize> {
    grid: usize,
    cells: Vec<CellStats>,
    total_count: f64,
}

impl<const N: usize> DensitySurface<N> {
    /// Builds the surface from object MBRs on a `grid^N` partition of the
    /// unit workspace.
    ///
    /// Each object distributes its unit of count across the cells it
    /// overlaps, weighted by overlap share; degenerate (zero-measure)
    /// objects count fully toward the cell containing their center.
    pub fn from_rects(rects: &[Rect<N>], grid: usize) -> Self {
        assert!(grid >= 1, "grid must have at least one cell per side");
        let cell_count = grid.pow(N as u32);
        let mut cells = vec![CellStats::default(); cell_count];
        let cell_measure = (1.0 / grid as f64).powi(N as i32);
        for r in rects {
            let clipped = match r.clamp_to_unit() {
                Some(c) => c,
                None => continue,
            };
            let measure = clipped.measure();
            if measure > 0.0 {
                // Distribute count and coverage over overlapped cells.
                for idx in overlapped_cells::<N>(&clipped, grid) {
                    let cell_rect = cell_rect::<N>(idx, grid);
                    let inter = clipped.intersection_measure(&cell_rect);
                    if inter > 0.0 {
                        cells[idx].count += inter / measure;
                        cells[idx].density += inter / cell_measure;
                    }
                }
            } else {
                let idx = cell_of_point::<N>(&clipped.center().coords(), grid);
                cells[idx].count += 1.0;
            }
        }
        let total_count = cells.iter().map(|c| c.count).sum();
        Self {
            grid,
            cells,
            total_count,
        }
    }

    /// Cells per dimension.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Number of cells, `grid^N`.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Statistics of cell `idx` (row-major).
    pub fn cell(&self, idx: usize) -> CellStats {
        self.cells[idx]
    }

    /// Total (fractional) object count over all cells.
    pub fn total_count(&self) -> f64 {
        self.total_count
    }

    /// Global density recovered from the surface:
    /// `Σ_c density_c · cell_measure`.
    pub fn global_density(&self) -> f64 {
        let cell_measure = (1.0 / self.grid as f64).powi(N as i32);
        self.cells.iter().map(|c| c.density * cell_measure).sum()
    }

    /// A skew indicator: the coefficient of variation of per-cell counts.
    /// 0 for perfectly uniform data, growing with clustering.
    pub fn count_cv(&self) -> f64 {
        let n = self.cells.len() as f64;
        let mean = self.total_count / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .cells
            .iter()
            .map(|c| (c.count - mean).powi(2))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

fn cell_rect<const N: usize>(idx: usize, grid: usize) -> Rect<N> {
    let side = 1.0 / grid as f64;
    let mut lo = [0.0; N];
    let mut hi = [0.0; N];
    let mut rem = idx;
    for k in 0..N {
        let i = rem % grid;
        rem /= grid;
        lo[k] = i as f64 * side;
        hi[k] = lo[k] + side;
    }
    Rect::new(lo, hi).expect("grid cells are well-formed")
}

fn cell_of_point<const N: usize>(p: &[f64; N], grid: usize) -> usize {
    let mut idx = 0usize;
    for k in (0..N).rev() {
        let i = ((p[k] * grid as f64) as usize).min(grid - 1);
        idx = idx * grid + i;
    }
    idx
}

/// Indices of cells a rectangle overlaps.
fn overlapped_cells<const N: usize>(r: &Rect<N>, grid: usize) -> Vec<usize> {
    let g = grid as f64;
    let mut lo_cell = [0usize; N];
    let mut hi_cell = [0usize; N];
    for k in 0..N {
        lo_cell[k] = ((r.lo_k(k) * g) as usize).min(grid - 1);
        // A rect touching a cell boundary from below should not be
        // attributed to the next cell; nudge the upper index inward.
        let hi = (r.hi_k(k) * g).ceil() as usize;
        hi_cell[k] = hi.saturating_sub(1).clamp(lo_cell[k], grid - 1);
    }
    let mut out = Vec::new();
    let mut cursor = lo_cell;
    loop {
        let mut idx = 0usize;
        for k in (0..N).rev() {
            idx = idx * grid + cursor[k];
        }
        out.push(idx);
        // Odometer increment.
        let mut k = 0;
        loop {
            if k == N {
                return out;
            }
            if cursor[k] < hi_cell[k] {
                cursor[k] += 1;
                break;
            }
            cursor[k] = lo_cell[k];
            k += 1;
        }
    }
}

/// Per-cell level parameters derived from a surface for one level `j`:
/// local node count and extent inside one cell.
fn cell_level_params<const N: usize>(
    cell: CellStats,
    total: f64,
    global_nodes: f64,
    local_density_at_level: f64,
    cell_measure: f64,
) -> Option<(f64, f64)> {
    if total <= 0.0 || cell.count <= 0.0 {
        return None;
    }
    let nodes = global_nodes * cell.count / total;
    if nodes <= 0.0 {
        return None;
    }
    // Local Eq 4: the level's local coverage (density · cell volume) is
    // shared by the cell's share of nodes.
    let s = (local_density_at_level * cell_measure / nodes).powf(1.0 / N as f64);
    Some((nodes, s))
}

/// Propagates a local data density through Eq 5 up to `levels` levels.
fn propagate_density<const N: usize>(d0: f64, fanout: f64, levels: usize) -> Vec<f64> {
    let n_inv = 1.0 / N as f64;
    let mut out = Vec::with_capacity(levels);
    let mut d = d0;
    for _ in 0..levels {
        d = (1.0 + (d.powf(n_inv) - 1.0) / fanout.powf(n_inv)).powi(N as i32);
        out.push(d);
    }
    out
}

/// Join cost estimate for non-uniform data: evaluates the join formulas
/// per grid cell with local parameters and sums. Returns `(NA, DA)`.
///
/// `profile1` / `profile2` supply the global cardinalities (tree heights
/// and global node counts stay global properties of the indexes); the
/// surfaces supply the local structure.
pub fn join_cost_nonuniform<const N: usize>(
    profile1: DataProfile,
    surface1: &DensitySurface<N>,
    profile2: DataProfile,
    surface2: &DensitySurface<N>,
    config: &ModelConfig,
) -> (f64, f64) {
    assert_eq!(
        surface1.grid(),
        surface2.grid(),
        "surfaces must share a grid for cell-wise combination"
    );
    let f = config.fanout();
    let h1 = predict_height(profile1.cardinality, config);
    let h2 = predict_height(profile2.cardinality, config);
    let schedule = level_schedule(h1, h2);
    let delta = h1.abs_diff(h2);
    let grid = surface1.grid();
    let cell_measure = (1.0 / grid as f64).powi(N as i32);
    let cell_side = 1.0 / grid as f64;

    // Global node counts per level (Eq 3).
    let nodes_at = |cardinality: u64, j: usize| -> f64 {
        (cardinality as f64 / f.powi(j as i32)).ceil().max(1.0)
    };

    let mut na = 0.0;
    let mut da = 0.0;
    for idx in 0..surface1.cell_count() {
        let c1 = surface1.cell(idx);
        let c2 = surface2.cell(idx);
        if c1.count <= 0.0 || c2.count <= 0.0 {
            continue;
        }
        let d1_levels = propagate_density::<N>(c1.density, f, h1);
        let d2_levels = propagate_density::<N>(c2.density, f, h2);
        // Per-dimension overlap probability within the cell.
        let pair_factor =
            |s1: f64, s2: f64| -> f64 { ((s1 + s2).min(cell_side) / cell_side).powi(N as i32) };
        for (step, pair) in schedule.iter().enumerate() {
            let j = step + 1;
            let p1 = cell_level_params::<N>(
                c1,
                surface1.total_count(),
                nodes_at(profile1.cardinality, pair.j1),
                d1_levels[pair.j1 - 1],
                cell_measure,
            );
            let p2 = cell_level_params::<N>(
                c2,
                surface2.total_count(),
                nodes_at(profile2.cardinality, pair.j2),
                d2_levels[pair.j2 - 1],
                cell_measure,
            );
            let (Some((n1, s1)), Some((n2, s2))) = (p1, p2) else {
                continue;
            };
            let pairs = n1 * n2 * pair_factor(s1, s2);
            na += 2.0 * pairs;

            // DA mirrors join::join_cost_da_by_level's Eq 12 branches.
            let parent_j1 = (pair.j1 + 1).min(h1);
            let (np, sp) = cell_level_params::<N>(
                c1,
                surface1.total_count(),
                nodes_at(profile1.cardinality, parent_j1),
                d1_levels[parent_j1 - 1],
                cell_measure,
            )
            .unwrap_or((n1, s1));
            let da_query = n2 * np * pair_factor(sp, s2);
            if h1 >= h2 {
                if j > delta {
                    da += pairs + da_query;
                } else {
                    da += pairs;
                }
            } else if j > delta {
                da += pairs + da_query;
            } else {
                da += 2.0 * da_query;
            }
        }
    }
    (na, da)
}

/// Join **selectivity** for non-uniform data — the second §5 future-work
/// item: expected overlapping object pairs evaluated per cell with local
/// cardinalities and local average object sizes, then summed.
///
/// On uniform data this reduces to
/// [`crate::selectivity::join_selectivity`]; on clustered data it
/// captures the co-location that the global formula misses (the global
/// estimate can be off by integer factors — see the selectivity
/// experiment).
pub fn join_selectivity_nonuniform<const N: usize>(
    surface1: &DensitySurface<N>,
    surface2: &DensitySurface<N>,
) -> f64 {
    assert_eq!(
        surface1.grid(),
        surface2.grid(),
        "surfaces must share a grid for cell-wise combination"
    );
    let grid = surface1.grid();
    let cell_measure = (1.0 / grid as f64).powi(N as i32);
    let cell_side = 1.0 / grid as f64;
    let n_inv = 1.0 / N as f64;
    let mut pairs = 0.0;
    for idx in 0..surface1.cell_count() {
        let c1 = surface1.cell(idx);
        let c2 = surface2.cell(idx);
        if c1.count <= 0.0 || c2.count <= 0.0 {
            continue;
        }
        // Local average object extent: local coverage shared by the
        // cell's objects.
        let s1 = (c1.density * cell_measure / c1.count).powf(n_inv);
        let s2 = (c2.density * cell_measure / c2.count).powf(n_inv);
        let p = ((s1 + s2).min(cell_side) / cell_side).powi(N as i32);
        pairs += c1.count * c2.count * p;
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::{join_cost_da, join_cost_na};
    use crate::params::TreeParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sjcm_geom::Point;

    fn uniform_rects(n: usize, side: f64, seed: u64) -> Vec<Rect<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let c = Point::new([rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
                Rect::centered(c, [side, side])
                    .clamp_to_unit()
                    .expect("centered in unit space")
            })
            .collect()
    }

    fn clustered_rects(n: usize, side: f64, seed: u64) -> Vec<Rect<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                // Two tight clusters.
                let (cx, cy) = if rng.gen_bool(0.5) {
                    (
                        0.2 + rng.gen_range(-0.05..0.05),
                        0.2 + rng.gen_range(-0.05..0.05),
                    )
                } else {
                    (
                        0.8 + rng.gen_range(-0.05..0.05),
                        0.7 + rng.gen_range(-0.05..0.05),
                    )
                };
                Rect::centered(Point::new([cx, cy]), [side, side])
                    .clamp_to_unit()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn cell_indexing_roundtrip() {
        let grid = 4;
        for idx in 0..16usize {
            let r = cell_rect::<2>(idx, grid);
            let back = cell_of_point::<2>(&r.center().coords(), grid);
            assert_eq!(back, idx);
        }
    }

    #[test]
    fn overlapped_cells_spans_rect() {
        let r = Rect::new([0.1, 0.1], [0.6, 0.3]).unwrap();
        let cells = overlapped_cells::<2>(&r, 4);
        // x spans cells 0..2 (0.1..0.6 → cells 0,1,2), y spans 0..1.
        assert_eq!(cells.len(), 6);
        for idx in cells {
            assert!(cell_rect::<2>(idx, 4).intersects(&r));
        }
    }

    #[test]
    fn boundary_touching_rect_stays_in_lower_cell() {
        // Rect exactly [0, 0.25]² on a 4-grid overlaps only cell 0 with
        // positive measure.
        let r = Rect::new([0.0, 0.0], [0.25, 0.25]).unwrap();
        let cells = overlapped_cells::<2>(&r, 4);
        assert_eq!(cells, vec![0]);
    }

    #[test]
    fn surface_recovers_global_statistics() {
        let rects = uniform_rects(5_000, 0.01, 1);
        let global_d = sjcm_geom::density(rects.iter());
        let surf = DensitySurface::<2>::from_rects(&rects, 8);
        assert!((surf.total_count() - 5_000.0).abs() < 1e-6);
        assert!(
            (surf.global_density() - global_d).abs() < 1e-9,
            "surface density {} vs global {global_d}",
            surf.global_density()
        );
    }

    #[test]
    fn uniform_data_has_low_cv_clustered_high() {
        let u = DensitySurface::<2>::from_rects(&uniform_rects(5_000, 0.01, 2), 8);
        let c = DensitySurface::<2>::from_rects(&clustered_rects(5_000, 0.01, 3), 8);
        assert!(u.count_cv() < 0.2, "uniform cv {}", u.count_cv());
        assert!(c.count_cv() > 1.0, "clustered cv {}", c.count_cv());
    }

    #[test]
    fn nonuniform_model_agrees_with_uniform_model_on_uniform_data() {
        // On uniform data, the per-cell evaluation must reproduce the
        // global formula closely.
        let n = 30_000;
        let side = (0.4f64 / n as f64).sqrt();
        let rects = uniform_rects(n, side, 4);
        let d = sjcm_geom::density(rects.iter());
        let cfg = ModelConfig::paper(2);
        let prof = DataProfile::new(n as u64, d);
        let surf = DensitySurface::<2>::from_rects(&rects, 4);
        let (na_nu, da_nu) = join_cost_nonuniform(prof, &surf, prof, &surf, &cfg);
        let p = TreeParams::<2>::from_data(prof, &cfg);
        let na_u = join_cost_na(&p, &p);
        let da_u = join_cost_da(&p, &p);
        let na_err = (na_nu - na_u).abs() / na_u;
        let da_err = (da_nu - da_u).abs() / da_u;
        assert!(na_err < 0.15, "NA mismatch {na_err:.3}: {na_nu} vs {na_u}");
        assert!(da_err < 0.15, "DA mismatch {da_err:.3}: {da_nu} vs {da_u}");
    }

    #[test]
    fn clustered_data_costs_more_than_uniform_assumption() {
        // Clustering concentrates both data sets in the same cells, so
        // the locally-evaluated cost exceeds the global-uniform estimate.
        let n = 30_000;
        let side = (0.4f64 / n as f64).sqrt();
        let rects1 = clustered_rects(n, side, 5);
        let rects2 = clustered_rects(n, side, 6);
        let cfg = ModelConfig::paper(2);
        let prof1 = DataProfile::new(n as u64, sjcm_geom::density(rects1.iter()));
        let prof2 = DataProfile::new(n as u64, sjcm_geom::density(rects2.iter()));
        let s1 = DensitySurface::<2>::from_rects(&rects1, 8);
        let s2 = DensitySurface::<2>::from_rects(&rects2, 8);
        let (na_nu, _) = join_cost_nonuniform(prof1, &s1, prof2, &s2, &cfg);
        let p1 = TreeParams::<2>::from_data(prof1, &cfg);
        let p2 = TreeParams::<2>::from_data(prof2, &cfg);
        let na_u = join_cost_na(&p1, &p2);
        assert!(
            na_nu > na_u,
            "clustered estimate {na_nu} should exceed uniform {na_u}"
        );
    }

    #[test]
    fn disjoint_clusters_cost_less_than_uniform_assumption() {
        // Data sets clustered in *different* regions rarely meet; the
        // local model sees that, the global-uniform one cannot.
        let n = 30_000;
        let side = (0.4f64 / n as f64).sqrt();
        let mut rng = StdRng::seed_from_u64(7);
        let left: Vec<Rect<2>> = (0..n)
            .map(|_| {
                let c = Point::new([rng.gen_range(0.0..0.3), rng.gen_range(0.0..1.0)]);
                Rect::centered(c, [side, side]).clamp_to_unit().unwrap()
            })
            .collect();
        let right: Vec<Rect<2>> = (0..n)
            .map(|_| {
                let c = Point::new([rng.gen_range(0.7..1.0), rng.gen_range(0.0..1.0)]);
                Rect::centered(c, [side, side]).clamp_to_unit().unwrap()
            })
            .collect();
        let cfg = ModelConfig::paper(2);
        let prof1 = DataProfile::new(n as u64, sjcm_geom::density(left.iter()));
        let prof2 = DataProfile::new(n as u64, sjcm_geom::density(right.iter()));
        let s1 = DensitySurface::<2>::from_rects(&left, 8);
        let s2 = DensitySurface::<2>::from_rects(&right, 8);
        let (na_nu, da_nu) = join_cost_nonuniform(prof1, &s1, prof2, &s2, &cfg);
        let p1 = TreeParams::<2>::from_data(prof1, &cfg);
        let p2 = TreeParams::<2>::from_data(prof2, &cfg);
        assert!(na_nu < join_cost_na(&p1, &p2));
        assert!(da_nu < join_cost_da(&p1, &p2));
    }

    #[test]
    fn nonuniform_selectivity_reduces_to_uniform_on_uniform_data() {
        let n = 20_000;
        let side = (0.3f64 / n as f64).sqrt();
        let a = uniform_rects(n, side, 20);
        let b = uniform_rects(n, side, 21);
        let sa = DensitySurface::<2>::from_rects(&a, 4);
        let sb = DensitySurface::<2>::from_rects(&b, 4);
        let local = join_selectivity_nonuniform(&sa, &sb);
        let uniform = crate::selectivity::join_selectivity::<2>(
            DataProfile::new(n as u64, sjcm_geom::density(a.iter())),
            DataProfile::new(n as u64, sjcm_geom::density(b.iter())),
        );
        let err = (local - uniform).abs() / uniform;
        assert!(err < 0.10, "local {local:.0} vs uniform {uniform:.0}");
    }

    #[test]
    fn nonuniform_selectivity_sees_co_location() {
        // Both sets clustered in the same spots: the local estimate must
        // exceed the global-uniform one substantially.
        let n = 20_000;
        let side = (0.3f64 / n as f64).sqrt();
        let a = clustered_rects(n, side, 22);
        let b = clustered_rects(n, side, 23);
        let sa = DensitySurface::<2>::from_rects(&a, 8);
        let sb = DensitySurface::<2>::from_rects(&b, 8);
        let local = join_selectivity_nonuniform(&sa, &sb);
        let uniform = crate::selectivity::join_selectivity::<2>(
            DataProfile::new(n as u64, sjcm_geom::density(a.iter())),
            DataProfile::new(n as u64, sjcm_geom::density(b.iter())),
        );
        assert!(
            local > uniform * 2.0,
            "local {local:.0} should dwarf uniform {uniform:.0} on co-located clusters"
        );
    }

    #[test]
    fn empty_surface_is_free() {
        let cfg = ModelConfig::paper(2);
        let empty = DensitySurface::<2>::from_rects(&[], 4);
        let some = DensitySurface::<2>::from_rects(&uniform_rects(1000, 0.01, 8), 4);
        let (na, da) = join_cost_nonuniform(
            DataProfile::new(0, 0.0),
            &empty,
            DataProfile::new(1000, 0.1),
            &some,
            &cfg,
        );
        assert_eq!(na, 0.0);
        assert_eq!(da, 0.0);
    }

    #[test]
    #[should_panic(expected = "share a grid")]
    fn mismatched_grids_rejected() {
        let cfg = ModelConfig::paper(2);
        let a = DensitySurface::<2>::from_rects(&[], 4);
        let b = DensitySurface::<2>::from_rects(&[], 8);
        join_cost_nonuniform(
            DataProfile::new(1, 0.0),
            &a,
            DataProfile::new(1, 0.0),
            &b,
            &cfg,
        );
    }
}
