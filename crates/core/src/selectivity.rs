//! Join selectivity estimation — the §5 "future work" item, implemented
//! as an extension.
//!
//! The paper's conclusion sketches the approach: apply the range-query
//! selectivity formula of \[TS96\] with one data set playing the query
//! role. Under the uniform model, two objects with average extents `s1`
//! and `s2` overlap with probability `Π_k min{1, s1_k + s2_k}`, so the
//! expected number of overlapping pairs at the leaf level is
//! `N1 · N2 · Π_k min{1, s1_k + s2_k}`.

use crate::config::DataProfile;

/// Expected number of overlapping `(object1, object2)` pairs of a spatial
/// join between two data sets, from their primitive properties only.
///
/// ```
/// use sjcm_core::{selectivity::join_selectivity, DataProfile};
/// let pairs = join_selectivity::<2>(
///     DataProfile::new(10_000, 0.25),
///     DataProfile::new(10_000, 0.25),
/// );
/// assert!(pairs > 0.0);
/// assert!(pairs <= 10_000.0 * 10_000.0);
/// ```
pub fn join_selectivity<const N: usize>(d1: DataProfile, d2: DataProfile) -> f64 {
    let s1 = d1.avg_extent(N);
    let s2 = d2.avg_extent(N);
    let mut pairs = d1.cardinality as f64 * d2.cardinality as f64;
    for _ in 0..N {
        pairs *= (s1 + s2).min(1.0);
    }
    pairs
}

/// Join selectivity as a fraction of the Cartesian product, in `[0, 1]`.
pub fn join_selectivity_fraction<const N: usize>(d1: DataProfile, d2: DataProfile) -> f64 {
    if d1.cardinality == 0 || d2.cardinality == 0 {
        return 0.0;
    }
    join_selectivity::<N>(d1, d2) / (d1.cardinality as f64 * d2.cardinality as f64)
}

/// Expected number of pairs of a **distance join** (objects within
/// Euclidean distance ε, modeled through the L∞ Minkowski window of
/// \[PT97\]): each per-dimension factor grows by `2ε`.
pub fn distance_join_selectivity<const N: usize>(
    d1: DataProfile,
    d2: DataProfile,
    eps: f64,
) -> f64 {
    assert!(eps >= 0.0, "distance must be non-negative");
    let s1 = d1.avg_extent(N);
    let s2 = d2.avg_extent(N);
    let mut pairs = d1.cardinality as f64 * d2.cardinality as f64;
    for _ in 0..N {
        pairs *= (s1 + s2 + 2.0 * eps).min(1.0);
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_computed_selectivity() {
        // s1 = s2 = sqrt(0.25/10_000) = 0.005 → factor 0.01 per dim.
        let d = DataProfile::new(10_000, 0.25);
        let pairs = join_selectivity::<2>(d, d);
        assert!((pairs - 1e8 * 1e-4).abs() < 1e-3); // 10 000 pairs
    }

    #[test]
    fn fraction_in_unit_interval() {
        let a = DataProfile::new(5_000, 0.4);
        let b = DataProfile::new(20_000, 0.1);
        let f = join_selectivity_fraction::<2>(a, b);
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn empty_sets_yield_zero() {
        let a = DataProfile::new(0, 0.0);
        let b = DataProfile::new(1_000, 0.5);
        assert_eq!(join_selectivity::<2>(a, b), 0.0);
        assert_eq!(join_selectivity_fraction::<2>(a, b), 0.0);
    }

    #[test]
    fn selectivity_monotone_in_density() {
        let n = 10_000;
        let lo = join_selectivity::<2>(DataProfile::new(n, 0.1), DataProfile::new(n, 0.1));
        let hi = join_selectivity::<2>(DataProfile::new(n, 0.8), DataProfile::new(n, 0.8));
        assert!(hi > lo);
    }

    #[test]
    fn huge_objects_clamp_to_cartesian_product() {
        // Density so high that every pair overlaps.
        let d = DataProfile::new(100, 10_000.0);
        let pairs = join_selectivity::<2>(d, d);
        assert!((pairs - 100.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn distance_join_reduces_to_overlap_at_zero_eps() {
        let a = DataProfile::new(3_000, 0.2);
        let b = DataProfile::new(7_000, 0.3);
        assert_eq!(
            distance_join_selectivity::<2>(a, b, 0.0),
            join_selectivity::<2>(a, b)
        );
    }

    #[test]
    fn distance_join_monotone_in_eps() {
        let a = DataProfile::new(3_000, 0.2);
        let b = DataProfile::new(7_000, 0.3);
        let mut prev = 0.0;
        for i in 0..=10 {
            let eps = i as f64 / 20.0;
            let v = distance_join_selectivity::<2>(a, b, eps);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn distance_join_rejects_negative_eps() {
        let d = DataProfile::new(10, 0.1);
        distance_join_selectivity::<2>(d, d, -0.1);
    }

    #[test]
    fn one_dimensional_selectivity() {
        // Intervals: s = D/N directly.
        let a = DataProfile::new(1_000, 0.5); // s = 5e-4
        let pairs = join_selectivity::<1>(a, a);
        assert!((pairs - 1_000.0 * 1_000.0 * 1e-3).abs() < 1e-6);
    }
}
