//! Model inputs: the index configuration and the primitive data
//! properties.

use sjcm_storage_layout::max_entries;

// The cost model only needs one constant from the storage layer — the
// page-capacity formula — and pulling the whole crate in for that would
// invert the dependency layering (core is pure analytics). The formula is
// three lines; it is duplicated here behind a module with a compile-time
// cross-check in the tests of this file.
mod sjcm_storage_layout {
    /// Maximum entries per node for `page_size` bytes in `n` dimensions:
    /// an 8-byte header plus (8·n + 4)-byte entries — see
    /// `sjcm_storage::layout` for the authoritative definition.
    pub const fn max_entries(page_size: usize, n: usize) -> usize {
        (page_size - 8) / (8 * n + 4)
    }
}

/// How the tree height is predicted from `(N, f = c·M)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeightFormula {
    /// The paper's Eq 2: `h = 1 + ⌈log_{cM}(N / cM)⌉`. Treats every
    /// level — including the root — as filled to the average `c·M`.
    Eq2,
    /// Root-aware correction: `h = 1 + ⌈log_{cM}(N / M)⌉`. A real root
    /// fills up to `M`, not `c·M`, so a height-`h` tree holds up to
    /// `M · (cM)^{h−1}` objects. Eq 2 flips to the taller height one
    /// fanout-factor too early; near those boundaries (e.g. the paper's
    /// 2-D 40K–60K workloads) this variant matches built R\*-trees where
    /// Eq 2 does not — see EXPERIMENTS.md.
    RootAware,
}

/// Index-side constants of the model: the maximum node capacity `M` and
/// the average capacity fraction `c` (the paper uses the "typical"
/// c = 67%). Together they give the effective fanout `f = c·M`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Maximum entries per node, `M`.
    pub max_entries: usize,
    /// Average node capacity as a fraction, `c ∈ (0, 1]`.
    pub avg_capacity: f64,
    /// Height prediction variant (the paper's Eq 2 by default).
    pub height_formula: HeightFormula,
}

impl ModelConfig {
    /// The paper's configuration for dimensionality `n`: `M` from 1 KiB
    /// pages (84 for n = 1, 50 for n = 2) and `c = 0.67`.
    ///
    /// ```
    /// use sjcm_core::ModelConfig;
    /// assert_eq!(ModelConfig::paper(1).max_entries, 84);
    /// assert_eq!(ModelConfig::paper(2).max_entries, 50);
    /// ```
    pub fn paper(n: usize) -> Self {
        Self {
            max_entries: max_entries(1024, n),
            avg_capacity: 0.67,
            height_formula: HeightFormula::Eq2,
        }
    }

    /// The corrected configuration this reproduction recommends: the
    /// paper's page geometry, `c = 0.70` (the storage utilization R\*-
    /// trees actually achieve, per Beckmann et al. and our measurements)
    /// and the root-aware height formula. On height-boundary workloads
    /// this cuts the join-cost error from ~30% back into the paper's
    /// ≤15% band; elsewhere it matches [`ModelConfig::paper`].
    pub fn paper_corrected(n: usize) -> Self {
        Self {
            max_entries: max_entries(1024, n),
            avg_capacity: 0.70,
            height_formula: HeightFormula::RootAware,
        }
    }

    /// Configuration with an explicit capacity and the paper's `c`.
    pub fn with_capacity(max_entries: usize) -> Self {
        Self {
            max_entries,
            avg_capacity: 0.67,
            height_formula: HeightFormula::Eq2,
        }
    }

    /// Replaces the average capacity fraction.
    pub fn with_avg_capacity(mut self, c: f64) -> Self {
        assert!(c > 0.0 && c <= 1.0, "average capacity must be in (0, 1]");
        self.avg_capacity = c;
        self
    }

    /// Replaces the height formula.
    pub fn with_height_formula(mut self, formula: HeightFormula) -> Self {
        self.height_formula = formula;
        self
    }

    /// Effective fanout `f = c·M`, the paper's `c·M` denominator in
    /// Eqs 2, 3 and 5.
    #[inline]
    pub fn fanout(&self) -> f64 {
        self.avg_capacity * self.max_entries as f64
    }

    /// Predicted tree height for `cardinality` objects under the
    /// configured formula.
    pub fn height(&self, cardinality: u64) -> usize {
        crate::params::predict_height(cardinality, self)
    }
}

/// The primitive properties of one data set — everything the model is
/// allowed to know about it: cardinality `N` and density `D` over the
/// unit workspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataProfile {
    /// Number of objects, `N`.
    pub cardinality: u64,
    /// Density of the object MBRs over the unit workspace, `D ≥ 0`.
    pub density: f64,
}

impl DataProfile {
    /// Creates a profile; density must be finite and non-negative.
    pub fn new(cardinality: u64, density: f64) -> Self {
        assert!(
            density.is_finite() && density >= 0.0,
            "density must be finite and non-negative, got {density}"
        );
        Self {
            cardinality,
            density,
        }
    }

    /// Average object measure `D / N` (0 for an empty set).
    pub fn avg_measure(&self) -> f64 {
        if self.cardinality == 0 {
            0.0
        } else {
            self.density / self.cardinality as f64
        }
    }

    /// Average per-dimension object extent under the square-object
    /// assumption of \[TS96\]: `(D/N)^{1/n}`.
    pub fn avg_extent(&self, n: usize) -> f64 {
        self.avg_measure().powf(1.0 / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacities_match_storage_layout() {
        // Cross-check the duplicated formula against the storage crate's
        // published values.
        assert_eq!(max_entries(1024, 1), 84);
        assert_eq!(max_entries(1024, 2), 50);
        assert_eq!(ModelConfig::paper(1).max_entries, 84);
        assert_eq!(ModelConfig::paper(2).max_entries, 50);
    }

    #[test]
    fn fanout_is_c_times_m() {
        let c = ModelConfig::paper(2);
        assert!((c.fanout() - 33.5).abs() < 1e-12);
        let c1 = ModelConfig::paper(1);
        assert!((c1.fanout() - 56.28).abs() < 1e-12);
    }

    #[test]
    fn with_avg_capacity_builder() {
        let c = ModelConfig::with_capacity(100).with_avg_capacity(0.5);
        assert_eq!(c.fanout(), 50.0);
    }

    #[test]
    #[should_panic(expected = "average capacity")]
    fn rejects_capacity_fraction_above_one() {
        ModelConfig::with_capacity(10).with_avg_capacity(1.5);
    }

    #[test]
    fn profile_averages() {
        let p = DataProfile::new(20_000, 0.5);
        assert!((p.avg_measure() - 2.5e-5).abs() < 1e-18);
        assert!((p.avg_extent(2) - 0.005).abs() < 1e-12);
        assert!((p.avg_extent(1) - 2.5e-5).abs() < 1e-18);
    }

    #[test]
    fn empty_profile_is_harmless() {
        let p = DataProfile::new(0, 0.0);
        assert_eq!(p.avg_measure(), 0.0);
        assert_eq!(p.avg_extent(2), 0.0);
    }

    #[test]
    #[should_panic(expected = "density")]
    fn rejects_nan_density() {
        DataProfile::new(10, f64::NAN);
    }
}
