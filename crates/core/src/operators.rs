//! Transformed query windows for spatial operators beyond `overlap` —
//! the §5(i) extension, following the MBR-transformation idea of
//! Papadias & Theodoridis \[PT97\].
//!
//! The uniform model reduces every predicate to a per-dimension
//! probability: for an object of average extent `s` and a query window
//! of extent `q`, uniformly placed in the unit workspace, the probability
//! that the predicate holds in one dimension is a simple function of
//! `(s, q)`. `overlap` gives the familiar `min{1, s + q}`; the other
//! operators reshape that window.

/// A spatial predicate between an object MBR and a query window (or, for
/// joins, a second object MBR).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpatialOperator {
    /// MBRs share at least one point (the paper's default operator).
    Overlap,
    /// The object lies entirely inside the query window.
    Inside,
    /// The object entirely contains the query window.
    Contains,
    /// The object lies within L∞ distance ε of the window — the
    /// distance-join predicate via Minkowski enlargement.
    WithinDistance(
        /// Distance threshold ε ≥ 0.
        f64,
    ),
}

impl SpatialOperator {
    /// Per-dimension probability that the predicate holds between a
    /// uniformly-placed object of extent `s` and a window of extent `q`
    /// in `[0,1)`. Multiplying over dimensions gives the selectivity
    /// fraction; multiplying by `N` gives expected qualifying objects.
    pub fn dim_factor(&self, s: f64, q: f64) -> f64 {
        match *self {
            SpatialOperator::Overlap => (s + q).min(1.0),
            // The object's low corner must fall inside a window shrunk by
            // the object extent.
            SpatialOperator::Inside => (q - s).clamp(0.0, 1.0),
            // Symmetric: the window must fit inside the object.
            SpatialOperator::Contains => (s - q).clamp(0.0, 1.0),
            SpatialOperator::WithinDistance(eps) => (s + q + 2.0 * eps).min(1.0),
        }
    }

    /// The *traversal* window extent for the R-tree descent: the filter
    /// step still walks the tree with an overlap test, but against a
    /// transformed window. `Inside`/`Contains` traverse with the original
    /// window (candidates must overlap it); `WithinDistance` traverses
    /// with the ε-enlarged window.
    pub fn traversal_extent(&self, q: f64) -> f64 {
        match *self {
            SpatialOperator::Overlap | SpatialOperator::Inside | SpatialOperator::Contains => q,
            SpatialOperator::WithinDistance(eps) => (q + 2.0 * eps).min(1.0),
        }
    }

    /// Expected number of qualifying objects among `cardinality` objects
    /// of density `density` for an `N`-dimensional window with extents
    /// `q`.
    pub fn selectivity<const N: usize>(&self, cardinality: u64, density: f64, q: &[f64; N]) -> f64 {
        if cardinality == 0 {
            return 0.0;
        }
        let s = (density / cardinality as f64).powf(1.0 / N as f64);
        let mut v = cardinality as f64;
        for qk in q {
            v *= self.dim_factor(s, *qk);
        }
        v
    }

    /// Node-access cost of a range query under this operator: Eq 1
    /// evaluated with the operator's *traversal* window (the filter step
    /// descends the tree with an overlap test against the transformed
    /// window — the \[PT97\] reduction).
    pub fn range_cost<const N: usize>(
        &self,
        params: &crate::params::TreeParams<N>,
        q: &[f64; N],
    ) -> f64 {
        let mut traversal = [0.0; N];
        for (k, t) in traversal.iter_mut().enumerate() {
            *t = self.traversal_extent(q[k]);
        }
        crate::range::range_query_cost(params, &traversal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_factor_is_classic() {
        assert!((SpatialOperator::Overlap.dim_factor(0.1, 0.2) - 0.3).abs() < 1e-12);
        assert_eq!(SpatialOperator::Overlap.dim_factor(0.8, 0.5), 1.0);
    }

    #[test]
    fn inside_requires_window_larger_than_object() {
        let op = SpatialOperator::Inside;
        assert_eq!(op.dim_factor(0.3, 0.2), 0.0);
        assert!((op.dim_factor(0.1, 0.25) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn contains_is_mirror_of_inside() {
        let a = SpatialOperator::Inside.dim_factor(0.1, 0.4);
        let b = SpatialOperator::Contains.dim_factor(0.4, 0.1);
        assert_eq!(a, b);
    }

    #[test]
    fn within_distance_grows_window() {
        let op = SpatialOperator::WithinDistance(0.05);
        assert!((op.dim_factor(0.1, 0.2) - 0.4).abs() < 1e-12);
        assert!((op.traversal_extent(0.2) - 0.3).abs() < 1e-12);
        assert_eq!(SpatialOperator::Overlap.traversal_extent(0.2), 0.2);
    }

    #[test]
    fn operator_selectivities_are_ordered() {
        // Inside ⊂ Overlap ⊂ WithinDistance qualifying sets, so the
        // estimates must be ordered the same way.
        let q = [0.2, 0.2];
        let n = 10_000;
        let d = 0.25;
        let inside = SpatialOperator::Inside.selectivity(n, d, &q);
        let overlap = SpatialOperator::Overlap.selectivity(n, d, &q);
        let within = SpatialOperator::WithinDistance(0.1).selectivity(n, d, &q);
        assert!(inside <= overlap);
        assert!(overlap <= within);
        assert!(inside > 0.0);
    }

    #[test]
    fn selectivity_never_exceeds_cardinality() {
        let q = [0.9, 0.9];
        for op in [
            SpatialOperator::Overlap,
            SpatialOperator::Inside,
            SpatialOperator::Contains,
            SpatialOperator::WithinDistance(0.3),
        ] {
            let v = op.selectivity(5_000, 0.5, &q);
            assert!((0.0..=5_000.0).contains(&v), "{op:?} gave {v}");
        }
    }

    #[test]
    fn empty_set_selectivity_is_zero() {
        assert_eq!(
            SpatialOperator::Overlap.selectivity::<2>(0, 0.0, &[0.5, 0.5]),
            0.0
        );
    }

    #[test]
    fn range_cost_matches_eq1_for_overlap() {
        use crate::config::{DataProfile, ModelConfig};
        use crate::params::TreeParams;
        use crate::range::range_query_cost;
        let p = TreeParams::<2>::from_data(DataProfile::new(40_000, 0.5), &ModelConfig::paper(2));
        let q = [0.1, 0.15];
        assert_eq!(
            SpatialOperator::Overlap.range_cost(&p, &q),
            range_query_cost(&p, &q)
        );
        // Inside/Contains traverse with the original window too.
        assert_eq!(
            SpatialOperator::Inside.range_cost(&p, &q),
            range_query_cost(&p, &q)
        );
    }

    #[test]
    fn distance_operator_costs_more_io() {
        use crate::config::{DataProfile, ModelConfig};
        use crate::params::TreeParams;
        let p = TreeParams::<2>::from_data(DataProfile::new(40_000, 0.5), &ModelConfig::paper(2));
        let q = [0.1, 0.1];
        let overlap = SpatialOperator::Overlap.range_cost(&p, &q);
        let within = SpatialOperator::WithinDistance(0.05).range_cost(&p, &q);
        assert!(within > overlap, "ε-enlarged traversal visits more nodes");
    }
}
