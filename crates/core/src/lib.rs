//! Analytical cost models for R-tree range and join queries — the
//! primary contribution of *Theodoridis, Stefanakis & Sellis, "Cost
//! Models for Join Queries in Spatial Databases", ICDE 1998*.
//!
//! The models estimate, **from primitive data properties only** (the
//! cardinality `N` and density `D` of each data set — no inspection of
//! the built indexes), the I/O cost of spatial queries over R-tree-
//! indexed data:
//!
//! * [`params`] — the R-tree parameter predictions of \[TS96\] the join
//!   model builds on: height (Eq 2), per-level node counts (Eq 3),
//!   average node extents (Eq 4) and node-rectangle densities (Eq 5).
//! * [`range`] — the range-query cost `NA(q)` (Eq 1) and the `intsect`
//!   primitive both models share.
//! * [`join`] — the paper's core result: node accesses `NA_total`
//!   (Eqs 6–7, general heights Eq 11) and disk accesses under per-tree
//!   path buffers `DA_total` (Eqs 8–10, general heights Eq 12), unified
//!   through an explicit level-pairing schedule so the equal-height
//!   formulas fall out as the special case the paper notes.
//! * [`nonuniform`] — the §4.2 global→local density transformation for
//!   non-uniform data, via grid density surfaces.
//! * [`selectivity`] — the §5 (future work) join selectivity estimate,
//!   implemented as an extension.
//! * [`operators`] — transformed query windows for spatial operators
//!   other than `overlap` (§5 / \[PT97\]), including the distance join.
//!
//! # Quick example
//!
//! ```
//! use sjcm_core::{DataProfile, ModelConfig, TreeParams, join};
//!
//! let config = ModelConfig::paper(2); // 1 KiB pages, M = 50, c = 67%
//! let r1 = TreeParams::<2>::from_data(DataProfile::new(60_000, 0.5), &config);
//! let r2 = TreeParams::<2>::from_data(DataProfile::new(20_000, 0.5), &config);
//! let na = join::join_cost_na(&r1, &r2);
//! let da = join::join_cost_da(&r1, &r2);
//! assert!(da <= na);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod join;
pub mod nonuniform;
pub mod operators;
pub mod params;
pub mod range;
pub mod selectivity;

pub use config::{DataProfile, HeightFormula, ModelConfig};
pub use nonuniform::DensitySurface;
pub use operators::SpatialOperator;
pub use params::{LevelParams, TreeParams};
