//! Table and CSV output helpers for the experiment harness.

use std::fmt::Display;
use std::fs;
use std::path::{Path, PathBuf};

/// A simple fixed-width table printer that also mirrors every row into a
/// CSV file under the output directory, so EXPERIMENTS.md numbers are
/// regenerable and machine-readable.
pub struct Report {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    comments: Vec<String>,
    out_dir: PathBuf,
}

impl Report {
    /// Starts a report with the given CSV stem and column headers.
    pub fn new(out_dir: &Path, name: &str, columns: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            comments: Vec::new(),
            out_dir: out_dir.to_path_buf(),
        }
    }

    /// Adds a `# `-prefixed comment line above the CSV header (also
    /// printed with the table) — for caveats that must travel with the
    /// artifact, like timing-dependent columns.
    pub fn comment(&mut self, text: &str) {
        self.comments.push(text.to_string());
    }

    /// Adds one row (stringifying each cell).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.columns.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|c| format!("{c}")).collect());
    }

    /// Prints the table to stdout and writes `<out>/<name>.csv`.
    pub fn finish(self) {
        let widths: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(c.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
            }
            s.trim_end().to_string()
        };
        println!("\n== {} ==", self.name);
        for c in &self.comments {
            println!("# {c}");
        }
        println!("{}", line(&self.columns));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for r in &self.rows {
            println!("{}", line(r));
        }
        if let Err(e) = fs::create_dir_all(&self.out_dir) {
            eprintln!("warning: cannot create {}: {e}", self.out_dir.display());
            return;
        }
        let path = self.out_dir.join(format!("{}.csv", self.name));
        let mut csv = String::new();
        for c in &self.comments {
            csv.push_str(&format!("# {c}\n"));
        }
        csv.push_str(&self.columns.join(","));
        csv.push('\n');
        for r in &self.rows {
            csv.push_str(&r.join(","));
            csv.push('\n');
        }
        if let Err(e) = fs::write(&path, csv) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            println!("[csv] {}", path.display());
        }
    }
}

/// Formats a relative error as a percentage with one decimal.
pub fn pct(err: f64) -> String {
    format!("{:.1}%", err * 100.0)
}

/// Formats a float rounded to integer (the paper's figures report whole
/// node/disk accesses).
pub fn int(v: f64) -> String {
    format!("{v:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.153), "15.3%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(int(1234.4), "1234");
        assert_eq!(int(1234.6), "1235");
    }

    #[test]
    fn report_writes_csv() {
        let dir = std::env::temp_dir().join(format!("sjcm_report_{}", std::process::id()));
        let mut r = Report::new(&dir, "unit_test_table", &["a", "b"]);
        r.row(&[&1, &"x"]);
        r.row(&[&22, &"yy"]);
        r.finish();
        let csv = std::fs::read_to_string(dir.join("unit_test_table.csv")).unwrap();
        assert_eq!(csv, "a,b\n1,x\n22,yy\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_comments_precede_header() {
        let dir = std::env::temp_dir().join(format!("sjcm_report_c_{}", std::process::id()));
        let mut r = Report::new(&dir, "commented", &["a"]);
        r.comment("caveat lector");
        r.row(&[&7]);
        r.finish();
        let csv = std::fs::read_to_string(dir.join("commented.csv")).unwrap();
        assert_eq!(csv, "# caveat lector\na\n7\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn report_rejects_wrong_arity() {
        let dir = std::env::temp_dir();
        let mut r = Report::new(&dir, "bad", &["a", "b"]);
        r.row(&[&1]);
    }
}
